//! Character device drivers: printer, audio, and SCSI CD burner.
//!
//! These drivers cannot be transparently recovered (§6.3): "it is
//! impossible to tell whether data was lost" across a crash, so errors are
//! pushed to the application layer. The drivers themselves are ordinary
//! stateless request servers; what makes them special is what their
//! *clients* must do after a failure (reissue the print job, tolerate a
//! hiccup, or tell the user the disc is ruined).

use phoenix_hw::chardev::{audio_regs, printer_regs, scsi_cmd, scsi_regs, scsi_status};
use phoenix_hw::uart::uart_regs;
use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{CallId, DeviceId, IrqLine, Message};
use phoenix_simcore::trace::TraceLevel;

use crate::libdriver::{DriverLogic, FaultPort, GuardedRoutine};
use crate::proto::{cdev, status};
use crate::routines;

/// Printer driver: feeds the device FIFO, applying backpressure by
/// accepting only as many bytes as the FIFO has room for. The client
/// (`lpd`) loops until everything is accepted.
pub struct PrinterDriver {
    dev: DeviceId,
    irq: IrqLine,
    routine: GuardedRoutine,
    fault_port: FaultPort,
}

impl PrinterDriver {
    /// Creates the printer driver.
    pub fn new(dev: DeviceId, irq: IrqLine, fault_port: FaultPort) -> Self {
        PrinterDriver {
            dev,
            irq,
            routine: GuardedRoutine::new(&routines::with_cold_section(routines::char_write(), 30)),
            fault_port,
        }
    }
}

impl DriverLogic for PrinterDriver {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.fault_port
            .publish(ctx.self_name(), self.routine.live());
        ctx.irq_enable(self.irq)
            .expect("driver privilege grants its IRQ");
        ctx.trace(TraceLevel::Info, "printer driver ready".to_string());
    }

    fn request(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: &Message) {
        match msg.mtype {
            cdev::OPEN => {
                let _ = ctx.reply(call, Message::new(cdev::REPLY).with_param(0, status::OK));
            }
            cdev::WRITE => {
                let data = &msg.data;
                if data.is_empty() {
                    let _ = ctx.reply(
                        call,
                        Message::new(cdev::REPLY).with_param(0, status::EINVAL),
                    );
                    return;
                }
                let ok = self.routine.run(ctx, data.len().max(16) + 16, |vm| {
                    vm.mem[0..data.len()].copy_from_slice(data);
                    vm.regs[routines::reg::A0 as usize] = data.len() as u32;
                });
                if ok.is_none() {
                    return; // dying
                }
                let free = ctx
                    .devio_read(self.dev, printer_regs::FIFO_FREE)
                    .unwrap_or(0) as usize;
                let take = data.len().min(free);
                if take > 0 {
                    let _ = ctx.devio_write_block(self.dev, printer_regs::DATA, &data[..take]);
                }
                let st = if take > 0 { status::OK } else { status::EAGAIN };
                let _ = ctx.reply(
                    call,
                    Message::new(cdev::REPLY)
                        .with_param(0, st)
                        .with_param(1, take as u64),
                );
            }
            _ => {
                let _ = ctx.reply(
                    call,
                    Message::new(cdev::REPLY).with_param(0, status::EINVAL),
                );
            }
        }
    }
}

/// Audio driver: DMA-stages sample blocks into the DAC's queue.
pub struct AudioDriver {
    dev: DeviceId,
    irq: IrqLine,
    routine: GuardedRoutine,
    fault_port: FaultPort,
}

impl AudioDriver {
    /// Creates the audio driver.
    pub fn new(dev: DeviceId, irq: IrqLine, fault_port: FaultPort) -> Self {
        AudioDriver {
            dev,
            irq,
            routine: GuardedRoutine::new(&routines::with_cold_section(routines::char_write(), 30)),
            fault_port,
        }
    }
}

impl DriverLogic for AudioDriver {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.fault_port
            .publish(ctx.self_name(), self.routine.live());
        ctx.irq_enable(self.irq)
            .expect("driver privilege grants its IRQ");
        ctx.iommu_map(self.dev, 0, 0, 64 * 1024)
            .expect("map sample buffer");
        ctx.devio_write(self.dev, audio_regs::CTRL, 1)
            .expect("enable dac");
        ctx.trace(TraceLevel::Info, "audio driver ready".to_string());
    }

    fn request(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: &Message) {
        match msg.mtype {
            cdev::OPEN => {
                let _ = ctx.reply(call, Message::new(cdev::REPLY).with_param(0, status::OK));
            }
            cdev::WRITE => {
                let data = &msg.data;
                if data.is_empty() || data.len() > 64 * 1024 {
                    let _ = ctx.reply(
                        call,
                        Message::new(cdev::REPLY).with_param(0, status::EINVAL),
                    );
                    return;
                }
                let ok = self.routine.run(ctx, data.len() + 16, |vm| {
                    vm.mem[0..data.len()].copy_from_slice(data);
                    vm.regs[routines::reg::A0 as usize] = data.len() as u32;
                });
                if ok.is_none() {
                    return;
                }
                if ctx.mem_write(0, data).is_err() {
                    let _ = ctx.reply(call, Message::new(cdev::REPLY).with_param(0, status::EIO));
                    return;
                }
                let ok = ctx.devio_write(self.dev, audio_regs::BUF_ADDR, 0).is_ok()
                    && ctx
                        .devio_write(self.dev, audio_regs::BUF_LEN, data.len() as u32)
                        .is_ok()
                    && ctx.devio_write(self.dev, audio_regs::START, 1).is_ok();
                let st = if ok { status::OK } else { status::EIO };
                let _ = ctx.reply(
                    call,
                    Message::new(cdev::REPLY)
                        .with_param(0, st)
                        .with_param(1, data.len() as u64),
                );
            }
            _ => {
                let _ = ctx.reply(
                    call,
                    Message::new(cdev::REPLY).with_param(0, status::EINVAL),
                );
            }
        }
    }
}

/// SCSI CD burner driver. Burn state lives *in the device*; a restarted
/// driver that continues a burn will present the wrong chunk sequence and
/// the device will (correctly) ruin the disc — the §6.3 case where the
/// error must be reported to the user.
pub struct ScsiCdDriver {
    dev: DeviceId,
    irq: IrqLine,
    /// Chunk request awaiting the device's write-complete interrupt.
    pending: Option<CallId>,
    routine: GuardedRoutine,
    fault_port: FaultPort,
}

impl ScsiCdDriver {
    /// Creates the SCSI CD driver.
    pub fn new(dev: DeviceId, irq: IrqLine, fault_port: FaultPort) -> Self {
        ScsiCdDriver {
            dev,
            irq,
            pending: None,
            routine: GuardedRoutine::new(&routines::with_cold_section(routines::char_write(), 30)),
            fault_port,
        }
    }

    fn device_status(&self, ctx: &mut Ctx<'_>) -> u32 {
        ctx.devio_read(self.dev, scsi_regs::STATUS)
            .unwrap_or(scsi_status::RUINED)
    }
}

impl DriverLogic for ScsiCdDriver {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.fault_port
            .publish(ctx.self_name(), self.routine.live());
        ctx.irq_enable(self.irq)
            .expect("driver privilege grants its IRQ");
        ctx.iommu_map(self.dev, 0, 0, 64 * 1024)
            .expect("map burn buffer");
        ctx.trace(TraceLevel::Info, "scsi cd driver ready".to_string());
    }

    fn request(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: &Message) {
        match msg.mtype {
            cdev::OPEN => {
                let _ = ctx.reply(call, Message::new(cdev::REPLY).with_param(0, status::OK));
            }
            cdev::BURN_START => {
                let total = msg.param(0) as u32;
                let _ = ctx.devio_write(self.dev, scsi_regs::TOTAL_CHUNKS, total);
                let _ = ctx.devio_write(self.dev, scsi_regs::CMD, scsi_cmd::START_BURN);
                let st = if self.device_status(ctx) == scsi_status::BURNING {
                    status::OK
                } else {
                    status::EIO
                };
                let _ = ctx.reply(call, Message::new(cdev::REPLY).with_param(0, st));
            }
            cdev::BURN_CHUNK => {
                let seq = msg.param(0) as u32;
                let data = &msg.data;
                if data.is_empty() || data.len() > 64 * 1024 {
                    let _ = ctx.reply(
                        call,
                        Message::new(cdev::REPLY).with_param(0, status::EINVAL),
                    );
                    return;
                }
                let ok = self.routine.run(ctx, data.len() + 16, |vm| {
                    vm.mem[0..data.len()].copy_from_slice(data);
                    vm.regs[routines::reg::A0 as usize] = data.len() as u32;
                });
                if ok.is_none() {
                    return;
                }
                if ctx.mem_write(0, data).is_err() {
                    let _ = ctx.reply(call, Message::new(cdev::REPLY).with_param(0, status::EIO));
                    return;
                }
                let _ = ctx.devio_write(self.dev, scsi_regs::CHUNK_SEQ, seq);
                let _ = ctx.devio_write(self.dev, scsi_regs::DMA_ADDR, 0);
                let _ = ctx.devio_write(self.dev, scsi_regs::CHUNK_LEN, data.len() as u32);
                let _ = ctx.devio_write(self.dev, scsi_regs::CMD, scsi_cmd::WRITE_CHUNK);
                match self.device_status(ctx) {
                    scsi_status::BURNING => {
                        // The laser is writing; reply on the completion
                        // interrupt so the client is paced by the medium.
                        self.pending = Some(call);
                    }
                    _ => {
                        // Disc ruined: error pushed up to the application.
                        let _ =
                            ctx.reply(call, Message::new(cdev::REPLY).with_param(0, status::EIO));
                    }
                }
            }
            cdev::BURN_FINALIZE => {
                let _ = ctx.devio_write(self.dev, scsi_regs::CMD, scsi_cmd::FINALIZE);
                let st = if self.device_status(ctx) == scsi_status::COMPLETE {
                    status::OK
                } else {
                    status::EIO
                };
                let _ = ctx.reply(call, Message::new(cdev::REPLY).with_param(0, st));
            }
            _ => {
                let _ = ctx.reply(
                    call,
                    Message::new(cdev::REPLY).with_param(0, status::EINVAL),
                );
            }
        }
    }

    fn irq(&mut self, ctx: &mut Ctx<'_>) {
        let Some(call) = self.pending.take() else {
            return;
        };
        let st = match self.device_status(ctx) {
            scsi_status::BURNING | scsi_status::COMPLETE => status::OK,
            _ => status::EIO,
        };
        let _ = ctx.reply(call, Message::new(cdev::REPLY).with_param(0, st));
    }
}

/// Keyboard/serial input driver (the §6.3 *input* case).
///
/// The driver drains the UART's tiny hardware FIFO into its own line
/// buffer on every interrupt, and serves [`cdev::READ`] requests from that
/// buffer. The buffer is ordinary process state: when the driver crashes,
/// **every byte it had drained but not yet delivered is lost** — "input
/// might be lost because it can only be read from the controller once."
pub struct KeyboardDriver {
    dev: DeviceId,
    irq: IrqLine,
    /// Drained-but-undelivered input; dies with the driver.
    line_buf: Vec<u8>,
    routine: GuardedRoutine,
    fault_port: FaultPort,
}

impl KeyboardDriver {
    /// Creates the keyboard driver.
    pub fn new(dev: DeviceId, irq: IrqLine, fault_port: FaultPort) -> Self {
        KeyboardDriver {
            dev,
            irq,
            line_buf: Vec::new(),
            routine: GuardedRoutine::new(&routines::with_cold_section(routines::char_write(), 30)),
            fault_port,
        }
    }
}

impl DriverLogic for KeyboardDriver {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.fault_port
            .publish(ctx.self_name(), self.routine.live());
        ctx.irq_enable(self.irq)
            .expect("driver privilege grants its IRQ");
        ctx.trace(TraceLevel::Info, "keyboard driver ready".to_string());
    }

    fn request(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: &Message) {
        match msg.mtype {
            cdev::OPEN => {
                let _ = ctx.reply(call, Message::new(cdev::REPLY).with_param(0, status::OK));
            }
            cdev::READ => {
                let want = (msg.param(0) as usize).min(4096);
                let n = want.min(self.line_buf.len());
                if n > 0 {
                    // The per-byte processing loop runs on the fault VM so
                    // the §7.2 campaign can target input drivers too.
                    let data = self.line_buf[..n].to_vec();
                    let ok = self.routine.run(ctx, n + 16, |vm| {
                        vm.mem[0..n].copy_from_slice(&data);
                        vm.regs[routines::reg::A0 as usize] = n as u32;
                    });
                    if ok.is_none() {
                        return; // dying; buffered input dies with us
                    }
                }
                let data: Vec<u8> = self.line_buf.drain(..n).collect();
                let _ = ctx.reply(
                    call,
                    Message::new(cdev::REPLY)
                        .with_param(0, status::OK)
                        .with_param(1, n as u64)
                        .with_data(data),
                );
            }
            _ => {
                let _ = ctx.reply(
                    call,
                    Message::new(cdev::REPLY).with_param(0, status::EINVAL),
                );
            }
        }
    }

    fn irq(&mut self, ctx: &mut Ctx<'_>) {
        // Drain the hardware FIFO completely: it is tiny, and anything
        // left there risks an overrun on the next arrival.
        loop {
            let avail = ctx.devio_read(self.dev, uart_regs::AVAILABLE).unwrap_or(0) as usize;
            if avail == 0 {
                break;
            }
            match ctx.devio_read_block(self.dev, uart_regs::DATA, avail) {
                Ok(bytes) => self.line_buf.extend_from_slice(&bytes),
                Err(_) => break,
            }
        }
    }
}
