//! Chaos interposition on the IPC fabric.
//!
//! The kernel exposes a single hook point through which *every* scheduled
//! IPC delivery (send, sendrec request, reply, notify) passes. An installed
//! [`ChaosInterposer`] sees each delivery as an [`IpcEnvelope`] and returns a
//! [`ChaosVerdict`] telling the kernel what to do with it: deliver normally,
//! drop it on the floor, delay it, duplicate it, flip a bit in it, or hold
//! it until a wall-clock point (endpoint stall). A second hook observes
//! process creation so a plan can kill a fresh incarnation *during* an
//! ongoing recovery (the ReHype scenario: the recovery machinery itself must
//! survive failures).
//!
//! The kernel stays policy-free: concrete plans (probabilities, targets,
//! stall windows, intensity scaling) live in `phoenix-fault::chaos`. All
//! randomness must come from the [`SimRng`] handed to the hooks, so a chaos
//! run is a pure function of the seed and the event sequence — two runs with
//! the same seed produce byte-identical traces.

use phoenix_simcore::rng::SimRng;
use phoenix_simcore::time::{SimDuration, SimTime};

use crate::types::Endpoint;

/// The IPC call class of a delivery, for per-class targeting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpcClass {
    /// One-way message (`send`).
    Send,
    /// Request half of a rendezvous (`sendrec`).
    Request,
    /// Reply half of a rendezvous.
    Reply,
    /// Payload-free notification (`notify`), including heartbeat pings.
    Notify,
}

impl IpcClass {
    /// All classes, for iteration in plans and reports.
    pub const ALL: [IpcClass; 4] = [
        IpcClass::Send,
        IpcClass::Request,
        IpcClass::Reply,
        IpcClass::Notify,
    ];
}

/// Everything an interposer may inspect about one scheduled delivery.
#[derive(Debug)]
pub struct IpcEnvelope<'a> {
    /// Sending endpoint.
    pub from: Endpoint,
    /// Destination endpoint.
    pub to: Endpoint,
    /// Stable name of the sender (e.g. `"rs"`, `"eth.rtl8139"`).
    pub from_name: &'a str,
    /// Stable name of the destination.
    pub to_name: &'a str,
    /// Call class of the delivery.
    pub class: IpcClass,
}

/// What the kernel should do with one delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosVerdict {
    /// Deliver normally after the configured IPC latency.
    Deliver,
    /// Silently discard. A dropped request leaves the rendezvous open —
    /// the caller waits until the callee dies or its own timeout fires,
    /// exactly like a lost message on real hardware.
    Drop,
    /// Deliver after the IPC latency plus this extra delay. With FIFO
    /// tie-breaking in the event queue, delaying one message past its
    /// successors *is* reordering.
    Delay(SimDuration),
    /// Deliver normally and deliver a second copy after the extra delay.
    Duplicate {
        /// Additional delay of the duplicate relative to the original.
        extra_delay: SimDuration,
    },
    /// Flip one random payload bit, then deliver normally. Deliveries with
    /// no payload (notifications) degrade to `Deliver`.
    Corrupt,
    /// Park the delivery until the given absolute time (endpoint stall —
    /// heartbeats pile up undelivered and the watchdog sees misses).
    HoldUntil(SimTime),
}

/// A chaos policy installed into the kernel.
///
/// Implementations must be deterministic: any randomness has to be drawn
/// from the `rng` argument (which the kernel forks off the run seed), never
/// from ambient sources.
pub trait ChaosInterposer {
    /// Judges one scheduled IPC delivery.
    fn on_ipc(&mut self, now: SimTime, env: &IpcEnvelope<'_>, rng: &mut SimRng) -> ChaosVerdict;

    /// Observes a process creation. Returning `Some(delay)` schedules a
    /// SIGKILL for the fresh incarnation `delay` after its spawn — the
    /// crash-during-recovery scenario when the spawn *is* a recovery.
    fn on_spawn(
        &mut self,
        _now: SimTime,
        _name: &str,
        _ep: Endpoint,
        _rng: &mut SimRng,
    ) -> Option<SimDuration> {
        None
    }
}
