//! Workload-level robustness: concurrent file-server clients, connect
//! across a driver outage, and recovery accounting sanity.

use std::cell::RefCell;
use std::rc::Rc;

use phoenix::apps::{Dd, DdStatus, Wget, WgetStatus};
use phoenix::experiments::{fig8_expected_sha1, fig8_files};
use phoenix::os::{names, NicKind, Os};
use phoenix_servers::netproto::stream_md5;
use phoenix_simcore::time::SimDuration;

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

#[test]
fn two_concurrent_readers_both_get_correct_data_across_a_kill() {
    // MFS serializes client requests; two dd instances interleave reads
    // while the driver is killed once. Both checksums must come out right.
    let disk_seed = 31;
    let file_size = 2_000_000u64;
    let sectors = file_size / 512 + 1024;
    let mut os = Os::builder()
        .seed(30)
        .with_disk(sectors, disk_seed, fig8_files(file_size))
        .boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let st_a = Rc::new(RefCell::new(DdStatus::default()));
    let st_b = Rc::new(RefCell::new(DdStatus::default()));
    os.spawn_app(
        "dd-a",
        Box::new(Dd::new(vfs, "bigfile", 64 * 1024, st_a.clone())),
    );
    os.spawn_app(
        "dd-b",
        Box::new(Dd::new(vfs, "bigfile", 32 * 1024, st_b.clone())),
    );
    os.run_for(ms(100));
    os.kill_by_user(names::BLK_SATA);
    let mut guard = 0;
    while (!st_a.borrow().done || !st_b.borrow().done) && guard < 600 {
        os.run_for(ms(100));
        guard += 1;
    }
    let expected = fig8_expected_sha1(sectors, disk_seed, file_size);
    for (name, st) in [("a", st_a), ("b", st_b)] {
        let st = st.borrow();
        assert!(st.done, "reader {name} finished");
        assert_eq!(st.errors, 0, "reader {name} saw no errors");
        assert_eq!(
            st.sha1.as_deref(),
            Some(expected.as_str()),
            "reader {name} checksum"
        );
    }
}

#[test]
fn connect_succeeds_even_when_driver_dies_during_handshake() {
    // Kill the driver immediately after the app starts connecting: the
    // SYN (or SYN-ACK) is lost, INET's handshake retransmit covers it
    // once the restarted driver is reintegrated.
    let mut os = Os::builder().seed(33).with_network(NicKind::Rtl8139).boot();
    let inet = os.endpoint(names::INET).unwrap();
    let status = Rc::new(RefCell::new(WgetStatus::default()));
    let size = 200_000u64;
    os.spawn_app("wget", Box::new(Wget::new(inet, size, 3, status.clone())));
    // Kill before the handshake can complete (IPC latency is ~µs but the
    // wire adds 200µs each way; kill at t+50µs lands mid-handshake).
    os.run_for(SimDuration::from_micros(50));
    os.kill_by_user(names::ETH_RTL8139);
    let mut guard = 0;
    while !status.borrow().done && guard < 300 {
        os.run_for(ms(100));
        guard += 1;
    }
    let st = status.borrow();
    assert!(st.done, "download completes despite handshake-time kill");
    assert_eq!(st.md5.as_deref(), Some(stream_md5(3, size).as_str()));
    assert!(os.metrics().counter("inet.syn_retransmits") >= 1 || st.bytes == size);
}

#[test]
fn recovery_time_histogram_tracks_every_recovery() {
    let mut os = Os::builder().seed(34).with_network(NicKind::Rtl8139).boot();
    for _ in 0..5 {
        os.kill_by_user(names::ETH_RTL8139);
        os.run_for(ms(400));
    }
    let h = os
        .metrics()
        .histogram("rs.recovery_time")
        .expect("histogram exists");
    assert_eq!(h.count(), 5);
    // Direct restart: each recovery is the exec latency plus IPC noise.
    assert!(h.mean().unwrap() < 0.05, "mean {:?}", h.mean());
    assert!(h.min().unwrap() >= 0.01, "at least the exec latency");
}

#[test]
fn downloads_of_every_small_size_complete_intact() {
    // Edge sizes around segment boundaries: empty-ish, one byte, exactly
    // one MSS, one MSS ± 1, several segments.
    for &size in &[1u64, 1459, 1460, 1461, 4096, 100_000] {
        let mut os = Os::builder()
            .seed(35 ^ size)
            .with_network(NicKind::Rtl8139)
            .boot();
        let inet = os.endpoint(names::INET).unwrap();
        let status = Rc::new(RefCell::new(WgetStatus::default()));
        os.spawn_app(
            "wget",
            Box::new(Wget::new(inet, size, size, status.clone())),
        );
        let mut guard = 0;
        while !status.borrow().done && guard < 100 {
            os.run_for(ms(100));
            guard += 1;
        }
        let st = status.borrow();
        assert!(st.done, "size {size} completes");
        assert_eq!(st.bytes, size, "size {size} byte count");
        assert_eq!(
            st.md5.as_deref(),
            Some(stream_md5(size, size).as_str()),
            "size {size} digest"
        );
    }
}

#[test]
fn fs_read_edge_cases() {
    // Unaligned offsets, cross-sector reads, reads past EOF.
    use phoenix_drivers::proto::status;
    use phoenix_kernel::process::{ProcEvent, Process};
    use phoenix_kernel::system::Ctx;
    use phoenix_kernel::types::{Endpoint, Message};
    use phoenix_servers::proto::fs;

    let disk_seed = 36;
    let file_size = 10_000u64; // not sector-aligned
    let sectors = 1024;
    let mut os = Os::builder()
        .seed(36)
        .with_disk(sectors, disk_seed, fig8_files(file_size))
        .boot();
    let vfs = os.endpoint(names::VFS).unwrap();

    struct EdgeReader {
        vfs: Endpoint,
        ino: Option<u64>,
        size: u64,
        step: usize,
        results: Rc<RefCell<Vec<(u64, usize)>>>, // (status, bytes)
    }
    impl Process for EdgeReader {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
            match event {
                ProcEvent::Start => {
                    let _ = ctx.sendrec(
                        self.vfs,
                        Message::new(fs::OPEN).with_data(b"bigfile".to_vec()),
                    );
                }
                ProcEvent::Reply {
                    result: Ok(reply), ..
                } => {
                    if self.ino.is_none() {
                        assert_eq!(reply.param(0), status::OK);
                        self.ino = Some(reply.param(1));
                        self.size = reply.param(2);
                    } else {
                        self.results
                            .borrow_mut()
                            .push((reply.param(0), reply.data.len()));
                        self.step += 1;
                    }
                    let ino = self.ino.unwrap();
                    // (offset, len) probes, in order.
                    let probes = [
                        (1u64, 100u64),        // unaligned start
                        (500, 24),             // crosses sector boundary
                        (self.size - 10, 100), // clamped at EOF
                        (self.size + 5, 10),   // entirely past EOF
                    ];
                    if self.step < probes.len() {
                        let (off, len) = probes[self.step];
                        let _ = ctx.sendrec(
                            self.vfs,
                            Message::new(fs::READ)
                                .with_param(0, ino)
                                .with_param(1, off)
                                .with_param(2, len),
                        );
                    }
                }
                _ => {}
            }
        }
    }
    let results = Rc::new(RefCell::new(Vec::new()));
    os.spawn_app(
        "edge",
        Box::new(EdgeReader {
            vfs,
            ino: None,
            size: 0,
            step: 0,
            results: results.clone(),
        }),
    );
    os.run_for(SimDuration::from_secs(2));
    let r = results.borrow();
    assert_eq!(r.len(), 4, "all probes answered: {r:?}");
    assert_eq!(r[0], (0, 100), "unaligned read");
    assert_eq!(r[1], (0, 24), "cross-sector read");
    assert_eq!(r[2], (0, 10), "EOF-clamped read");
    assert_eq!(r[3], (0, 0), "read past EOF returns zero bytes");
}
