//! End-to-end recovery tests: the paper's §6 recovery schemes and §5
//! detection inputs, exercised through the full OS.

use std::cell::RefCell;
use std::rc::Rc;

use phoenix::apps::{
    CdBurn, CdBurnStatus, Dd, DdStatus, Lpd, LpdStatus, Mp3Player, Mp3Status, UdpPing, UdpStatus,
    Wget, WgetStatus,
};
use phoenix::os::{hwmap, names, NicKind, Os};
use phoenix_hw::chardev::ScsiCdBurner;
use phoenix_hw::rtl8139::Rtl8139;
use phoenix_hw::AudioDac;
use phoenix_servers::fsfmt::{FileContent, FileSpec};
use phoenix_servers::netproto::stream_md5;
use phoenix_simcore::time::SimDuration;

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

#[test]
fn boot_brings_up_all_services() {
    let os = Os::builder()
        .seed(1)
        .with_network(NicKind::Rtl8139)
        .with_disk(4096, 5, vec![])
        .with_chardevs()
        .boot();
    for name in [
        names::INET,
        names::VFS,
        names::MFS,
        names::ETH_RTL8139,
        names::BLK_SATA,
        names::CHR_PRINTER,
        names::CHR_AUDIO,
        names::CHR_SCSI,
    ] {
        assert!(os.is_up(name), "{name} should be up after boot");
    }
    assert!(os.metrics().counter("rs.recoveries") == 0);
    let _ = os.trace();
}

#[test]
fn network_driver_recovery_is_transparent_to_wget() {
    // §6.1 / Fig. 4: kill the Ethernet driver mid-download; wget still
    // completes with an intact MD5.
    let seed = 42;
    let size = 12_000_000u64; // ~1.1s at the 11 MB/s uplink
    let content_seed = 77;
    let mut os = Os::builder()
        .seed(seed)
        .with_network(NicKind::Rtl8139)
        .boot();
    let inet = os.endpoint(names::INET).unwrap();
    let status = Rc::new(RefCell::new(WgetStatus::default()));
    os.spawn_app(
        "wget",
        Box::new(Wget::new(inet, size, content_seed, status.clone())),
    );
    os.run_for(ms(150));
    assert!(status.borrow().bytes > 0, "transfer started");
    // Two kills early in the transfer.
    assert!(os.kill_by_user(names::ETH_RTL8139));
    os.run_for(ms(400));
    assert!(os.kill_by_user(names::ETH_RTL8139));
    let mut guard = 0;
    while !status.borrow().done && guard < 600 {
        os.run_for(ms(100));
        guard += 1;
    }
    let st = status.borrow();
    assert!(st.done, "download must complete despite two driver kills");
    assert_eq!(st.bytes, size);
    assert_eq!(
        st.md5.as_deref(),
        Some(stream_md5(content_seed, size).as_str()),
        "no data corruption (the paper's md5sum check)"
    );
    assert_eq!(os.metrics().counter("rs.recoveries"), 2);
    assert_eq!(os.metrics().counter("inet.driver_reintegrations"), 2);
    assert!(
        os.metrics().counter("rs.defect.killed") == 2,
        "kill -9 is defect class 3"
    );
}

#[test]
fn block_driver_recovery_is_transparent_to_dd() {
    // §6.2 / Fig. 5: kill the SATA driver mid-read; dd completes with the
    // same SHA-1 and zero application-visible errors.
    let seed = 9;
    let disk_seed = 1234;
    let file_size = 4_000_000u64;
    let sectors = file_size / 512 + 1024;
    let files = vec![FileSpec {
        name: "bigfile".to_string(),
        content: FileContent::Synthetic { size: file_size },
    }];
    let mut os = Os::builder()
        .seed(seed)
        .with_disk(sectors, disk_seed, files.clone())
        .boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let status = Rc::new(RefCell::new(DdStatus::default()));
    os.spawn_app(
        "dd",
        Box::new(Dd::new(vfs, "bigfile", 64 * 1024, status.clone())),
    );
    os.run_for(ms(100));
    assert!(os.kill_by_user(names::BLK_SATA));
    os.run_for(ms(900));
    assert!(os.kill_by_user(names::BLK_SATA));
    let mut guard = 0;
    while !status.borrow().done && guard < 600 {
        os.run_for(ms(100));
        guard += 1;
    }
    let st = status.borrow();
    assert!(
        st.done,
        "dd must complete; bytes={} errors={}",
        st.bytes, st.errors
    );
    assert_eq!(st.errors, 0, "block recovery is transparent");
    let expected = phoenix::experiments::fig8_expected_sha1(sectors, disk_seed, file_size);
    assert_eq!(
        st.sha1.as_deref(),
        Some(expected.as_str()),
        "sha1sum must match"
    );
    assert!(
        os.metrics().counter("mfs.pending_aborts") >= 1,
        "a request was marked pending"
    );
    assert!(
        os.metrics().counter("mfs.reissues") >= 1,
        "pending I/O was reissued"
    );
    // Trace-order property (§5.3): the new endpoint is published before
    // the file server reissues pending I/O.
    let t = os.trace();
    let pub_idx = t.find("publish blk.sata").expect("publish traced");
    let reissue = t.find_from(pub_idx, "reissue pending io");
    assert!(reissue.is_some(), "reissue follows a publish");
}

#[test]
fn printer_recovery_requires_recovery_aware_app() {
    // §6.3: the printer driver dies mid-job; lpd reissues the whole job
    // (duplicates possible), the user never hears about it.
    let mut os = Os::builder().seed(3).with_chardevs().boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let status = Rc::new(RefCell::new(LpdStatus::default()));
    let job = vec![b'x'; 96 * 1024];
    os.spawn_app("lpd", Box::new(Lpd::new(vfs, job.clone(), status.clone())));
    os.run_for(ms(400));
    assert!(os.kill_by_user(names::CHR_PRINTER));
    let mut guard = 0;
    while !status.borrow().done && guard < 600 {
        os.run_for(ms(100));
        guard += 1;
    }
    let st = status.borrow();
    assert!(st.done, "job finishes after app-level recovery");
    assert!(st.job_restarts >= 1, "the job had to be reissued");
    assert_eq!(st.fatal, 0);
    assert!(
        st.accepted >= job.len() as u64,
        "at least one full job accepted; duplicates allowed ({} >= {})",
        st.accepted,
        job.len()
    );
}

#[test]
fn audio_recovery_causes_hiccup_but_playback_continues() {
    // The generic Fig. 2 policy backs off 1s before the restart, so the
    // outage is long enough to hear.
    use phoenix_servers::policy::PolicyScript;
    let mut os = Os::builder()
        .seed(4)
        .with_chardevs()
        .service_policy(names::CHR_AUDIO, Some(PolicyScript::generic()), vec![])
        .boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let status = Rc::new(RefCell::new(Mp3Status::default()));
    // 4 KB blocks at 176,400 B/s play for ~23.2 ms; feeding every 23 ms
    // keeps at most one block of slack, so an outage is audible.
    os.spawn_app(
        "mp3",
        Box::new(Mp3Player::new(vfs, 200, 4096, ms(23), status.clone())),
    );
    os.run_for(ms(1000));
    assert!(os.kill_by_user(names::CHR_AUDIO));
    let mut guard = 0;
    while !status.borrow().done && guard < 200 {
        os.run_for(ms(100));
        guard += 1;
    }
    let st = status.borrow();
    assert!(st.done, "playback finishes");
    assert!(st.blocks_dropped >= 1, "the outage cost at least one block");
    assert!(st.blocks_played >= 150, "most blocks played");
    let dac: &mut AudioDac = os.device_mut(hwmap::AUDIO).unwrap();
    assert!(dac.underruns() >= 1, "the hiccup is audible at the device");
}

#[test]
fn cd_burn_failure_is_reported_to_user() {
    // §6.3: "continuing the CD or DVD burn process if the SCSI driver
    // fails will most certainly produce a corrupted disc, so the error
    // must be reported to the user."
    let mut os = Os::builder().seed(5).with_chardevs().boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let status = Rc::new(RefCell::new(CdBurnStatus::default()));
    os.spawn_app(
        "cdburn",
        Box::new(CdBurn::new(vfs, 5000, 4096, status.clone())),
    );
    os.run_for(ms(300));
    assert!(status.borrow().chunks_written > 0, "burn underway");
    assert!(os.kill_by_user(names::CHR_SCSI));
    let mut guard = 0;
    while guard < 200 {
        let st = status.borrow();
        if st.reported_to_user || st.completed {
            break;
        }
        drop(st);
        os.run_for(ms(100));
        guard += 1;
    }
    {
        let st = status.borrow();
        assert!(st.reported_to_user, "user must be informed");
        assert!(!st.completed);
    }
    // Let the device's feed deadline expire: the laser runs off the end.
    os.run_for(SimDuration::from_secs(1));
    let cd: &mut ScsiCdBurner = os.device_mut(hwmap::SCSI).unwrap();
    assert_eq!(cd.discs_ruined(), 1, "the disc is physically ruined");
}

#[test]
fn cd_burn_completes_without_failures() {
    let mut os = Os::builder().seed(6).with_chardevs().boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let status = Rc::new(RefCell::new(CdBurnStatus::default()));
    os.spawn_app(
        "cdburn",
        Box::new(CdBurn::new(vfs, 200, 4096, status.clone())),
    );
    let mut guard = 0;
    while !status.borrow().completed && guard < 200 {
        os.run_for(ms(100));
        guard += 1;
    }
    assert!(status.borrow().completed);
    let cd: &mut ScsiCdBurner = os.device_mut(hwmap::SCSI).unwrap();
    assert_eq!(cd.discs_completed(), 1);
    assert_eq!(cd.discs_ruined(), 0);
}

#[test]
fn udp_loss_is_recovered_at_application_level() {
    // Fig. 4's "UDP recovery" arrow: datagrams lost during the outage are
    // resent by the application itself.
    let mut os = Os::builder().seed(7).with_network(NicKind::Rtl8139).boot();
    let inet = os.endpoint(names::INET).unwrap();
    let status = Rc::new(RefCell::new(UdpStatus::default()));
    os.spawn_app(
        "udp",
        Box::new(UdpPing::new(inet, 400, ms(5), status.clone())),
    );
    os.run_for(ms(500));
    assert!(os.kill_by_user(names::ETH_RTL8139));
    let mut guard = 0;
    while !status.borrow().done && guard < 600 {
        os.run_for(ms(100));
        guard += 1;
    }
    let st = status.borrow();
    assert!(st.done, "all datagrams eventually echoed");
    assert_eq!(st.echoed, 400);
    assert!(
        st.resent >= 1,
        "the outage forced application-level resends"
    );
}

#[test]
fn heartbeat_detects_stuck_driver() {
    // §5.1 input 4: a driver stuck in an infinite loop answers no
    // heartbeats; RS kills and restarts it.
    let mut os = Os::builder()
        .seed(8)
        .with_network(NicKind::Rtl8139)
        .heartbeat(ms(250), 2)
        .boot();
    let inet = os.endpoint(names::INET).unwrap();
    let status = Rc::new(RefCell::new(UdpStatus::default()));
    os.spawn_app(
        "udp",
        Box::new(UdpPing::new(inet, 100_000, ms(5), status.clone())),
    );
    os.run_for(ms(100));
    let old = os.endpoint(names::ETH_RTL8139).unwrap();
    assert!(os.wedge_driver_in_loop(names::ETH_RTL8139));
    // The next datagram drives the driver into the loop; heartbeats then
    // go unanswered until RS kills it.
    os.run_for(SimDuration::from_secs(5));
    let new = os.endpoint(names::ETH_RTL8139).unwrap();
    assert_ne!(old, new, "driver was replaced");
    assert_eq!(os.metrics().counter("rs.defect.heartbeat"), 1);
    assert!(os.trace().find("missed").is_some());
}

#[test]
fn complaint_detects_unresponsive_driver_without_heartbeats() {
    // §5.1 input 5: with heartbeats off, only the file server's response
    // deadline catches a stuck disk driver; it complains to RS, which
    // replaces the driver, and the read still completes.
    let disk_seed = 11;
    let file_size = 1_000_000u64;
    let sectors = file_size / 512 + 1024;
    let mut os = Os::builder()
        .seed(10)
        .with_disk(
            sectors,
            disk_seed,
            phoenix::experiments::fig8_files(file_size),
        )
        .no_heartbeat()
        .boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let status = Rc::new(RefCell::new(DdStatus::default()));
    let old = os.endpoint(names::BLK_SATA).unwrap();
    // Wedge the driver *before* dd's first request reaches it.
    assert!(os.wedge_driver_in_loop(names::BLK_SATA));
    os.spawn_app(
        "dd",
        Box::new(Dd::new(vfs, "bigfile", 64 * 1024, status.clone())),
    );
    // MFS's first request hangs the driver; the 5s deadline passes; MFS
    // complains; RS replaces the driver; the request is reissued.
    let mut guard = 0;
    while !status.borrow().done && guard < 300 {
        os.run_for(ms(100));
        guard += 1;
    }
    let st = status.borrow();
    assert!(st.done, "read completes after complaint-driven recovery");
    assert_eq!(st.errors, 0);
    assert!(os.metrics().counter("mfs.complaints") >= 1);
    assert_eq!(os.metrics().counter("rs.defect.complaint"), 1);
    assert_ne!(os.endpoint(names::BLK_SATA), Some(old));
}

#[test]
fn dynamic_update_replaces_driver_without_backoff() {
    // §5.1 input 6 / §6: a dynamic update SIGTERMs the driver and starts
    // the newest registered version — even while I/O could be in flight.
    use phoenix_drivers::libdriver::{Driver, FaultPort};
    use phoenix_drivers::Rtl8139Driver;
    let mut os = Os::builder().seed(12).with_network(NicKind::Rtl8139).boot();
    assert_eq!(os.running_version(names::ETH_RTL8139), Some(1));
    let fp = FaultPort::new();
    os.register_update(
        names::ETH_RTL8139,
        Box::new(move || {
            Box::new(Driver::new(Rtl8139Driver::new(
                hwmap::NIC,
                hwmap::NIC_IRQ,
                fp.clone(),
            )))
        }),
    )
    .unwrap();
    os.service_update(names::ETH_RTL8139);
    os.run_for(SimDuration::from_secs(2));
    assert_eq!(
        os.running_version(names::ETH_RTL8139),
        Some(2),
        "new version running"
    );
    assert_eq!(os.metrics().counter("rs.defect.update"), 1);
    // Updates do not count as failures, so a subsequent real failure gets
    // failure count 1 (no accumulated backoff).
    let old = os.endpoint(names::ETH_RTL8139).unwrap();
    os.kill_by_user(names::ETH_RTL8139);
    os.run_for(SimDuration::from_secs(1));
    assert_ne!(os.endpoint(names::ETH_RTL8139), Some(old));
}

#[test]
fn user_restart_command_works() {
    // §5.1 input 3 via the service utility rather than a raw kill.
    let mut os = Os::builder().seed(13).with_network(NicKind::Rtl8139).boot();
    let old = os.endpoint(names::ETH_RTL8139).unwrap();
    os.service_restart(names::ETH_RTL8139);
    os.run_for(SimDuration::from_secs(1));
    let new = os.endpoint(names::ETH_RTL8139).unwrap();
    assert_ne!(old, new);
    assert_eq!(os.metrics().counter("rs.defect.killed"), 1);
}

#[test]
fn wedged_card_defeats_recovery_until_hard_reset() {
    // §7.2's real-hardware tail: the card is confused; restarted drivers
    // panic at init; only a BIOS-level reset revives the system.
    let mut os = Os::builder().seed(14).with_network(NicKind::Rtl8139).boot();
    {
        let nic: &mut Rtl8139 = os.device_mut(hwmap::NIC).unwrap();
        nic.force_wedge();
    }
    let old = os.endpoint(names::ETH_RTL8139).unwrap();
    os.kill_by_user(names::ETH_RTL8139);
    os.run_for(SimDuration::from_secs(5));
    // Every restart panics during init ("card stuck in reset"), until the
    // crash loop blows the restart budget and the storm ladder gives up
    // instead of flapping forever.
    assert!(
        os.metrics().counter("rs.defect.exit") >= 2,
        "restart attempts keep dying"
    );
    assert!(os.trace().find("stuck in reset").is_some());
    assert!(
        os.metrics().counter("rs.gave_up") >= 1,
        "storm ladder bounds the crash loop"
    );
    // Out-of-band BIOS reset + a user restart request (§5.1 input 3)
    // fixes it: the manual override clears the give-up state.
    os.hard_reset_device(hwmap::NIC);
    os.service_restart(names::ETH_RTL8139);
    os.run_for(SimDuration::from_secs(8));
    let new = os.endpoint(names::ETH_RTL8139);
    assert!(
        new.is_some() && new != Some(old),
        "recovered after hard reset: {new:?}"
    );
}

#[test]
fn ramdisk_contents_survive_driver_restart() {
    // §6.2 footnote 1: the RAM disk region is physical memory; a driver
    // restart does not lose it.
    let mut os = Os::builder().seed(15).with_ramdisk(128).boot();
    assert!(os.is_up(names::BLK_RAM));
    let region = os.ramdisk_region().unwrap();
    region.borrow_mut()[0..4].copy_from_slice(b"KEEP");
    let old = os.endpoint(names::BLK_RAM).unwrap();
    os.kill_by_user(names::BLK_RAM);
    os.run_for(SimDuration::from_secs(2));
    assert_ne!(os.endpoint(names::BLK_RAM), Some(old), "driver restarted");
    assert_eq!(&region.borrow()[0..4], b"KEEP", "contents preserved");
}

#[test]
fn repeated_kills_always_recover() {
    // Mini version of the §7.1 robustness claim: many kills in a row,
    // every one recovered, each incarnation fresh.
    let mut os = Os::builder().seed(16).with_network(NicKind::Rtl8139).boot();
    let mut seen = std::collections::HashSet::new();
    for i in 0..20 {
        let ep = os
            .endpoint(names::ETH_RTL8139)
            .unwrap_or_else(|| panic!("driver up, round {i}"));
        assert!(seen.insert(ep), "every incarnation has a unique endpoint");
        os.kill_by_user(names::ETH_RTL8139);
        os.run_for(ms(500));
    }
    assert_eq!(os.metrics().counter("rs.recoveries"), 20);
    assert_eq!(
        os.metrics()
            .histogram("rs.recovery_time")
            .map(|h| h.count()),
        Some(20)
    );
}

#[test]
fn exponential_backoff_policy_slows_crash_loops() {
    // §5.2 / Fig. 2 ablation: with the generic policy, restart delays grow
    // exponentially while a wedged card makes every restart fail.
    use phoenix_servers::policy::PolicyScript;
    let mut os = Os::builder()
        .seed(17)
        .with_network(NicKind::Rtl8139)
        .driver_policy(PolicyScript::generic())
        .boot();
    {
        let nic: &mut Rtl8139 = os.device_mut(hwmap::NIC).unwrap();
        nic.force_wedge();
    }
    os.kill_by_user(names::ETH_RTL8139);
    // 30 virtual seconds: with backoff 1+2+4+8+16 the crash loop fits
    // only ~6 attempts; direct restart would make hundreds.
    os.run_for(SimDuration::from_secs(30));
    let attempts = os.metrics().counter("rs.defect.exit");
    assert!(
        (2..=8).contains(&attempts),
        "backoff must bound the crash loop, got {attempts}"
    );
    assert!(os.trace().find("restarting eth.rtl8139 after").is_some());
}

#[test]
fn give_up_policy_stops_recovery_and_alerts() {
    use phoenix_servers::policy::PolicyScript;
    let policy = PolicyScript::parse(
        "if repetition > 2 then\n alert \"giving up on $component\"\n give-up\nelse\n restart\nend\n",
    )
    .unwrap();
    let mut os = Os::builder()
        .seed(18)
        .with_network(NicKind::Rtl8139)
        .service_policy(names::ETH_RTL8139, Some(policy), vec![])
        .boot();
    {
        let nic: &mut Rtl8139 = os.device_mut(hwmap::NIC).unwrap();
        nic.force_wedge();
    }
    os.kill_by_user(names::ETH_RTL8139);
    os.run_for(SimDuration::from_secs(10));
    assert!(!os.is_up(names::ETH_RTL8139), "policy gave up");
    assert_eq!(os.metrics().counter("rs.gave_up"), 1);
    assert!(os.metrics().counter("rs.alerts") >= 1);
    assert!(os.trace().find("ALERT: giving up on eth.rtl8139").is_some());
}

#[test]
fn deterministic_runs_for_same_seed() {
    let run = |seed| {
        let size = 500_000;
        let r = phoenix::experiments::fig7_network_run(size, Some(ms(300)), seed);
        (r.kills, r.elapsed, r.md5_ok, r.retransmissions)
    };
    assert_eq!(run(99), run(99), "same seed, same run");
}

#[test]
fn keyboard_input_is_lost_across_driver_crash_but_stream_resumes() {
    // §6.3's input case: "If an input stream is interrupted due to a
    // device driver crash, input might be lost because it can only be
    // read from the controller once."
    use phoenix::apps::{TtyReader, TtyStatus};
    let mut os = Os::builder().seed(21).with_chardevs().boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let status = Rc::new(RefCell::new(TtyStatus::default()));
    // A slow reader (100ms poll) lets input accumulate in the driver's
    // line buffer — the state that dies with it.
    os.spawn_app(
        "tty",
        Box::new(TtyReader::new(vfs, ms(100), status.clone())),
    );

    // Type the alphabet, one burst of 4 chars every 20ms; the driver's
    // line buffer holds drained-but-unread input.
    let typed: Vec<u8> = (b'a'..=b'z').collect();
    for (i, chunk) in typed.chunks(4).enumerate() {
        os.type_input(ms(20 * (i as u64 + 1)), chunk.to_vec());
    }
    // Kill the driver while it holds bursts 1-2 undelivered.
    os.run_for(ms(50));
    assert!(os.kill_by_user(names::CHR_KBD));
    os.run_for(ms(400));

    let st = status.borrow();
    // The stream resumed: characters typed well after the crash arrived.
    assert!(
        st.received.contains(&b'z'),
        "post-recovery input flows again: {:?}",
        String::from_utf8_lossy(&st.received)
    );
    // Received is a strictly ordered subsequence of what was typed...
    let mut it = typed.iter();
    for b in st.received.iter() {
        assert!(
            it.any(|t| t == b),
            "received stream must be an ordered subsequence of the typed stream"
        );
    }
    // ...but not all of it: something was irrecoverably lost.
    assert!(
        st.received.len() < typed.len(),
        "input held by the dead driver must be lost ({} of {} arrived)",
        st.received.len(),
        typed.len()
    );
    // (A 100ms poller may never even observe the ~10ms outage — recovery
    // is that fast; the *loss* is what cannot be hidden.)
    assert_eq!(os.metrics().counter("rs.recoveries"), 1);
}
