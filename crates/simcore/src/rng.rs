//! Deterministic random number generation for the simulation.
//!
//! Every run of an experiment is parameterized by a single `u64` seed. All
//! components that need randomness (fault injector, workload generators,
//! device timing jitter) draw from a [`SimRng`] forked off the root seed, so
//! results are reproducible and sub-systems do not perturb each other's
//! random streams when code is added or reordered.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded random number generator with domain-forking.
///
/// # Example
///
/// ```
/// use phoenix_simcore::rng::SimRng;
///
/// let mut a = SimRng::new(42).fork("fault-injector");
/// let mut b = SimRng::new(42).fork("fault-injector");
/// assert_eq!(a.range_u64(0..100), b.range_u64(0..100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a root seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            seed,
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// The seed this generator was constructed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for a named domain.
    ///
    /// Forking is a pure function of `(seed, domain)`: the same pair always
    /// yields the same stream, regardless of how much the parent has been
    /// used.
    pub fn fork(&self, domain: &str) -> SimRng {
        // FNV-1a over the domain name mixed into the seed; cheap and stable.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in domain.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SimRng::new(self.seed.wrapping_add(h).rotate_left(17) ^ h)
    }

    /// Uniform value in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        self.inner.random_range(range)
    }

    /// Uniform `usize` in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.inner.random_range(range)
    }

    /// A random `u32` (used for bit-flip fault injection).
    pub fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    /// A random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.random_bool(p.clamp(0.0, 1.0))
    }

    /// Fills `buf` with random bytes (used to generate file contents whose
    /// checksum is verified across driver crashes).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot pick from empty slice");
        &slice[self.range_usize(0..slice.len())]
    }

    /// Exponentially distributed duration in seconds with the given mean
    /// (used for Poisson failure arrivals in stress tests).
    pub fn exp_secs(&mut self, mean_secs: f64) -> f64 {
        let u: f64 = self.inner.random_range(f64::EPSILON..1.0);
        -mean_secs * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_usage() {
        let mut parent1 = SimRng::new(9);
        let _ = parent1.next_u64(); // consume some of the parent stream
        let parent2 = SimRng::new(9);
        let mut f1 = parent1.fork("x");
        let mut f2 = parent2.fork("x");
        assert_eq!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn forks_differ_by_domain() {
        let root = SimRng::new(1);
        let mut a = root.fork("alpha");
        let mut b = root.fork("beta");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0), "clamped above 1.0");
        assert!(!r.chance(-4.0), "clamped below 0.0");
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::new(4);
        for _ in 0..1000 {
            let v = r.range_u64(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn exp_secs_positive_with_reasonable_mean() {
        let mut r = SimRng::new(5);
        let n = 10_000;
        let total: f64 = (0..n).map(|_| r.exp_secs(2.0)).sum();
        let mean = total / n as f64;
        assert!(mean > 1.8 && mean < 2.2, "sample mean {mean} too far from 2.0");
    }

    #[test]
    #[should_panic(expected = "cannot pick from empty slice")]
    fn pick_empty_panics() {
        let mut r = SimRng::new(6);
        let empty: [u8; 0] = [];
        let _ = r.pick(&empty);
    }
}
