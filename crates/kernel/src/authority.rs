//! Observed-authority recording and the least-authority audit.
//!
//! §4 of the paper loads every system process with a minimal privilege
//! table, but nothing in the original system *measures* whether those
//! tables are actually minimal. This module closes the loop: the kernel
//! records, per stable process name, which IPC destinations, kernel calls,
//! devices, and IRQ lines a component actually exercised; the audit then
//! diffs observed usage against the declared [`Privileges`] tables and
//! reports declared-but-never-exercised grants as POLA (principle of least
//! authority) violations.
//!
//! Usage is keyed by stable *name*, not endpoint, so a driver's authority
//! footprint accumulates across restarts — exactly the identity the
//! privilege tables themselves are declared under.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::privileges::{IpcFilter, KernelCall, Privileges};
use crate::types::{DeviceId, IrqLine};

/// One component's observed authority footprint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UsageRecord {
    /// Stable names of IPC destinations this component sent to.
    pub ipc_to: BTreeSet<String>,
    /// Kernel calls it issued (and passed the privilege check for).
    pub calls: BTreeSet<KernelCall>,
    /// Devices whose I/O registers it touched.
    pub devices: BTreeSet<DeviceId>,
    /// IRQ lines it registered for.
    pub irqs: BTreeSet<IrqLine>,
}

/// Observed authority for every component, keyed by stable process name.
#[derive(Clone, Debug, Default)]
pub struct AuthorityUsage {
    map: BTreeMap<String, UsageRecord>,
}

impl AuthorityUsage {
    /// Creates an empty usage table.
    pub fn new() -> Self {
        Self::default()
    }

    fn rec(&mut self, who: &str) -> &mut UsageRecord {
        self.map.entry(who.to_string()).or_default()
    }

    /// Records a successful IPC send from `from` to `to`.
    pub fn record_ipc(&mut self, from: &str, to: &str) {
        let r = self.rec(from);
        if !r.ipc_to.contains(to) {
            r.ipc_to.insert(to.to_string());
        }
    }

    /// Records a kernel call that passed the privilege check.
    pub fn record_call(&mut self, who: &str, call: KernelCall) {
        self.rec(who).calls.insert(call);
    }

    /// Records device register access that passed the privilege check.
    pub fn record_device(&mut self, who: &str, dev: DeviceId) {
        self.rec(who).devices.insert(dev);
    }

    /// Records an IRQ line registration that passed the privilege check.
    pub fn record_irq(&mut self, who: &str, irq: IrqLine) {
        self.rec(who).irqs.insert(irq);
    }

    /// The usage record of `who`, if it exercised any authority.
    pub fn get(&self, who: &str) -> Option<&UsageRecord> {
        self.map.get(who)
    }

    /// All components with recorded usage, in name order.
    pub fn components(&self) -> impl Iterator<Item = (&str, &UsageRecord)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// The kind of excess authority a [`PolaFinding`] reports.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PolaViolation {
    /// The component declares `IpcFilter::AllowAll` — a wildcard that the
    /// audit cannot prove minimal. Must be explicitly justified.
    IpcWildcard,
    /// A named IPC destination was granted but never sent to.
    IpcUnused {
        /// The unexercised destination name.
        dest: String,
    },
    /// A kernel call was granted but never issued.
    CallUnused {
        /// The unexercised call.
        call: KernelCall,
    },
    /// A device grant was never exercised.
    DeviceUnused {
        /// The unexercised device.
        device: DeviceId,
    },
    /// An IRQ line grant was never exercised.
    IrqUnused {
        /// The unexercised IRQ line.
        irq: IrqLine,
    },
}

/// One least-authority violation: `component` holds a grant it never used.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PolaFinding {
    /// Stable name of the over-provisioned component.
    pub component: String,
    /// What excess authority it holds.
    pub violation: PolaViolation,
}

impl PolaFinding {
    /// A stable machine-readable key for the grant (`ipc:*`, `ipc:pm`,
    /// `call:sys_setgrant`, `dev:3`, `irq:9`) — used by allowlists.
    pub fn grant_key(&self) -> String {
        match &self.violation {
            PolaViolation::IpcWildcard => "ipc:*".to_string(),
            PolaViolation::IpcUnused { dest } => format!("ipc:{dest}"),
            PolaViolation::CallUnused { call } => format!("call:{}", call.name()),
            PolaViolation::DeviceUnused { device } => format!("dev:{}", device.0),
            PolaViolation::IrqUnused { irq } => format!("irq:{irq}"),
        }
    }
}

impl fmt::Display for PolaFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.violation {
            PolaViolation::IpcWildcard => write!(
                f,
                "{}: declares IpcFilter::AllowAll (wildcard IPC authority)",
                self.component
            ),
            PolaViolation::IpcUnused { dest } => write!(
                f,
                "{}: may send to \"{dest}\" but never did",
                self.component
            ),
            PolaViolation::CallUnused { call } => write!(
                f,
                "{}: granted {} but never called it",
                self.component,
                call.name()
            ),
            PolaViolation::DeviceUnused { device } => write!(
                f,
                "{}: granted I/O on {device} but never touched it",
                self.component
            ),
            PolaViolation::IrqUnused { irq } => write!(
                f,
                "{}: granted IRQ line {irq} but never registered for it",
                self.component
            ),
        }
    }
}

/// Diffs declared privileges against observed usage for every component in
/// `scope`, returning all declared-but-never-exercised grants.
///
/// Components in scope but absent from `declared` are skipped (nothing to
/// audit); components that never ran produce findings for *all* their
/// grants, which is intended — a registered program that is never exercised
/// by the audit workload is a coverage gap worth surfacing.
///
/// `may_complain` is deliberately not audited: complaints only fire on
/// protocol violations by *other* components, so a clean run proves nothing
/// about whether the grant is needed.
pub fn audit(
    declared: &BTreeMap<String, Privileges>,
    usage: &AuthorityUsage,
    scope: &BTreeSet<String>,
) -> Vec<PolaFinding> {
    let empty = UsageRecord::default();
    let mut findings = Vec::new();
    for name in scope {
        let Some(privs) = declared.get(name) else {
            continue;
        };
        let used = usage.get(name).unwrap_or(&empty);
        match &privs.ipc {
            IpcFilter::AllowAll => findings.push(PolaFinding {
                component: name.clone(),
                violation: PolaViolation::IpcWildcard,
            }),
            IpcFilter::AllowNamed(dests) => {
                for dest in dests {
                    if !used.ipc_to.contains(dest) {
                        findings.push(PolaFinding {
                            component: name.clone(),
                            violation: PolaViolation::IpcUnused { dest: dest.clone() },
                        });
                    }
                }
            }
            IpcFilter::DenyAll => {}
        }
        for &call in &privs.kernel_calls {
            if !used.calls.contains(&call) {
                findings.push(PolaFinding {
                    component: name.clone(),
                    violation: PolaViolation::CallUnused { call },
                });
            }
        }
        for &device in &privs.devices {
            if !used.devices.contains(&device) {
                findings.push(PolaFinding {
                    component: name.clone(),
                    violation: PolaViolation::DeviceUnused { device },
                });
            }
        }
        for &irq in &privs.irq_lines {
            if !used.irqs.contains(&irq) {
                findings.push(PolaFinding {
                    component: name.clone(),
                    violation: PolaViolation::IrqUnused { irq },
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope_of(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unused_grants_become_findings() {
        let mut declared = BTreeMap::new();
        declared.insert(
            "drv".to_string(),
            Privileges::driver(DeviceId(3), 11).with_ipc(IpcFilter::named(["rs", "ds"])),
        );
        let mut usage = AuthorityUsage::new();
        usage.record_ipc("drv", "rs");
        usage.record_call("drv", KernelCall::Devio);
        usage.record_device("drv", DeviceId(3));
        usage.record_irq("drv", 11);

        let findings = audit(&declared, &usage, &scope_of(&["drv"]));
        let keys: Vec<String> = findings.iter().map(|f| f.grant_key()).collect();
        assert!(keys.contains(&"ipc:ds".to_string()), "unused ipc dest");
        assert!(
            keys.contains(&"call:sys_iommu".to_string()),
            "unused kernel call"
        );
        assert!(!keys.contains(&"ipc:rs".to_string()), "used grants pass");
        assert!(!keys.contains(&"dev:3".to_string()));
        assert!(!keys.contains(&"irq:11".to_string()));
    }

    #[test]
    fn wildcard_ipc_is_always_flagged() {
        let mut declared = BTreeMap::new();
        declared.insert("srv".to_string(), Privileges::server().with_calls([]));
        let mut usage = AuthorityUsage::new();
        usage.record_ipc("srv", "a");
        usage.record_ipc("srv", "b");
        let findings = audit(&declared, &usage, &scope_of(&["srv"]));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].grant_key(), "ipc:*");
    }

    #[test]
    fn exact_usage_produces_no_findings() {
        let mut declared = BTreeMap::new();
        declared.insert(
            "drv".to_string(),
            Privileges::driver(DeviceId(1), 9)
                .with_ipc(IpcFilter::named(["rs"]))
                .with_calls([KernelCall::Devio, KernelCall::IrqCtl]),
        );
        let mut usage = AuthorityUsage::new();
        usage.record_ipc("drv", "rs");
        usage.record_call("drv", KernelCall::Devio);
        usage.record_call("drv", KernelCall::IrqCtl);
        usage.record_device("drv", DeviceId(1));
        usage.record_irq("drv", 9);
        assert!(audit(&declared, &usage, &scope_of(&["drv"])).is_empty());
    }

    #[test]
    fn out_of_scope_components_are_ignored() {
        let mut declared = BTreeMap::new();
        declared.insert("app".to_string(), Privileges::user());
        let usage = AuthorityUsage::new();
        assert!(audit(&declared, &usage, &scope_of(&["drv"])).is_empty());
    }

    #[test]
    fn usage_accumulates_across_incarnations() {
        let mut usage = AuthorityUsage::new();
        usage.record_ipc("eth", "rs");
        // Restarted incarnation, same stable name.
        usage.record_ipc("eth", "inet");
        let rec = usage.get("eth").expect("recorded");
        assert_eq!(rec.ipc_to.len(), 2);
    }
}
