//! Bounded execution tracing with causal identity.
//!
//! Components emit trace events tagged with the originating component's name
//! and a severity. Tests use the ring to assert *ordering* properties of the
//! recovery procedure (e.g. "the data store published the new endpoint
//! before the file server reissued pending I/O", §5.3).
//!
//! Beyond the flat message, an event can carry structure:
//!
//! * typed key=value **fields** ([`FieldValue`]) for machine consumption —
//!   the timeline analyzer in [`crate::obs`] keys off a conventional `ev`
//!   field rather than parsing message strings;
//! * a **span** identity ([`SpanId`]) with an optional parent link, forming
//!   a causality tree within one run;
//! * a **recovery correlation token** ([`RecoveryId`]), minted by the
//!   reincarnation server when it detects a defect and threaded through the
//!   data store and every dependent server, so all events belonging to one
//!   recovery episode share an id and can be folded into per-phase timings.
//!
//! Everything here is deterministic: ids come from monotonic counters, time
//! from [`SimTime`], so two same-seed runs produce byte-identical traces.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use crate::time::SimTime;

/// Severity of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// High-volume events (every message, every DMA transfer).
    Debug,
    /// Normal operational milestones (driver started, transfer done).
    Info,
    /// Something failed but the system is handling it (driver crash).
    Warn,
    /// Unrecoverable problems (recovery itself failed).
    Error,
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceLevel::Debug => "DEBUG",
            TraceLevel::Info => "INFO",
            TraceLevel::Warn => "WARN",
            TraceLevel::Error => "ERROR",
        };
        f.write_str(s)
    }
}

/// Correlation token for one recovery episode (§5.2): minted by RS at
/// defect detection, carried through DS publish and dependent-server
/// reintegration. Every event with the same `RecoveryId` belongs to the
/// same crash→detect→repair→reintegrate chain.
///
/// Ids start at 1; 0 is reserved as the wire encoding of "none" so the
/// token can ride in a spare IPC message parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecoveryId(pub u64);

impl RecoveryId {
    /// Raw value (for packing into message parameters).
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Decodes a wire value where 0 means "no episode".
    pub const fn from_wire(raw: u64) -> Option<RecoveryId> {
        if raw == 0 {
            None
        } else {
            Some(RecoveryId(raw))
        }
    }
}

impl fmt::Display for RecoveryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identity of one span in the causality tree. Allocated from a monotonic
/// counter in the [`TraceRing`], so allocation order — and therefore every
/// id — is a pure function of the seed.
///
/// Ids start at 1; 0 is reserved as the wire encoding of "none".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Raw value (for packing into message parameters).
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Decodes a wire value where 0 means "no span".
    pub const fn from_wire(raw: u64) -> Option<SpanId> {
        if raw == 0 {
            None
        } else {
            Some(SpanId(raw))
        }
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A typed field value: structured events carry integers and strings, not
/// pre-formatted text. Durations and timestamps are recorded as `U64`
/// microseconds by convention (key suffix `_us`).
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, endpoints, microsecond durations).
    U64(u64),
    /// A string (service names, defect classes, DS keys).
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::Str(s) => f.write_str(s),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(s: &str) -> Self {
        FieldValue::Str(s.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(s: String) -> Self {
        FieldValue::Str(s)
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual time at which the event was emitted.
    pub at: SimTime,
    /// Severity.
    pub level: TraceLevel,
    /// Emitting component, e.g. `"rs"` or `"driver.rtl8139"`.
    pub component: String,
    /// Human-readable description.
    pub message: String,
    /// Typed key=value fields in author order (a `Vec` keeps iteration
    /// deterministic; the analyzer looks keys up linearly — events carry a
    /// handful of fields at most).
    pub fields: Vec<(String, FieldValue)>,
    /// Recovery episode this event belongs to, if any.
    pub recovery: Option<RecoveryId>,
    /// Span identity of this event, if any.
    pub span: Option<SpanId>,
    /// Parent span, linking this event into the causality tree.
    pub parent: Option<SpanId>,
}

impl TraceEvent {
    /// Creates a bare event with no fields or causal identity.
    pub fn new(
        at: SimTime,
        level: TraceLevel,
        component: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        TraceEvent {
            at,
            level,
            component: component.into(),
            message: message.into(),
            fields: Vec::new(),
            recovery: None,
            span: None,
            parent: None,
        }
    }

    /// Appends a typed field (builder style).
    pub fn with_field(mut self, key: &str, value: impl Into<FieldValue>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Tags the event with a recovery episode (builder style).
    pub fn in_recovery(mut self, rid: RecoveryId) -> Self {
        self.recovery = Some(rid);
        self
    }

    /// Tags the event with a recovery episode, if one is known.
    pub fn in_recovery_opt(mut self, rid: Option<RecoveryId>) -> Self {
        self.recovery = rid;
        self
    }

    /// Sets the event's span identity (builder style).
    pub fn with_span(mut self, span: SpanId) -> Self {
        self.span = Some(span);
        self
    }

    /// Links the event to a parent span (builder style).
    pub fn with_parent(mut self, parent: SpanId) -> Self {
        self.parent = Some(parent);
        self
    }

    /// Links the event to a parent span, if one is known.
    pub fn with_parent_opt(mut self, parent: Option<SpanId>) -> Self {
        self.parent = parent;
        self
    }

    /// Value of the first field named `key`, if any.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// String value of the field named `key`, if present and a string.
    pub fn field_str(&self, key: &str) -> Option<&str> {
        match self.field(key) {
            Some(FieldValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Integer value of the field named `key`, if present and an integer.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        match self.field(key) {
            Some(FieldValue::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The conventional event-kind field (`ev`), used by the timeline
    /// analyzer to recognize phase boundaries without parsing messages.
    pub fn kind(&self) -> Option<&str> {
        self.field_str("ev")
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {:>5} {}] {}",
            self.at, self.level, self.component, self.message
        )?;
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        if let Some(rid) = self.recovery {
            write!(f, " {rid}")?;
        }
        match (self.span, self.parent) {
            (Some(s), Some(p)) => write!(f, " {s}<-{p}")?,
            (Some(s), None) => write!(f, " {s}")?,
            (None, Some(p)) => write!(f, " <-{p}")?,
            (None, None) => {}
        }
        Ok(())
    }
}

/// A bounded ring buffer of trace events.
///
/// When full, the oldest events are discarded. A minimum level filters
/// high-volume debug traffic out at record time.
#[derive(Debug)]
pub struct TraceRing {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    min_level: TraceLevel,
    dropped: u64,
    /// Evictions broken down by the evicted event's `ev` kind field
    /// (events without one count under `"(untyped)"`). Under request
    /// load the ring saturates with high-volume traffic; this makes it
    /// visible *which* kinds were lost, so a digest can warn when
    /// recovery-relevant events were among the evicted.
    dropped_by_kind: BTreeMap<String, u64>,
    next_span: u64,
}

impl Default for TraceRing {
    fn default() -> Self {
        Self::new(65_536)
    }
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` events at level
    /// [`TraceLevel::Info`] and above.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be positive");
        TraceRing {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            min_level: TraceLevel::Info,
            dropped: 0,
            dropped_by_kind: BTreeMap::new(),
            next_span: 0,
        }
    }

    /// Sets the minimum recorded level.
    pub fn set_min_level(&mut self, level: TraceLevel) {
        self.min_level = level;
    }

    /// `true` if an event at `level` would be recorded. Lets hot paths
    /// skip building structured events that the filter would discard.
    pub fn enabled(&self, level: TraceLevel) -> bool {
        level >= self.min_level
    }

    /// Allocates a fresh span id from the ring's monotonic counter.
    pub fn new_span(&mut self) -> SpanId {
        self.next_span += 1;
        SpanId(self.next_span)
    }

    /// Records an event if it passes the level filter.
    pub fn emit(&mut self, at: SimTime, level: TraceLevel, component: &str, message: String) {
        self.emit_event(TraceEvent::new(at, level, component, message));
    }

    /// Records a structured event if it passes the level filter.
    pub fn emit_event(&mut self, event: TraceEvent) {
        if event.level < self.min_level {
            return;
        }
        if self.events.len() == self.capacity {
            if let Some(evicted) = self.events.pop_front() {
                let kind = evicted.kind().unwrap_or("(untyped)");
                *self.dropped_by_kind.entry(kind.to_string()).or_default() += 1;
            }
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Retained events belonging to recovery episode `rid`, oldest first,
    /// with their ring indices (for ordering assertions).
    pub fn events_for(&self, rid: RecoveryId) -> impl Iterator<Item = (usize, &TraceEvent)> {
        self.events
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.recovery == Some(rid))
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Evictions broken down by the evicted event's `ev` kind (events
    /// without one count under `"(untyped)"`), in kind order.
    pub fn dropped_by_kind(&self) -> impl Iterator<Item = (&str, u64)> {
        self.dropped_by_kind.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Index of the first retained event whose message contains `needle`,
    /// searching from `start`. Tests use this to assert event ordering.
    pub fn find_from(&self, start: usize, needle: &str) -> Option<usize> {
        self.events
            .iter()
            .enumerate()
            .skip(start)
            .find(|(_, e)| e.message.contains(needle))
            .map(|(i, _)| i)
    }

    /// Convenience: `find_from(0, needle)`.
    pub fn find(&self, needle: &str) -> Option<usize> {
        self.find_from(0, needle)
    }

    /// Renders all retained events, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Discards all retained events (the drop counter is kept).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ring: &mut TraceRing, us: u64, level: TraceLevel, msg: &str) {
        ring.emit(SimTime::from_micros(us), level, "test", msg.to_string());
    }

    #[test]
    fn records_and_renders() {
        let mut r = TraceRing::new(8);
        ev(&mut r, 1, TraceLevel::Info, "driver started");
        ev(&mut r, 2, TraceLevel::Warn, "driver crashed");
        assert_eq!(r.len(), 2);
        let s = r.render();
        assert!(s.contains("driver started"));
        assert!(s.contains("WARN"));
    }

    #[test]
    fn level_filter_drops_debug_by_default() {
        let mut r = TraceRing::new(8);
        ev(&mut r, 1, TraceLevel::Debug, "noisy");
        assert!(r.is_empty());
        assert!(!r.enabled(TraceLevel::Debug));
        r.set_min_level(TraceLevel::Debug);
        assert!(r.enabled(TraceLevel::Debug));
        ev(&mut r, 2, TraceLevel::Debug, "kept");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut r = TraceRing::new(2);
        ev(&mut r, 1, TraceLevel::Info, "a");
        ev(&mut r, 2, TraceLevel::Info, "b");
        ev(&mut r, 3, TraceLevel::Info, "c");
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
        assert!(r.find("a").is_none());
        assert!(r.find("b").is_some());
    }

    #[test]
    fn eviction_accounts_drops_per_kind() {
        let mut r = TraceRing::new(2);
        r.emit_event(
            TraceEvent::new(SimTime::from_micros(1), TraceLevel::Info, "inet", "req")
                .with_field("ev", "request"),
        );
        r.emit_event(
            TraceEvent::new(SimTime::from_micros(2), TraceLevel::Info, "rs", "defect")
                .with_field("ev", "defect"),
        );
        // Untyped filler evicts both typed events, then one of itself.
        for us in 3..6 {
            ev(&mut r, us, TraceLevel::Info, "noise");
        }
        assert_eq!(r.dropped(), 3);
        let by_kind: Vec<(&str, u64)> = r.dropped_by_kind().collect();
        assert_eq!(
            by_kind,
            vec![("(untyped)", 1), ("defect", 1), ("request", 1)],
            "each eviction is attributed to the evicted event's kind"
        );
    }

    #[test]
    fn find_from_orders_events() {
        let mut r = TraceRing::new(8);
        ev(&mut r, 1, TraceLevel::Info, "publish endpoint");
        ev(&mut r, 2, TraceLevel::Info, "reissue pending io");
        let pub_idx = r.find("publish endpoint").unwrap();
        let redo_idx = r.find_from(pub_idx, "reissue pending io").unwrap();
        assert!(redo_idx > pub_idx);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = TraceRing::new(0);
    }

    #[test]
    fn structured_fields_and_lookup() {
        let e = TraceEvent::new(SimTime::ZERO, TraceLevel::Info, "rs", "defect")
            .with_field("ev", "defect")
            .with_field("service", "eth.rtl8139")
            .with_field("failures", 3u64);
        assert_eq!(e.kind(), Some("defect"));
        assert_eq!(e.field_str("service"), Some("eth.rtl8139"));
        assert_eq!(e.field_u64("failures"), Some(3));
        assert_eq!(e.field_str("failures"), None, "type mismatch is None");
        assert_eq!(e.field("absent"), None);
    }

    #[test]
    fn display_appends_fields_and_identity() {
        let e = TraceEvent::new(SimTime::from_micros(5), TraceLevel::Warn, "rs", "defect")
            .with_field("service", "eth")
            .in_recovery(RecoveryId(3))
            .with_span(SpanId(7))
            .with_parent(SpanId(6));
        let s = e.to_string();
        assert!(s.contains("service=eth"), "{s}");
        assert!(s.contains("r3"), "{s}");
        assert!(s.contains("s7<-s6"), "{s}");
        // A bare event renders exactly as before the structured extension.
        let bare = TraceEvent::new(SimTime::from_micros(5), TraceLevel::Info, "c", "msg");
        assert_eq!(bare.to_string(), "[T+0.000005s INFO c] msg");
    }

    #[test]
    fn span_ids_are_monotonic() {
        let mut r = TraceRing::new(8);
        let a = r.new_span();
        let b = r.new_span();
        assert!(b > a);
        assert_eq!(a, SpanId(1), "ids start at 1 so 0 can mean none on wire");
    }

    #[test]
    fn wire_encoding_reserves_zero() {
        assert_eq!(RecoveryId::from_wire(0), None);
        assert_eq!(RecoveryId::from_wire(9), Some(RecoveryId(9)));
        assert_eq!(SpanId::from_wire(0), None);
        assert_eq!(SpanId::from_wire(2), Some(SpanId(2)));
        assert_eq!(RecoveryId(9).as_u64(), 9);
    }

    #[test]
    fn events_for_filters_by_recovery_id() {
        let mut r = TraceRing::new(8);
        r.emit_event(
            TraceEvent::new(SimTime::from_micros(1), TraceLevel::Info, "rs", "a")
                .in_recovery(RecoveryId(1)),
        );
        r.emit_event(TraceEvent::new(
            SimTime::from_micros(2),
            TraceLevel::Info,
            "rs",
            "b",
        ));
        r.emit_event(
            TraceEvent::new(SimTime::from_micros(3), TraceLevel::Info, "ds", "c")
                .in_recovery(RecoveryId(1)),
        );
        let hits: Vec<usize> = r.events_for(RecoveryId(1)).map(|(i, _)| i).collect();
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn level_filter_applies_to_structured_events() {
        let mut r = TraceRing::new(8);
        r.emit_event(TraceEvent::new(
            SimTime::ZERO,
            TraceLevel::Debug,
            "k",
            "ipc",
        ));
        assert!(r.is_empty());
    }
}
