//! Deterministic open-loop load generation for SLO measurement.
//!
//! The paper's evaluation (§6) drives recovery with single-client
//! workloads; a production system is judged by what *thousands* of
//! concurrent clients observe while drivers die. This module provides two
//! multiplexed load generators:
//!
//! * [`InetLoadGen`] — one process modeling 10⁴⁺ concurrent client
//!   sessions over INET: connection churn (every session is
//!   connect → request → response → close, recycling its id through
//!   INET's flat connection slab), mixed request sizes drawn from a
//!   weighted distribution, and seeded **open-loop** arrivals — each
//!   session slot's arrival clock advances from the previous *arrival*,
//!   never from a completion, so a driver outage cannot silently slow the
//!   offered load down (the classic coordinated-omission trap). Arrivals
//!   that land on a busy slot queue behind it (bounded backlog, then
//!   shed), which is exactly the head-of-line behavior the SLO fold
//!   attributes to recovery phases.
//! * [`VfsJobMix`] — a multi-client VFS/disk job mix: independent reader
//!   slots over one on-disk file, open-loop read arrivals with mixed
//!   chunk sizes.
//!
//! Both record one [`RequestRecord`] per request (arrival time, completion
//! time, payload bytes, outcome) into a harness-shared status cell; the
//! campaign joins those records against the folded recovery timeline
//! (`Timeline::record_requests_into`) to produce per-phase latency
//! percentiles, goodput and head-of-line depth.
//!
//! Determinism: all randomness comes from the process's own forked
//! [`SimRng`] stream (`ctx.rng()`), all time from virtual time, so two
//! same-seed runs produce byte-identical request logs.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use phoenix_drivers::proto::status;
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{CallId, Endpoint, Message};
use phoenix_servers::proto::{fs, sock};
use phoenix_simcore::obs::RequestRecord;
use phoenix_simcore::time::{SimDuration, SimTime};

/// Weighted request-size mix: `(payload_bytes, weight)`.
pub type SizeMix = Vec<(u64, u32)>;

/// The default mixed request sizes: mostly small API-style responses,
/// a mid-size asset tier, and an occasional bulk object.
pub fn default_size_mix() -> SizeMix {
    vec![(256, 60), (2048, 30), (16 * 1024, 9), (64 * 1024, 1)]
}

fn draw_size(rng: &mut phoenix_simcore::rng::SimRng, mix: &[(u64, u32)]) -> u64 {
    let total: u32 = mix.iter().map(|(_, w)| *w).sum();
    if total == 0 {
        return 256;
    }
    let mut roll = rng.range_u64(0..u64::from(total));
    for (size, w) in mix {
        if roll < u64::from(*w) {
            return *size;
        }
        roll -= u64::from(*w);
    }
    mix.last().map_or(256, |(s, _)| *s)
}

/// Uniform draw on `[mean/2, 3·mean/2)` — integer-only "jittered mean"
/// interarrival, open-loop friendly and float-free.
fn draw_interval(rng: &mut phoenix_simcore::rng::SimRng, mean: SimDuration) -> SimDuration {
    let mean_us = mean.as_micros().max(2);
    SimDuration::from_micros(mean_us / 2 + rng.range_u64(0..mean_us))
}

/// Tuning for [`InetLoadGen`].
#[derive(Debug, Clone)]
pub struct InetLoadConfig {
    /// Concurrent session slots the generator multiplexes. Each slot is
    /// one client: at any instant it holds at most one open connection.
    pub sessions: u32,
    /// Mean per-slot open-loop interarrival between session starts.
    pub interarrival: SimDuration,
    /// First arrivals are staggered uniformly across this ramp window so
    /// 10⁴ slots do not all CONNECT on the same microsecond.
    pub ramp: SimDuration,
    /// After the response completes, the session lingers (connection held
    /// open, keep-alive style) for a seeded delay with this mean before
    /// closing — this is what keeps ~`sessions` connections concurrently
    /// live in INET's slab.
    pub linger: SimDuration,
    /// Weighted response-size mix.
    pub sizes: SizeMix,
    /// Arrivals queued behind a busy slot before further arrivals are
    /// shed (recorded as failed requests at their arrival instant).
    pub backlog_cap: usize,
    /// Client-side request deadline, measured from the instant the slot
    /// begins serving the request. A request that neither completes nor
    /// fails by then is recorded as failed and its connection abandoned —
    /// real clients have timeouts, and a server-side wedge must show up
    /// as an SLO violation, not hang the fleet.
    pub deadline: SimDuration,
    /// Arrival horizon: no new arrivals are scheduled at or beyond this
    /// virtual time (sessions already queued still drain).
    pub horizon: SimDuration,
}

impl Default for InetLoadConfig {
    fn default() -> Self {
        InetLoadConfig {
            sessions: 14_000,
            interarrival: SimDuration::from_secs(3),
            ramp: SimDuration::from_secs(3),
            linger: SimDuration::from_millis(2800),
            sizes: default_size_mix(),
            backlog_cap: 4,
            deadline: SimDuration::from_secs(10),
            horizon: SimDuration::from_secs(20),
        }
    }
}

/// Shared observable state of an [`InetLoadGen`] (or [`VfsJobMix`]) run.
#[derive(Debug, Default)]
pub struct LoadStatus {
    /// Requests started (arrivals actually admitted to a slot).
    pub started: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests that failed (error status or aborted call).
    pub failed: u64,
    /// Arrivals shed because the slot's backlog was full.
    pub shed: u64,
    /// Response payload bytes received.
    pub bytes: u64,
    /// Connections currently open.
    pub live: u64,
    /// Peak concurrently-open connections.
    pub peak_live: u64,
    /// All arrivals scheduled up to the horizon have been admitted, shed
    /// or drained — nothing is in flight.
    pub drained: bool,
    /// One record per admitted or shed request, in completion order.
    pub records: Vec<RequestRecord>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SlotState {
    /// No connection, no request in flight.
    Idle,
    /// CONNECT issued, waiting for CONNECT_REPLY.
    Connecting,
    /// GET sent (or queued for its ACK), response streaming in.
    Streaming,
    /// Response complete; connection held open until the linger alarm.
    Lingering,
    /// CLOSE issued, waiting for its ACK.
    Closing,
}

/// What an outstanding `sendrec` call of a slot was for.
#[derive(Debug, Clone, Copy)]
enum CallKind {
    Connect,
    Send,
    Close,
    /// Cleanup CLOSE for a connection whose request already timed out
    /// (the CONNECT succeeded after the client gave up). Reply ignored.
    CloseOrphan,
}

#[derive(Debug)]
struct Slot {
    state: SlotState,
    /// Connection id while one is open.
    conn: Option<u64>,
    /// Arrival instant of the request currently in service.
    arrival: SimTime,
    /// Response bytes expected / received for the current request.
    want: u64,
    got: u64,
    /// Content seed of the current request (distinct per request so the
    /// peer's stream generator is exercised, not a cache).
    content_seed: u64,
    /// Next scheduled arrival for this slot (the open-loop clock).
    next_arrival: SimTime,
    /// Arrivals that landed while the slot was busy, oldest first.
    backlog: VecDeque<SimTime>,
    /// Monotone alarm epoch: stale linger alarms are ignored.
    epoch: u32,
}

/// Alarm-token tag bits (upper byte): arrival clock, linger timer,
/// request deadline.
const TOK_ARRIVAL: u64 = 1 << 56;
const TOK_LINGER: u64 = 2 << 56;
const TOK_DEADLINE: u64 = 3 << 56;
const TOK_TAG: u64 = 0xFF << 56;

/// The multiplexed INET client fleet. See the module docs for the model.
pub struct InetLoadGen {
    inet: Endpoint,
    cfg: InetLoadConfig,
    slots: Vec<Slot>,
    /// In-flight `sendrec` calls: slot, purpose, and the slot epoch the
    /// call was issued under (stale replies — e.g. for a request that
    /// timed out — are discarded by epoch mismatch).
    calls: BTreeMap<CallId, (u32, CallKind, u32)>,
    /// Open connection id → slot (DATA/CLOSED pushes carry the conn id).
    by_conn: BTreeMap<u64, u32>,
    status: Rc<RefCell<LoadStatus>>,
    /// Monotone per-request content-seed counter.
    seed_seq: u64,
    /// Load epoch zero: the process's `Start` instant. Horizons are
    /// relative to it, not to boot (boot itself takes virtual seconds).
    t0: SimTime,
    /// Arrival chains that have run past the horizon (drain bookkeeping:
    /// the drained check is O(1) counters, never a slot scan).
    chains_done: u32,
    /// Slots not currently [`SlotState::Idle`].
    busy_slots: u32,
    /// Arrivals queued across all slot backlogs.
    backlog_total: u64,
}

impl InetLoadGen {
    /// Creates the fleet; observe progress through `status`.
    pub fn new(inet: Endpoint, cfg: InetLoadConfig, status: Rc<RefCell<LoadStatus>>) -> Self {
        let slots = (0..cfg.sessions)
            .map(|_| Slot {
                state: SlotState::Idle,
                conn: None,
                arrival: SimTime::ZERO,
                want: 0,
                got: 0,
                content_seed: 0,
                next_arrival: SimTime::ZERO,
                backlog: VecDeque::new(),
                epoch: 0,
            })
            .collect();
        InetLoadGen {
            inet,
            cfg,
            slots,
            calls: BTreeMap::new(),
            by_conn: BTreeMap::new(),
            status,
            seed_seq: 0,
            t0: SimTime::ZERO,
            chains_done: 0,
            busy_slots: 0,
            backlog_total: 0,
        }
    }

    fn slot(&mut self, idx: u32) -> &mut Slot {
        &mut self.slots[idx as usize]
    }

    /// Schedules the slot's next open-loop arrival alarm. The next
    /// arrival time was already fixed when the previous one fired — this
    /// only arms the wakeup.
    fn arm_arrival(&mut self, ctx: &mut Ctx<'_>, idx: u32) {
        let now = ctx.now();
        let at = self.slot(idx).next_arrival;
        let delay = at.since(now); // saturating: past-due fires immediately
        let _ = ctx.set_alarm(delay, TOK_ARRIVAL | u64::from(idx));
    }

    /// Starts the next queued request on an idle slot, if any.
    fn start_next(&mut self, ctx: &mut Ctx<'_>, idx: u32) {
        let Some(arrival) = self.slot(idx).backlog.pop_front() else {
            return;
        };
        self.backlog_total -= 1;
        self.begin_session(ctx, idx, arrival);
    }

    /// Begins one session: the request's latency clock starts at its
    /// *arrival* instant (open loop), not at the instant the slot got
    /// around to serving it.
    fn begin_session(&mut self, ctx: &mut Ctx<'_>, idx: u32, arrival: SimTime) {
        self.seed_seq += 1;
        let content_seed = self.seed_seq;
        let want = draw_size(ctx.rng(), &self.cfg.sizes);
        self.busy_slots += 1; // only ever called on an Idle slot
        let epoch = {
            let slot = self.slot(idx);
            slot.state = SlotState::Connecting;
            slot.arrival = arrival;
            slot.want = want;
            slot.got = 0;
            slot.content_seed = content_seed;
            slot.epoch += 1;
            slot.epoch
        };
        self.status.borrow_mut().started += 1;
        ctx.metrics().incr("loadgen.inet.requests");
        let tok = TOK_DEADLINE | (u64::from(epoch & 0xFF_FFFF) << 32) | u64::from(idx);
        let _ = ctx.set_alarm(self.cfg.deadline, tok);
        match ctx.sendrec(self.inet, Message::new(sock::CONNECT)) {
            Ok(call) => {
                self.calls.insert(call, (idx, CallKind::Connect, epoch));
            }
            Err(_) => self.finish_failed(ctx, idx),
        }
    }

    /// Records the in-service request as failed and returns the slot to
    /// idle (serving its backlog if any). The connection, if one was
    /// established, is left for the close path.
    fn finish_failed(&mut self, ctx: &mut Ctx<'_>, idx: u32) {
        let now = ctx.now();
        // Retire the request: its deadline alarm and any still-in-flight
        // reply for it are stale from here on.
        self.slot(idx).epoch += 1;
        let arrival = self.slot(idx).arrival;
        {
            let mut st = self.status.borrow_mut();
            st.failed += 1;
            st.records.push(RequestRecord {
                start: arrival,
                end: now,
                bytes: 0,
                ok: false,
            });
        }
        ctx.metrics().incr("loadgen.inet.failed");
        self.close_or_idle(ctx, idx);
    }

    /// Closes the slot's connection if one is open, else goes idle.
    fn close_or_idle(&mut self, ctx: &mut Ctx<'_>, idx: u32) {
        let conn = self.slot(idx).conn;
        match conn {
            Some(conn) => {
                self.slot(idx).state = SlotState::Closing;
                let epoch = self.slot(idx).epoch;
                match ctx.sendrec(self.inet, Message::new(sock::CLOSE).with_param(0, conn)) {
                    Ok(call) => {
                        self.calls.insert(call, (idx, CallKind::Close, epoch));
                    }
                    Err(_) => self.conn_gone(ctx, idx),
                }
            }
            None => {
                self.slot(idx).state = SlotState::Idle;
                self.busy_slots -= 1;
                self.start_next(ctx, idx);
            }
        }
    }

    /// The connection is gone (closed, or INET lost it): drop the
    /// mapping, update the live gauge, go idle.
    fn conn_gone(&mut self, ctx: &mut Ctx<'_>, idx: u32) {
        if let Some(conn) = self.slot(idx).conn.take() {
            // INET may have recycled the id to another slot's CONNECT
            // between our CLOSE and its ACK — only drop the mapping if
            // it is still ours, or the new owner's pushes would be lost.
            if self.by_conn.get(&conn) == Some(&idx) {
                self.by_conn.remove(&conn);
            }
            let mut st = self.status.borrow_mut();
            st.live = st.live.saturating_sub(1);
        }
        self.slot(idx).state = SlotState::Idle;
        self.busy_slots -= 1;
        self.start_next(ctx, idx);
    }

    /// One arrival fired for `idx`: admit it (or shed it), then schedule
    /// the slot's next arrival strictly from the arrival clock.
    fn on_arrival(&mut self, ctx: &mut Ctx<'_>, idx: u32) {
        let now = ctx.now();
        let at = self.slot(idx).next_arrival;
        let state = self.slot(idx).state;
        match state {
            SlotState::Idle => self.begin_session(ctx, idx, at),
            SlotState::Lingering => {
                // A fresh request ends the keep-alive: close the idle
                // connection now and serve this arrival when the close
                // completes. Only genuinely-working slots queue arrivals,
                // so steady-state load never sheds — only outages do.
                self.slot(idx).epoch += 1; // the pending linger alarm is stale
                self.slot(idx).backlog.push_back(at);
                self.backlog_total += 1;
                self.close_or_idle(ctx, idx);
            }
            _ if self.slots[idx as usize].backlog.len() < self.cfg.backlog_cap => {
                self.slot(idx).backlog.push_back(at);
                self.backlog_total += 1;
            }
            _ => {
                // Shed: the client gave up before being served. Recorded
                // at the arrival instant so the failure attributes to the
                // phase that caused the queue.
                self.status.borrow_mut().shed += 1;
                self.status.borrow_mut().records.push(RequestRecord {
                    start: at,
                    end: now,
                    bytes: 0,
                    ok: false,
                });
                ctx.metrics().incr("loadgen.inet.shed");
            }
        }
        // Open loop: the next arrival advances from this arrival, never
        // from any completion. The horizon is relative to the load's own
        // start (`t0`), not to boot.
        let next = at + draw_interval(ctx.rng(), self.cfg.interarrival);
        self.slot(idx).next_arrival = next;
        if next.since(self.t0) < self.cfg.horizon {
            self.arm_arrival(ctx, idx);
        } else {
            self.chains_done += 1;
        }
    }

    /// Response complete: record the latency sample and begin the
    /// keep-alive linger before closing.
    fn on_response_done(&mut self, ctx: &mut Ctx<'_>, idx: u32) {
        let now = ctx.now();
        let (arrival, got) = {
            let slot = self.slot(idx);
            (slot.arrival, slot.got)
        };
        {
            let mut st = self.status.borrow_mut();
            st.completed += 1;
            st.bytes += got;
            st.records.push(RequestRecord {
                start: arrival,
                end: now,
                bytes: got,
                ok: true,
            });
        }
        ctx.metrics().incr("loadgen.inet.completed");
        ctx.metrics().add("loadgen.inet.bytes", got);
        let linger = draw_interval(ctx.rng(), self.cfg.linger);
        let slot = self.slot(idx);
        slot.state = SlotState::Lingering;
        slot.epoch += 1; // retires the request's deadline alarm
        let tok = TOK_LINGER | (u64::from(slot.epoch & 0xFF_FFFF) << 32) | u64::from(idx);
        let _ = ctx.set_alarm(linger, tok);
    }

    fn note_live(&mut self) {
        let mut st = self.status.borrow_mut();
        st.live += 1;
        st.peak_live = st.peak_live.max(st.live);
    }

    /// True when every arrival chain has run past the horizon, no slot is
    /// mid-session and no arrival is queued. O(1): pure counters.
    fn drained(&self) -> bool {
        self.chains_done == self.cfg.sessions && self.busy_slots == 0 && self.backlog_total == 0
    }

    fn update_drained(&mut self) {
        if self.drained() {
            self.status.borrow_mut().drained = true;
        }
    }
}

impl Process for InetLoadGen {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {
                // Stagger first arrivals uniformly across the ramp window.
                self.t0 = ctx.now();
                let t0 = self.t0;
                let ramp_us = self.cfg.ramp.as_micros().max(1);
                for idx in 0..self.cfg.sessions {
                    let offset = SimDuration::from_micros(ctx.rng().range_u64(0..ramp_us));
                    self.slot(idx).next_arrival = t0 + offset;
                    self.arm_arrival(ctx, idx);
                }
            }
            ProcEvent::Alarm { token } => {
                let idx = (token & 0xFFFF_FFFF) as u32;
                if idx >= self.cfg.sessions {
                    return;
                }
                let epoch = ((token >> 32) & 0xFF_FFFF) as u32;
                match token & TOK_TAG {
                    TOK_ARRIVAL => self.on_arrival(ctx, idx),
                    TOK_LINGER => {
                        let slot = self.slot(idx);
                        if slot.state == SlotState::Lingering && slot.epoch & 0xFF_FFFF == epoch {
                            self.close_or_idle(ctx, idx);
                        }
                    }
                    TOK_DEADLINE => {
                        // Client timeout: the request is still in flight
                        // with no response in sight — give up, record the
                        // failure, abandon the connection.
                        let slot = self.slot(idx);
                        let in_flight =
                            matches!(slot.state, SlotState::Connecting | SlotState::Streaming);
                        if in_flight && slot.epoch & 0xFF_FFFF == epoch {
                            ctx.metrics().incr("loadgen.inet.timeouts");
                            self.finish_failed(ctx, idx);
                        }
                    }
                    _ => {}
                }
                self.update_drained();
            }
            ProcEvent::Reply { call, result } => {
                let Some((idx, kind, epoch)) = self.calls.remove(&call) else {
                    return;
                };
                // A reply for a request the client already gave up on:
                // ignore it — except a late-established connection, which
                // must be closed or it would leak in INET's slab.
                let stale = !matches!(kind, CallKind::Close | CallKind::CloseOrphan)
                    && self.slot(idx).epoch != epoch;
                if stale {
                    if let (CallKind::Connect, Ok(reply)) = (kind, &result) {
                        if reply.mtype == sock::CONNECT_REPLY && reply.param(0) == 0 {
                            let conn = reply.param(1);
                            if let Ok(call) = ctx
                                .sendrec(self.inet, Message::new(sock::CLOSE).with_param(0, conn))
                            {
                                self.calls.insert(call, (idx, CallKind::CloseOrphan, epoch));
                            }
                        }
                    }
                    return;
                }
                match (kind, result) {
                    (CallKind::Connect, Ok(reply))
                        if reply.mtype == sock::CONNECT_REPLY && reply.param(0) == 0 =>
                    {
                        let conn = reply.param(1);
                        self.slot(idx).conn = Some(conn);
                        self.by_conn.insert(conn, idx);
                        self.note_live();
                        self.slot(idx).state = SlotState::Streaming;
                        let (want, content_seed) = {
                            let slot = self.slot(idx);
                            (slot.want, slot.content_seed)
                        };
                        let req = format!("GET {want} {content_seed}");
                        match ctx.sendrec(
                            self.inet,
                            Message::new(sock::SEND)
                                .with_param(0, conn)
                                .with_data(req.into_bytes()),
                        ) {
                            Ok(call) => {
                                self.calls.insert(call, (idx, CallKind::Send, epoch));
                            }
                            Err(_) => self.finish_failed(ctx, idx),
                        }
                    }
                    (CallKind::Connect, _) => {
                        // Refused (slab exhausted), garbled, or aborted.
                        self.finish_failed(ctx, idx);
                    }
                    (CallKind::Send, Ok(reply))
                        if reply.mtype == sock::ACK && reply.param(0) == 0 =>
                    {
                        // Request accepted; response arrives as DATA
                        // pushes, completion as got >= want.
                    }
                    (CallKind::Send, _) => self.finish_failed(ctx, idx),
                    (CallKind::Close, _) => {
                        // Closed (or the close call died with INET —
                        // either way this client is done with the conn).
                        self.conn_gone(ctx, idx);
                    }
                    (CallKind::CloseOrphan, _) => {}
                }
                self.update_drained();
            }
            ProcEvent::Message(msg) if msg.mtype == sock::DATA => {
                let conn = msg.param(0);
                let Some(&idx) = self.by_conn.get(&conn) else {
                    return;
                };
                if self.slot(idx).state != SlotState::Streaming {
                    return;
                }
                self.slot(idx).got += msg.data.len() as u64;
                if self.slot(idx).got >= self.slot(idx).want {
                    self.on_response_done(ctx, idx);
                }
            }
            ProcEvent::Message(msg) if msg.mtype == sock::CLOSED => {
                // Peer FIN. Normally arrives while lingering (the stream
                // completed); a FIN racing an unfinished request means the
                // response was cut short.
                let conn = msg.param(0);
                let Some(&idx) = self.by_conn.get(&conn) else {
                    return;
                };
                if self.slot(idx).state == SlotState::Streaming {
                    self.finish_failed(ctx, idx);
                }
            }
            _ => {}
        }
    }
}

/// Tuning for [`VfsJobMix`].
#[derive(Debug, Clone)]
pub struct VfsLoadConfig {
    /// Concurrent reader slots (each an independent client of VFS).
    pub clients: u32,
    /// Mean per-slot open-loop interarrival between reads.
    pub interarrival: SimDuration,
    /// Weighted read-chunk mix.
    pub chunks: SizeMix,
    /// Path of the file all readers share.
    pub path: String,
    /// Arrival horizon (see [`InetLoadConfig::horizon`]).
    pub horizon: SimDuration,
    /// Client-side request deadline (see [`InetLoadConfig::deadline`]).
    /// VFS/MFS can silently lose an in-flight read across a block-driver
    /// restart; the deadline turns such a wedge into a measured failure.
    pub deadline: SimDuration,
    /// Per-client queued-arrival bound (see [`InetLoadConfig::backlog_cap`]):
    /// arrivals beyond it shed as failures at their arrival instant.
    pub backlog_cap: usize,
}

impl Default for VfsLoadConfig {
    fn default() -> Self {
        VfsLoadConfig {
            clients: 32,
            interarrival: SimDuration::from_millis(40),
            chunks: vec![(4 * 1024, 70), (16 * 1024, 25), (64 * 1024, 5)],
            path: "stream".to_string(),
            horizon: SimDuration::from_secs(20),
            deadline: SimDuration::from_secs(10),
            backlog_cap: 4,
        }
    }
}

#[derive(Debug)]
struct VfsSlot {
    busy: bool,
    arrival: SimTime,
    next_arrival: SimTime,
    backlog: VecDeque<SimTime>,
    /// Bumped per issued read; retires the previous deadline alarm and
    /// marks any still-in-flight reply as stale.
    epoch: u32,
}

/// The multi-client VFS/disk job mix: `clients` readers issue open-loop
/// random-offset reads of mixed chunk sizes against one shared file.
pub struct VfsJobMix {
    vfs: Endpoint,
    cfg: VfsLoadConfig,
    ino: Option<u64>,
    size: u64,
    slots: Vec<VfsSlot>,
    /// In-flight calls: `call -> (slot, issue epoch)`.
    calls: BTreeMap<CallId, (u32, u32)>,
    status: Rc<RefCell<LoadStatus>>,
    /// Load epoch zero (see [`InetLoadGen::t0`]).
    t0: SimTime,
    /// Drain bookkeeping, as in [`InetLoadGen`].
    chains_done: u32,
    busy_slots: u32,
    backlog_total: u64,
}

impl VfsJobMix {
    /// Creates the job mix; observe progress through `status`.
    pub fn new(vfs: Endpoint, cfg: VfsLoadConfig, status: Rc<RefCell<LoadStatus>>) -> Self {
        let slots = (0..cfg.clients)
            .map(|_| VfsSlot {
                busy: false,
                arrival: SimTime::ZERO,
                next_arrival: SimTime::ZERO,
                backlog: VecDeque::new(),
                epoch: 0,
            })
            .collect();
        VfsJobMix {
            vfs,
            cfg,
            ino: None,
            size: 0,
            slots,
            calls: BTreeMap::new(),
            status,
            t0: SimTime::ZERO,
            chains_done: 0,
            busy_slots: 0,
            backlog_total: 0,
        }
    }

    fn arm_arrival(&mut self, ctx: &mut Ctx<'_>, idx: u32) {
        let now = ctx.now();
        let at = self.slots[idx as usize].next_arrival;
        let _ = ctx.set_alarm(at.since(now), TOK_ARRIVAL | u64::from(idx));
    }

    fn issue_read(&mut self, ctx: &mut Ctx<'_>, idx: u32, arrival: SimTime) {
        let Some(ino) = self.ino else { return };
        let chunk = draw_size(ctx.rng(), &self.cfg.chunks).min(self.size.max(1));
        let offset = if self.size > chunk {
            ctx.rng().range_u64(0..(self.size - chunk))
        } else {
            0
        };
        self.busy_slots += 1; // only ever called on a non-busy slot
        let epoch = {
            let slot = &mut self.slots[idx as usize];
            slot.busy = true;
            slot.arrival = arrival;
            slot.epoch += 1;
            slot.epoch
        };
        self.status.borrow_mut().started += 1;
        ctx.metrics().incr("loadgen.vfs.requests");
        let tok = TOK_DEADLINE | (u64::from(epoch & 0xFF_FFFF) << 32) | u64::from(idx);
        let _ = ctx.set_alarm(self.cfg.deadline, tok);
        match ctx.sendrec(
            self.vfs,
            Message::new(fs::READ)
                .with_param(0, ino)
                .with_param(1, offset)
                .with_param(2, chunk)
                .with_param(7, 0),
        ) {
            Ok(call) => {
                self.calls.insert(call, (idx, epoch));
            }
            Err(_) => self.finish(ctx, idx, 0, false),
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>, idx: u32, bytes: u64, ok: bool) {
        let now = ctx.now();
        let arrival = self.slots[idx as usize].arrival;
        {
            let mut st = self.status.borrow_mut();
            if ok {
                st.completed += 1;
                st.bytes += bytes;
            } else {
                st.failed += 1;
            }
            st.records.push(RequestRecord {
                start: arrival,
                end: now,
                bytes,
                ok,
            });
        }
        if ok {
            ctx.metrics().incr("loadgen.vfs.completed");
            ctx.metrics().add("loadgen.vfs.bytes", bytes);
        } else {
            ctx.metrics().incr("loadgen.vfs.failed");
        }
        self.slots[idx as usize].busy = false;
        self.busy_slots -= 1;
        if let Some(arrival) = self.slots[idx as usize].backlog.pop_front() {
            self.backlog_total -= 1;
            self.issue_read(ctx, idx, arrival);
        }
        self.update_drained();
    }

    fn drained(&self) -> bool {
        self.chains_done == self.cfg.clients && self.busy_slots == 0 && self.backlog_total == 0
    }

    fn update_drained(&mut self) {
        if self.drained() {
            self.status.borrow_mut().drained = true;
        }
    }
}

impl Process for VfsJobMix {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {
                self.t0 = ctx.now();
                let path = self.cfg.path.clone();
                let _ = ctx.sendrec(
                    self.vfs,
                    Message::new(fs::OPEN).with_data(path.into_bytes()),
                );
            }
            ProcEvent::Reply {
                result: Ok(reply), ..
            } if reply.mtype == fs::OPEN_REPLY => {
                if reply.param(0) != status::OK {
                    // The file must exist for the mix to run; give up
                    // loudly rather than hang the campaign.
                    ctx.metrics().incr("loadgen.vfs.open_failed");
                    self.status.borrow_mut().drained = true;
                    return;
                }
                self.ino = Some(reply.param(1));
                self.size = reply.param(2);
                for idx in 0..self.cfg.clients {
                    let offset = draw_interval(ctx.rng(), self.cfg.interarrival);
                    self.slots[idx as usize].next_arrival = ctx.now() + offset;
                    self.arm_arrival(ctx, idx);
                }
            }
            ProcEvent::Alarm { token } => {
                let idx = token as u32;
                if idx >= self.cfg.clients || self.ino.is_none() {
                    return;
                }
                match token & TOK_TAG {
                    TOK_ARRIVAL => {
                        let at = self.slots[idx as usize].next_arrival;
                        if !self.slots[idx as usize].busy {
                            self.issue_read(ctx, idx, at);
                        } else if self.slots[idx as usize].backlog.len() < self.cfg.backlog_cap {
                            self.slots[idx as usize].backlog.push_back(at);
                            self.backlog_total += 1;
                        } else {
                            // Shed (see the INET generator): the client
                            // gave up before being served.
                            let mut st = self.status.borrow_mut();
                            st.shed += 1;
                            st.records.push(RequestRecord {
                                start: at,
                                end: ctx.now(),
                                bytes: 0,
                                ok: false,
                            });
                            drop(st);
                            ctx.metrics().incr("loadgen.vfs.shed");
                        }
                        let next = at + draw_interval(ctx.rng(), self.cfg.interarrival);
                        self.slots[idx as usize].next_arrival = next;
                        if next.since(self.t0) < self.cfg.horizon {
                            self.arm_arrival(ctx, idx);
                        } else {
                            self.chains_done += 1;
                        }
                    }
                    TOK_DEADLINE => {
                        let epoch = ((token >> 32) & 0xFF_FFFF) as u32;
                        let slot = &self.slots[idx as usize];
                        if slot.busy && slot.epoch & 0xFF_FFFF == epoch {
                            // The read wedged (e.g. lost across a block
                            // driver restart): the client gives up and the
                            // request becomes a measured failure.
                            ctx.metrics().incr("loadgen.vfs.timeouts");
                            self.finish(ctx, idx, 0, false);
                        }
                    }
                    _ => {}
                }
                self.update_drained();
            }
            ProcEvent::Reply { call, result } => {
                let Some((idx, epoch)) = self.calls.remove(&call) else {
                    return;
                };
                // A reply for a read the client already timed out on.
                if self.slots[idx as usize].epoch != epoch || !self.slots[idx as usize].busy {
                    return;
                }
                match result {
                    Ok(reply) if reply.mtype == fs::DATA_REPLY && reply.param(0) == status::OK => {
                        let bytes = reply.data.len() as u64;
                        self.finish(ctx, idx, bytes, true);
                    }
                    _ => self.finish(ctx, idx, 0, false),
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_simcore::rng::SimRng;

    #[test]
    fn size_mix_draws_only_listed_sizes() {
        let mix = default_size_mix();
        let mut rng = SimRng::new(7);
        for _ in 0..1000 {
            let s = draw_size(&mut rng, &mix);
            assert!(mix.iter().any(|(size, _)| *size == s), "unknown size {s}");
        }
    }

    #[test]
    fn interval_draws_stay_in_band() {
        let mut rng = SimRng::new(9);
        let mean = SimDuration::from_millis(100);
        for _ in 0..1000 {
            let d = draw_interval(&mut rng, mean);
            assert!(d >= SimDuration::from_millis(50));
            assert!(d < SimDuration::from_millis(150));
        }
    }

    #[test]
    fn size_and_interval_draws_are_deterministic() {
        let mix = default_size_mix();
        let run = || {
            let mut rng = SimRng::new(42);
            let sizes: Vec<u64> = (0..64).map(|_| draw_size(&mut rng, &mix)).collect();
            let gaps: Vec<u64> = (0..64)
                .map(|_| draw_interval(&mut rng, SimDuration::from_millis(10)).as_micros())
                .collect();
            (sizes, gaps)
        };
        assert_eq!(run(), run());
    }
}
