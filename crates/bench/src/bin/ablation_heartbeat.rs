//! Ablation: heartbeat period vs. detection latency and overhead (§5.1).
//!
//! "Failing to respond N consecutive times causes recovery to be
//! initiated... To prevent bogging down the system status requests and the
//! consequent replies are sent using nonblocking messages." This sweep
//! quantifies the trade-off: short periods detect a stuck driver quickly
//! but cost more messages; long periods are cheap but leave the system
//! limping longer.

use phoenix::os::{names, NicKind, Os};
use phoenix_bench::print_table;
use phoenix_simcore::time::SimDuration;

fn main() {
    println!("ablation — heartbeat period vs. detection latency (stuck driver)\n");
    let misses = 2;
    let mut rows = Vec::new();
    for period_ms in [100u64, 250, 500, 1000, 2000, 4000] {
        let period = SimDuration::from_millis(period_ms);
        let mut os = Os::builder()
            .seed(2007)
            .with_network(NicKind::Rtl8139)
            .heartbeat(period, misses)
            .boot();
        // Measure the steady-state heartbeat message cost over 10 s.
        let sends_before = os.metrics().counter("ipc.sends");
        os.run_for(SimDuration::from_secs(10));
        let hb_msgs_per_s = (os.metrics().counter("ipc.sends") - sends_before) as f64 / 10.0;

        // Wedge the driver in an infinite loop; its next event hangs it.
        // Heartbeats themselves drive the driver into the loop? No — the
        // loop is on the request path; poke it with one ping by asking
        // the driver to handle any message. The heartbeat ping itself is
        // handled by libdriver *before* the hot path, so use the stuck
        // hook instead: overwrite the code and send one frame through.
        let stuck_at = os.now();
        os.wedge_driver_in_loop(names::ETH_RTL8139);
        // Traffic to trigger the loop: one datagram via INET.
        let inet = os.endpoint(names::INET).unwrap();
        let status = std::rc::Rc::new(std::cell::RefCell::new(phoenix::apps::UdpStatus::default()));
        os.spawn_app(
            "poke",
            Box::new(phoenix::apps::UdpPing::new(
                inet,
                1_000,
                SimDuration::from_millis(50),
                status,
            )),
        );
        let old = os.endpoint(names::ETH_RTL8139).unwrap();
        let mut detected_after = None;
        for _ in 0..400 {
            os.run_for(SimDuration::from_millis(100));
            if os.endpoint(names::ETH_RTL8139) != Some(old) {
                detected_after = Some(os.now().since(stuck_at));
                break;
            }
        }
        rows.push(vec![
            format!("{period}"),
            format!("{misses}"),
            detected_after.map_or("not detected".into(), |d| {
                format!("{:.2}s", d.as_secs_f64())
            }),
            format!("{hb_msgs_per_s:.1}"),
        ]);
    }
    print_table(
        &[
            "period",
            "misses",
            "detection latency",
            "hb msgs/s (steady)",
        ],
        &rows,
    );
    println!("\nexpected: latency ≈ (misses+1) × period; message cost ∝ 1/period");
}
