//! Executable line-of-code counting, in the spirit of the paper's
//! `sclc.pl` (§7.3): "Blank lines, comments, and definitions in header
//! files do not add to the code complexity, so these were omitted in the
//! counting process."
//!
//! Recovery-specific code is identified with in-source markers:
//!
//! * a line whose code ends with `// [recovery]` counts as one recovery
//!   line;
//! * `// [recovery:begin]` ... `// [recovery:end]` bracket whole recovery
//!   regions (every executable line inside counts).

use std::fs;
use std::path::{Path, PathBuf};

/// Per-file counting result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocCount {
    /// Executable (non-blank, non-comment, non-test) lines.
    pub total: usize,
    /// Of those, lines marked recovery-specific.
    pub recovery: usize,
}

impl std::ops::AddAssign for LocCount {
    fn add_assign(&mut self, rhs: Self) {
        self.total += rhs.total;
        self.recovery += rhs.recovery;
    }
}

fn is_comment_only(trimmed: &str) -> bool {
    trimmed.starts_with("//") || trimmed.starts_with("/*") || trimmed.starts_with('*')
}

/// Attribute-only lines (`#[derive(..)]`, `#![allow(..)]`) are metadata,
/// not executable code — `sclc.pl` would not count a C preprocessor
/// directive either.
fn is_attribute_only(trimmed: &str) -> bool {
    (trimmed.starts_with("#[") || trimmed.starts_with("#![")) && trimmed.ends_with(']')
}

/// Counts executable and recovery lines in Rust source text.
///
/// Test modules (`#[cfg(test)] mod ...`) are excluded, mirroring the
/// paper's exclusion of non-shipping code.
pub fn count_source(src: &str) -> LocCount {
    let mut out = LocCount::default();
    let mut in_recovery_region = false;
    let mut test_depth: Option<usize> = None; // brace depth at test-mod start
    let mut depth: usize = 0;
    let mut pending_cfg_test = false;

    for raw in src.lines() {
        let trimmed = raw.trim();
        let opens = raw.matches('{').count();
        let closes = raw.matches('}').count();

        if trimmed.contains("[recovery:begin]") {
            in_recovery_region = true;
            depth = depth + opens - closes.min(depth + opens);
            continue;
        }
        if trimmed.contains("[recovery:end]") {
            in_recovery_region = false;
            depth = depth + opens - closes.min(depth + opens);
            continue;
        }

        // Track #[cfg(test)] mod blocks by brace depth.
        if test_depth.is_none() {
            if trimmed.starts_with("#[cfg(test)]") {
                pending_cfg_test = true;
            } else if pending_cfg_test && trimmed.starts_with("mod ") {
                test_depth = Some(depth);
                pending_cfg_test = false;
            } else if !trimmed.is_empty() && !is_comment_only(trimmed) {
                pending_cfg_test = false;
            }
        }

        let inside_test = test_depth.is_some();
        let executable = !trimmed.is_empty()
            && !is_comment_only(trimmed)
            && !is_attribute_only(trimmed)
            && !inside_test;
        if executable {
            out.total += 1;
            let marked = trimmed.contains("// [recovery]");
            if marked || in_recovery_region {
                out.recovery += 1;
            }
        }

        // Update depth and leave test mode when its block closes.
        let new_depth = (depth + opens).saturating_sub(closes);
        if let Some(td) = test_depth {
            if closes > 0 && new_depth <= td {
                test_depth = None;
            }
        }
        depth = new_depth;
    }
    out
}

/// Counts all `.rs` files under `dir`, excluding `tests/`, `benches/` and
/// `examples/` subtrees.
pub fn count_dir(dir: &Path) -> LocCount {
    let mut out = LocCount::default();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "tests" && name != "benches" && name != "examples" && name != "target" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(src) = fs::read_to_string(&path) {
                    out += count_source(&src);
                }
            }
        }
    }
    out
}

/// A Fig. 9 table row: component, where its code lives.
#[derive(Debug, Clone)]
pub struct Component {
    /// Display name (matching the paper's table rows).
    pub name: &'static str,
    /// Source files/directories relative to the workspace root.
    pub paths: Vec<&'static str>,
}

/// The Fig. 9 component inventory mapped onto this code base.
pub fn fig9_components() -> Vec<Component> {
    vec![
        Component {
            name: "Reinc. Server",
            paths: vec!["crates/servers/src/rs.rs", "crates/servers/src/policy.rs"],
        },
        Component {
            name: "Data Store",
            paths: vec!["crates/servers/src/ds.rs"],
        },
        Component {
            name: "VFS Server",
            paths: vec!["crates/servers/src/vfs.rs"],
        },
        Component {
            name: "File Server",
            paths: vec!["crates/servers/src/mfs.rs", "crates/servers/src/fsfmt.rs"],
        },
        Component {
            name: "SATA Driver",
            paths: vec!["crates/drivers/src/block.rs"],
        },
        Component {
            name: "RAM Disk",
            paths: vec![], // counted within block.rs; see note in the bin
        },
        Component {
            name: "Network Server",
            paths: vec![
                "crates/servers/src/inet.rs",
                "crates/servers/src/netproto.rs",
                "crates/servers/src/peer.rs",
            ],
        },
        Component {
            name: "RTL8139 Driver",
            paths: vec!["crates/drivers/src/net.rs"],
        },
        Component {
            name: "DP8390 Driver",
            paths: vec![], // shares net.rs with the RTL8139; see note
        },
        Component {
            name: "Driver Library",
            paths: vec![
                "crates/drivers/src/libdriver.rs",
                "crates/drivers/src/routines.rs",
                "crates/drivers/src/proto.rs",
            ],
        },
        Component {
            name: "Process Manager",
            paths: vec!["crates/servers/src/pm.rs"],
        },
        Component {
            name: "Microkernel",
            paths: vec![
                "crates/kernel/src/system.rs",
                "crates/kernel/src/memory.rs",
                "crates/kernel/src/platform.rs",
                "crates/kernel/src/privileges.rs",
                "crates/kernel/src/process.rs",
                "crates/kernel/src/types.rs",
            ],
        },
    ]
}

/// Counts a component from the workspace root.
pub fn count_component(root: &Path, c: &Component) -> LocCount {
    let mut out = LocCount::default();
    for p in &c.paths {
        let path: PathBuf = root.join(p);
        if path.is_dir() {
            out += count_dir(&path);
        } else if let Ok(src) = fs::read_to_string(&path) {
            out += count_source(&src);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_and_comment_lines_excluded() {
        let src = "\n// comment\n/// doc\nfn f() {\n    let x = 1;\n}\n";
        let c = count_source(src);
        assert_eq!(c.total, 3);
        assert_eq!(c.recovery, 0);
    }

    #[test]
    fn marker_lines_counted_as_recovery() {
        let src = "fn f() {\n    reply(); // [recovery]\n    other();\n}\n";
        let c = count_source(src);
        assert_eq!(c.total, 4);
        assert_eq!(c.recovery, 1);
    }

    #[test]
    fn recovery_regions_counted() {
        let src = "\
fn f() {
    a();
    // [recovery:begin]
    b();
    c();
    // [recovery:end]
    d();
}
";
        let c = count_source(src);
        assert_eq!(c.total, 6);
        assert_eq!(c.recovery, 2);
    }

    #[test]
    fn test_modules_excluded() {
        let src = "\
fn shipped() {
    work();
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        assert!(true);
    }
}
";
        let c = count_source(src);
        assert_eq!(c.total, 3, "only the shipped function counts");
    }

    #[test]
    fn comment_only_recovery_marker_not_counted() {
        let src = "fn f() {\n    // [recovery] explanation only\n    x();\n}\n";
        let c = count_source(src);
        assert_eq!(c.recovery, 0, "pure comments never count as code");
        assert_eq!(c.total, 3);
    }
}
