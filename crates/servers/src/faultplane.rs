//! The server fault plane: deterministic defect injection for the system
//! servers themselves.
//!
//! The driver campaigns mutate *driver* code through the fault VM; the
//! servers are native components with no instruction stream to mutate, so
//! the microreboot campaign injects the same defect *classes* through
//! this plane instead: a wild store that kills the incarnation (crash), a
//! lost wakeup that stops request consumption (stall), and a corrupted
//! reply path that answers with frames of the wrong type (garble) — plus
//! a benign mutation that lands in cold code and changes nothing.
//!
//! The plane is a name-keyed map shared between the experiment harness
//! (`Os::inject_server_fault`) and the server instances. A server polls
//! its cell once per dispatched event; an armed fault is consumed on
//! first poll, so a restarted incarnation always comes up clean —
//! exactly the crash-only contract the campaign is proving.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use phoenix_kernel::types::Message;

/// XOR mask a garbling server applies to reply/push message types. Far
/// outside every allocated protocol range, so a garbled frame is always
/// "a reply of the wrong type" to a vetting caller.
pub const GARBLE_XOR: u32 = 0x4000_0000;

/// One injected server defect class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerFault {
    /// Wild store: the incarnation dies with a panic on its next event.
    Crash,
    /// Lost wakeup: the incarnation stays alive but stops consuming
    /// requests (only the progress watchdog can tell).
    Stall,
    /// Corrupted reply path: the incarnation keeps running but answers
    /// every request with a wrong-type frame (fail-silent defect).
    Garble,
    /// Mutation in cold code: no observable effect.
    Benign,
}

impl ServerFault {
    /// Short label for traces and campaign reports.
    pub fn label(self) -> &'static str {
        match self {
            ServerFault::Crash => "crash",
            ServerFault::Stall => "stall",
            ServerFault::Garble => "garble",
            ServerFault::Benign => "benign",
        }
    }
}

/// The shared injection map, keyed by stable server name.
#[derive(Clone, Debug, Default)]
pub struct FaultPlane {
    armed: Rc<RefCell<BTreeMap<String, ServerFault>>>,
}

impl FaultPlane {
    /// An empty plane.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms `fault` against the named server (replacing any armed fault).
    pub fn arm(&self, name: &str, fault: ServerFault) {
        self.armed.borrow_mut().insert(name.to_string(), fault);
    }

    /// Consumes the armed fault for `name`, if any.
    pub fn take(&self, name: &str) -> Option<ServerFault> {
        self.armed.borrow_mut().remove(name)
    }

    /// Binds the plane to one server's name.
    pub fn cell(&self, name: &str) -> FaultCell {
        FaultCell {
            plane: self.clone(),
            name: name.to_string(),
        }
    }
}

/// A server's handle into the plane plus its sticky local defect state.
///
/// `Stall` and `Garble` persist for the rest of the incarnation (the
/// defect lives in the server's running state); both die with the
/// incarnation because the cell is part of the server struct rebuilt by
/// the program factory.
#[derive(Clone, Debug)]
pub struct FaultCell {
    plane: FaultPlane,
    name: String,
}

/// What the server should do with the current event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Serve normally.
    None,
    /// Die now (the poller calls `ctx.panic`).
    Crash,
    /// Swallow the event without replying.
    Stall,
    /// Serve, but corrupt outgoing frames with [`garble_message`].
    Garble,
}

/// Per-incarnation defect latches, embedded in each guarded server.
#[derive(Debug, Default)]
pub struct FaultState {
    cell: Option<FaultCell>,
    stalled: bool,
    garbling: bool,
}

impl FaultState {
    /// A state with no plane attached (faults never fire).
    pub fn detached() -> Self {
        Self::default()
    }

    /// Attaches a plane cell for the named server.
    pub fn attached(plane: &FaultPlane, name: &str) -> Self {
        FaultState {
            cell: Some(plane.cell(name)),
            stalled: false,
            garbling: false,
        }
    }

    /// Polls the plane once per dispatched event and folds in the sticky
    /// local state.
    pub fn poll(&mut self) -> FaultAction {
        if let Some(cell) = &self.cell {
            match cell.plane.take(&cell.name) {
                Some(ServerFault::Crash) => return FaultAction::Crash,
                Some(ServerFault::Stall) => self.stalled = true,
                Some(ServerFault::Garble) => self.garbling = true,
                Some(ServerFault::Benign) | None => {}
            }
        }
        if self.stalled {
            FaultAction::Stall
        } else if self.garbling {
            FaultAction::Garble
        } else {
            FaultAction::None
        }
    }

    /// Whether the incarnation is currently garbling replies.
    pub fn garbling(&self) -> bool {
        self.garbling
    }
}

/// Applies the garble defect to an outgoing frame: the message type is
/// XOR-masked, so every vetting caller sees a wrong-type reply.
pub fn garble_message(msg: Message) -> Message {
    let mut msg = msg;
    msg.mtype ^= GARBLE_XOR;
    msg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_fault_is_consumed_once() {
        let plane = FaultPlane::new();
        plane.arm("vfs", ServerFault::Crash);
        let mut st = FaultState::attached(&plane, "vfs");
        assert_eq!(st.poll(), FaultAction::Crash);
        // Consumed: the next incarnation's poll is clean.
        let mut st2 = FaultState::attached(&plane, "vfs");
        assert_eq!(st2.poll(), FaultAction::None);
    }

    #[test]
    fn stall_and_garble_are_sticky_per_incarnation() {
        let plane = FaultPlane::new();
        plane.arm("inet", ServerFault::Stall);
        let mut st = FaultState::attached(&plane, "inet");
        assert_eq!(st.poll(), FaultAction::Stall);
        assert_eq!(st.poll(), FaultAction::Stall, "stall persists");
        plane.arm("inet", ServerFault::Garble);
        let mut st2 = FaultState::attached(&plane, "inet");
        assert_eq!(st2.poll(), FaultAction::Garble);
        assert!(st2.garbling());
    }

    #[test]
    fn benign_and_detached_are_noops() {
        let plane = FaultPlane::new();
        plane.arm("mfs", ServerFault::Benign);
        let mut st = FaultState::attached(&plane, "mfs");
        assert_eq!(st.poll(), FaultAction::None);
        let mut st3 = FaultState::detached();
        assert_eq!(st3.poll(), FaultAction::None);
    }

    #[test]
    fn garble_flips_message_type() {
        let m = garble_message(Message::new(0x0801));
        assert_eq!(m.mtype, 0x0801 ^ GARBLE_XOR);
    }
}
