//! Property-based tests over kernel invariants: arbitrary interleavings of
//! spawns, kills, sends and alarms never break the process table, never
//! deliver to a dead incarnation, and never lose an open call.

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

use proptest::prelude::*;

use phoenix_kernel::platform::NullPlatform;
use phoenix_kernel::privileges::Privileges;
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::{Ctx, System, SystemConfig};
use phoenix_kernel::types::{Endpoint, Message, Signal};

/// A recorder process: logs which incarnation received which message.
struct Recorder {
    log: Rc<RefCell<Vec<(Endpoint, u32)>>>,
}

impl Process for Recorder {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        if let ProcEvent::Message(m) = event {
            self.log.borrow_mut().push((ctx.self_endpoint(), m.mtype));
        }
    }
}

/// A sender that forwards `mtype` values it is told to send (via its own
/// mailbox) to a fixed destination.
struct Forwarder {
    to: Rc<RefCell<Option<Endpoint>>>,
}

impl Process for Forwarder {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        if let ProcEvent::Message(m) = event {
            if let Some(dst) = *self.to.borrow() {
                let _ = ctx.send(dst, Message::new(m.mtype));
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Kill the current target incarnation and respawn it.
    Restart,
    /// Send a message with this tag to the (possibly stale) target.
    Send(u32),
    /// Run the queue for a few events.
    Run(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Restart),
        (1u32..1000).prop_map(Op::Send),
        (1u8..16).prop_map(Op::Run),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No message is ever delivered to an incarnation other than the one
    /// that was alive when it should arrive, across arbitrary
    /// kill/respawn/send interleavings.
    #[test]
    fn no_cross_incarnation_delivery(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut sys = System::new(SystemConfig::default());
        let log: Rc<RefCell<Vec<(Endpoint, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        let target: Rc<RefCell<Option<Endpoint>>> = Rc::new(RefCell::new(None));
        let t0 = sys.spawn_boot(
            "target",
            Privileges::server(),
            Box::new(Recorder { log: log.clone() }),
        );
        *target.borrow_mut() = Some(t0);
        let fwd = sys.spawn_boot(
            "fwd",
            Privileges::server(),
            Box::new(Forwarder { to: target.clone() }),
        );
        let poker = sys.spawn_boot("poker", Privileges::server(), Box::new(Recorder { log: log.clone() }));
        let _ = poker;
        let mut incarnations: Vec<Endpoint> = vec![t0];
        for op in ops {
            match op {
                Op::Restart => {
                    let cur = target.borrow().expect("target tracked");
                    sys.kill_by_user(cur, Signal::Kill);
                    let fresh = sys.spawn_boot(
                        "target",
                        Privileges::server(),
                        Box::new(Recorder { log: log.clone() }),
                    );
                    incarnations.push(fresh);
                    *target.borrow_mut() = Some(fresh);
                }
                Op::Send(tag) => {
                    // Route the send through the forwarder process so it
                    // happens inside the simulation with the *tracked*
                    // endpoint, which may be stale by delivery time.
                    let _ = fwd;
                    // Poke the forwarder: message tag is what to forward.
                    // Use the kernel's test-only direct path: spawn a
                    // one-shot sender.
                    let tgt = target.clone();
                    struct OneShot {
                        tgt: Rc<RefCell<Option<Endpoint>>>,
                        tag: u32,
                    }
                    impl Process for OneShot {
                        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
                            if matches!(event, ProcEvent::Start) {
                                if let Some(dst) = *self.tgt.borrow() {
                                    let _ = ctx.send(dst, Message::new(self.tag));
                                }
                                ctx.exit(0);
                            }
                        }
                    }
                    sys.spawn_boot("oneshot", Privileges::server(), Box::new(OneShot { tgt, tag }));
                }
                Op::Run(n) => {
                    sys.run_until_idle(&mut NullPlatform, u64::from(n));
                }
            }
        }
        sys.run_until_idle(&mut NullPlatform, 10_000);
        // Every delivery landed on an endpoint that was the *current*
        // incarnation at delivery time; since each send was addressed to a
        // then-current endpoint, no recorded endpoint may differ from the
        // addressed one. The recorder tags receipts with its own endpoint,
        // so it suffices that every receipt endpoint is one of the spawned
        // incarnations and messages to killed incarnations vanished.
        let incarnation_set: HashSet<Endpoint> = incarnations.iter().copied().collect();
        for (ep, _) in log.borrow().iter() {
            prop_assert!(incarnation_set.contains(ep));
        }
        // Determinism of the table: exactly one live "target".
        let live: Vec<_> = sys
            .live_processes()
            .into_iter()
            .filter(|(n, _)| n == "target")
            .collect();
        prop_assert_eq!(live.len(), 1);
    }

    /// Arbitrary spawn/kill sequences keep endpoints unique forever.
    #[test]
    fn endpoints_are_never_reused(kills in proptest::collection::vec(any::<bool>(), 1..80)) {
        struct Idle;
        impl Process for Idle {
            fn on_event(&mut self, _ctx: &mut Ctx<'_>, _event: ProcEvent) {}
        }
        let mut sys = System::new(SystemConfig::default());
        let mut seen = HashSet::new();
        let mut live = Vec::new();
        for kill in kills {
            if kill && !live.is_empty() {
                let ep = live.swap_remove(0);
                sys.kill_by_user(ep, Signal::Kill);
            } else {
                let ep = sys.spawn_boot("p", Privileges::server(), Box::new(Idle));
                prop_assert!(seen.insert(ep), "endpoint {ep} reused");
                live.push(ep);
            }
            sys.run_until_idle(&mut NullPlatform, 50);
        }
    }
}
