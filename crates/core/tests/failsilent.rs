//! Fail-silent campaign integration tests: determinism of the campaign
//! digest, a clean no-fault control run, and the end-to-end sentinel
//! path (garbled checksum -> complaint quorum -> restart) with and
//! without the detection machinery armed.

use std::cell::RefCell;
use std::rc::Rc;

use phoenix::apps::{LpdLoop, LpdLoopStatus};
use phoenix::campaign::{run_failsilent_campaign, run_failsilent_control, FailsilentConfig};
use phoenix::os::{names, Os};
use phoenix_simcore::time::SimDuration;

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

#[test]
fn same_seed_campaigns_are_byte_identical() {
    let cfg = FailsilentConfig {
        rounds: 1,
        ..FailsilentConfig::default()
    };
    let (a, _) = run_failsilent_campaign(&cfg);
    let (b, _) = run_failsilent_campaign(&cfg);
    assert_eq!(a.digest, b.digest, "same-seed campaign digests must match");
    assert!(a.injections() > 0, "mutations were applied");
    // Every round resolves to exactly one outcome per class.
    let outcomes = a.detected() + a.fail_silent() + a.benign();
    assert_eq!(
        outcomes,
        3 * cfg.rounds,
        "each round per class resolves to one outcome"
    );
    assert_eq!(a.unrecovered(), 0, "every restart must complete");
}

#[test]
fn no_fault_control_run_is_clean() {
    let cfg = FailsilentConfig::default();
    let control = run_failsilent_control(&cfg, SimDuration::from_secs(10));
    assert_eq!(control.restarts, 0, "no false restarts of healthy drivers");
    assert_eq!(control.complaints_accepted, 0, "no accepted complaints");
    assert!(control.echoed > 0, "net workload live");
    assert!(control.disk_bytes > 0, "block workload live");
    assert!(control.printed > 0, "char workload live");
}

/// Boots a char-device machine, garbles the printer's checksum
/// computation (a pure fail-silent defect: every request still
/// "succeeds"), and returns the Os plus the workload status after a
/// fixed schedule.
fn garbled_printer_run(sentinels: bool) -> (Os, Rc<RefCell<LpdLoopStatus>>) {
    let mut builder = Os::builder().seed(77).with_chardevs().heartbeat(ms(500), 2);
    if !sentinels {
        builder = builder.without_sentinels();
    }
    let mut os = builder.boot();
    let vfs = os.endpoint(names::VFS).expect("vfs up");
    let lpd = Rc::new(RefCell::new(LpdLoopStatus::default()));
    let page: Vec<u8> = (0..256u32).map(|i| (i * 3 + 7) as u8).collect();
    os.spawn_app("lpd-loop", Box::new(LpdLoop::new(vfs, page, lpd.clone())));
    os.run_for(ms(200));
    assert!(
        os.garble_driver_checksum(names::CHR_PRINTER),
        "garble hook found the checksum accumulator"
    );
    os.run_for(SimDuration::from_secs(5));
    (os, lpd)
}

#[test]
fn garbled_checksum_is_caught_by_the_sentinel_quorum() {
    let (os, lpd) = garbled_printer_run(true);
    let m = os.metrics();
    assert!(
        m.counter("sentinel.vfs.crc-mismatch") >= 3,
        "VFS vetted the bad echoes (got {})",
        m.counter("sentinel.vfs.crc-mismatch")
    );
    assert!(
        m.counter("rs.complaints.quorum_restarts") >= 1,
        "complaint quorum restarted the garbled driver"
    );
    assert_eq!(
        m.counter("rs.defect.heartbeat"),
        0,
        "nothing crashed: this defect is invisible to crash-only detection"
    );
    assert_eq!(m.counter("rs.defect.exception"), 0);
    // After the restart the fresh incarnation computes clean checksums
    // and the workload makes progress again.
    assert!(os.is_up(names::CHR_PRINTER));
    assert!(lpd.borrow().accepted > 0, "printing resumed after recovery");
}

#[test]
fn garbled_checksum_survives_with_sentinels_disarmed() {
    // The crash-only baseline: the same defect, with complaint
    // arbitration disarmed, is never repaired — the driver keeps
    // "working" with a wrong checksum and only the sentinel counters
    // notice. This is exactly the fail-silent gap the paper's §7.2
    // campaign could not close with crashes alone.
    let (os, _) = garbled_printer_run(false);
    let m = os.metrics();
    assert!(
        m.counter("vfs.complaints") >= 1,
        "sentinels still observe and complain"
    );
    assert!(
        m.counter("rs.complaints.disarmed") >= 1,
        "RS counted but ignored the evidence"
    );
    assert_eq!(
        m.counter("rs.recoveries"),
        0,
        "no restart: the defect is fail-silent under crash-only detection"
    );
}
