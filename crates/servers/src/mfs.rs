//! The MINIX-style file server (MFS) with transparent block-driver
//! recovery (§6.2).
//!
//! Disk block I/O is idempotent, so when the kernel aborts an IPC
//! rendezvous because the disk driver died, MFS *marks the request
//! pending*, waits for the data store to announce the restarted driver's
//! new endpoint, re-opens its minor devices, and reissues the failed
//! operations — transparently to the applications above it.
//!
//! MFS can also act as the §5.1 arbiter input: if a driver sends a
//! malformed reply (protocol violation) or fails to answer within a
//! deadline, MFS files a complaint with the reincarnation server asking
//! for replacement.

use std::collections::VecDeque;

use phoenix_ckpt::driver::{DriverCkpt, RestoreEvent};
use phoenix_drivers::proto::{bdev, status};
use phoenix_hw::disk::SECTOR;
use phoenix_kernel::memory::{GrantAccess, GrantId};
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{CallId, Endpoint, IpcError, Message};
use phoenix_simcore::time::SimDuration;
use phoenix_simcore::trace::{RecoveryId, SpanId, TraceLevel};

use crate::faultplane::{garble_message, FaultAction, FaultPlane, FaultState};
use crate::fsfmt::{Inode, Superblock, INODE_SIZE};
use crate::proto::{ds, evidence, fs, pack_endpoint, rs as rsp, unpack_endpoint};

/// I/O buffer: offset 0 of MFS memory, room for one maximal transfer.
const IO_BUF: usize = 0;
/// Largest single driver request (256 sectors).
const MAX_CHUNK_SECTORS: u64 = 256;
/// Driver response deadline before MFS complains to RS.
const DRIVER_DEADLINE: SimDuration = SimDuration::from_secs(5);
/// Pause before retrying a chunk the driver answered with EAGAIN. An
/// immediate reissue spins a tight IPC loop against a still-busy device
/// (hundreds of round trips per device op), which under message chaos all
/// but guarantees one EAGAIN reply is eventually lost — wedging MFS until
/// the response deadline convicts a perfectly healthy driver. Pacing the
/// retry past the typical device op keeps it to a handful of exchanges.
const RETRY_DELAY: SimDuration = SimDuration::from_millis(1);
/// Checksum-mismatch retries before the active op fails with EIO. Matches
/// RS's complaint quorum, so the retries file exactly the evidence needed
/// for a restart of a driver that persistently miscomputes.
const CSUM_RETRIES: u32 = 3;
/// One in `SCRUB_SAMPLE` read chunks is re-read and compared (the
/// sampled read-back scrub of the fail-silent sentinel).
const SCRUB_SAMPLE: u64 = 8;

/// Byte-sum of the 16-byte request descriptor the driver validates —
/// mirrors the checksum `routines::disk_request` computes, so MFS can
/// cross-check the driver's echoed value.
fn descriptor_sum(lba: u64, count: u64, capacity: u64) -> u32 {
    let mut d = [0u8; 16];
    d[0..4].copy_from_slice(&(lba as u32).to_le_bytes());
    d[4..8].copy_from_slice(&(count as u32).to_le_bytes());
    d[8..12].copy_from_slice(&(capacity as u32).to_le_bytes());
    d.iter().map(|&b| u32::from(b)).sum()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MountState {
    NotMounted,
    ReadingSuper,
    ReadingTable,
    Mounted,
}

#[derive(Debug)]
enum OpKind {
    /// Internal mount I/O.
    Mount,
    /// Client read: reply with data.
    Read { client: CallId },
    /// Client write: reply with byte count.
    Write { client: CallId, data: Vec<u8> },
}

#[derive(Debug)]
struct Active {
    kind: OpKind,
    /// Absolute file position of the next byte to transfer (reads) or the
    /// next byte to write.
    file_pos: u64,
    /// Total bytes still to transfer.
    remaining: u64,
    /// Bytes assembled so far (reads).
    assembled: Vec<u8>,
    /// Inode index (usize::MAX during mount).
    ino: usize,
    // Current chunk at the driver:
    chunk_lba: u64,
    chunk_sectors: u64,
    chunk_skip: usize,
    grant: Option<GrantId>,
    driver_call: Option<CallId>,
    /// Sequence number used by the response-deadline alarm.
    seq: u64,
    /// Set when the rendezvous was aborted: retry on driver restart.
    waiting_driver: bool,
    /// Checksum-mismatch retries consumed by the current op.
    csum_retries: u32,
    /// Data of the first read of a sampled chunk, awaiting the re-read
    /// for comparison (`None` = not scrubbing).
    scrub: Option<Vec<u8>>,
}

/// The file server.
pub struct FileServer {
    ds: Endpoint,
    rs: Endpoint,
    driver_key: String,
    driver: Option<Endpoint>,
    driver_open: bool,
    open_call: Option<CallId>,
    /// Sequence number of the response-deadline alarm guarding the
    /// current reopen: the reply delivery can be lost in flight (chaos),
    /// which completes the rendezvous without MFS ever hearing back, so
    /// awaiting it unguarded would wedge the server forever.
    open_seq: Option<u64>,
    check_call: Option<CallId>,
    /// Sequence number of a pending EAGAIN-backoff alarm; the retry
    /// reissues the active chunk when it fires.
    retry_seq: Option<u64>,
    mount: MountState,
    superblock: Option<Superblock>,
    inodes: Vec<Inode>,
    queue: VecDeque<(CallId, Message)>,
    active: Option<Active>,
    next_seq: u64,
    /// Recovery episode behind the driver update currently being
    /// reintegrated (from the DS CHECK reply); tags the reopen/reissue
    /// trace events with the causing episode.
    recovery: Option<RecoveryId>,
    recovery_parent: Option<SpanId>,
    /// Device capacity in sectors, from the driver's OPEN reply; feeds
    /// the descriptor-checksum cross-check.
    capacity: u64,
    /// Read chunks completed, for scrub sampling.
    scrub_chunks: u64,
    /// Cache-metadata checkpoint client (crash-only contract): the
    /// mounted superblock + inode table are externalized so a restarted
    /// incarnation rehydrates without re-reading the disk.
    ckpt: Option<DriverCkpt>,
    /// Mount metadata changed since the last checkpoint save.
    dirty: bool,
    /// Injected-defect latches (microreboot campaign).
    fault: FaultState,
}

impl FileServer {
    /// Creates MFS bound to the block driver published under
    /// `driver_key` (e.g. `"blk.sata"`). `ds` and `rs` are the data store
    /// and reincarnation server endpoints.
    pub fn new(ds: Endpoint, rs: Endpoint, driver_key: &str) -> Self {
        FileServer {
            ds,
            rs,
            driver_key: driver_key.to_string(),
            driver: None,
            driver_open: false,
            open_call: None,
            open_seq: None,
            check_call: None,
            retry_seq: None,
            mount: MountState::NotMounted,
            superblock: None,
            inodes: Vec::new(),
            queue: VecDeque::new(),
            active: None,
            next_seq: 1,
            recovery: None,
            recovery_parent: None,
            capacity: 0,
            scrub_chunks: 0,
            ckpt: None,
            dirty: false,
            fault: FaultState::detached(),
        }
    }

    /// Enables cache-metadata checkpointing: the superblock and inode
    /// table are saved to the DS store at mount time and rehydrated
    /// lazily after a microreboot, skipping the disk re-read.
    pub fn with_checkpointing(mut self) -> Self {
        self.ckpt = Some(DriverCkpt::new(self.ds, "mount"));
        self
    }

    /// Attaches the server fault plane (campaign defect injection).
    pub fn with_fault_plane(mut self, plane: &FaultPlane, name: &str) -> Self {
        self.fault = FaultState::attached(plane, name);
        self
    }

    // ---------------- cache-metadata externalization ----------------

    /// Serializes the mount metadata: one superblock sector followed by
    /// the in-memory inode table.
    fn encode_mount(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match &self.superblock {
            Some(sb) => out.extend_from_slice(&sb.encode()),
            None => out.extend_from_slice(&vec![0u8; SECTOR]),
        }
        out.extend_from_slice(&(self.inodes.len() as u16).to_le_bytes());
        for ino in &self.inodes {
            out.extend_from_slice(&ino.encode());
        }
        out
    }

    /// Rehydrates mount metadata from a restored snapshot. Returns
    /// `false` (leaving a clean slate, so the normal mount path runs) if
    /// the payload does not parse.
    fn apply_mount(&mut self, ctx: &mut Ctx<'_>, payload: &[u8]) -> bool {
        let Some(sb_raw) = payload.get(..SECTOR) else {
            return false;
        };
        let Some(sb) = Superblock::decode(sb_raw) else {
            return false;
        };
        let Some(count_bytes) = payload.get(SECTOR..SECTOR + 2) else {
            return false;
        };
        let count = u16::from_le_bytes(count_bytes.try_into().unwrap_or([0; 2])) as usize;
        let mut inodes = Vec::with_capacity(count);
        let mut at = SECTOR + 2;
        for _ in 0..count {
            let Some(raw) = payload.get(at..at + INODE_SIZE) else {
                return false;
            };
            let Some(ino) = Inode::decode(raw) else {
                return false;
            };
            inodes.push(ino);
            at += INODE_SIZE;
        }
        self.superblock = Some(sb);
        self.inodes = inodes;
        self.mount = MountState::Mounted;
        ctx.metrics().incr("mfs.mount_restored");
        true
    }

    /// Quiescent-point save of the mount metadata (it only changes at
    /// mount time, so this fires once per incarnation that mounted).
    fn maybe_save(&mut self, ctx: &mut Ctx<'_>) {
        if !self.dirty {
            return;
        }
        match self.ckpt.as_ref() {
            Some(ckpt) if ckpt.ready() => {}
            Some(_) => return,
            None => {
                self.dirty = false;
                return;
            }
        }
        let payload = self.encode_mount();
        if let Some(ckpt) = self.ckpt.as_mut() {
            ckpt.save(ctx, payload);
        }
        self.dirty = false;
    }

    /// Sends a client-facing reply through the injected-garble filter.
    fn client_reply(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: Message) {
        let msg = if self.fault.garbling() {
            ctx.metrics().incr("mfs.garbled_replies");
            garble_message(msg)
        } else {
            msg
        };
        let _ = ctx.reply(call, msg);
    }

    fn driver_ready(&self) -> bool {
        self.driver.is_some() && self.driver_open
    }

    fn ds_check(&mut self, ctx: &mut Ctx<'_>) {
        if self.check_call.is_none() {
            self.check_call = ctx.sendrec(self.ds, Message::new(ds::CHECK)).ok();
        }
    }

    // [recovery:begin]
    fn complain(&mut self, ctx: &mut Ctx<'_>, kind: u32, why: &str) {
        // [recovery] §5.1 input 5: ask RS to replace the malfunctioning
        // [recovery] driver; RS verifies our authority and weighs the
        // [recovery] evidence class before acting.
        ctx.trace(
            TraceLevel::Warn,
            format!("complaining about {}: {why}", self.driver_key),
        );
        ctx.metrics().incr("mfs.complaints");
        ctx.metrics()
            .incr(&format!("sentinel.mfs.{}", evidence::name(kind)));
        let key = self.driver_key.clone();
        let (slot, generation) = self.driver.map(pack_endpoint).unwrap_or((0, 0));
        let _ = ctx.sendrec(
            self.rs,
            Message::new(rsp::COMPLAIN)
                .with_param(0, u64::from(kind))
                .with_param(1, slot)
                .with_param(2, generation)
                .with_data(key.into_bytes()),
        );
    }

    /// Handles a checksum-class sentinel violation: complain (the
    /// low-confidence evidence accumulates toward RS's quorum) and retry
    /// the chunk a bounded number of times; if the driver keeps
    /// miscomputing, fail the op so the client is not stuck while RS's
    /// restart is in flight.
    fn csum_violation(&mut self, ctx: &mut Ctx<'_>, why: &str) {
        self.complain(ctx, evidence::CRC_MISMATCH, why);
        let Some(a) = self.active.as_mut() else {
            return;
        };
        a.scrub = None;
        if a.csum_retries < CSUM_RETRIES {
            a.csum_retries += 1;
            ctx.metrics().incr("sentinel.mfs.csum_retries");
            self.issue_chunk(ctx);
        } else {
            self.finish_active(ctx, status::EIO);
        }
    }
    // [recovery:end]

    /// Issues (or reissues) the current chunk to the driver.
    fn issue_chunk(&mut self, ctx: &mut Ctx<'_>) {
        let Some(driver) = self.driver else {
            if let Some(a) = self.active.as_mut() {
                a.waiting_driver = true;
            }
            return;
        };
        let Some(a) = self.active.as_mut() else {
            return;
        };
        let bytes = (a.chunk_sectors * SECTOR as u64) as usize;
        let write = matches!(a.kind, OpKind::Write { .. });
        if write {
            // Stage the chunk's data in the I/O buffer.
            if let OpKind::Write { data, .. } = &a.kind {
                let start = (a.file_pos - a.chunk_skip as u64) as usize;
                // file_pos is sector-aligned for writes; chunk data slice:
                let done = data.len() - a.remaining as usize;
                let _ = start;
                let chunk = &data[done..done + bytes];
                if ctx.mem_write(IO_BUF, chunk).is_err() {
                    ctx.trace(TraceLevel::Error, "io buffer write failed".to_string());
                    return;
                }
            }
        }
        let access = if write {
            GrantAccess::Read
        } else {
            GrantAccess::Write
        };
        let grant = match ctx.grant_create(driver, IO_BUF, bytes, access) {
            Ok(g) => g,
            Err(e) => {
                ctx.trace(TraceLevel::Error, format!("grant failed: {e}"));
                return;
            }
        };
        let mtype = if write { bdev::WRITE } else { bdev::READ };
        let msg = Message::new(mtype)
            .with_param(0, a.chunk_lba)
            .with_param(1, a.chunk_sectors)
            .with_param(2, u64::from(grant.0));
        let seq = self.next_seq;
        self.next_seq += 1;
        match ctx.sendrec(driver, msg) {
            Ok(call) => {
                let Some(a) = self.active.as_mut() else {
                    let _ = ctx.grant_revoke(grant);
                    return;
                };
                a.grant = Some(grant);
                a.driver_call = Some(call);
                a.seq = seq;
                a.waiting_driver = false;
                // Response deadline (complaint input, §5.1).
                let _ = ctx.set_alarm(DRIVER_DEADLINE, seq);
            }
            Err(_) => {
                // Driver died between publish and send: wait for restart.
                let _ = ctx.grant_revoke(grant);
                let Some(a) = self.active.as_mut() else {
                    return;
                };
                a.grant = None;
                a.driver_call = None;
                a.waiting_driver = true;
                ctx.metrics().incr("mfs.pending_aborts");
            }
        }
    }

    /// Computes the next chunk for the active op and sends it.
    fn start_next_chunk(&mut self, ctx: &mut Ctx<'_>) {
        let Some(a) = self.active.as_mut() else {
            return;
        };
        match a.kind {
            OpKind::Mount => {
                // Mount chunks are set up explicitly in `begin_mount` /
                // `mount_continue`.
            }
            OpKind::Read { .. } | OpKind::Write { .. } => {
                // A corrupt or stale externalized inode table could leave
                // the position out of bounds after a restore: fail the op,
                // don't kill the incarnation.
                let Some(ino) = self.inodes.get(a.ino) else {
                    self.finish_active(ctx, status::EIO);
                    return;
                };
                let Some((lba, in_off)) = ino.locate(a.file_pos) else {
                    self.finish_active(ctx, status::EIO);
                    return;
                };
                let contiguous = ino.contiguous_sectors_at(a.file_pos);
                let want_bytes = in_off as u64 + a.remaining;
                let sectors = want_bytes
                    .div_ceil(SECTOR as u64)
                    .min(contiguous)
                    .min(MAX_CHUNK_SECTORS);
                a.chunk_lba = lba;
                a.chunk_sectors = sectors;
                a.chunk_skip = in_off;
            }
        }
        self.issue_chunk(ctx);
    }

    fn finish_active(&mut self, ctx: &mut Ctx<'_>, st: u64) {
        let Some(a) = self.active.take() else {
            return;
        };
        match a.kind {
            OpKind::Mount => {
                // handled by mount_continue; only failures land here
                ctx.trace(TraceLevel::Error, format!("mount I/O failed: {st}"));
                self.mount = MountState::NotMounted;
            }
            OpKind::Read { client } => {
                let reply = if st == status::OK {
                    Message::new(fs::DATA_REPLY)
                        .with_param(0, status::OK)
                        .with_param(1, a.assembled.len() as u64)
                        .with_data(a.assembled)
                } else {
                    Message::new(fs::DATA_REPLY).with_param(0, st)
                };
                self.client_reply(ctx, client, reply);
            }
            OpKind::Write { client, data } => {
                let reply = if st == status::OK {
                    Message::new(fs::DATA_REPLY)
                        .with_param(0, status::OK)
                        .with_param(1, data.len() as u64)
                } else {
                    Message::new(fs::DATA_REPLY).with_param(0, st)
                };
                self.client_reply(ctx, client, reply);
            }
        }
        self.pump(ctx);
    }

    fn begin_mount(&mut self, ctx: &mut Ctx<'_>) {
        self.mount = MountState::ReadingSuper;
        self.active = Some(Active {
            kind: OpKind::Mount,
            file_pos: 0,
            remaining: SECTOR as u64,
            assembled: Vec::new(),
            ino: usize::MAX,
            chunk_lba: 0,
            chunk_sectors: 1,
            chunk_skip: 0,
            grant: None,
            driver_call: None,
            seq: 0,
            waiting_driver: false,
            csum_retries: 0,
            scrub: None,
        });
        self.issue_chunk(ctx);
    }

    fn mount_continue(&mut self, ctx: &mut Ctx<'_>, data: Vec<u8>) {
        match self.mount {
            MountState::ReadingSuper => {
                let Some(sb) = Superblock::decode(&data) else {
                    ctx.trace(TraceLevel::Error, "bad superblock".to_string());
                    self.active = None;
                    self.mount = MountState::NotMounted;
                    return;
                };
                self.mount = MountState::ReadingTable;
                let Some(a) = self.active.as_mut() else {
                    self.mount = MountState::NotMounted;
                    return;
                };
                a.chunk_lba = sb.inode_table_lba;
                a.chunk_sectors = u64::from(sb.inode_table_sectors);
                self.superblock = Some(sb);
                self.issue_chunk(ctx);
            }
            MountState::ReadingTable => {
                self.inodes = data.chunks(INODE_SIZE).filter_map(Inode::decode).collect();
                self.mount = MountState::Mounted;
                self.active = None;
                self.dirty = true;
                ctx.trace(
                    TraceLevel::Info,
                    format!("mounted: {} files", self.inodes.len()),
                );
                self.pump(ctx);
            }
            _ => {}
        }
    }

    /// Starts queued work when idle.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        if self.active.is_some() || !self.driver_ready() {
            return;
        }
        if self.mount != MountState::Mounted {
            if self.mount == MountState::NotMounted {
                self.begin_mount(ctx);
            }
            return;
        }
        while let Some((call, msg)) = self.queue.pop_front() {
            match msg.mtype {
                fs::OPEN => {
                    let name = String::from_utf8_lossy(&msg.data).to_string();
                    let reply = match self.inodes.iter().position(|i| i.name == name) {
                        Some(idx) => Message::new(fs::OPEN_REPLY)
                            .with_param(0, status::OK)
                            .with_param(1, idx as u64)
                            .with_param(2, self.inodes[idx].size),
                        None => Message::new(fs::OPEN_REPLY).with_param(0, status::ENODEV),
                    };
                    self.client_reply(ctx, call, reply);
                }
                fs::READ => {
                    let (ino, offset, len) = (msg.param(0) as usize, msg.param(1), msg.param(2));
                    let Some(inode) = self.inodes.get(ino) else {
                        self.client_reply(
                            ctx,
                            call,
                            Message::new(fs::DATA_REPLY).with_param(0, status::EINVAL),
                        );
                        continue;
                    };
                    let len = len.min(inode.size.saturating_sub(offset));
                    if len == 0 {
                        self.client_reply(
                            ctx,
                            call,
                            Message::new(fs::DATA_REPLY)
                                .with_param(0, status::OK)
                                .with_param(1, 0),
                        );
                        continue;
                    }
                    ctx.metrics().incr("mfs.reads");
                    self.active = Some(Active {
                        kind: OpKind::Read { client: call },
                        file_pos: offset,
                        remaining: len,
                        assembled: Vec::with_capacity(len as usize),
                        ino,
                        chunk_lba: 0,
                        chunk_sectors: 0,
                        chunk_skip: 0,
                        grant: None,
                        driver_call: None,
                        seq: 0,
                        waiting_driver: false,
                        csum_retries: 0,
                        scrub: None,
                    });
                    self.start_next_chunk(ctx);
                    return;
                }
                fs::WRITE => {
                    let (ino, offset) = (msg.param(0) as usize, msg.param(1));
                    let data = msg.data.clone();
                    let aligned = offset % SECTOR as u64 == 0 && data.len() % SECTOR == 0;
                    let in_file = self
                        .inodes
                        .get(ino)
                        .is_some_and(|i| offset + data.len() as u64 <= i.size);
                    if data.is_empty() || !aligned || !in_file {
                        self.client_reply(
                            ctx,
                            call,
                            Message::new(fs::DATA_REPLY).with_param(0, status::EINVAL),
                        );
                        continue;
                    }
                    ctx.metrics().incr("mfs.writes");
                    self.active = Some(Active {
                        kind: OpKind::Write {
                            client: call,
                            data: data.clone(),
                        },
                        file_pos: offset,
                        remaining: data.len() as u64,
                        assembled: Vec::new(),
                        ino,
                        chunk_lba: 0,
                        chunk_sectors: 0,
                        chunk_skip: 0,
                        grant: None,
                        driver_call: None,
                        seq: 0,
                        waiting_driver: false,
                        csum_retries: 0,
                        scrub: None,
                    });
                    self.start_next_chunk(ctx);
                    return;
                }
                _ => {
                    self.client_reply(
                        ctx,
                        call,
                        Message::new(fs::DATA_REPLY).with_param(0, status::EINVAL),
                    );
                }
            }
        }
    }

    // [recovery:begin]
    fn on_driver_published(&mut self, ctx: &mut Ctx<'_>, ep: Endpoint) {
        let recovered = self.driver.is_some_and(|old| old != ep);
        self.driver = Some(ep);
        self.driver_open = false;
        // Reinitialize the driver by reopening minor devices (§6.2). The
        // reopen gets the same response deadline as data requests: its
        // reply can be lost in flight, and an unguarded await would leave
        // MFS sitting on client requests with no call open — exactly what
        // the RS progress audit convicts.
        self.open_call = ctx
            .sendrec(ep, Message::new(bdev::OPEN).with_param(0, 0))
            .ok();
        if self.open_call.is_some() {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.open_seq = Some(seq);
            let _ = ctx.set_alarm(DRIVER_DEADLINE, seq);
        }
        if recovered {
            ctx.metrics().incr("mfs.driver_reintegrations");
            let ev = ctx
                .event(TraceLevel::Info, format!("block driver recovered as {ep}"))
                .with_field("ev", "reintegrate")
                .with_field("driver", self.driver_key.as_str())
                .in_recovery_opt(self.recovery)
                .with_parent_opt(self.recovery_parent);
            ctx.trace_event(ev);
        }
    }
    // [recovery:end]

    fn on_driver_reply(&mut self, ctx: &mut Ctx<'_>, result: Result<Message, IpcError>) {
        // Revoke the chunk grant in all cases.
        if let Some(g) = self.active.as_mut().and_then(|a| a.grant.take()) {
            let _ = ctx.grant_revoke(g);
        }
        match result {
            // [recovery:begin]
            Err(_) => {
                // §6.2: "If I/O was in progress at the time of the
                // failure, the IPC rendezvous will be aborted by the
                // kernel, and the file server marks the request as
                // pending", then blocks until the restart notification.
                let Some(a) = self.active.as_mut() else {
                    return;
                };
                a.driver_call = None;
                a.waiting_driver = true;
                self.driver_open = false;
                ctx.metrics().incr("mfs.pending_aborts");
                ctx.trace(
                    TraceLevel::Warn,
                    "driver request aborted; marked pending until restart".to_string(),
                );
            }
            // [recovery:end]
            Ok(reply) => {
                let Some(a) = self.active.as_mut() else {
                    return;
                };
                a.driver_call = None;
                if reply.mtype != bdev::REPLY {
                    // Protocol violation: unexpected message type.
                    a.waiting_driver = true;
                    self.complain(ctx, evidence::BAD_REPLY, "unexpected reply type");
                    return;
                }
                match reply.param(0) {
                    status::OK => {
                        let is_write = matches!(a.kind, OpKind::Write { .. });
                        let is_mount = matches!(a.kind, OpKind::Mount);
                        let bytes = (a.chunk_sectors * SECTOR as u64) as usize;
                        let expect_sum =
                            descriptor_sum(a.chunk_lba, a.chunk_sectors, self.capacity);
                        if reply.param(1) as usize != bytes {
                            a.waiting_driver = true;
                            self.complain(ctx, evidence::SHORT_TRANSFER, "short transfer");
                            return;
                        }
                        // Sentinel: the driver echoes the checksum of the
                        // request descriptor it validated (params[2] =
                        // 1 + sum, 0 = no echo); a disagreement means its
                        // validation path computed garbage.
                        let echo = reply.param(2);
                        if echo != 0 && echo != 1 + u64::from(expect_sum) {
                            self.csum_violation(ctx, "descriptor checksum echo mismatch");
                            return;
                        }
                        if is_mount {
                            let Ok(data) = ctx.mem_read(IO_BUF, bytes) else {
                                ctx.trace(TraceLevel::Error, "io buffer read failed".to_string());
                                self.finish_active(ctx, status::EIO);
                                return;
                            };
                            self.mount_continue(ctx, data);
                            return;
                        }
                        if is_write {
                            let Some(a) = self.active.as_mut() else {
                                return;
                            };
                            let take = bytes as u64;
                            a.file_pos += take;
                            a.remaining -= take.min(a.remaining);
                        } else {
                            let Ok(data) = ctx.mem_read(IO_BUF, bytes) else {
                                ctx.trace(TraceLevel::Error, "io buffer read failed".to_string());
                                self.finish_active(ctx, status::EIO);
                                return;
                            };
                            let Some(a) = self.active.as_mut() else {
                                return;
                            };
                            match a.scrub.take() {
                                Some(expected) => {
                                    // Second read of a scrubbed chunk: the
                                    // two reads must agree byte for byte.
                                    if data != expected {
                                        ctx.metrics().incr("sentinel.mfs.scrub_mismatch");
                                        self.csum_violation(ctx, "read-back scrub mismatch");
                                        return;
                                    }
                                    ctx.metrics().incr("sentinel.mfs.scrub_ok");
                                }
                                None => {
                                    self.scrub_chunks += 1;
                                    if self.scrub_chunks.is_multiple_of(SCRUB_SAMPLE) {
                                        // Sampled read-back scrub: re-read
                                        // the same chunk and compare before
                                        // trusting the data.
                                        ctx.metrics().incr("sentinel.mfs.scrubs");
                                        let Some(a) = self.active.as_mut() else {
                                            return;
                                        };
                                        a.scrub = Some(data);
                                        self.issue_chunk(ctx);
                                        return;
                                    }
                                }
                            }
                            let Some(a) = self.active.as_mut() else {
                                return;
                            };
                            let start = a.chunk_skip;
                            let take = (bytes - start).min(a.remaining as usize);
                            a.assembled.extend_from_slice(&data[start..start + take]);
                            a.file_pos += take as u64;
                            a.remaining -= take as u64;
                        }
                        let remaining = self.active.as_ref().map_or(0, |a| a.remaining);
                        if remaining == 0 {
                            self.finish_active(ctx, status::OK);
                        } else {
                            // [recovery] continue with the next chunk of a
                            // multi-chunk transfer.
                            self.start_next_chunk(ctx);
                        }
                    }
                    status::EAGAIN => {
                        // Driver busy (e.g. a duplicated delivery raced the
                        // op already at the device): back off past the op
                        // instead of hammering the driver with a same-tick
                        // reissue loop.
                        ctx.metrics().incr("mfs.retries");
                        let seq = self.next_seq;
                        self.next_seq += 1;
                        self.retry_seq = Some(seq);
                        let _ = ctx.set_alarm(RETRY_DELAY, seq);
                    }
                    _ => {
                        self.finish_active(ctx, status::EIO);
                    }
                }
            }
        }
    }
}

impl Process for FileServer {
    // analyze:recovery-root
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match self.fault.poll() {
            FaultAction::Crash => {
                ctx.metrics().incr("mfs.injected_crash");
                ctx.panic("injected server defect: wild store");
                return;
            }
            FaultAction::Stall => {
                ctx.metrics().incr("mfs.stalled_events");
                return;
            }
            FaultAction::Garble | FaultAction::None => {}
        }
        self.dispatch(ctx, event);
        self.maybe_save(ctx);
    }
}

impl FileServer {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {
                let key = "blk.*".to_string();
                let _ = ctx.sendrec(
                    self.ds,
                    Message::new(ds::SUBSCRIBE).with_data(key.into_bytes()),
                );
            }
            ProcEvent::Notify { from } if from == self.ds => {
                self.ds_check(ctx);
            }
            ProcEvent::Request { call, msg } => {
                if let Some(ckpt) = self.ckpt.as_mut() {
                    if ckpt.park_until_restored(ctx, call, msg.clone()) {
                        return;
                    }
                }
                self.queue.push_back((call, msg));
                self.pump(ctx);
            }
            ProcEvent::Reply { call, result } => {
                let ckpt_outcome = match self.ckpt.as_mut() {
                    Some(ckpt) => ckpt.on_reply(ctx, call, &result),
                    None => None,
                };
                if let Some((restore, parked)) = ckpt_outcome {
                    if let RestoreEvent::Restored(snap) = restore {
                        if !self.apply_mount(ctx, &snap.payload) {
                            ctx.metrics().incr("mfs.mount_restore_garbage");
                        }
                    }
                    for (parked_call, parked_msg) in parked {
                        self.queue.push_back((parked_call, parked_msg));
                    }
                    self.pump(ctx);
                    return;
                }
                if Some(call) == self.check_call {
                    self.check_call = None;
                    if let Ok(reply) = result {
                        if reply.mtype == ds::CHECK_REPLY && reply.param(0) == 0 {
                            let key = String::from_utf8_lossy(&reply.data).to_string();
                            let ep = unpack_endpoint(reply.param(1), reply.param(2));
                            if key == self.driver_key {
                                self.recovery = RecoveryId::from_wire(reply.param(3));
                                self.recovery_parent = SpanId::from_wire(reply.param(4));
                                self.on_driver_published(ctx, ep);
                            }
                            // Drain any further queued updates.
                            self.ds_check(ctx);
                        }
                    }
                    return;
                }
                if Some(call) == self.open_call {
                    self.open_call = None;
                    self.open_seq = None;
                    match result {
                        Ok(reply) if reply.mtype == bdev::REPLY && reply.param(0) == status::OK => {
                            self.driver_open = true;
                            // OPEN replies carry the device capacity, which
                            // feeds the descriptor-checksum cross-check.
                            self.capacity = reply.param(1);
                            // [recovery:begin]
                            // Reissue the pending request, then resume
                            // normal operation (§6.2). The episode id is
                            // consumed here: whatever happens next is
                            // ordinary operation again.
                            let rid = self.recovery.take();
                            let parent = self.recovery_parent.take();
                            if self.active.as_ref().is_some_and(|a| a.waiting_driver) {
                                let ev = ctx
                                    .event(TraceLevel::Info, "reissue pending io".to_string())
                                    .with_field("ev", "resume")
                                    .with_field("driver", self.driver_key.as_str())
                                    .in_recovery_opt(rid)
                                    .with_parent_opt(parent);
                                ctx.trace_event(ev);
                                ctx.metrics().incr("mfs.reissues");
                                self.issue_chunk(ctx);
                            } else {
                                self.pump(ctx);
                            }
                            // [recovery:end]
                        }
                        Ok(_) => {
                            // A restarted driver answering its reopen with
                            // garbage is as defective as one that never
                            // answers: complain so RS replaces it instead
                            // of waiting forever for a publish that will
                            // never come.
                            self.complain(
                                ctx,
                                evidence::BAD_REPLY,
                                "garbled reply to device reopen",
                            );
                        }
                        // Died before answering: the kernel already told
                        // RS; the restart publish retriggers the reopen.
                        Err(_) => {}
                    }
                    return;
                }
                if self.active.as_ref().and_then(|a| a.driver_call) == Some(call) {
                    self.on_driver_reply(ctx, result);
                }
                // Replies to SUBSCRIBE / COMPLAIN need no action.
            }
            // [recovery:begin]
            ProcEvent::Alarm { token } => {
                // Reopen deadline: no usable reply to the post-restart
                // OPEN within the window. The reply may have been lost in
                // flight (the rendezvous is closed, so no abort will ever
                // wake us) — complain so RS restarts the driver and the
                // resulting publish retriggers the reopen.
                if self.open_seq == Some(token) {
                    self.open_seq = None;
                    self.open_call = None;
                    self.complain(ctx, evidence::DEADLINE, "no reply to device reopen");
                    return;
                }
                // EAGAIN backoff expired: reissue the active chunk (unless
                // something else — a driver restart — already did).
                if self.retry_seq == Some(token) {
                    self.retry_seq = None;
                    let idle = self
                        .active
                        .as_ref()
                        .is_some_and(|a| a.driver_call.is_none() && !a.waiting_driver);
                    if idle {
                        self.issue_chunk(ctx);
                    }
                    return;
                }
                // Driver response deadline: if the same request is still
                // outstanding, the driver "fails to respond to a request"
                // (§5.1) and we ask RS to replace it.
                let stuck = self
                    .active
                    .as_ref()
                    .is_some_and(|a| a.driver_call.is_some() && a.seq == token);
                if stuck {
                    if let Some(a) = self.active.as_mut() {
                        a.driver_call = None;
                        a.waiting_driver = true;
                        if let Some(g) = a.grant.take() {
                            let _ = ctx.grant_revoke(g);
                        }
                    }
                    self.complain(ctx, evidence::DEADLINE, "no response within deadline");
                }
            }
            // [recovery:end]
            _ => {}
        }
    }
}
