//! The per-node fleet agent: one end of the DIR-Net-style two-level
//! backbone. Level one is each node's local RS recovering its own
//! drivers and servers; level two is this agent, gossiping RS liveness
//! beacons and node health around the watchdog ring and running the
//! federated evidence ledger that convicts a dead RS or a dead node.
//!
//! The agent is a pure protocol state machine: the fleet event loop
//! feeds it delivered frames ([`FleetAgent::on_frame`]) and ticks it
//! with a sample of its node's local state ([`FleetAgent::tick`]); it
//! returns frames to transmit and [`FleetAction`]s for the fleet to
//! execute. It never touches an `Os` directly, which keeps every
//! transition unit-testable without booting machines.
//!
//! Ledger semantics mirror the single-node RS complaint arbitration,
//! federated across nodes:
//!
//! * **typed complaints** — accusations carry an evidence kind
//!   (`rs-silent` when a node's heartbeats stay fresh but its RS beacon
//!   stops advancing; `node-unreachable` when the heartbeats themselves
//!   stop) and the accused generation;
//! * **ghost rejection** — complaints about an older generation than
//!   the accused's current one are about a corpse and are discarded;
//! * **accuser inversion** — an accuser naming [`INVERSION_ACCUSED`]
//!   distinct subjects within the complaint window is the likelier
//!   defect (an isolated node sees *everyone* as dead); its complaints
//!   are struck and ignored;
//! * **quorum** — [`quorum`] distinct un-inverted accusers within the
//!   window convict; the ring-successor arbiter executes the verdict.

use std::collections::BTreeMap;

use phoenix_servers::policy::PolicyParams;
use phoenix_servers::proto::evidence;
use phoenix_simcore::metrics::MetricsRegistry;
use phoenix_simcore::time::{SimDuration, SimTime};

use crate::proto::{gossip, Frame, NodeStat};

/// Heartbeat gossip period.
pub const HB_PERIOD: SimDuration = SimDuration::from_millis(50);
/// Heartbeat-silence threshold before a `node-unreachable` complaint.
pub const NODE_SUSPECT_AFTER: SimDuration = SimDuration::from_millis(500);
/// Beacon-stall threshold before an `rs-silent` complaint. The RS audit
/// sweep advances the beacon every 750 ms, so anything past two missed
/// sweeps plus gossip propagation is a stall, not jitter.
pub const RS_SUSPECT_AFTER: SimDuration = SimDuration::from_secs(2);
/// Sliding evidence window for quorum and inversion — the node-level
/// analogue of RS's complaint arbitration, sourced from the same
/// baseline table so the two layers cannot drift apart.
pub const COMPLAINT_WINDOW: SimDuration = PolicyParams::BASELINE.complaint_window;
/// Minimum spacing between re-complaints about the same subject.
pub const RECOMPLAIN_AFTER: SimDuration = SimDuration::from_millis(500);
/// Distinct subjects within the window that invert an accuser
/// ([`PolicyParams::BASELINE`], shared with RS's arbitration).
pub const INVERSION_ACCUSED: usize = PolicyParams::BASELINE.inversion_accused as usize;
/// Complaint suppression around a conviction, covering the reboot.
pub const REBOOT_GRACE: SimDuration = SimDuration::from_secs(4);

/// Distinct accusers required to convict in an `n`-node fleet.
pub fn quorum(n: u8) -> usize {
    usize::from(n.saturating_sub(1)).min(2)
}

/// What the fleet event loop must do on the agent's behalf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetAction {
    /// Quorum convicted `node` (at generation `gen`); this agent is the
    /// arbiter and the fleet must reincarnate the node from a peer-held
    /// snapshot.
    Convict {
        /// The convicted node.
        node: u8,
        /// The generation that died.
        gen: u32,
        /// Dominant evidence kind behind the verdict.
        evidence: u32,
    },
}

/// One tick's output.
#[derive(Clone, Debug, Default)]
pub struct AgentOutput {
    /// Frames to transmit, as `(destination, frame)`.
    pub frames: Vec<(u8, Frame)>,
    /// Verdicts for the fleet to execute.
    pub actions: Vec<FleetAction>,
}

/// Sample of the local node's health, taken by the fleet each tick.
#[derive(Clone, Copy, Debug)]
pub struct LocalView {
    /// The local `rs.beacon` counter.
    pub rs_beacon: u64,
    /// Whether the local RS endpoint is up.
    pub rs_up: bool,
}

/// The agent's freshest knowledge of one peer.
#[derive(Clone, Copy, Debug)]
struct PeerView {
    gen: u32,
    hb_seq: u64,
    last_change_at: SimTime,
    beacon: u64,
    beacon_change_at: SimTime,
    rs_up: bool,
}

/// One accepted ledger entry.
#[derive(Clone, Copy, Debug)]
struct Complaint {
    accuser: u8,
    at: SimTime,
    evidence: u32,
    subject_gen: u32,
}

/// Ledger and protocol counters, folded into the fleet's metrics.
#[derive(Clone, Copy, Debug, Default)]
pub struct AgentStats {
    /// Complaints this agent raised.
    pub complaints_sent: u64,
    /// Complaints accepted into the ledger.
    pub complaints_accepted: u64,
    /// Complaints rejected as ghosts (stale generation).
    pub ghost_rejected: u64,
    /// Accusers inverted for mass accusation.
    pub inversions: u64,
    /// Liveness rebuttals transmitted.
    pub rebuttals_sent: u64,
    /// Complaints cleared by a peer's rebuttal.
    pub rebutted_cleared: u64,
    /// Convictions this agent arbitrated.
    pub convictions: u64,
}

impl AgentStats {
    /// Adds every counter into `metrics` under `fleet.agent.*`.
    pub fn fold_into(&self, metrics: &mut MetricsRegistry) {
        metrics.add("fleet.agent.complaints_sent", self.complaints_sent);
        metrics.add("fleet.agent.complaints_accepted", self.complaints_accepted);
        metrics.add("fleet.agent.ghost_rejected", self.ghost_rejected);
        metrics.add("fleet.agent.inversions", self.inversions);
        metrics.add("fleet.agent.rebuttals_sent", self.rebuttals_sent);
        metrics.add("fleet.agent.rebutted_cleared", self.rebutted_cleared);
        metrics.add("fleet.agent.convictions", self.convictions);
    }
}

/// The per-node watchdog agent.
#[derive(Debug)]
pub struct FleetAgent {
    /// This node's id.
    pub id: u8,
    n: u8,
    /// This node's boot generation.
    pub gen: u32,
    hb_seq: u64,
    next_hb_at: SimTime,
    views: BTreeMap<u8, PeerView>,
    ledger: BTreeMap<u8, Vec<Complaint>>,
    accusations: BTreeMap<u8, Vec<(u8, SimTime)>>,
    inverted: BTreeMap<u8, SimTime>,
    grace_until: BTreeMap<u8, SimTime>,
    last_complaint_at: BTreeMap<u8, SimTime>,
    rebut: Option<u32>,
    /// Protocol counters.
    pub stats: AgentStats,
}

impl FleetAgent {
    /// A fresh agent for node `id` of `n`, booting at generation `gen`
    /// at fleet time `now`. Every peer starts presumed alive as of
    /// `now`, so suspicion needs a real silence, not a cold view.
    pub fn new(id: u8, n: u8, gen: u32, now: SimTime) -> FleetAgent {
        let mut views = BTreeMap::new();
        for node in 0..n {
            if node != id {
                views.insert(
                    node,
                    PeerView {
                        gen: 0,
                        hb_seq: 0,
                        last_change_at: now,
                        beacon: 0,
                        beacon_change_at: now,
                        rs_up: true,
                    },
                );
            }
        }
        FleetAgent {
            id,
            n,
            gen,
            hb_seq: 0,
            next_hb_at: now,
            views,
            ledger: BTreeMap::new(),
            accusations: BTreeMap::new(),
            inverted: BTreeMap::new(),
            grace_until: BTreeMap::new(),
            last_complaint_at: BTreeMap::new(),
            rebut: None,
            stats: AgentStats::default(),
        }
    }

    /// The agent's current view of `node`: `(generation, hb sequence)`.
    pub fn view_of(&self, node: u8) -> Option<(u32, u64)> {
        self.views.get(&node).map(|v| (v.gen, v.hb_seq))
    }

    /// Active (windowed) complaints against `node` in this ledger.
    pub fn complaints_against(&self, node: u8) -> usize {
        self.ledger.get(&node).map_or(0, Vec::len)
    }

    fn others(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.n).filter(move |&p| p != self.id)
    }

    fn in_grace(&self, node: u8, now: SimTime) -> bool {
        self.grace_until.get(&node).is_some_and(|&g| now < g)
    }

    /// Merges one gossiped stat into the view table. Returns whether the
    /// merge advanced the peer's beacon (used by rebuttal clearing).
    fn merge_stat(&mut self, now: SimTime, stat: &NodeStat) -> bool {
        if stat.node == self.id {
            return false;
        }
        let Some(view) = self.views.get_mut(&stat.node) else {
            return false;
        };
        if stat.gen > view.gen {
            // A reborn incarnation: reset the view wholesale and drop
            // complaints about the corpse.
            *view = PeerView {
                gen: stat.gen,
                hb_seq: stat.hb_seq,
                last_change_at: now,
                beacon: stat.beacon,
                beacon_change_at: now,
                rs_up: stat.rs_up,
            };
            self.ledger.remove(&stat.node);
            return true;
        }
        if stat.gen < view.gen {
            return false; // gossip echo of a dead incarnation
        }
        let mut beacon_advanced = false;
        if stat.hb_seq > view.hb_seq {
            view.hb_seq = stat.hb_seq;
            view.last_change_at = now;
            view.rs_up = stat.rs_up;
        }
        if stat.beacon > view.beacon {
            view.beacon = stat.beacon;
            view.beacon_change_at = now;
            beacon_advanced = true;
        }
        beacon_advanced
    }

    fn prune(&mut self, now: SimTime) {
        let horizon = |at: SimTime| now - at <= COMPLAINT_WINDOW;
        self.inverted.retain(|_, &mut at| horizon(at));
        for log in self.accusations.values_mut() {
            log.retain(|&(_, at)| horizon(at));
        }
        self.accusations.retain(|_, log| !log.is_empty());
        let inverted = self.inverted.clone();
        for entries in self.ledger.values_mut() {
            entries.retain(|c| horizon(c.at) && !inverted.contains_key(&c.accuser));
        }
        self.ledger.retain(|_, entries| !entries.is_empty());
    }

    fn accept_complaint(&mut self, now: SimTime, accuser: u8, frame: &Frame) {
        let subject = frame.subject;
        if self.in_grace(subject, now) {
            return;
        }
        let Some(view) = self.views.get(&subject) else {
            return;
        };
        if frame.subject_gen < view.gen {
            self.stats.ghost_rejected += 1;
            return;
        }
        // Accuser inversion: track the distinct subjects this accuser
        // has named inside the window; naming (nearly) everyone marks
        // the accuser itself as the defect.
        let log = self.accusations.entry(accuser).or_default();
        log.retain(|&(_, at)| now - at <= COMPLAINT_WINDOW);
        if !log.iter().any(|&(s, _)| s == subject) {
            log.push((subject, now));
        }
        let distinct = log.len();
        if distinct >= INVERSION_ACCUSED {
            self.inverted.insert(accuser, now);
            self.stats.inversions += 1;
            for entries in self.ledger.values_mut() {
                entries.retain(|c| c.accuser != accuser);
            }
            return;
        }
        if self.inverted.contains_key(&accuser) {
            return;
        }
        let entries = self.ledger.entry(subject).or_default();
        // One live entry per accuser: a repeat refreshes, not stacks.
        entries.retain(|c| c.accuser != accuser);
        entries.push(Complaint {
            accuser,
            at: now,
            evidence: frame.evidence,
            subject_gen: frame.subject_gen,
        });
        self.stats.complaints_accepted += 1;
    }

    /// The arbiter for a conviction of `subject`: walking the ring from
    /// the subject's successor (who replicates its snapshot), the first
    /// node that looks alive and is not itself under accusation.
    fn arbiter_for(&self, subject: u8, now: SimTime) -> Option<u8> {
        let mut fallback = None;
        for step in 1..self.n {
            let c = (subject + step) % self.n;
            if c == subject {
                continue;
            }
            let alive = c == self.id
                || self
                    .views
                    .get(&c)
                    .is_some_and(|v| now - v.last_change_at <= NODE_SUSPECT_AFTER);
            if !alive {
                continue;
            }
            if fallback.is_none() {
                fallback = Some(c);
            }
            if self.ledger.get(&c).is_none_or(Vec::is_empty) {
                return Some(c);
            }
        }
        fallback
    }

    /// Applies a conviction to local state: the subject's next
    /// incarnation is expected at `gen + 1`, its ledger is cleared, and
    /// complaints are suppressed while it reboots.
    fn apply_conviction(&mut self, now: SimTime, subject: u8, gen: u32) {
        if let Some(view) = self.views.get_mut(&subject) {
            if view.gen <= gen {
                *view = PeerView {
                    gen: gen + 1,
                    hb_seq: 0,
                    last_change_at: now,
                    beacon: 0,
                    beacon_change_at: now,
                    rs_up: true,
                };
            }
        }
        self.ledger.remove(&subject);
        self.last_complaint_at.remove(&subject);
        self.grace_until.insert(subject, now + REBOOT_GRACE);
    }

    /// Processes one delivered backbone frame.
    pub fn on_frame(&mut self, now: SimTime, frame: &Frame) {
        match frame.kind {
            gossip::HEARTBEAT => {
                for stat in &frame.view.clone() {
                    self.merge_stat(now, stat);
                }
            }
            gossip::COMPLAIN => {
                if frame.subject == self.id {
                    // Someone thinks we are dead: schedule a rebuttal
                    // (sent from tick, where the local RS state is in
                    // hand to back it).
                    self.rebut = Some(frame.evidence);
                } else {
                    self.accept_complaint(now, frame.from, frame);
                }
            }
            gossip::CONVICT if frame.subject != self.id => {
                self.apply_conviction(now, frame.subject, frame.subject_gen);
            }
            gossip::ALIVE => {
                let mut beacon_advanced = false;
                for stat in &frame.view.clone() {
                    beacon_advanced |= self.merge_stat(now, stat);
                }
                // A live rebuttal at the current generation clears
                // reachability complaints; an advancing beacon clears
                // RS-silence complaints too.
                let current = self
                    .views
                    .get(&frame.from)
                    .is_some_and(|v| v.gen == frame.gen);
                if current {
                    if let Some(entries) = self.ledger.get_mut(&frame.from) {
                        let before = entries.len();
                        entries.retain(|c| {
                            c.evidence != evidence::NODE_UNREACHABLE
                                && (c.evidence != evidence::RS_SILENT || !beacon_advanced)
                        });
                        self.stats.rebutted_cleared += (before - entries.len()) as u64;
                    }
                }
            }
            _ => {}
        }
    }

    /// One agent tick: gossip heartbeats, raise suspicions, arbitrate.
    // analyze:recovery-root
    pub fn tick(&mut self, now: SimTime, local: &LocalView) -> AgentOutput {
        let mut out = AgentOutput::default();
        self.prune(now);

        // Heartbeats to the ring neighbors, carrying the gossip vector.
        if now >= self.next_hb_at {
            self.hb_seq += 1;
            self.next_hb_at = now + HB_PERIOD;
            let mut vector = vec![NodeStat {
                node: self.id,
                gen: self.gen,
                hb_seq: self.hb_seq,
                beacon: local.rs_beacon,
                rs_up: local.rs_up,
            }];
            for (&node, view) in &self.views {
                vector.push(NodeStat {
                    node,
                    gen: view.gen,
                    hb_seq: view.hb_seq,
                    beacon: view.beacon,
                    rs_up: view.rs_up,
                });
            }
            let succ = (self.id + 1) % self.n;
            let pred = (self.id + self.n - 1) % self.n;
            let mut targets = vec![succ];
            if pred != succ {
                targets.push(pred);
            }
            for to in targets {
                if to != self.id {
                    out.frames
                        .push((to, Frame::heartbeat(self.id, self.gen, vector.clone())));
                }
            }
        }

        // Rebuttal: answer an accusation with proof of life. A node
        // whose own RS really is down does not rebut an `rs-silent`
        // complaint — the accusers are right.
        if let Some(ev) = self.rebut.take() {
            if ev != evidence::RS_SILENT || local.rs_up {
                self.stats.rebuttals_sent += 1;
                let stat = NodeStat {
                    node: self.id,
                    gen: self.gen,
                    hb_seq: self.hb_seq,
                    beacon: local.rs_beacon,
                    rs_up: local.rs_up,
                };
                for to in self.others().collect::<Vec<_>>() {
                    out.frames.push((to, Frame::alive(self.id, self.gen, stat)));
                }
            }
        }

        // Suspicion scan: typed complaints, broadcast and self-logged.
        for j in self.others().collect::<Vec<_>>() {
            if self.in_grace(j, now) {
                continue;
            }
            let Some(view) = self.views.get(&j).copied() else {
                continue;
            };
            let node_silent = now - view.last_change_at > NODE_SUSPECT_AFTER;
            let rs_silent = !node_silent && now - view.beacon_change_at > RS_SUSPECT_AFTER;
            if !node_silent && !rs_silent {
                continue;
            }
            let recomplain_ok = self
                .last_complaint_at
                .get(&j)
                .is_none_or(|&t| now - t >= RECOMPLAIN_AFTER);
            if !recomplain_ok {
                continue;
            }
            self.last_complaint_at.insert(j, now);
            let ev = if node_silent {
                evidence::NODE_UNREACHABLE
            } else {
                evidence::RS_SILENT
            };
            let frame = Frame::complain(self.id, self.gen, j, view.gen, ev);
            self.stats.complaints_sent += 1;
            for to in self.others().collect::<Vec<_>>() {
                out.frames.push((to, frame.clone()));
            }
            // Our own observation is evidence too.
            let own = frame.clone();
            self.accept_complaint(now, self.id, &own);
        }

        // Quorum check and arbitration.
        let subjects: Vec<u8> = self.ledger.keys().copied().collect();
        for subject in subjects {
            if self.in_grace(subject, now) {
                continue;
            }
            let Some(view) = self.views.get(&subject).copied() else {
                continue;
            };
            let entries = self.ledger.get(&subject).cloned().unwrap_or_default();
            let mut accusers: Vec<u8> = entries
                .iter()
                .filter(|c| c.subject_gen == view.gen)
                .map(|c| c.accuser)
                .collect();
            accusers.sort_unstable();
            accusers.dedup();
            if accusers.len() < quorum(self.n) {
                continue;
            }
            if self.arbiter_for(subject, now) != Some(self.id) {
                continue;
            }
            // Dominant evidence kind: most frequent, ties to the lower
            // kind value for determinism.
            let mut tally: BTreeMap<u32, usize> = BTreeMap::new();
            for c in &entries {
                *tally.entry(c.evidence).or_default() += 1;
            }
            let ev = tally
                .iter()
                .max_by_key(|&(kind, count)| (*count, std::cmp::Reverse(*kind)))
                .map(|(&kind, _)| kind)
                .unwrap_or(evidence::NODE_UNREACHABLE);
            self.stats.convictions += 1;
            let verdict = Frame::convict(self.id, self.gen, subject, view.gen, ev);
            for to in self.others().collect::<Vec<_>>() {
                out.frames.push((to, verdict.clone()));
            }
            out.actions.push(FleetAction::Convict {
                node: subject,
                gen: view.gen,
                evidence: ev,
            });
            self.apply_conviction(now, subject, view.gen);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn local() -> LocalView {
        LocalView {
            rs_beacon: 1,
            rs_up: true,
        }
    }

    /// Drives `agent` with fresh heartbeats from every peer at `now`.
    fn feed_fresh(agent: &mut FleetAgent, now: SimTime, seq: u64) {
        for p in 0..agent.n {
            if p == agent.id {
                continue;
            }
            let stat = NodeStat {
                node: p,
                gen: 1,
                hb_seq: seq,
                beacon: seq,
                rs_up: true,
            };
            agent.on_frame(now, &Frame::heartbeat(p, 1, vec![stat]));
        }
    }

    #[test]
    fn fresh_peers_are_never_suspected() {
        let mut agent = FleetAgent::new(0, 4, 1, t(0));
        for ms in (0..3_000).step_by(50) {
            feed_fresh(&mut agent, t(ms), ms / 50 + 1);
            let out = agent.tick(t(ms), &local());
            assert!(out.actions.is_empty(), "no verdicts against healthy peers");
            assert!(out.frames.iter().all(|(_, f)| f.kind == gossip::HEARTBEAT));
        }
        assert_eq!(agent.stats.complaints_sent, 0);
    }

    #[test]
    fn silent_node_draws_typed_complaint_then_quorum_convicts() {
        let mut agent = FleetAgent::new(2, 4, 1, t(0));
        feed_fresh(&mut agent, t(0), 1);
        // Node 1 goes silent; the others stay fresh.
        let mut complained = false;
        for ms in (50..1_200).step_by(50) {
            for p in [0u8, 3] {
                let stat = NodeStat {
                    node: p,
                    gen: 1,
                    hb_seq: ms / 50 + 1,
                    beacon: ms / 50,
                    rs_up: true,
                };
                agent.on_frame(t(ms), &Frame::heartbeat(p, 1, vec![stat]));
            }
            let out = agent.tick(t(ms), &local());
            for (_, f) in &out.frames {
                if f.kind == gossip::COMPLAIN {
                    assert_eq!(f.subject, 1);
                    assert_eq!(f.evidence, evidence::NODE_UNREACHABLE);
                    complained = true;
                }
            }
        }
        assert!(complained, "silence past the threshold must be accused");
        // A second accuser completes the quorum. Node 2 (this agent) is
        // the ring successor of 1 and alive, so it arbitrates.
        agent.on_frame(
            t(1_200),
            &Frame::complain(0, 1, 1, 1, evidence::NODE_UNREACHABLE),
        );
        let out = agent.tick(t(1_200), &local());
        assert_eq!(
            out.actions,
            vec![FleetAction::Convict {
                node: 1,
                gen: 1,
                evidence: evidence::NODE_UNREACHABLE,
            }]
        );
        assert!(out.frames.iter().any(|(_, f)| f.kind == gossip::CONVICT));
        // Post-conviction grace: no immediate re-accusation.
        let out = agent.tick(t(1_250), &local());
        assert!(out.actions.is_empty());
        assert_eq!(agent.view_of(1), Some((2, 0)), "expects the next gen");
    }

    #[test]
    fn stuck_beacon_with_fresh_heartbeats_is_rs_silent() {
        let mut agent = FleetAgent::new(0, 4, 1, t(0));
        let mut saw_rs_silent = false;
        for ms in (0..3_000).step_by(50) {
            let seq = ms / 50 + 1;
            for p in 1..4u8 {
                // Node 3's beacon freezes at 5; everyone's hb_seq advances.
                let beacon = if p == 3 { 5 } else { seq };
                let stat = NodeStat {
                    node: p,
                    gen: 1,
                    hb_seq: seq,
                    beacon,
                    rs_up: p != 3,
                };
                agent.on_frame(t(ms), &Frame::heartbeat(p, 1, vec![stat]));
            }
            let out = agent.tick(t(ms), &local());
            for (_, f) in &out.frames {
                if f.kind == gossip::COMPLAIN {
                    assert_eq!(f.subject, 3, "only the stalled RS is accused");
                    assert_eq!(f.evidence, evidence::RS_SILENT);
                    saw_rs_silent = true;
                }
            }
        }
        assert!(saw_rs_silent);
    }

    #[test]
    fn ghost_complaints_about_old_generations_are_rejected() {
        let mut agent = FleetAgent::new(0, 4, 1, t(0));
        // Node 2 is known reborn at gen 3.
        let stat = NodeStat {
            node: 2,
            gen: 3,
            hb_seq: 1,
            beacon: 1,
            rs_up: true,
        };
        agent.on_frame(t(0), &Frame::heartbeat(2, 3, vec![stat]));
        // A complaint about gen 1 is about a corpse.
        agent.on_frame(
            t(10),
            &Frame::complain(1, 1, 2, 1, evidence::NODE_UNREACHABLE),
        );
        assert_eq!(agent.stats.ghost_rejected, 1);
        assert_eq!(agent.complaints_against(2), 0);
    }

    #[test]
    fn mass_accuser_is_inverted_and_struck_from_the_ledger() {
        let mut agent = FleetAgent::new(0, 5, 1, t(0));
        feed_fresh(&mut agent, t(0), 1);
        // Node 4 names one subject: accepted.
        agent.on_frame(
            t(10),
            &Frame::complain(4, 1, 1, 1, evidence::NODE_UNREACHABLE),
        );
        assert_eq!(agent.complaints_against(1), 1);
        // Then two more distinct subjects inside the window: inverted,
        // and its earlier complaint is struck.
        agent.on_frame(
            t(20),
            &Frame::complain(4, 1, 2, 1, evidence::NODE_UNREACHABLE),
        );
        agent.on_frame(
            t(30),
            &Frame::complain(4, 1, 3, 1, evidence::NODE_UNREACHABLE),
        );
        assert_eq!(agent.stats.inversions, 1);
        assert_eq!(agent.complaints_against(1), 0);
        assert_eq!(agent.complaints_against(2), 0);
        assert_eq!(agent.complaints_against(3), 0);
        // Further complaints from the inverted accuser are ignored.
        agent.on_frame(
            t(40),
            &Frame::complain(4, 1, 1, 1, evidence::NODE_UNREACHABLE),
        );
        assert_eq!(agent.complaints_against(1), 0);
    }

    #[test]
    fn alive_rebuttal_clears_reachability_complaints() {
        let mut agent = FleetAgent::new(0, 4, 1, t(0));
        feed_fresh(&mut agent, t(0), 1);
        agent.on_frame(
            t(10),
            &Frame::complain(1, 1, 2, 1, evidence::NODE_UNREACHABLE),
        );
        agent.on_frame(
            t(15),
            &Frame::complain(3, 1, 2, 1, evidence::NODE_UNREACHABLE),
        );
        assert_eq!(agent.complaints_against(2), 2);
        let stat = NodeStat {
            node: 2,
            gen: 1,
            hb_seq: 50,
            beacon: 50,
            rs_up: true,
        };
        agent.on_frame(t(20), &Frame::alive(2, 1, stat));
        assert_eq!(agent.complaints_against(2), 0);
        assert_eq!(agent.stats.rebutted_cleared, 2);
    }

    #[test]
    fn accused_agent_schedules_a_rebuttal() {
        let mut agent = FleetAgent::new(2, 4, 1, t(0));
        agent.on_frame(
            t(10),
            &Frame::complain(0, 1, 2, 1, evidence::NODE_UNREACHABLE),
        );
        let out = agent.tick(t(10), &local());
        let alives: Vec<_> = out
            .frames
            .iter()
            .filter(|(_, f)| f.kind == gossip::ALIVE)
            .collect();
        assert_eq!(alives.len(), 3, "rebuttal broadcast to all peers");
        // But an rs-silent accusation with RS actually down is not
        // rebutted: the accusers are right.
        agent.on_frame(t(20), &Frame::complain(0, 1, 2, 1, evidence::RS_SILENT));
        let down = LocalView {
            rs_beacon: 1,
            rs_up: false,
        };
        let out = agent.tick(t(20), &down);
        assert!(out.frames.iter().all(|(_, f)| f.kind != gossip::ALIVE));
    }

    #[test]
    fn arbiter_is_ring_successor_and_skips_dead_candidates() {
        // Subject 1: successor 2 is silent, so 3 arbitrates.
        let mut agent = FleetAgent::new(3, 4, 1, t(0));
        feed_fresh(&mut agent, t(0), 1);
        // Keep 0 fresh; let 1 and 2 both go silent.
        for ms in (50..1_500).step_by(50) {
            let stat = NodeStat {
                node: 0,
                gen: 1,
                hb_seq: ms / 50 + 1,
                beacon: ms / 50,
                rs_up: true,
            };
            agent.on_frame(t(ms), &Frame::heartbeat(0, 1, vec![stat]));
            agent.tick(t(ms), &local());
        }
        agent.on_frame(
            t(1_500),
            &Frame::complain(0, 1, 1, 1, evidence::NODE_UNREACHABLE),
        );
        let out = agent.tick(t(1_500), &local());
        assert!(
            out.actions
                .iter()
                .any(|a| matches!(a, FleetAction::Convict { node: 1, .. })),
            "node 3 arbitrates for subject 1 because successor 2 is dead, got {:?}",
            out.actions
        );
    }
}
