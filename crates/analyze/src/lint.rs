//! Determinism lints: a lexical scan for constructs that break the
//! simulator's same-seed-byte-identical invariant.
//!
//! The scanner is deliberately dumb — line-oriented substring matching
//! with comment stripping — so it has no dependencies, runs in
//! milliseconds, and its verdicts are trivially reproducible. The cost
//! is a known set of blind spots (multi-line expressions, aliased
//! imports), which is acceptable for a gate whose job is to stop the
//! *common* regressions: someone reaching for `std::time` or a
//! `HashMap` out of habit.
//!
//! ## Suppression
//!
//! A finding is suppressed by a pragma on the same line, or in the
//! comment block directly above the offending line (the reason may wrap
//! over several comment lines):
//!
//! ```text
//! // analyze:allow(rule-name): why this use is sound
//! ```
//!
//! Test code is exempt: any `#[cfg(test)]`-attributed item (a trailing
//! `mod tests`, or a single mid-file item) is skipped by tracking the
//! item's braces — a mid-file `#[cfg(test)]` no longer exempts the rest
//! of the file, which used to be a real hole (one gated helper silenced
//! every rule below it).

use std::fmt;
use std::path::Path;

/// One lint rule: a name (used in pragmas), the substrings that trigger
/// it, path scoping, and the rationale shown in reports.
pub struct Rule {
    /// Pragma name, e.g. `wall-clock`.
    pub name: &'static str,
    /// A line containing any of these (outside comments) is a finding.
    pub patterns: &'static [&'static str],
    /// If non-empty, only files whose workspace-relative path starts
    /// with one of these prefixes are checked.
    pub only_in: &'static [&'static str],
    /// Files whose path starts with one of these are never checked.
    pub exempt: &'static [&'static str],
    /// Why the construct is banned.
    pub rationale: &'static str,
}

/// The determinism rule set for this repository.
pub fn default_rules() -> Vec<Rule> {
    vec![
        Rule {
            name: "wall-clock",
            patterns: &[
                "std::time::Instant",
                "std::time::SystemTime",
                "Instant::now()",
                "SystemTime::now()",
            ],
            only_in: &[],
            // The bench harness measures *host* elapsed time by design.
            exempt: &["crates/bench/"],
            rationale: "wall-clock reads differ across runs; use SimTime from phoenix-simcore",
        },
        Rule {
            name: "hash-collection",
            patterns: &["HashMap", "HashSet"],
            only_in: &[],
            exempt: &["crates/bench/"],
            rationale: "std hash iteration order is randomized per process; use BTreeMap/BTreeSet",
        },
        Rule {
            name: "rng-construction",
            patterns: &["SimRng::new("],
            only_in: &[],
            // The rng module itself, and the bench harness's own seeds.
            exempt: &["crates/simcore/src/rng.rs", "crates/bench/"],
            rationale: "every stream must fork from the run's root RNG so draws are a pure \
                        function of the seed; constructing a fresh SimRng creates an unforked \
                        stream",
        },
        Rule {
            name: "thread",
            patterns: &["std::thread", "thread::spawn"],
            only_in: &[],
            exempt: &[],
            rationale: "host threads introduce scheduling nondeterminism; the simulator is \
                        single-threaded by construction",
        },
        Rule {
            name: "unwrap-recovery",
            patterns: &[
                ".unwrap()",
                ".expect(",
                "panic!(",
                "unreachable!(",
                "todo!(",
            ],
            // Only the recovery infrastructure: a panic here takes down
            // the very machinery that exists to survive panics.
            only_in: &[
                "crates/servers/src/rs.rs",
                "crates/servers/src/ds.rs",
                "crates/servers/src/policy.rs",
                "crates/servers/src/vfs.rs",
                "crates/servers/src/inet.rs",
                "crates/servers/src/mfs.rs",
                "crates/servers/src/fatfs.rs",
                "crates/servers/src/peer.rs",
                "crates/servers/src/pm.rs",
                "crates/simcore/src/obs.rs",
                "crates/simcore/src/export.rs",
                "crates/ckpt/src",
                "crates/core/src/loadgen.rs",
            ],
            exempt: &[],
            rationale: "a panic (unwrap/expect/panic!/unreachable!/todo!) in RS/DS/policy \
                        kills the recovery infrastructure itself, the \
                        crash-only servers (VFS, MFS, INET, PM) must survive arbitrarily \
                        garbled driver replies and corrupted externalized state on their \
                        restore paths, the timeline analyzer/exporters must survive corrupted \
                        traces, the checkpoint layer must survive corrupted snapshots, and \
                        the SLO load generators must keep measuring through the very \
                        failures they exist to observe; degrade or log instead",
        },
    ]
}

/// One determinism-lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintFinding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name.
    pub rule: &'static str,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// Whether `line` carries an `analyze:allow(rule)` pragma for `rule`.
fn has_pragma(line: &str, rule: &str) -> bool {
    let Some(idx) = line.find("analyze:allow(") else {
        return false;
    };
    let rest = &line[idx + "analyze:allow(".len()..];
    rest.strip_prefix(rule)
        .is_some_and(|after| after.starts_with(')'))
}

/// Strips `//` line comments and the interior of `/* */` block comments.
/// `in_block` carries block-comment state across lines. Naive about
/// comment markers inside string literals; the pragma syntax and the
/// rule patterns make that a non-issue in practice.
fn strip_comments(line: &str, in_block: &mut bool) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if *in_block {
            if bytes[i..].starts_with(b"*/") {
                *in_block = false;
                i += 2;
            } else {
                i += 1;
            }
        } else if bytes[i..].starts_with(b"//") {
            break;
        } else if bytes[i..].starts_with(b"/*") {
            *in_block = true;
            i += 2;
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

/// Net brace depth change of `code`, ignoring braces inside string and
/// char literals (a `write!(f, "{{")` must not unbalance the count).
fn brace_delta(code: &str) -> (i32, bool, bool) {
    let b = code.as_bytes();
    let mut delta = 0i32;
    let mut saw_open = false;
    let mut saw_semi_at_zero = false;
    let mut i = 0;
    let mut in_str = false;
    while i < b.len() {
        let c = b[i];
        if in_str {
            match c {
                b'\\' => i += 1,
                b'"' => in_str = false,
                _ => {}
            }
        } else {
            match c {
                b'"' => in_str = true,
                // Char literal / lifetime: skip a short quoted span so
                // '{' and '}' literals don't count.
                b'\'' => {
                    if b.get(i + 2) == Some(&b'\'') {
                        i += 2;
                    } else if b.get(i + 1) == Some(&b'\\') && b.get(i + 3) == Some(&b'\'') {
                        i += 3;
                    }
                }
                b'{' => {
                    delta += 1;
                    saw_open = true;
                }
                b'}' => delta -= 1,
                b';' if delta <= 0 => saw_semi_at_zero = true,
                _ => {}
            }
        }
        i += 1;
    }
    (delta, saw_open, saw_semi_at_zero)
}

/// Tracks skipping of one `#[cfg(test)]`-attributed item.
struct TestSkip {
    depth: i32,
    entered_block: bool,
}

fn path_applies(rule: &Rule, rel_path: &str) -> bool {
    if rule.exempt.iter().any(|p| rel_path.starts_with(p)) {
        return false;
    }
    rule.only_in.is_empty() || rule.only_in.iter().any(|p| rel_path.starts_with(p))
}

/// Lints one source file (given as text). `rel_path` is the
/// workspace-relative path used for rule scoping and reporting.
pub fn lint_source(rel_path: &str, source: &str, rules: &[Rule]) -> Vec<LintFinding> {
    let active: Vec<&Rule> = rules.iter().filter(|r| path_applies(r, rel_path)).collect();
    if active.is_empty() {
        return Vec::new();
    }
    let mut findings = Vec::new();
    let mut in_block = false;
    // Pragmas seen on comment-only lines since the last code line; they
    // attach to the next line that actually contains code.
    let mut carried: Vec<&'static str> = Vec::new();
    // While skipping a `#[cfg(test)]` item, tracks its brace depth.
    let mut test_skip: Option<TestSkip> = None;
    for (i, raw) in source.lines().enumerate() {
        let code = strip_comments(raw, &mut in_block);
        if let Some(skip) = &mut test_skip {
            // Consume lines until the attributed item's braces balance
            // (or, for a braceless item like a gated `use`, until its
            // terminating `;`).
            let (delta, saw_open, semi_at_zero) = brace_delta(&code);
            skip.entered_block |= saw_open;
            skip.depth += delta;
            if (skip.entered_block && skip.depth <= 0) || (!skip.entered_block && semi_at_zero) {
                test_skip = None;
            }
            continue;
        }
        if code.contains("#[cfg(test)]") {
            // Start skipping the attributed item; the remainder of this
            // line (e.g. an inline `mod tests {`) counts toward it.
            let after = code
                .split_once("#[cfg(test)]")
                .map(|(_, rest)| rest)
                .unwrap_or("");
            let (delta, saw_open, semi_at_zero) = brace_delta(after);
            let done = (saw_open && delta <= 0) || (!saw_open && semi_at_zero);
            if !done {
                test_skip = Some(TestSkip {
                    depth: delta,
                    entered_block: saw_open,
                });
            }
            carried.clear();
            continue;
        }
        if code.trim().is_empty() {
            for rule in &active {
                if has_pragma(raw, rule.name) {
                    carried.push(rule.name);
                }
            }
            continue;
        }
        for rule in &active {
            if !rule.patterns.iter().any(|p| code.contains(p)) {
                continue;
            }
            if has_pragma(raw, rule.name) || carried.contains(&rule.name) {
                continue;
            }
            findings.push(LintFinding {
                file: rel_path.to_string(),
                line: i + 1,
                rule: rule.name,
                excerpt: raw.trim().to_string(),
            });
        }
        carried.clear();
    }
    findings
}

/// Lints every workspace source file under `root`.
pub fn lint_workspace(root: &Path) -> Vec<LintFinding> {
    let rules = default_rules();
    let mut findings = Vec::new();
    for path in crate::workspace_sources(root) {
        let rel = crate::rel(root, &path);
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        findings.extend(lint_source(&rel, &source, &rules));
    }
    findings
}
