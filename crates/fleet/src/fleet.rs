//! The fleet: N independent `Os` instances in one deterministic event
//! loop, joined by the inter-node wire, the per-node watchdog agents,
//! and the snapshot-replication links.
//!
//! Every quantum the loop (in fixed node-id order): applies due
//! node-level faults, advances each live node's machine by one quantum,
//! delivers wire payloads, ticks the agents, drives snapshot
//! replication, and completes pending reboots. Each node's `Os` is
//! seeded from its own forked RNG stream, every link has its own, and
//! all cross-node state lives in ordered maps — so the same fleet seed
//! replays byte-identically.
//!
//! Recover-the-recoverer: when a quorum convicts a node (its RS fell
//! silent, or the whole machine died), the ring-successor arbiter's
//! verdict makes the fleet microreboot the node crash-only-style — the
//! old machine is discarded, a fresh one boots at the next generation,
//! and the peer-held snapshot of its checkpoint-store and DS records is
//! adopted into the newborn, incarnation-clamped so live drivers
//! supersede it.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use phoenix::apps::{CkptLpd, CkptLpdStatus};
use phoenix::campaign::metrics_digest;
use phoenix::{names, Os};
use phoenix_fault::{NodeChaosPlan, NodeFault, NodeFaultKind};
use phoenix_servers::netproto::{flags, stream_chunk, Segment};
use phoenix_servers::proto::evidence;
use phoenix_simcore::digest::Md5;
use phoenix_simcore::metrics::MetricsRegistry;
use phoenix_simcore::rng::SimRng;
use phoenix_simcore::time::{SimDuration, SimTime};

use crate::agent::{FleetAction, FleetAgent, LocalView};
use crate::link::{SnapReceiver, SnapSender};
use crate::proto::NodeSnapshot;
use crate::wire::{FleetWire, Payload};

/// Fleet shape and pacing.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of nodes (at least 2).
    pub nodes: u8,
    /// Fleet root seed; every node and link stream forks off it.
    pub seed: u64,
    /// Event-loop quantum: how much each node runs per round.
    pub quantum: SimDuration,
    /// One-way inter-node link latency.
    pub link_latency: SimDuration,
    /// How often each node replicates its snapshot to its successor.
    pub snap_period: SimDuration,
    /// Modeled outage between a conviction and the reborn node's boot.
    pub reboot_delay: SimDuration,
    /// Per-node checkpointed print-job size (keeps real records in the
    /// checkpoint store for replication to carry).
    pub job_bytes: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            nodes: 4,
            seed: 0xF1EE7,
            quantum: SimDuration::from_millis(1),
            link_latency: SimDuration::from_millis(1),
            snap_period: SimDuration::from_secs(2),
            reboot_delay: SimDuration::from_millis(250),
            job_bytes: 6144,
        }
    }
}

/// A pending crash-only node reboot ordered by a conviction.
#[derive(Debug)]
struct Reboot {
    ready_at: SimTime,
    snapshot: Option<NodeSnapshot>,
    convict_at: SimTime,
}

/// One node slot: the machine (when up), its agent, its workload.
struct NodeSlot {
    gen: u32,
    seed: u64,
    os: Option<Os>,
    agent: FleetAgent,
    status: Rc<RefCell<CkptLpdStatus>>,
    reboot: Option<Reboot>,
}

/// The multi-node simulation.
pub struct Fleet {
    cfg: FleetConfig,
    now: SimTime,
    slots: Vec<NodeSlot>,
    wire: FleetWire,
    plan: NodeChaosPlan,
    senders: BTreeMap<u8, SnapSender>,
    receivers: BTreeMap<(u8, u8), SnapReceiver>,
    /// `(holder, subject)` -> latest replicated snapshot.
    held: BTreeMap<(u8, u8), NodeSnapshot>,
    next_snap_at: BTreeMap<u8, SimTime>,
    next_conn: u16,
    pending_faults: BTreeMap<u8, SimTime>,
    reint_watch: Vec<(u8, u32, SimTime)>,
    finalized: bool,
    /// Fleet-level counters and MTTR histograms.
    pub metrics: MetricsRegistry,
}

/// Boots one node machine for `(seed, gen)` with the checkpointed
/// printer workload and the fleet identity record installed.
fn boot_node(node: u8, seed: u64, gen: u32, job_bytes: usize) -> (Os, Rc<RefCell<CkptLpdStatus>>) {
    // analyze:allow(rng-construction): incarnation seed is a pure
    // function of the node's forked stream seed and its generation.
    let inc_seed = SimRng::new(seed).fork_indexed("gen", u64::from(gen)).seed();
    let mut os = Os::builder()
        .seed(inc_seed)
        .heartbeat(SimDuration::from_millis(500), 3)
        .with_checkpointing()
        .boot();
    let status = Rc::new(RefCell::new(CkptLpdStatus::default()));
    // A node that somehow boots without VFS still rejoins the ring and
    // lets its own RS recover the filesystem; only the workload is lost.
    if let Some(vfs) = os.endpoint(names::VFS) {
        let job = stream_chunk(seed ^ u64::from(gen), 0, job_bytes);
        os.spawn_app("ckpt-lpd", Box::new(CkptLpd::new(vfs, job, status.clone())));
    }
    let mut ident = vec![node];
    ident.extend_from_slice(&gen.to_le_bytes());
    os.ds_records()
        .borrow_mut()
        .insert("fleet.identity".to_string(), ("fleet".to_string(), ident));
    (os, status)
}

impl Fleet {
    /// Boots `cfg.nodes` machines and wires them together; `plan` is the
    /// node-level fault schedule (empty for a no-fault control).
    pub fn new(cfg: FleetConfig, plan: NodeChaosPlan) -> Fleet {
        assert!(cfg.nodes >= 2, "a fleet needs at least 2 nodes");
        // analyze:allow(rng-construction): the fleet root stream; every
        // node and link stream is forked off it by domain and index.
        let root = SimRng::new(cfg.seed);
        let wire = FleetWire::new(cfg.nodes, cfg.link_latency, &root);
        let mut slots = Vec::new();
        let mut next_snap_at = BTreeMap::new();
        for id in 0..cfg.nodes {
            let seed = root.fork_indexed("fleet-node", u64::from(id)).seed();
            let (os, status) = boot_node(id, seed, 1, cfg.job_bytes);
            slots.push(NodeSlot {
                gen: 1,
                seed,
                os: Some(os),
                agent: FleetAgent::new(id, cfg.nodes, 1, SimTime::ZERO),
                status,
                reboot: None,
            });
            // Stagger first exports so transfers do not all collide on
            // the same quanta (purely cosmetic; still deterministic).
            next_snap_at.insert(
                id,
                SimTime::ZERO + SimDuration::from_millis(100 * u64::from(id) + 200),
            );
        }
        Fleet {
            cfg,
            now: SimTime::ZERO,
            slots,
            wire,
            plan,
            senders: BTreeMap::new(),
            receivers: BTreeMap::new(),
            held: BTreeMap::new(),
            next_snap_at,
            next_conn: 0,
            pending_faults: BTreeMap::new(),
            reint_watch: Vec::new(),
            finalized: false,
            metrics: MetricsRegistry::new(),
        }
    }

    /// Current fleet time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Whether node `id` is currently up.
    pub fn is_up(&self, id: u8) -> bool {
        self.slots
            .get(usize::from(id))
            .is_some_and(|s| s.os.is_some())
    }

    /// Node `id`'s current boot generation.
    pub fn generation(&self, id: u8) -> u32 {
        self.slots[usize::from(id)].gen
    }

    /// Node `id`'s workload status handle.
    pub fn workload(&self, id: u8) -> Rc<RefCell<CkptLpdStatus>> {
        Rc::clone(&self.slots[usize::from(id)].status)
    }

    /// The fleet identity record currently in node `id`'s DS, decoded as
    /// `(node, gen)`.
    pub fn identity_record(&self, id: u8) -> Option<(u8, u32)> {
        let slot = self.slots.get(usize::from(id))?;
        let os = slot.os.as_ref()?;
        let records = os.ds_records();
        let borrowed = records.borrow();
        let (_, value) = borrowed.get("fleet.identity")?;
        let gen = u32::from_le_bytes(value.get(1..5)?.try_into().ok()?);
        Some((*value.first()?, gen))
    }

    /// Advances the whole fleet by `d`.
    // analyze:recovery-root
    pub fn run_for(&mut self, d: SimDuration) {
        let end = self.now + d;
        while self.now < end {
            self.step_quantum();
        }
    }

    /// One event-loop round in fixed node-id order: faults, machines,
    /// wire, agents, replication, reboots.
    // analyze:recovery-root
    fn step_quantum(&mut self) {
        let now = self.now;
        for fault in self.plan.pop_due(now) {
            self.apply_fault(now, &fault);
        }
        for slot in &mut self.slots {
            if let Some(os) = slot.os.as_mut() {
                os.run_for(self.cfg.quantum);
            }
        }
        self.deliver_wire(now);
        self.tick_agents(now);
        self.replicate_snapshots(now);
        self.complete_reboots(now);
        self.watch_reintegration(now);
        self.now = now + self.cfg.quantum;
    }

    /// Applies one scheduled node-level fault.
    fn apply_fault(&mut self, now: SimTime, fault: &NodeFault) {
        match &fault.kind {
            NodeFaultKind::KillRs { node } => {
                let slot = &mut self.slots[usize::from(*node)];
                let killable = slot.reboot.is_none()
                    && !self.pending_faults.contains_key(node)
                    && slot.os.as_mut().is_some_and(|os| os.kill_by_user("rs"));
                if killable {
                    self.pending_faults.insert(*node, now);
                    self.metrics.incr("fleet.fault.kill_rs");
                } else {
                    self.metrics.incr("fleet.fault.skipped");
                }
            }
            NodeFaultKind::NodeCrash { node } => {
                let idx = usize::from(*node);
                if self.slots[idx].os.is_none()
                    || self.slots[idx].reboot.is_some()
                    || self.pending_faults.contains_key(node)
                {
                    self.metrics.incr("fleet.fault.skipped");
                    return;
                }
                // Power failure: the machine, its in-flight transfers
                // and every snapshot it held for peers all vanish.
                self.slots[idx].os = None;
                self.senders.remove(node);
                self.receivers.retain(|&(at, _), _| at != *node);
                self.held.retain(|&(holder, _), _| holder != *node);
                self.pending_faults.insert(*node, now);
                self.metrics.incr("fleet.fault.node_crash");
            }
            NodeFaultKind::Partition {
                a,
                b,
                direction,
                duration,
            } => {
                self.wire.partition(*a, *b, *direction, now + *duration);
                self.metrics.incr("fleet.fault.partition");
            }
            NodeFaultKind::Loss {
                a,
                b,
                direction,
                prob,
                duration,
            } => {
                self.wire
                    .set_loss(*a, *b, *direction, *prob, now + *duration);
                self.metrics.incr("fleet.fault.loss");
            }
        }
    }

    /// Delivers due wire payloads to agents and transfer endpoints.
    fn deliver_wire(&mut self, now: SimTime) {
        let mut outgoing: Vec<(u8, u8, Payload)> = Vec::new();
        for d in self.wire.pop_due(now) {
            if self.slots[usize::from(d.to)].os.is_none() {
                // Frames to a dead node fall on the floor.
                continue;
            }
            match d.payload {
                Payload::Gossip(frame) => {
                    self.slots[usize::from(d.to)].agent.on_frame(now, &frame);
                }
                Payload::Transfer(bytes) => {
                    let Some(seg) = Segment::decode(&bytes) else {
                        self.metrics.incr("fleet.transfer.garbled");
                        continue;
                    };
                    if seg.flags & flags::ACK != 0 && seg.flags & flags::DATA == 0 {
                        if let Some(tx) = self.senders.get_mut(&d.to) {
                            tx.on_ack(now, &seg);
                        }
                    } else {
                        let rx = self.receivers.entry((d.to, d.from)).or_default();
                        let (ack, complete) = rx.on_segment(&seg);
                        outgoing.push((d.to, d.from, Payload::Transfer(ack.encode())));
                        if let Some(img) = complete {
                            match NodeSnapshot::decode(&img) {
                                Some(snap) => {
                                    self.metrics.incr("fleet.snap.replicated");
                                    self.held.insert((d.to, snap.node), snap);
                                }
                                None => self.metrics.incr("fleet.snap.corrupt"),
                            }
                        }
                    }
                }
            }
        }
        for (from, to, payload) in outgoing {
            self.wire.send(now, from, to, payload);
        }
    }

    /// Ticks every live agent with a fresh local-health sample.
    fn tick_agents(&mut self, now: SimTime) {
        for id in 0..self.cfg.nodes {
            let slot = &mut self.slots[usize::from(id)];
            let Some(os) = slot.os.as_ref() else {
                continue;
            };
            let local = LocalView {
                rs_beacon: os.metrics().counter("rs.beacon"),
                rs_up: os.is_up("rs"),
            };
            let out = slot.agent.tick(now, &local);
            for (to, frame) in out.frames {
                self.wire.send(now, id, to, Payload::Gossip(frame));
            }
            for action in out.actions {
                self.execute(now, action);
            }
        }
    }

    /// Executes an arbiter's verdict: the ReHype path that recovers the
    /// recoverer by rebooting the whole node from peer-held state.
    // analyze:recovery-root
    fn execute(&mut self, now: SimTime, action: FleetAction) {
        let FleetAction::Convict {
            node,
            gen,
            evidence: ev,
        } = action;
        let idx = usize::from(node);
        if self.slots[idx].reboot.is_some() || self.slots[idx].gen > gen {
            self.metrics.incr("fleet.convictions.duplicate");
            return;
        }
        self.metrics.incr("fleet.convictions");
        self.metrics
            .incr(&format!("fleet.convictions.{}", evidence::name(ev)));
        match self.pending_faults.remove(&node) {
            Some(fault_at) => {
                let detect = now - fault_at;
                self.metrics.record_duration("fleet.mttr.detect", detect);
                self.metrics.incr("fleet.mttr.detect.samples");
                self.metrics
                    .add("fleet.mttr.detect.total_us", detect.as_micros());
            }
            None => {
                // No injected fault explains this verdict: a false
                // restart (the no-fault control gates on this).
                self.metrics.incr("fleet.convictions.false");
            }
        }
        // Crash-only: discard the machine now; the reborn one boots
        // after the modeled outage, seeded from a peer-held snapshot.
        self.slots[idx].os = None;
        self.senders.remove(&node);
        self.receivers.retain(|&(at, _), _| at != node);
        let snapshot = self
            .held
            .get(&((node + 1) % self.cfg.nodes, node))
            .or_else(|| {
                self.held
                    .iter()
                    .find(|&(&(_, subject), _)| subject == node)
                    .map(|(_, snap)| snap)
            })
            .cloned();
        if snapshot.is_none() {
            self.metrics.incr("fleet.recover.cold");
        }
        self.slots[idx].reboot = Some(Reboot {
            ready_at: now + self.cfg.reboot_delay,
            snapshot,
            convict_at: now,
        });
    }

    /// Starts due snapshot exports and pumps active transfer senders.
    fn replicate_snapshots(&mut self, now: SimTime) {
        for id in 0..self.cfg.nodes {
            let slot = &self.slots[usize::from(id)];
            let Some(os) = slot.os.as_ref() else {
                continue;
            };
            let due = self.next_snap_at.get(&id).is_none_or(|&t| now >= t);
            let idle = self.senders.get(&id).is_none_or(SnapSender::is_done);
            if !(due && idle) {
                continue;
            }
            self.next_snap_at.insert(id, now + self.cfg.snap_period);
            let ckpt = os
                .ckpt_store()
                .map(|store| store.borrow().export())
                .unwrap_or_default();
            let ds = os
                .ds_records()
                .borrow()
                .iter()
                .map(|(k, (o, v))| (k.clone(), o.clone(), v.clone()))
                .collect();
            let snap = NodeSnapshot {
                node: id,
                gen: slot.gen,
                ckpt,
                ds,
            };
            self.next_conn = self.next_conn.wrapping_add(1);
            self.senders
                .insert(id, SnapSender::new(self.next_conn, snap.encode()));
            self.metrics.incr("fleet.snap.exported");
        }
        let mut sends: Vec<(u8, u8, Payload)> = Vec::new();
        for (&id, tx) in self.senders.iter_mut() {
            if self.slots[usize::from(id)].os.is_none() {
                continue;
            }
            let succ = (id + 1) % self.cfg.nodes;
            for seg in tx.tick(now) {
                sends.push((id, succ, Payload::Transfer(seg.encode())));
            }
        }
        for (from, to, payload) in sends {
            self.wire.send(now, from, to, payload);
        }
    }

    /// Boots reborn nodes whose outage has elapsed and adopts their
    /// peer-held snapshot.
    // analyze:recovery-root
    fn complete_reboots(&mut self, now: SimTime) {
        for id in 0..self.cfg.nodes {
            let idx = usize::from(id);
            let due = self.slots[idx]
                .reboot
                .as_ref()
                .is_some_and(|r| now >= r.ready_at);
            if !due {
                continue;
            }
            let Some(reboot) = self.slots[idx].reboot.take() else {
                continue;
            };
            let gen = self.slots[idx].gen + 1;
            self.slots[idx].gen = gen;
            let seed = self.slots[idx].seed;
            let (os, status) = boot_node(id, seed, gen, self.cfg.job_bytes);
            if let Some(snap) = &reboot.snapshot {
                if let Some(store) = os.ckpt_store() {
                    let mut store = store.borrow_mut();
                    for (owner, key, wire) in &snap.ckpt {
                        if store.adopt(owner, key, wire) {
                            self.metrics.incr("fleet.recover.adopted_ckpt");
                        }
                    }
                }
                let records = os.ds_records();
                let mut records = records.borrow_mut();
                for (key, owner, value) in &snap.ds {
                    // The newborn's own identity record wins; everything
                    // else is restored from the peer-held copy.
                    if key != "fleet.identity" {
                        records.insert(key.clone(), (owner.clone(), value.clone()));
                        self.metrics.incr("fleet.recover.adopted_ds");
                    }
                }
            }
            // The dying incarnation's agent counters are folded before
            // its replacement takes over the slot.
            self.slots[idx].agent.stats.fold_into(&mut self.metrics);
            self.slots[idx].agent = FleetAgent::new(id, self.cfg.nodes, gen, now);
            self.slots[idx].os = Some(os);
            self.slots[idx].status = status;
            self.metrics.incr("fleet.reboots");
            let repair = now - reboot.convict_at;
            self.metrics.record_duration("fleet.mttr.repair", repair);
            self.metrics.incr("fleet.mttr.repair.samples");
            self.metrics
                .add("fleet.mttr.repair.total_us", repair.as_micros());
            self.reint_watch.push((id, gen, now));
            self.next_snap_at
                .insert(id, now + SimDuration::from_millis(500));
        }
    }

    /// Closes the reintegration phase once any live peer has observed a
    /// heartbeat from the reborn generation.
    fn watch_reintegration(&mut self, now: SimTime) {
        let mut closed = Vec::new();
        for (i, &(node, gen, _)) in self.reint_watch.iter().enumerate() {
            if self.slots[usize::from(node)].gen > gen {
                closed.push((i, false)); // superseded by a newer reboot
                continue;
            }
            let seen = self.slots.iter().enumerate().any(|(peer, slot)| {
                peer != usize::from(node)
                    && slot.os.is_some()
                    && slot
                        .agent
                        .view_of(node)
                        .is_some_and(|(g, seq)| g == gen && seq > 0)
            });
            if seen {
                closed.push((i, true));
            }
        }
        for &(i, reintegrated) in closed.iter().rev() {
            let (_, _, since) = self.reint_watch.remove(i);
            if reintegrated {
                let d = now - since;
                self.metrics.record_duration("fleet.mttr.reintegrate", d);
                self.metrics.incr("fleet.mttr.reintegrate.samples");
                self.metrics
                    .add("fleet.mttr.reintegrate.total_us", d.as_micros());
            }
        }
    }

    /// Folds remaining per-agent and wire counters into the registry.
    /// Call once, before digesting; further runs would double-count.
    pub fn finalize(&mut self) {
        assert!(!self.finalized, "finalize must be called once");
        self.finalized = true;
        for slot in &self.slots {
            slot.agent.stats.fold_into(&mut self.metrics);
        }
        self.metrics.add("fleet.wire.sent", self.wire.stats.sent);
        self.metrics
            .add("fleet.wire.delivered", self.wire.stats.delivered);
        self.metrics
            .add("fleet.wire.dropped_loss", self.wire.stats.dropped_loss);
        self.metrics
            .add("fleet.wire.dropped_cut", self.wire.stats.dropped_cut);
        self.metrics
            .add("fleet.faults.unrecovered", self.pending_faults.len() as u64);
        self.metrics.add(
            "fleet.nodes.down",
            self.slots.iter().filter(|s| s.os.is_none()).count() as u64,
        );
    }

    /// Per-node determinism fingerprints: each live node's sorted-counter
    /// digest, `down` for dead ones.
    pub fn node_digests(&self) -> Vec<String> {
        self.slots
            .iter()
            .map(|slot| match &slot.os {
                Some(os) => metrics_digest(os),
                None => "down".to_string(),
            })
            .collect()
    }

    /// The fleet determinism fingerprint: MD5 over every node digest
    /// plus the fleet's own sorted counters. Call after [`finalize`].
    ///
    /// [`finalize`]: Fleet::finalize
    pub fn digest(&self) -> String {
        let mut md5 = Md5::new();
        for (id, d) in self.node_digests().iter().enumerate() {
            md5.update(format!("node{id}={d}\n").as_bytes());
        }
        let mut counters: Vec<(String, u64)> = self
            .metrics
            .counters()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        counters.sort();
        for (k, v) in counters {
            md5.update(format!("{k}={v}\n").as_bytes());
        }
        md5.finish_hex()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_fault::LinkDirection;

    fn quick_cfg(seed: u64) -> FleetConfig {
        FleetConfig {
            nodes: 4,
            seed,
            ..FleetConfig::default()
        }
    }

    fn run(cfg: FleetConfig, plan: NodeChaosPlan, d: SimDuration) -> Fleet {
        let mut fleet = Fleet::new(cfg, plan);
        fleet.run_for(d);
        fleet.finalize();
        fleet
    }

    /// A fault-free fleet never convicts anyone: every node stays up at
    /// generation 1 with zero complaints surviving to a verdict.
    #[test]
    fn no_fault_control_has_zero_convictions() {
        let fleet = run(
            quick_cfg(11),
            NodeChaosPlan::default(),
            SimDuration::from_secs(20),
        );
        assert_eq!(fleet.metrics.counter("fleet.convictions"), 0);
        assert_eq!(fleet.metrics.counter("fleet.reboots"), 0);
        for id in 0..4 {
            assert!(fleet.is_up(id));
            assert_eq!(fleet.generation(id), 1);
        }
        // Snapshot replication ran in the background the whole time.
        assert!(fleet.metrics.counter("fleet.snap.replicated") > 0);
    }

    /// Satellite 3: per-node RNG stream forking is deterministic — two
    /// runs of the same fleet seed produce byte-identical per-node and
    /// fleet digests; a different seed diverges; distinct nodes diverge
    /// from each other.
    #[test]
    fn same_seed_fleets_are_byte_identical() {
        let mk_plan = || {
            let mut rng = SimRng::new(77).fork("plan");
            NodeChaosPlan::campaign_mix(
                4,
                6,
                SimTime::ZERO + SimDuration::from_secs(3),
                SimDuration::from_secs(10),
                &mut rng,
            )
        };
        let plan_a = mk_plan();
        let plan_b = mk_plan();
        let a = run(quick_cfg(42), plan_a, SimDuration::from_secs(70));
        let b = run(quick_cfg(42), plan_b, SimDuration::from_secs(70));
        assert_eq!(a.node_digests(), b.node_digests());
        assert_eq!(a.digest(), b.digest());
        let c = run(
            quick_cfg(43),
            NodeChaosPlan::default(),
            SimDuration::from_secs(70),
        );
        assert_ne!(a.digest(), c.digest());
        // Node streams are forked by id: siblings never shadow each other.
        let digests = a.node_digests();
        assert_ne!(digests[0], digests[1]);
    }

    /// Recover-the-recoverer: a node whose RS is killed stops beaconing,
    /// peers convict it as `rs-silent`, and a surviving peer's verdict
    /// reincarnates the node at the next generation with its peer-held
    /// snapshot adopted.
    #[test]
    fn killed_rs_is_convicted_and_node_reincarnated_by_peers() {
        let plan = NodeChaosPlan::new().schedule(
            SimTime::ZERO + SimDuration::from_secs(5),
            NodeFaultKind::KillRs { node: 1 },
        );
        let fleet = run(quick_cfg(7), plan, SimDuration::from_secs(20));
        assert_eq!(fleet.metrics.counter("fleet.fault.kill_rs"), 1);
        assert_eq!(fleet.metrics.counter("fleet.convictions"), 1);
        assert_eq!(fleet.metrics.counter("fleet.convictions.rs-silent"), 1);
        assert_eq!(fleet.metrics.counter("fleet.convictions.false"), 0);
        assert_eq!(fleet.metrics.counter("fleet.reboots"), 1);
        assert!(fleet.is_up(1));
        assert_eq!(fleet.generation(1), 2);
        // The newborn got its peer-held state, not a cold start. The
        // workload's records live in the checkpoint store (the only DS
        // record is the identity, which the newborn's own copy wins).
        assert_eq!(fleet.metrics.counter("fleet.recover.cold"), 0);
        assert!(fleet.metrics.counter("fleet.recover.adopted_ckpt") > 0);
        // Reintegration closed: a peer saw the new generation beat.
        assert_eq!(fleet.metrics.counter("fleet.mttr.reintegrate.samples"), 1);
        assert_eq!(fleet.metrics.counter("fleet.mttr.detect.samples"), 1);
        // The reborn node carries the right identity record.
        assert_eq!(fleet.identity_record(1), Some((1, 2)));
    }

    /// A whole-node power failure is detected as unreachable by its
    /// peers and the node is rebooted from the snapshot its successor
    /// held.
    #[test]
    fn crashed_node_is_rebooted_from_peer_snapshot() {
        let plan = NodeChaosPlan::new().schedule(
            SimTime::ZERO + SimDuration::from_secs(6),
            NodeFaultKind::NodeCrash { node: 2 },
        );
        let fleet = run(quick_cfg(9), plan, SimDuration::from_secs(20));
        assert_eq!(fleet.metrics.counter("fleet.fault.node_crash"), 1);
        assert_eq!(fleet.metrics.counter("fleet.convictions"), 1);
        assert_eq!(
            fleet.metrics.counter("fleet.convictions.node-unreachable"),
            1
        );
        assert_eq!(fleet.metrics.counter("fleet.reboots"), 1);
        assert!(fleet.is_up(2));
        assert_eq!(fleet.generation(2), 2);
        assert_eq!(fleet.metrics.counter("fleet.faults.unrecovered"), 0);
        assert_eq!(fleet.identity_record(2), Some((2, 2)));
    }

    /// A transient one-way partition alone must not convict anyone: the
    /// ring routes gossip around the cut link and the windows are shorter
    /// than the suspicion horizon allows a quorum to form against a node
    /// that keeps beating to its other neighbor.
    #[test]
    fn transient_one_way_partition_causes_no_false_restart() {
        let plan = NodeChaosPlan::new().schedule(
            SimTime::ZERO + SimDuration::from_secs(4),
            NodeFaultKind::Partition {
                a: 0,
                b: 1,
                direction: LinkDirection::AToB,
                duration: SimDuration::from_secs(3),
            },
        );
        let fleet = run(quick_cfg(13), plan, SimDuration::from_secs(15));
        assert_eq!(fleet.metrics.counter("fleet.fault.partition"), 1);
        assert_eq!(fleet.metrics.counter("fleet.convictions"), 0);
        assert_eq!(fleet.metrics.counter("fleet.reboots"), 0);
        assert!(fleet.metrics.counter("fleet.wire.dropped_cut") > 0);
    }
}
