//! `phoenix-ckpt`: driver state checkpointing and write-ahead message
//! logging for transparent character-driver recovery.
//!
//! The paper (§6.3) declares character-driver recovery the one case that
//! cannot be transparent: after a restart "it is undecidable how much of
//! the stream was consumed," so errors are pushed to the application.
//! This subsystem closes that gap by making consumption *decidable*
//! through three cooperating mechanisms:
//!
//! 1. **Write-ahead request log** ([`wal::WriteAheadLog`]) — the caller
//!    (application/VFS side) sequence-numbers every side-effecting
//!    stream request and keeps the entry until the driver acknowledges
//!    *consumed progress* (bytes committed to hardware), which rides in
//!    spare reply parameters separately from IPC completion. Because the
//!    log lives outside the driver, it survives the driver's death; the
//!    aborted tail is simply replayed into the fresh incarnation.
//!
//! 2. **Driver-side dedup cursor** ([`wal::ConsumedCursor`]) — every
//!    logged request carries its absolute stream offset, so a restarted
//!    driver can discard the already-committed prefix of a replayed
//!    request. Replay is therefore idempotent: at-least-once delivery
//!    plus offset dedup yields exactly-once hardware effects.
//!
//! 3. **Checkpoint store** ([`store::CheckpointStore`], hosted by DS) —
//!    drivers publish small versioned snapshots ([`snapshot::Snapshot`])
//!    of their consumed watermark (and any state that exists only in the
//!    driver, e.g. the keyboard line buffer) at quiescent points. Each
//!    snapshot is CRC-protected and tagged with the writer's endpoint
//!    generation, so a ghost of a previous incarnation cannot clobber
//!    the live state and a corrupted record is rejected rather than
//!    restored. The snapshot covers the one window the caller-held log
//!    cannot: progress committed to hardware whose acknowledgment never
//!    reached the caller.
//!
//! [`driver::DriverCkpt`] is the per-driver state machine gluing these
//! together: lazy snapshot restore on first request after a (re)start,
//! fire-and-forget saves, and `RecoveryId` threading so restore/replay
//! show up as a `replay` phase on the causal recovery timeline.

pub mod driver;
pub mod proto;
pub mod snapshot;
pub mod spare;
pub mod store;
pub mod wal;

pub use driver::{DriverCkpt, RestoreEvent};
pub use snapshot::{crc32, Snapshot, SnapshotError};
pub use spare::SpareTail;
pub use store::{CheckpointStore, RestoreOutcome, SaveOutcome, StoredCheckpoint};
pub use wal::{ConsumedCursor, IngestPlan, WalEntry, WriteAheadLog};
