//! Chaos campaign: recovery rate and MTTR vs. IPC-fabric hostility.
//!
//! Sweeps the chaos intensity of the [`phoenix_fault::ChaosPlan`] driver-
//! traffic preset (drop, delay, duplicate, corrupt) while repeatedly
//! killing the network and block drivers, with one scripted kill landing
//! *inside* an ongoing recovery. Reports the §7.2-style summary per
//! intensity: every kill must eventually recover and no restart budget may
//! be exceeded (zero storms) up to moderate intensity.

use phoenix::campaign::{run_chaos_campaign, ChaosCampaignConfig};
use phoenix_bench::print_table;

fn main() {
    println!("chaos campaign — driver recovery under a hostile IPC fabric\n");
    let mut rows = Vec::new();
    for intensity in [0.0, 0.25, 0.5, 1.0, 2.0] {
        let cfg = ChaosCampaignConfig {
            intensity,
            ..ChaosCampaignConfig::default()
        };
        let r = run_chaos_campaign(&cfg);
        println!("{}", r.render());
        rows.push(vec![
            format!("{intensity:.2}"),
            format!("{}", r.kills.len()),
            format!("{:.0}%", r.recovery_rate() * 100.0),
            format!("{}", r.mean_mttr()),
            format!("{}", r.recovery_kills),
            format!("{}", r.storms),
            format!("{}", r.gave_up),
            format!("{}", r.dropped),
            format!("{}", r.corrupted),
        ]);
    }
    println!();
    print_table(
        &[
            "intensity",
            "kills",
            "recovered",
            "mean MTTR",
            "mid-recovery kills",
            "storms",
            "give-ups",
            "dropped",
            "corrupted",
        ],
        &rows,
    );
    println!("\nexpected: 100% recovery and zero storms at every intensity;");
    println!("the preset attacks driver traffic, so MTTR stays flat while the");
    println!("transport absorbs the losses (drops/corruptions grow linearly)");
}
