//! Versioned driver state snapshots: the unit stored in the checkpoint
//! store.
//!
//! A snapshot is a small opaque payload (a consumed watermark, a line
//! buffer, a line configuration) framed with the writer's incarnation
//! (endpoint generation), a per-key monotone sequence number, and a
//! CRC-32 over the whole frame. The incarnation tag lets the store
//! reject writes from ghosts of previous incarnations; the CRC lets a
//! restoring driver reject a corrupted record instead of resuming from
//! garbage (it then falls back to the caller-held log's watermark).

use std::fmt;

/// Frame magic: "PCKP".
const MAGIC: [u8; 4] = *b"PCKP";
/// Current wire version.
const VERSION: u8 = 1;
/// Bytes before the payload: magic + version + incarnation + seq + len.
const HEADER_LEN: usize = 4 + 1 + 4 + 8 + 4;
/// Trailing CRC-32.
const TRAILER_LEN: usize = 4;

/// CRC-32 (IEEE 802.3, reflected), bitwise — dependency-free, and the
/// checkpoint path is far from hot enough to need a table.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One decoded driver snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Endpoint generation of the writing incarnation.
    pub incarnation: u32,
    /// Monotone per-key checkpoint sequence.
    pub seq: u64,
    /// Driver-defined state bytes.
    pub payload: Vec<u8>,
}

/// Why a snapshot frame failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Frame shorter than header + trailer.
    Truncated,
    /// Bad magic or unknown version.
    BadHeader,
    /// Declared payload length disagrees with the frame size.
    BadLength,
    /// CRC-32 mismatch.
    BadCrc,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SnapshotError::Truncated => "truncated frame",
            SnapshotError::BadHeader => "bad magic/version",
            SnapshotError::BadLength => "length mismatch",
            SnapshotError::BadCrc => "crc mismatch",
        };
        f.write_str(s)
    }
}

impl Snapshot {
    /// Builds a snapshot frame.
    pub fn new(incarnation: u32, seq: u64, payload: Vec<u8>) -> Self {
        Snapshot {
            incarnation,
            seq,
            payload,
        }
    }

    /// Convenience for the common watermark-only snapshot.
    pub fn watermark(incarnation: u32, seq: u64, consumed: u64) -> Self {
        Snapshot::new(incarnation, seq, consumed.to_le_bytes().to_vec())
    }

    /// Reads the payload back as a little-endian `u64` watermark; `None`
    /// if the payload is not exactly 8 bytes.
    pub fn as_watermark(&self) -> Option<u64> {
        let bytes: [u8; 8] = self.payload.as_slice().try_into().ok()?;
        Some(u64::from_le_bytes(bytes))
    }

    /// Encodes the frame: header, payload, CRC-32 trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len() + TRAILER_LEN);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&self.incarnation.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes and validates a frame.
    pub fn decode(wire: &[u8]) -> Result<Snapshot, SnapshotError> {
        if wire.len() < HEADER_LEN + TRAILER_LEN {
            return Err(SnapshotError::Truncated);
        }
        if wire[..4] != MAGIC || wire[4] != VERSION {
            return Err(SnapshotError::BadHeader);
        }
        let body = &wire[..wire.len() - TRAILER_LEN];
        let mut crc_bytes = [0u8; 4];
        crc_bytes.copy_from_slice(&wire[wire.len() - TRAILER_LEN..]);
        if crc32(body) != u32::from_le_bytes(crc_bytes) {
            return Err(SnapshotError::BadCrc);
        }
        let mut inc = [0u8; 4];
        inc.copy_from_slice(&wire[5..9]);
        let mut seq = [0u8; 8];
        seq.copy_from_slice(&wire[9..17]);
        let mut len = [0u8; 4];
        len.copy_from_slice(&wire[17..21]);
        let payload_len = u32::from_le_bytes(len) as usize;
        if HEADER_LEN + payload_len + TRAILER_LEN != wire.len() {
            return Err(SnapshotError::BadLength);
        }
        Ok(Snapshot {
            incarnation: u32::from_le_bytes(inc),
            seq: u64::from_le_bytes(seq),
            payload: body[HEADER_LEN..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = Snapshot::new(3, 17, vec![1, 2, 3, 4, 5]);
        let wire = s.encode();
        assert_eq!(Snapshot::decode(&wire), Ok(s));
    }

    #[test]
    fn watermark_helpers_round_trip() {
        let s = Snapshot::watermark(1, 2, 0xDEAD_BEEF);
        assert_eq!(s.as_watermark(), Some(0xDEAD_BEEF));
        assert_eq!(Snapshot::new(1, 2, vec![0; 3]).as_watermark(), None);
    }

    #[test]
    fn single_bit_flip_is_detected() {
        let mut wire = Snapshot::watermark(2, 9, 4096).encode();
        wire[HEADER_LEN] ^= 0x01;
        assert_eq!(Snapshot::decode(&wire), Err(SnapshotError::BadCrc));
    }

    #[test]
    fn truncation_and_bad_magic_are_detected() {
        let wire = Snapshot::watermark(2, 9, 4096).encode();
        assert_eq!(
            Snapshot::decode(&wire[..HEADER_LEN]),
            Err(SnapshotError::Truncated)
        );
        let mut bad = wire.clone();
        bad[0] = b'X';
        assert_eq!(Snapshot::decode(&bad), Err(SnapshotError::BadHeader));
    }
}
