//! Least-authority conformance: runs the deterministic authority
//! workload and reports declared grants that were never exercised.
//!
//! The workload (see `phoenix::audit`) boots the full configuration,
//! drives every server and driver class through real work plus crash
//! recovery and a chaos phase, then diffs observed authority against the
//! declared privilege tables. Anything declared but unexercised is a
//! POLA violation (§4): authority a compromised or wild-pointer-driven
//! component could abuse but that the system never needs.
//!
//! Wildcard IPC filters are always reported by the kernel-side audit;
//! the ones that are genuinely irreducible are justified here, visibly,
//! rather than silently skipped.

use phoenix::audit::AuthoritySnapshot;
use phoenix::{run_authority_workload, OverGrant};
use phoenix_kernel::PolaFinding;

/// The seed every CI audit run uses. Any seed works (the workload's
/// authority trace is seed-independent by design); pinning one keeps the
/// gate byte-stable.
pub const AUDIT_SEED: u64 = 11;

/// A deliberately retained grant the audit would otherwise flag.
pub struct Justification {
    /// Component name.
    pub component: &'static str,
    /// Stable grant key, e.g. `ipc:*` (see `PolaFinding::grant_key`).
    pub grant_key: &'static str,
    /// Why least authority cannot be narrowed further here.
    pub reason: &'static str,
}

/// Grants that cannot be narrowed to a static allow-list: their
/// destination sets are dynamic by nature. Everything else must conform.
pub const JUSTIFIED: &[Justification] = &[
    Justification {
        component: "rs",
        grant_key: "ipc:*",
        reason: "pings and restarts every guarded service; the guarded set changes at runtime \
                 as services register",
    },
    Justification {
        component: "ds",
        grant_key: "ipc:*",
        reason: "pushes publish/retract notifications to arbitrary subscribers; the subscriber \
                 set is dynamic",
    },
    Justification {
        component: "inet",
        grant_key: "ipc:*",
        reason: "delivers socket data to dynamically spawned application processes by name",
    },
];

/// Outcome of one audit run.
pub struct AuditOutcome {
    /// The raw snapshot (for reports).
    pub snapshot: AuthoritySnapshot,
    /// Findings not covered by a justification — these fail the gate.
    pub violations: Vec<PolaFinding>,
    /// Findings covered by [`JUSTIFIED`], with the recorded reason.
    pub justified: Vec<(PolaFinding, &'static str)>,
}

/// Runs the authority workload (optionally with seeded over-grants) and
/// splits findings into violations and justified wildcards.
pub fn run_audit(seed: u64, overgrants: Vec<(String, OverGrant)>) -> AuditOutcome {
    let snapshot = run_authority_workload(seed, overgrants);
    let mut violations = Vec::new();
    let mut justified = Vec::new();
    for finding in snapshot.findings() {
        let excuse = JUSTIFIED
            .iter()
            .find(|j| j.component == finding.component && j.grant_key == finding.grant_key());
        match excuse {
            Some(j) => justified.push((finding, j.reason)),
            None => violations.push(finding),
        }
    }
    AuditOutcome {
        snapshot,
        violations,
        justified,
    }
}

/// Renders the full authority table: per component, which grants were
/// exercised and which were flagged or justified.
pub fn render_report(outcome: &AuditOutcome) -> String {
    let mut out = String::new();
    out.push_str("least-authority audit (observed vs declared)\n");
    out.push_str("============================================\n");
    for name in &outcome.snapshot.scope {
        let Some(decl) = outcome.snapshot.declared.get(name) else {
            continue;
        };
        out.push_str(&format!("\n{name}\n"));
        let usage = outcome.snapshot.usage.get(name);
        let ipc_to = usage.map(|u| u.ipc_to.clone()).unwrap_or_default();
        let calls = usage.map(|u| u.calls.clone()).unwrap_or_default();
        let devices = usage.map(|u| u.devices.clone()).unwrap_or_default();
        let irqs = usage.map(|u| u.irqs.clone()).unwrap_or_default();
        out.push_str(&format!("  ipc declared: {:?}\n", decl.ipc));
        out.push_str(&format!("  ipc used:     {ipc_to:?}\n"));
        out.push_str(&format!(
            "  calls declared: {:?}\n",
            decl.kernel_calls
                .iter()
                .map(|c| c.name())
                .collect::<Vec<_>>()
        ));
        out.push_str(&format!(
            "  calls used:     {:?}\n",
            calls.iter().map(|c| c.name()).collect::<Vec<_>>()
        ));
        if !decl.devices.is_empty() || !devices.is_empty() {
            out.push_str(&format!(
                "  devices declared: {:?} used: {:?}\n",
                decl.devices, devices
            ));
        }
        if !decl.irq_lines.is_empty() || !irqs.is_empty() {
            out.push_str(&format!(
                "  irqs declared: {:?} used: {:?}\n",
                decl.irq_lines, irqs
            ));
        }
    }
    out.push('\n');
    for (finding, reason) in &outcome.justified {
        out.push_str(&format!("justified: {finding}\n  reason: {reason}\n"));
    }
    for finding in &outcome.violations {
        out.push_str(&format!("VIOLATION: {finding}\n"));
    }
    if outcome.violations.is_empty() {
        out.push_str("no violations\n");
    }
    out
}
