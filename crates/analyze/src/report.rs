//! Deterministic JSON report for the analyzer: every pass's outcome in
//! one machine-readable, committed-diff-friendly artifact.
//!
//! Guarantees: object keys are emitted sorted, arrays preserve the
//! (already deterministic) pass ordering, there are no timestamps,
//! hostnames, or absolute paths, and two runs over the same tree
//! produce byte-identical output — CI diffs the committed copy.

use std::collections::BTreeMap;

use crate::conformance;
use crate::deadedge::DeadEdgeReport;
use crate::lint::LintFinding;
use crate::reach;

/// Minimal JSON value: just what the report needs, no dependency.
#[derive(Clone, Debug)]
pub enum Json {
    Num(i64),
    Str(String),
    Arr(Vec<Json>),
    /// Keys are sorted at render time.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Num(n) => out.push_str(&n.to_string()),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    item.render_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    Json::Str(k.clone()).render_into(out, indent + 1);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }
}

fn finding_json(file: &str, line: usize, rule: &str, message: &str) -> Json {
    Json::obj(vec![
        ("file", Json::Str(file.to_string())),
        ("line", Json::Num(line as i64)),
        ("message", Json::Str(message.to_string())),
        ("rule", Json::Str(rule.to_string())),
    ])
}

/// Builds the full report document.
pub fn build(
    lint: &[LintFinding],
    dead: &DeadEdgeReport,
    conf: &conformance::Outcome,
    reach: &reach::Outcome,
) -> Json {
    let lint_json = Json::obj(vec![(
        "findings",
        Json::Arr(
            lint.iter()
                .map(|f| finding_json(&f.file, f.line, f.rule, &f.excerpt))
                .collect(),
        ),
    )]);

    let dead_json = Json::obj(vec![
        (
            "edges",
            Json::Arr(
                dead.edges
                    .iter()
                    .map(|e| {
                        finding_json(
                            &e.file,
                            e.line,
                            "dead-edge",
                            &format!("{}::{} is never sent or handled", e.module, e.name),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "glob_warnings",
            Json::Arr(
                dead.glob_warnings
                    .iter()
                    .map(|g| {
                        finding_json(
                            &g.file,
                            g.line,
                            "glob-import",
                            &format!("use ...proto::{}::* treated conservatively", g.module),
                        )
                    })
                    .collect(),
            ),
        ),
    ]);

    // Slot registry rendered as kind -> { "slot" -> owner }.
    let mut slots_by_kind: BTreeMap<String, BTreeMap<String, Json>> = BTreeMap::new();
    for ((kind, slot), (owner, _, _)) in &conf.registry.slots {
        slots_by_kind
            .entry(kind.clone())
            .or_default()
            .insert(slot.to_string(), Json::Str(owner.clone()));
    }
    let slots_json = Json::Obj(
        slots_by_kind
            .into_iter()
            .map(|(k, v)| (k, Json::Obj(v)))
            .collect(),
    );

    let kinds_json = Json::Arr(
        conf.model
            .kinds
            .iter()
            .map(|k| {
                let mut pairs = vec![
                    ("dir", Json::Str(k.dir.name().to_string())),
                    ("kind", Json::Str(k.key())),
                ];
                if let Some(r) = &k.reply {
                    pairs.push(("reply", Json::Str(format!("{}::{}", k.module, r))));
                }
                if let Some(u) = conf.usage.get(&k.key()) {
                    pairs.push(("handles", Json::Num(u.handles as i64)));
                    pairs.push(("sends", Json::Num(u.sends as i64)));
                }
                Json::obj(pairs)
            })
            .collect(),
    );

    let conf_json = Json::obj(vec![
        (
            "findings",
            Json::Arr(
                conf.findings
                    .iter()
                    .map(|f| finding_json(&f.file, f.line, f.rule, &f.message))
                    .collect(),
            ),
        ),
        ("kinds", kinds_json),
        ("slot_registry", slots_json),
        (
            "suppressed",
            Json::Arr(
                conf.suppressed
                    .iter()
                    .map(|f| finding_json(&f.file, f.line, f.rule, &f.message))
                    .collect(),
            ),
        ),
    ]);

    let reach_json = Json::obj(vec![
        (
            "findings",
            Json::Arr(
                reach
                    .findings
                    .iter()
                    .map(|f| {
                        Json::obj(vec![
                            ("file", Json::Str(f.file.clone())),
                            ("line", Json::Num(f.line as i64)),
                            ("path", Json::Str(f.path.join(" -> "))),
                            ("rule", Json::Str("panic-reach".to_string())),
                            ("what", Json::Str(f.what.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("functions", Json::Num(reach.functions as i64)),
        ("reachable", Json::Num(reach.reachable as i64)),
        (
            "roots",
            Json::Arr(reach.roots.iter().map(|r| Json::Str(r.clone())).collect()),
        ),
        (
            "suppressed",
            Json::Arr(
                reach
                    .suppressed
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("file", Json::Str(s.file.clone())),
                            ("in", Json::Str(s.in_fn.clone())),
                            ("line", Json::Num(s.line as i64)),
                            ("what", Json::Str(s.what.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);

    Json::obj(vec![
        ("conformance", conf_json),
        ("dead_edges", dead_json),
        ("lint", lint_json),
        ("reach", reach_json),
        ("schema", Json::Str("phoenix-analyze/v1".to_string())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_sorted_keys_and_escapes() {
        let j = Json::obj(vec![
            ("b", Json::Num(2)),
            ("a", Json::Str("x\"y\n".to_string())),
        ]);
        assert_eq!(j.render(), "{\n  \"a\": \"x\\\"y\\n\",\n  \"b\": 2\n}\n");
    }

    #[test]
    fn empty_containers_render_compact() {
        let j = Json::obj(vec![
            ("arr", Json::Arr(vec![])),
            ("obj", Json::Obj(BTreeMap::new())),
        ]);
        assert_eq!(j.render(), "{\n  \"arr\": [],\n  \"obj\": {}\n}\n");
    }
}
