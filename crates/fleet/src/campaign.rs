//! Fleet chaos campaigns: drive N nodes through a mixed node-level
//! fault schedule, fold per-phase node MTTR statistics, and emit the
//! deterministic fleet digest the CI gate compares across runs.

use phoenix_fault::NodeChaosPlan;
use phoenix_simcore::rng::SimRng;
use phoenix_simcore::time::{SimDuration, SimTime};

use crate::fleet::{Fleet, FleetConfig};

/// Campaign shape.
#[derive(Clone, Debug)]
pub struct FleetCampaignConfig {
    /// Fleet shape and pacing.
    pub fleet: FleetConfig,
    /// Number of scheduled node-level faults.
    pub faults: u32,
    /// When the first fault strikes (after the fleet has settled and the
    /// first snapshot generation has replicated).
    pub start: SimDuration,
    /// Spacing between faults. Must exceed worst-case recovery
    /// (detect ≈ 2.5s for a silent RS + reboot + reintegration) or
    /// later faults hit nodes still down and are skipped.
    pub interval: SimDuration,
    /// Quiet tail after the last fault for recoveries to drain.
    pub drain: SimDuration,
}

impl Default for FleetCampaignConfig {
    fn default() -> Self {
        FleetCampaignConfig {
            fleet: FleetConfig::default(),
            faults: 100,
            start: SimDuration::from_secs(5),
            interval: SimDuration::from_secs(10),
            drain: SimDuration::from_secs(15),
        }
    }
}

/// Mean/p95/max of one MTTR phase, in microseconds, plus sample count.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseStat {
    /// Number of recoveries that contributed.
    pub samples: u64,
    /// Mean duration in microseconds.
    pub mean_us: u64,
    /// 95th percentile in microseconds.
    pub p95_us: u64,
    /// Worst case in microseconds.
    pub max_us: u64,
}

/// One campaign run's outcome.
#[derive(Clone, Debug)]
pub struct FleetCampaignResult {
    /// Faults actually injected (node faults that found a live victim).
    pub injected: u64,
    /// Faults skipped because the victim was already down or pending.
    pub skipped: u64,
    /// Convictions handed down by arbiters.
    pub convictions: u64,
    /// Convictions with no injected fault behind them (must be 0).
    pub false_convictions: u64,
    /// Completed node reboots.
    pub reboots: u64,
    /// Reboots that found no peer-held snapshot.
    pub cold_recoveries: u64,
    /// Node faults never recovered by campaign end (must be 0).
    pub unrecovered: u64,
    /// Per-evidence conviction counts `(evidence name, count)`.
    pub by_evidence: Vec<(String, u64)>,
    /// Fault-to-conviction phase.
    pub detect: PhaseStat,
    /// Conviction-to-reboot phase.
    pub repair: PhaseStat,
    /// Reboot-to-peer-observed phase.
    pub reintegrate: PhaseStat,
    /// The deterministic fleet digest.
    pub digest: String,
    /// Per-node digests (`down` for dead nodes).
    pub node_digests: Vec<String>,
}

fn phase_stat(fleet: &Fleet, name: &str) -> PhaseStat {
    let samples = fleet.metrics.counter(&format!("{name}.samples"));
    if samples == 0 {
        return PhaseStat::default();
    }
    let total = fleet.metrics.counter(&format!("{name}.total_us"));
    let mut secs: Vec<f64> = fleet
        .metrics
        .histogram(name)
        .map(|h| h.samples().to_vec())
        .unwrap_or_default();
    secs.sort_by(f64::total_cmp);
    let us = |v: f64| (v * 1_000_000.0).round() as u64;
    let (p95_us, max_us) = match secs.last() {
        Some(&last) => {
            let idx = ((secs.len() as f64 - 1.0) * 0.95).round() as usize;
            (us(secs[idx.min(secs.len() - 1)]), us(last))
        }
        None => (0, 0),
    };
    PhaseStat {
        samples,
        mean_us: total / samples,
        p95_us,
        max_us,
    }
}

/// Runs one fleet campaign: builds the mixed schedule off the fleet
/// seed, drives the event loop to the drain horizon, and folds the
/// result. Pure function of the config — same config, same digest.
// analyze:recovery-root
pub fn run_fleet_campaign(cfg: &FleetCampaignConfig) -> FleetCampaignResult {
    let start = SimTime::ZERO + cfg.start;
    // analyze:allow(rng-construction): the schedule stream is forked off
    // the fleet seed by domain, so plan and fleet share one root.
    let mut rng = SimRng::new(cfg.fleet.seed).fork("fleet-campaign-plan");
    let plan =
        NodeChaosPlan::campaign_mix(cfg.fleet.nodes, cfg.faults, start, cfg.interval, &mut rng);
    let horizon = cfg.start + cfg.interval * u64::from(cfg.faults) + cfg.drain;
    let mut fleet = Fleet::new(cfg.fleet.clone(), plan);
    fleet.run_for(horizon);
    fleet.finalize();
    summarize(&fleet)
}

/// Runs the no-fault control: the same fleet, the same horizon, an empty
/// schedule. Any conviction here is a false restart.
pub fn run_fleet_control(cfg: &FleetCampaignConfig) -> FleetCampaignResult {
    let horizon = cfg.start + cfg.interval * u64::from(cfg.faults) + cfg.drain;
    let mut fleet = Fleet::new(cfg.fleet.clone(), NodeChaosPlan::new());
    fleet.run_for(horizon);
    fleet.finalize();
    summarize(&fleet)
}

fn summarize(fleet: &Fleet) -> FleetCampaignResult {
    let m = &fleet.metrics;
    let injected = m.counter("fleet.fault.kill_rs") + m.counter("fleet.fault.node_crash");
    let by_evidence = m
        .counters()
        .filter_map(|(k, v)| {
            k.strip_prefix("fleet.convictions.")
                .filter(|rest| !matches!(*rest, "false" | "duplicate"))
                .map(|rest| (rest.to_string(), v))
        })
        .collect();
    FleetCampaignResult {
        injected,
        skipped: m.counter("fleet.fault.skipped"),
        convictions: m.counter("fleet.convictions"),
        false_convictions: m.counter("fleet.convictions.false"),
        reboots: m.counter("fleet.reboots"),
        cold_recoveries: m.counter("fleet.recover.cold"),
        unrecovered: m.counter("fleet.faults.unrecovered"),
        by_evidence,
        detect: phase_stat(fleet, "fleet.mttr.detect"),
        repair: phase_stat(fleet, "fleet.mttr.repair"),
        reintegrate: phase_stat(fleet, "fleet.mttr.reintegrate"),
        digest: fleet.digest(),
        node_digests: fleet.node_digests(),
    }
}

impl FleetCampaignResult {
    /// Human-readable campaign report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let phase = |name: &str, p: &PhaseStat| {
            if p.samples == 0 {
                format!("  {name:<12} (no samples)\n")
            } else {
                format!(
                    "  {name:<12} n={:<4} mean={:>8.1}ms  p95={:>8.1}ms  max={:>8.1}ms\n",
                    p.samples,
                    p.mean_us as f64 / 1000.0,
                    p.p95_us as f64 / 1000.0,
                    p.max_us as f64 / 1000.0,
                )
            }
        };
        out.push_str(&format!(
            "faults injected={} skipped={}  convictions={} (false={})  reboots={} cold={}  unrecovered={}\n",
            self.injected,
            self.skipped,
            self.convictions,
            self.false_convictions,
            self.reboots,
            self.cold_recoveries,
            self.unrecovered,
        ));
        out.push_str("convictions by evidence:\n");
        for (name, count) in &self.by_evidence {
            out.push_str(&format!("  {name:<18} {count}\n"));
        }
        out.push_str("node MTTR phases:\n");
        out.push_str(&phase("detect", &self.detect));
        out.push_str(&phase("repair", &self.repair));
        out.push_str(&phase("reintegrate", &self.reintegrate));
        out.push_str(&format!("fleet digest: {}\n", self.digest));
        for (id, d) in self.node_digests.iter().enumerate() {
            out.push_str(&format!("  node{id}: {d}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> FleetCampaignConfig {
        FleetCampaignConfig {
            faults: 8,
            ..FleetCampaignConfig::default()
        }
    }

    /// The quick campaign recovers every node fault, convicts no one
    /// falsely, and replays byte-identically.
    #[test]
    fn quick_campaign_recovers_and_replays_identically() {
        let cfg = quick();
        let a = run_fleet_campaign(&cfg);
        assert!(a.injected >= 2, "mix schedules kill-rs and node-crash");
        assert_eq!(a.convictions, a.reboots + a.false_convictions);
        assert_eq!(a.false_convictions, 0);
        assert_eq!(a.unrecovered, 0);
        assert!(a.detect.samples >= 2);
        assert!(a.repair.mean_us > 0);
        let b = run_fleet_campaign(&cfg);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.node_digests, b.node_digests);
    }

    /// The control run (no faults) convicts nobody.
    #[test]
    fn control_run_is_quiet() {
        let mut cfg = quick();
        cfg.faults = 2; // short horizon; control only needs the window
        let r = run_fleet_control(&cfg);
        assert_eq!(r.convictions, 0);
        assert_eq!(r.reboots, 0);
        assert_eq!(r.injected, 0);
    }
}
