//! Fig. 7: networking throughput while repeatedly killing the Ethernet
//! driver with various time intervals.
//!
//! Paper baseline: a 512 MB `wget` at 10.8 MB/s uninterrupted; with kills
//! every 1..15 s, throughput degrades from -25% (1 s) to -1% (15 s), the
//! mean recovery time is 0.48 s, and the MD5 always matches.

use phoenix::experiments::fig7_network_run;
use phoenix_bench::{print_table, quick_mode};
use phoenix_simcore::time::SimDuration;

fn main() {
    let quick = quick_mode();
    let size: u64 = if quick { 32_000_000 } else { 512 * 1_000_000 };
    let seed = 2007;
    let intervals: Vec<u64> = if quick {
        vec![1, 2, 4, 8, 15]
    } else {
        (1..=15).collect()
    };

    println!("Fig. 7 — network throughput vs. driver kill interval");
    println!(
        "transfer: {} MB via RTL8139, direct-restart policy\n",
        size / 1_000_000
    );

    let base = fig7_network_run(size, None, seed);
    let mut rows = vec![vec![
        "uninterrupted".to_string(),
        format!("{:.2}", base.elapsed.as_secs_f64()),
        format!("{:.2}", base.throughput_mbs),
        "-".to_string(),
        "0".to_string(),
        "-".to_string(),
        if base.md5_ok { "ok" } else { "MISMATCH" }.to_string(),
    ]];
    let mut gaps = Vec::new();
    for k in &intervals {
        let r = fig7_network_run(size, Some(SimDuration::from_secs(*k)), seed);
        let loss = 100.0 * (1.0 - r.throughput_mbs / base.throughput_mbs);
        if let Some(g) = r.mean_gap {
            gaps.push(g.as_secs_f64());
        }
        rows.push(vec![
            format!("kill every {k}s"),
            format!("{:.2}", r.elapsed.as_secs_f64()),
            format!("{:.2}", r.throughput_mbs),
            format!("{loss:.1}%"),
            r.kills.to_string(),
            r.mean_gap
                .map_or("-".into(), |g| format!("{:.2}s", g.as_secs_f64())),
            if r.md5_ok { "ok" } else { "MISMATCH" }.to_string(),
        ]);
    }
    print_table(
        &[
            "scenario", "time (s)", "MB/s", "loss", "kills", "mean gap", "md5",
        ],
        &rows,
    );
    if !gaps.is_empty() {
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        println!("\nmean data-flow recovery gap across runs: {mean:.2}s (paper: 0.48s)");
    }
    println!("paper shape: uninterrupted 10.8 MB/s; loss 25% at 1s -> 1% at 15s; md5 intact");
}
