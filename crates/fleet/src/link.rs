//! Reliable snapshot transfer over the fleet wire: a poll-driven
//! go-back-N sender/receiver pair speaking [`netproto`] segments — the
//! same sliding-window machinery the remote file peer uses, re-hosted
//! on the inter-node links so snapshot replication survives the loss
//! and partition windows node chaos opens.
//!
//! The sender chunks a snapshot image into `MSS`-sized `DATA` segments
//! (the last one also flagged `FIN`), keeps at most [`WINDOW`] segments
//! in flight, and goes back to the lowest unacknowledged byte on RTO
//! expiry (exponential backoff, capped; fresh progress resets it) or on
//! three duplicate cumulative ACKs (once per stall). The receiver
//! accepts only in-order data and always answers with its cumulative
//! ACK. A new `conn` id resets the receiver: transfers on a link are
//! serialized, and the id disambiguates a late retransmission of the
//! previous image from the start of the next.

use phoenix_servers::netproto::{flags, Segment, MSS};
use phoenix_simcore::time::{SimDuration, SimTime};

/// Maximum segments in flight.
pub const WINDOW: usize = 8;
/// Initial retransmission timeout.
pub const RTO_BASE: SimDuration = SimDuration::from_millis(200);
/// Backoff cap.
pub const RTO_MAX: SimDuration = SimDuration::from_secs(2);

/// Go-back-N sender for one snapshot image.
#[derive(Debug)]
pub struct SnapSender {
    conn: u16,
    data: Vec<u8>,
    snd_una: usize,
    snd_nxt: usize,
    rto: SimDuration,
    deadline: Option<SimTime>,
    dup_acks: u32,
    fast_retx_armed: bool,
    go_back: bool,
    /// Go-back-N events (timeout or fast retransmit).
    pub retransmissions: u64,
    done: bool,
}

impl SnapSender {
    /// Starts a transfer of `data` (must be non-empty) on connection
    /// `conn`.
    pub fn new(conn: u16, data: Vec<u8>) -> SnapSender {
        assert!(!data.is_empty(), "empty snapshot transfer");
        SnapSender {
            conn,
            data,
            snd_una: 0,
            snd_nxt: 0,
            rto: RTO_BASE,
            deadline: None,
            dup_acks: 0,
            fast_retx_armed: true,
            go_back: false,
            retransmissions: 0,
            done: false,
        }
    }

    /// Whether the whole image has been acknowledged.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Processes a cumulative ACK.
    pub fn on_ack(&mut self, now: SimTime, seg: &Segment) {
        if seg.conn != self.conn || self.done {
            return;
        }
        let ack = seg.ack as usize;
        if ack > self.snd_una {
            // Fresh progress: slide the window, reset the backoff and
            // re-arm fast retransmit for the next stall.
            self.snd_una = ack.min(self.data.len());
            self.dup_acks = 0;
            self.fast_retx_armed = true;
            self.rto = RTO_BASE;
            if self.snd_una >= self.data.len() {
                self.done = true;
                self.deadline = None;
            } else {
                self.deadline = Some(now + self.rto);
            }
        } else if ack == self.snd_una {
            self.dup_acks += 1;
            if self.dup_acks >= 3 && self.fast_retx_armed {
                // One fast retransmit per stall; further dup-ACKs wait
                // for the timer.
                self.fast_retx_armed = false;
                self.go_back = true;
            }
        }
    }

    /// Advances the sender: retransmits on RTO expiry or a pending fast
    /// retransmit, then fills the window with new segments.
    pub fn tick(&mut self, now: SimTime) -> Vec<Segment> {
        if self.done {
            return Vec::new();
        }
        if let Some(d) = self.deadline {
            if now >= d {
                self.go_back = true;
                self.rto = (self.rto * 2).min(RTO_MAX);
            }
        }
        if self.go_back {
            self.go_back = false;
            self.retransmissions += 1;
            self.snd_nxt = self.snd_una;
            self.deadline = Some(now + self.rto);
        }
        let mut out = Vec::new();
        while self.snd_nxt < self.data.len() && self.in_flight() < WINDOW {
            let end = (self.snd_nxt + MSS).min(self.data.len());
            let mut seg_flags = flags::DATA;
            if end == self.data.len() {
                seg_flags |= flags::FIN;
            }
            out.push(Segment {
                flags: seg_flags,
                conn: self.conn,
                seq: self.snd_nxt as u32,
                ack: 0,
                payload: self.data[self.snd_nxt..end].to_vec(),
            });
            self.snd_nxt = end;
        }
        if !out.is_empty() && self.deadline.is_none() {
            self.deadline = Some(now + self.rto);
        }
        out
    }

    fn in_flight(&self) -> usize {
        (self.snd_nxt - self.snd_una).div_ceil(MSS)
    }
}

/// In-order go-back-N receiver.
#[derive(Debug, Default)]
pub struct SnapReceiver {
    conn: Option<u16>,
    rcv_nxt: usize,
    buf: Vec<u8>,
    done: bool,
}

impl SnapReceiver {
    /// A fresh receiver with no transfer in progress.
    pub fn new() -> SnapReceiver {
        SnapReceiver::default()
    }

    /// Processes one data segment; returns the cumulative ACK to send
    /// back and, once the `FIN` segment completes the image, the
    /// reassembled bytes.
    pub fn on_segment(&mut self, seg: &Segment) -> (Segment, Option<Vec<u8>>) {
        if self.conn != Some(seg.conn) {
            // New transfer on this link: reset reassembly.
            self.conn = Some(seg.conn);
            self.rcv_nxt = 0;
            self.buf.clear();
            self.done = false;
        }
        let mut complete = None;
        if seg.flags & flags::DATA != 0 && !self.done && seg.seq as usize == self.rcv_nxt {
            self.buf.extend_from_slice(&seg.payload);
            self.rcv_nxt += seg.payload.len();
            if seg.flags & flags::FIN != 0 {
                self.done = true;
                complete = Some(self.buf.clone());
            }
        }
        let ack = Segment {
            flags: flags::ACK,
            conn: seg.conn,
            seq: 0,
            ack: self.rcv_nxt as u32,
            payload: Vec::new(),
        };
        (ack, complete)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn image(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 7 % 251) as u8).collect()
    }

    /// Lossless in-order delivery completes in one window pass.
    #[test]
    fn transfer_completes_without_loss() {
        let data = image(4000);
        let mut tx = SnapSender::new(1, data.clone());
        let mut rx = SnapReceiver::new();
        let segs = tx.tick(t(0));
        assert_eq!(segs.len(), 3, "4000 bytes / MSS 1460 = 3 segments");
        assert!(segs[2].flags & flags::FIN != 0);
        for seg in &segs {
            let (ack, complete) = rx.on_segment(seg);
            if let Some(img) = complete {
                assert_eq!(img, data);
            }
            tx.on_ack(t(1), &ack);
        }
        assert!(tx.is_done());
        assert!(tx.tick(t(2)).is_empty());
        assert_eq!(tx.retransmissions, 0);
    }

    /// A dropped middle segment: later segments are discarded out of
    /// order, dup-ACKs trigger one fast go-back-N, the image completes.
    #[test]
    fn fast_retransmit_recovers_a_dropped_segment() {
        let data = image(4000);
        let mut tx = SnapSender::new(2, data.clone());
        let mut rx = SnapReceiver::new();
        let segs = tx.tick(t(0));
        let mut acks = Vec::new();
        for (i, seg) in segs.iter().enumerate() {
            if i == 1 {
                continue; // drop segment 1
            }
            acks.push(rx.on_segment(seg).0);
        }
        for ack in &acks {
            tx.on_ack(t(1), ack);
        }
        // 1 fresh ACK (seg 0) + 1 dup: not yet at the dup-ACK threshold.
        assert!(tx.tick(t(2)).is_empty());
        tx.on_ack(t(2), &acks[1].clone());
        tx.on_ack(t(2), &acks[1].clone());
        let resent = tx.tick(t(3));
        assert_eq!(tx.retransmissions, 1);
        assert_eq!(resent[0].seq as usize, MSS, "go back to the hole");
        let mut img = None;
        for seg in &resent {
            let (ack, complete) = rx.on_segment(seg);
            img = img.or(complete);
            tx.on_ack(t(4), &ack);
        }
        assert_eq!(img, Some(data));
        assert!(tx.is_done());
    }

    /// Everything dropped: RTO fires, backoff doubles, the retransmitted
    /// window completes the transfer after the outage.
    #[test]
    fn rto_recovers_after_total_outage() {
        let data = image(2000);
        let mut tx = SnapSender::new(3, data.clone());
        let mut rx = SnapReceiver::new();
        let first = tx.tick(t(0));
        assert_eq!(first.len(), 2);
        // Outage: nothing arrives. First RTO at +200ms, second at +600ms.
        assert!(tx.tick(t(100)).is_empty());
        let retx1 = tx.tick(t(200));
        assert_eq!(retx1.len(), 2);
        assert_eq!(retx1[0].seq, 0);
        let retx2 = tx.tick(t(600));
        assert_eq!(retx2.len(), 2, "backoff doubled to 400ms");
        assert_eq!(tx.retransmissions, 2);
        let mut img = None;
        for seg in &retx2 {
            let (ack, complete) = rx.on_segment(seg);
            img = img.or(complete);
            tx.on_ack(t(601), &ack);
        }
        assert_eq!(img, Some(data));
        assert!(tx.is_done());
    }

    /// A new conn id resets the receiver even when the previous image
    /// never completed.
    #[test]
    fn new_conn_resets_receiver() {
        let mut rx = SnapReceiver::new();
        let mut tx1 = SnapSender::new(7, image(3000));
        let segs = tx1.tick(t(0));
        let _ = rx.on_segment(&segs[0]); // partial image, then sender dies
        let short = image(100);
        let mut tx2 = SnapSender::new(8, short.clone());
        let segs = tx2.tick(t(10));
        let (ack, complete) = rx.on_segment(&segs[0]);
        assert_eq!(complete, Some(short));
        assert_eq!(ack.ack, 100);
    }
}
