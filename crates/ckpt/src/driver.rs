//! Driver-side checkpoint client: lazy restore on (re)start, fire-and-
//! forget saves, request parking, and recovery-episode threading.
//!
//! ## Why restore is lazy
//!
//! A restarted driver's `init` runs *before* RS re-publishes its new
//! endpoint in DS, so a restore issued from `init` would fail the
//! store's owner check (the stable name still maps to the dead
//! incarnation). Client traffic, however, can only arrive *after* the
//! publish — VFS learns the fresh endpoint from DS. The state machine
//! therefore restores on the first incoming request: park the request,
//! fetch the snapshot, then serve the parked backlog. The extra
//! round-trip costs one DS exchange per incarnation, not per request.

use std::collections::BTreeSet;

use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{CallId, Endpoint, IpcError, Message};
use phoenix_simcore::trace::{RecoveryId, SpanId, TraceLevel};

use crate::proto::{ckpt, ckpt_status};
use crate::snapshot::Snapshot;

/// How a completed restore resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestoreEvent {
    /// A valid snapshot was returned.
    Restored(Snapshot),
    /// No snapshot on record (first boot, or store lost it) — start
    /// from zero; the caller-held log remains authoritative.
    Missing,
    /// The record was rejected (CRC failure / denied) — same fallback
    /// as [`RestoreEvent::Missing`], but worth a counter.
    Rejected,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Fresh,
    Restoring,
    Ready,
}

/// Per-driver checkpoint state machine.
#[derive(Debug)]
pub struct DriverCkpt {
    ds: Endpoint,
    key: String,
    phase: Phase,
    restore_call: Option<CallId>,
    save_calls: BTreeSet<CallId>,
    next_seq: u64,
    parked: Vec<(CallId, Message)>,
    recovery: Option<RecoveryId>,
    span: Option<SpanId>,
    replay_pending: bool,
    /// Saves that errored at send time or were rejected by the store.
    pub saves_failed: u64,
}

impl DriverCkpt {
    /// A checkpoint client publishing under `key` (unique per driver;
    /// the store additionally scopes records by the owner's stable
    /// published name).
    pub fn new(ds: Endpoint, key: impl Into<String>) -> Self {
        DriverCkpt {
            ds,
            key: key.into(),
            phase: Phase::Fresh,
            restore_call: None,
            save_calls: BTreeSet::new(),
            next_seq: 0,
            parked: Vec::new(),
            recovery: None,
            span: None,
            replay_pending: false,
            saves_failed: 0,
        }
    }

    /// Whether the restore handshake has completed.
    pub fn ready(&self) -> bool {
        self.phase == Phase::Ready
    }

    /// The recovery episode that restarted this incarnation, learned
    /// from the restore reply (None on first boot).
    pub fn recovery(&self) -> Option<RecoveryId> {
        self.recovery
    }

    /// Parks `(call, msg)` until the snapshot restore completes,
    /// starting the restore on the first request of this incarnation.
    /// Returns `true` if the request was parked (the caller must not
    /// serve it now); `false` once the driver is ready.
    // analyze:recovery-root
    pub fn park_until_restored(&mut self, ctx: &mut Ctx, call: CallId, msg: Message) -> bool {
        match self.phase {
            Phase::Ready => false,
            Phase::Restoring => {
                self.parked.push((call, msg));
                true
            }
            Phase::Fresh => {
                self.begin_restore(ctx);
                if self.phase == Phase::Ready {
                    // The restore could not even be sent; serve degraded.
                    return false;
                }
                self.parked.push((call, msg));
                true
            }
        }
    }

    /// Starts the snapshot restore if it has not begun yet — for paths
    /// with no request to park, e.g. an input driver's IRQ handler.
    // analyze:recovery-root
    pub fn ensure_restore(&mut self, ctx: &mut Ctx) {
        if self.phase == Phase::Fresh {
            self.begin_restore(ctx);
        }
    }

    fn begin_restore(&mut self, ctx: &mut Ctx) {
        let req = Message::new(ckpt::RESTORE).with_data(self.key.clone().into_bytes());
        match ctx.sendrec(self.ds, req) {
            Ok(call) => {
                self.restore_call = Some(call);
                self.phase = Phase::Restoring;
            }
            Err(_) => {
                // DS unreachable: degrade to log-only recovery rather
                // than wedging the driver.
                ctx.metrics().incr("ckpt.restore_send_failed");
                self.phase = Phase::Ready;
            }
        }
    }

    /// Routes a `ProcEvent::Reply`. Returns `Some((event, parked))` when
    /// it completed the restore handshake: the caller applies the event
    /// and then serves the parked backlog. Save acknowledgments are
    /// consumed silently (counters only).
    #[allow(clippy::type_complexity)]
    // analyze:recovery-root
    pub fn on_reply(
        &mut self,
        ctx: &mut Ctx,
        call: CallId,
        result: &Result<Message, IpcError>,
    ) -> Option<(RestoreEvent, Vec<(CallId, Message)>)> {
        if self.save_calls.remove(&call) {
            match result {
                Ok(reply) if reply.mtype != ckpt::SAVE_REPLY => {
                    // Wrong-type reply: a garbled or misdirected message
                    // must not be decoded as a save outcome.
                    self.saves_failed += 1;
                    ctx.metrics().incr("ckpt.save_bad_reply");
                    ctx.trace(
                        TraceLevel::Warn,
                        format!("checkpoint save got reply type {:#x}", reply.mtype),
                    );
                }
                Ok(reply) if reply.param(0) == ckpt_status::OK => {
                    ctx.metrics().incr("ckpt.saves_acked");
                }
                Ok(reply) => {
                    self.saves_failed += 1;
                    ctx.metrics().incr("ckpt.saves_rejected");
                    ctx.trace(
                        TraceLevel::Warn,
                        format!("checkpoint save rejected: status {}", reply.param(0)),
                    );
                }
                Err(_) => {
                    // DS died mid-save; the next save supersedes it.
                    self.saves_failed += 1;
                    ctx.metrics().incr("ckpt.saves_aborted");
                }
            }
            return None;
        }
        if self.restore_call != Some(call) {
            return None;
        }
        self.restore_call = None;
        self.phase = Phase::Ready;
        let event = match result {
            Err(_) => {
                ctx.metrics().incr("ckpt.restore_aborted");
                RestoreEvent::Missing
            }
            Ok(reply) if reply.mtype != ckpt::RESTORE_REPLY => {
                // Wrong-type reply: don't interpret foreign params as a
                // snapshot; fall back to fresh state.
                ctx.metrics().incr("ckpt.restore_bad_reply");
                RestoreEvent::Rejected
            }
            Ok(reply) => {
                self.recovery = RecoveryId::from_wire(reply.param(1));
                self.span = SpanId::from_wire(reply.param(2));
                match reply.param(0) {
                    s if s == ckpt_status::OK => match Snapshot::decode(&reply.data) {
                        Ok(snap) => {
                            self.next_seq = snap.seq;
                            ctx.metrics().incr("ckpt.restores");
                            RestoreEvent::Restored(snap)
                        }
                        Err(_) => {
                            ctx.metrics().incr("ckpt.restore_corrupt");
                            RestoreEvent::Rejected
                        }
                    },
                    s if s == ckpt_status::NOT_FOUND => {
                        ctx.metrics().incr("ckpt.restore_missing");
                        RestoreEvent::Missing
                    }
                    _ => {
                        ctx.metrics().incr("ckpt.restore_corrupt");
                        RestoreEvent::Rejected
                    }
                }
            }
        };
        self.replay_pending = self.recovery.is_some();
        let ev = ctx
            .event(TraceLevel::Info, format!("checkpoint restore: {event:?}"))
            .with_field("ev", "restore")
            .with_field("key", self.key.clone())
            .in_recovery_opt(self.recovery)
            .with_parent_opt(self.span);
        ctx.trace_event(ev);
        Some((event, std::mem::take(&mut self.parked)))
    }

    /// Publishes a snapshot payload (fire-and-forget; the reply is
    /// consumed by [`DriverCkpt::on_reply`]). The frame is tagged with
    /// this incarnation's endpoint generation and the next sequence.
    // analyze:recovery-root
    pub fn save(&mut self, ctx: &mut Ctx, payload: Vec<u8>) {
        self.next_seq += 1;
        let snap = Snapshot::new(ctx.self_endpoint().generation(), self.next_seq, payload);
        let mut data = self.key.clone().into_bytes();
        let key_len = data.len() as u64;
        data.extend_from_slice(&snap.encode());
        let req = Message::new(ckpt::SAVE)
            .with_param(0, key_len)
            .with_data(data);
        match ctx.sendrec(self.ds, req) {
            Ok(call) => {
                self.save_calls.insert(call);
                ctx.metrics().incr("ckpt.saves");
            }
            Err(_) => {
                self.saves_failed += 1;
                ctx.metrics().incr("ckpt.saves_aborted");
            }
        }
    }

    /// Adopts warm tailed state at promotion time: a hot spare that has
    /// been replaying the primary's checkpoint frames already holds the
    /// state a restore would fetch, so the handshake is skipped entirely
    /// — the client goes straight to `Ready` at the tailed sequence.
    /// `rid`/`span` come from RS's promote message and tag the replay
    /// event of the first request served, like a restore would.
    // analyze:recovery-root
    pub fn adopt_warm(&mut self, seq: u64, rid: Option<RecoveryId>, span: Option<SpanId>) {
        self.phase = Phase::Ready;
        self.restore_call = None;
        self.next_seq = self.next_seq.max(seq);
        self.recovery = rid;
        self.span = span;
        self.replay_pending = rid.is_some();
    }

    /// Consumes the one-shot replay tag: `Some((rid, span))` exactly
    /// once, on the first request served after a post-recovery restore.
    /// The driver emits the timeline's `replay` event with it.
    // analyze:recovery-root
    pub fn take_replay_tag(&mut self) -> Option<(RecoveryId, Option<SpanId>)> {
        if !self.replay_pending {
            return None;
        }
        self.replay_pending = false;
        self.recovery.map(|rid| (rid, self.span))
    }
}
