//! The second file server of Fig. 5: FAT16 over its own disk + driver,
//! with the same transparent recovery contract as MFS.

use std::cell::RefCell;
use std::rc::Rc;

use phoenix::apps::{Dd, DdStatus};
use phoenix::os::{names, Os};
use phoenix_hw::disk::DiskModel;
use phoenix_servers::fsfat::{expected_sha1_fat, mkfs_fat, FatContent, FatFileSpec};
use phoenix_simcore::time::SimDuration;

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

fn fat_files(size: u32) -> Vec<FatFileSpec> {
    vec![
        FatFileSpec {
            name: "hello.txt".to_string(),
            content: FatContent::Bytes(b"hello from fat".to_vec()),
        },
        FatFileSpec {
            name: "big.bin".to_string(),
            content: FatContent::Synthetic { size },
        },
    ]
}

fn expected_big_sha1(sectors: u64, seed: u64, size: u32) -> String {
    let mut scratch = DiskModel::new(sectors, seed);
    let (bpb, dirents) = mkfs_fat(&mut scratch, &fat_files(size));
    expected_sha1_fat(seed, &bpb, &dirents[1])
}

#[test]
fn fat_mount_serves_files() {
    let (sectors, seed, size) = (16_384u64, 71u64, 2_000_000u32);
    let mut os = Os::builder()
        .seed(70)
        .with_fat_disk(sectors, seed, fat_files(size))
        .boot();
    assert!(os.is_up(names::FAT));
    assert!(os.is_up(names::BLK_SATA2));
    let vfs = os.endpoint(names::VFS).unwrap();
    let status = Rc::new(RefCell::new(DdStatus::default()));
    os.spawn_app(
        "dd",
        Box::new(Dd::new(vfs, "/fat/big.bin", 64 * 1024, status.clone())),
    );
    let mut guard = 0;
    while !status.borrow().done && guard < 200 {
        os.run_for(ms(100));
        guard += 1;
    }
    let st = status.borrow();
    assert!(st.done, "fat read completes; bytes={}", st.bytes);
    assert_eq!(st.errors, 0);
    assert_eq!(
        st.sha1.as_deref(),
        Some(expected_big_sha1(sectors, seed, size).as_str())
    );
}

#[test]
fn fat_driver_recovery_is_transparent_like_mfs() {
    // Fig. 5's claim, for the second file server: kill the FAT volume's
    // driver mid-read; the FAT server parks + reissues; data is intact.
    let (sectors, seed, size) = (32_768u64, 72u64, 6_000_000u32);
    let mut os = Os::builder()
        .seed(71)
        .with_fat_disk(sectors, seed, fat_files(size))
        .boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let status = Rc::new(RefCell::new(DdStatus::default()));
    os.spawn_app(
        "dd",
        Box::new(Dd::new(vfs, "/fat/big.bin", 64 * 1024, status.clone())),
    );
    os.run_for(ms(60));
    assert!(os.kill_by_user(names::BLK_SATA2));
    let mut guard = 0;
    while !status.borrow().done && guard < 400 {
        os.run_for(ms(100));
        guard += 1;
    }
    let st = status.borrow();
    assert!(
        st.done,
        "read completes despite the kill; bytes={}",
        st.bytes
    );
    assert_eq!(st.errors, 0, "transparent to the application");
    assert_eq!(
        st.sha1.as_deref(),
        Some(expected_big_sha1(sectors, seed, size).as_str()),
        "data intact"
    );
    assert!(
        os.metrics().counter("fat.reissues") >= 1,
        "pending I/O reissued"
    );
    assert_eq!(os.metrics().counter("rs.recoveries"), 1);
}

#[test]
fn both_file_servers_ride_out_simultaneous_driver_kills() {
    // MFS and FAT each lose their own driver at the same instant; both
    // recover independently (Fig. 5, both arrows at once).
    let mfs_size = 2_000_000u64;
    let mfs_sectors = mfs_size / 512 + 1024;
    let (fat_sectors, fat_seed, fat_size) = (16_384u64, 73u64, 2_000_000u32);
    let mut os = Os::builder()
        .seed(72)
        .with_disk(mfs_sectors, 55, phoenix::experiments::fig8_files(mfs_size))
        .with_fat_disk(fat_sectors, fat_seed, fat_files(fat_size))
        .boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let st_mfs = Rc::new(RefCell::new(DdStatus::default()));
    let st_fat = Rc::new(RefCell::new(DdStatus::default()));
    os.spawn_app(
        "dd-mfs",
        Box::new(Dd::new(vfs, "bigfile", 64 * 1024, st_mfs.clone())),
    );
    os.spawn_app(
        "dd-fat",
        Box::new(Dd::new(vfs, "/fat/big.bin", 64 * 1024, st_fat.clone())),
    );
    os.run_for(ms(60));
    assert!(os.kill_by_user(names::BLK_SATA));
    assert!(os.kill_by_user(names::BLK_SATA2));
    let mut guard = 0;
    while (!st_mfs.borrow().done || !st_fat.borrow().done) && guard < 400 {
        os.run_for(ms(100));
        guard += 1;
    }
    assert!(st_mfs.borrow().done && st_fat.borrow().done);
    assert_eq!(st_mfs.borrow().errors + st_fat.borrow().errors, 0);
    assert_eq!(
        st_mfs.borrow().sha1.as_deref(),
        Some(phoenix::experiments::fig8_expected_sha1(mfs_sectors, 55, mfs_size).as_str())
    );
    assert_eq!(
        st_fat.borrow().sha1.as_deref(),
        Some(expected_big_sha1(fat_sectors, fat_seed, fat_size).as_str())
    );
    assert_eq!(os.metrics().counter("rs.recoveries"), 2);
}

#[test]
fn fat_small_file_and_missing_file() {
    use phoenix_drivers::proto::status;
    use phoenix_kernel::process::{ProcEvent, Process};
    use phoenix_kernel::system::Ctx;
    use phoenix_kernel::types::{Endpoint, Message};
    use phoenix_servers::proto::fs;

    let mut os = Os::builder()
        .seed(73)
        .with_fat_disk(8192, 74, fat_files(10_000))
        .boot();
    let vfs = os.endpoint(names::VFS).unwrap();

    type Results = Rc<RefCell<Vec<(u64, Vec<u8>)>>>;
    struct Small {
        vfs: Endpoint,
        results: Results,
        step: u8,
    }
    impl Process for Small {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
            match event {
                ProcEvent::Start => {
                    let _ = ctx.sendrec(
                        self.vfs,
                        Message::new(fs::OPEN).with_data(b"/fat/hello.txt".to_vec()),
                    );
                }
                ProcEvent::Reply {
                    result: Ok(reply), ..
                } => match self.step {
                    0 => {
                        assert_eq!(reply.param(0), status::OK);
                        assert_eq!(reply.param(2), 14, "size of hello.txt");
                        self.step = 1;
                        let _ = ctx.sendrec(
                            self.vfs,
                            Message::new(fs::READ)
                                .with_param(0, reply.param(1))
                                .with_param(1, 0)
                                .with_param(2, 14)
                                .with_param(7, 1),
                        );
                    }
                    1 => {
                        self.results
                            .borrow_mut()
                            .push((reply.param(0), reply.data.clone()));
                        self.step = 2;
                        let _ = ctx.sendrec(
                            self.vfs,
                            Message::new(fs::OPEN).with_data(b"/fat/nope.bin".to_vec()),
                        );
                    }
                    2 => {
                        self.results.borrow_mut().push((reply.param(0), Vec::new()));
                        self.step = 3;
                    }
                    _ => {}
                },
                _ => {}
            }
        }
    }
    let results = Rc::new(RefCell::new(Vec::new()));
    os.spawn_app(
        "small",
        Box::new(Small {
            vfs,
            results: results.clone(),
            step: 0,
        }),
    );
    os.run_for(SimDuration::from_secs(2));
    let r = results.borrow();
    assert_eq!(r.len(), 2);
    assert_eq!(r[0].0, status::OK);
    assert_eq!(r[0].1, b"hello from fat");
    assert_eq!(r[1].0, status::ENODEV, "missing file");
}
