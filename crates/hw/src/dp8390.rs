//! Register-level model of a National Semiconductor DP8390 (NE2000-class)
//! Ethernet controller — the fault-injection target of the paper's §7.2
//! campaign (12,500+ mutations injected into its driver).
//!
//! Architecturally unlike the RTL8139: the DP8390 has *card-local* packet
//! memory (16 KB) accessed through a remote-DMA data port, an rx ring made
//! of 256-byte pages between `PSTART` and `PSTOP`, and a transmit page the
//! driver fills before setting `TXP`. This forces its driver onto a
//! genuinely different code path, which is what makes the fault-injection
//! campaign meaningful.

use std::any::Any;

use phoenix_simcore::time::SimDuration;

use crate::bus::{DevCtx, Device};

/// Card-local packet memory size.
pub const CARD_MEM: usize = 16 * 1024;
/// Ring page size.
pub const PAGE: usize = 256;

/// Register map.
pub mod regs {
    /// Command register.
    pub const CR: u16 = 0x00;
    /// Rx ring start page.
    pub const PSTART: u16 = 0x01;
    /// Rx ring stop page (exclusive).
    pub const PSTOP: u16 = 0x02;
    /// Boundary: last page the driver has consumed.
    pub const BNRY: u16 = 0x03;
    /// Transmit page start.
    pub const TPSR: u16 = 0x04;
    /// Tx byte count, low byte.
    pub const TBCR0: u16 = 0x05;
    /// Tx byte count, high byte.
    pub const TBCR1: u16 = 0x06;
    /// Interrupt status (write-1-to-clear).
    pub const ISR: u16 = 0x07;
    /// Remote start address, low byte.
    pub const RSAR0: u16 = 0x08;
    /// Remote start address, high byte.
    pub const RSAR1: u16 = 0x09;
    /// Remote byte count, low byte.
    pub const RBCR0: u16 = 0x0A;
    /// Remote byte count, high byte.
    pub const RBCR1: u16 = 0x0B;
    /// Receive configuration register.
    pub const RCR: u16 = 0x0C;
    /// Current rx page (device write pointer).
    pub const CURR: u16 = 0x0D;
    /// Interrupt mask register.
    pub const IMR: u16 = 0x0F;
    /// Remote DMA data port.
    pub const DATA: u16 = 0x10;
}

/// Command register bits.
pub mod cr {
    /// Stop the NIC.
    pub const STP: u32 = 0x01;
    /// Start the NIC.
    pub const STA: u32 = 0x02;
    /// Transmit the packet at `TPSR`.
    pub const TXP: u32 = 0x04;
    /// Arm remote DMA read (card -> host).
    pub const RD_READ: u32 = 0x08;
    /// Arm remote DMA write (host -> card).
    pub const RD_WRITE: u32 = 0x10;
    /// Software reset (model extension; real NE2000 uses a reset port).
    pub const RST: u32 = 0x80;
}

/// Interrupt status bits.
pub mod isr {
    /// Packet received.
    pub const PRX: u32 = 0x01;
    /// Packet transmitted.
    pub const PTX: u32 = 0x02;
    /// Receive error.
    pub const RXE: u32 = 0x04;
    /// Transmit error.
    pub const TXE: u32 = 0x08;
    /// Rx ring overwrite warning (ring full).
    pub const OVW: u32 = 0x10;
    /// Remote DMA complete.
    pub const RDC: u32 = 0x40;
}

/// Receive configuration bits.
pub mod rcr {
    /// Promiscuous mode.
    pub const PRO: u32 = 0x10;
}

/// Tunable model parameters.
#[derive(Debug, Clone)]
pub struct Dp8390Config {
    /// Line rate in bytes/second (10 Mb/s Ethernet ≈ 1.25 MB/s for a real
    /// DP8390; we default to 100 Mb/s to keep experiments comparable).
    pub line_rate: u64,
    /// Probability that a reserved-register write wedges the card.
    pub wedge_prob: f64,
}

impl Default for Dp8390Config {
    fn default() -> Self {
        Dp8390Config {
            line_rate: 12_500_000,
            wedge_prob: 0.0,
        }
    }
}

/// The DP8390 device model.
#[derive(Debug)]
pub struct Dp8390 {
    cfg: Dp8390Config,
    mem: Vec<u8>,
    cr: u32,
    pstart: u8,
    pstop: u8,
    bnry: u8,
    tpsr: u8,
    tbcr: u16,
    isr: u32,
    imr: u32,
    rsar: u16,
    rbcr: u16,
    rcr: u32,
    curr: u8,
    started: bool,
    wedged: bool,
    rx_ok: u64,
    rx_dropped: u64,
    tx_ok: u64,
    tx_err: u64,
}

impl Dp8390 {
    /// Creates a powered-on but unconfigured card.
    pub fn new(cfg: Dp8390Config) -> Self {
        Dp8390 {
            cfg,
            mem: vec![0; CARD_MEM],
            cr: cr::STP,
            pstart: 0,
            pstop: 0,
            bnry: 0,
            tpsr: 0,
            tbcr: 0,
            isr: 0,
            imr: 0,
            rsar: 0,
            rbcr: 0,
            rcr: 0,
            curr: 0,
            started: false,
            wedged: false,
            rx_ok: 0,
            rx_dropped: 0,
            tx_ok: 0,
            tx_err: 0,
        }
    }

    /// Whether the card is wedged.
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }

    /// Forces the wedged state (test hook).
    pub fn force_wedge(&mut self) {
        self.wedged = true;
        self.started = false;
    }

    /// Frames received into the ring.
    pub fn rx_ok(&self) -> u64 {
        self.rx_ok
    }

    /// Frames dropped.
    pub fn rx_dropped(&self) -> u64 {
        self.rx_dropped
    }

    /// Frames transmitted.
    pub fn tx_ok(&self) -> u64 {
        self.tx_ok
    }

    /// Failed transmit attempts.
    pub fn tx_err(&self) -> u64 {
        self.tx_err
    }

    fn soft_reset(&mut self) {
        self.cr = cr::STP;
        self.isr = 0;
        self.imr = 0;
        self.rsar = 0;
        self.rbcr = 0;
        self.tbcr = 0;
        self.started = false;
    }

    fn irq_if_unmasked(&mut self, ctx: &mut DevCtx<'_, '_>, bits: u32) {
        self.isr |= bits;
        if self.isr & self.imr != 0 {
            ctx.raise_irq();
        }
    }

    fn ring_pages(&self) -> u8 {
        self.pstop.saturating_sub(self.pstart)
    }

    fn next_page(&self, p: u8) -> u8 {
        let n = p + 1;
        if n >= self.pstop {
            self.pstart
        } else {
            n
        }
    }

    fn pages_free(&self) -> u8 {
        // Pages between CURR (write) and BNRY (read), leaving one page gap.
        // A BNRY outside the ring (a confused driver programmed garbage)
        // is effectively masked by the chip's page counter wrap; treat it
        // as PSTART, as real DP8390s effectively do.
        let total = self.ring_pages();
        if total == 0 {
            return 0;
        }
        let bnry = if self.bnry >= self.pstart && self.bnry < self.pstop {
            self.bnry
        } else {
            self.pstart
        };
        let used = (self.curr.wrapping_add(total).wrapping_sub(bnry)) % total;
        total - used - 1
    }
}

impl Device for Dp8390 {
    fn name(&self) -> &str {
        "dp8390"
    }

    fn read(&mut self, ctx: &mut DevCtx<'_, '_>, reg: u16) -> u32 {
        match reg {
            regs::CR => {
                let mut v = self.cr;
                if self.wedged {
                    v |= cr::RST; // stuck in reset
                }
                v
            }
            regs::PSTART => u32::from(self.pstart),
            regs::PSTOP => u32::from(self.pstop),
            regs::BNRY => u32::from(self.bnry),
            regs::TPSR => u32::from(self.tpsr),
            regs::ISR => self.isr,
            regs::RCR => self.rcr,
            regs::CURR => u32::from(self.curr),
            regs::IMR => self.imr,
            regs::DATA => {
                // Single-byte remote DMA read.
                let b = self.read_block(ctx, regs::DATA, 1);
                u32::from(b.first().copied().unwrap_or(0))
            }
            _ => 0,
        }
    }

    fn write(&mut self, ctx: &mut DevCtx<'_, '_>, reg: u16, value: u32) {
        match reg {
            regs::CR => {
                if value & cr::RST != 0 {
                    if self.wedged {
                        return; // §7.2: wedged card ignores resets
                    }
                    self.soft_reset();
                    return;
                }
                self.cr = value & (cr::STP | cr::STA | cr::RD_READ | cr::RD_WRITE);
                self.started = value & cr::STA != 0 && value & cr::STP == 0 && !self.wedged;
                if value & cr::TXP != 0 {
                    // Transmit from TPSR, TBCR bytes.
                    if !self.started {
                        self.tx_err += 1;
                        self.irq_if_unmasked(ctx, isr::TXE);
                        return;
                    }
                    let start = usize::from(self.tpsr) * PAGE;
                    let len = usize::from(self.tbcr);
                    if len == 0 || start + len > CARD_MEM {
                        self.tx_err += 1;
                        self.irq_if_unmasked(ctx, isr::TXE);
                        return;
                    }
                    let frame = self.mem[start..start + len].to_vec();
                    self.tx_ok += 1;
                    let delay = SimDuration::for_transfer(len as u64, self.cfg.line_rate);
                    ctx.tx_frame(frame);
                    ctx.set_timer_after(delay, 0);
                }
            }
            regs::PSTART => self.pstart = value as u8,
            regs::PSTOP => self.pstop = value as u8,
            regs::BNRY => {
                let v = value as u8;
                let in_ring = self.pstop > self.pstart && v >= self.pstart && v < self.pstop;
                if self.started && !in_ring {
                    // Programming a ring pointer outside the ring is the
                    // kind of faulty-driver behavior that can leave the
                    // chip "confused... and could not be reinitialized by
                    // the restarted driver" (§7.2).
                    if self.cfg.wedge_prob > 0.0 {
                        let p = self.cfg.wedge_prob;
                        if ctx.rng().chance(p) {
                            self.wedged = true;
                            self.started = false;
                        }
                    }
                }
                self.bnry = v;
            }
            regs::TPSR => self.tpsr = value as u8,
            regs::TBCR0 => self.tbcr = (self.tbcr & 0xFF00) | (value as u16 & 0xFF),
            regs::TBCR1 => self.tbcr = (self.tbcr & 0x00FF) | ((value as u16 & 0xFF) << 8),
            regs::ISR => self.isr &= !value,
            regs::RSAR0 => self.rsar = (self.rsar & 0xFF00) | (value as u16 & 0xFF),
            regs::RSAR1 => self.rsar = (self.rsar & 0x00FF) | ((value as u16 & 0xFF) << 8),
            regs::RBCR0 => self.rbcr = (self.rbcr & 0xFF00) | (value as u16 & 0xFF),
            regs::RBCR1 => self.rbcr = (self.rbcr & 0x00FF) | ((value as u16 & 0xFF) << 8),
            regs::RCR => self.rcr = value,
            regs::CURR => self.curr = value as u8,
            regs::IMR => self.imr = value,
            regs::DATA => {
                self.write_block(ctx, regs::DATA, &[value as u8]);
            }
            _ => {
                if self.cfg.wedge_prob > 0.0 {
                    let p = self.cfg.wedge_prob;
                    if ctx.rng().chance(p) {
                        self.wedged = true;
                        self.started = false;
                    }
                }
            }
        }
    }

    fn read_block(&mut self, ctx: &mut DevCtx<'_, '_>, reg: u16, len: usize) -> Vec<u8> {
        if reg != regs::DATA || self.cr & cr::RD_READ == 0 || self.wedged {
            return vec![0; len];
        }
        let n = len.min(usize::from(self.rbcr));
        let start = usize::from(self.rsar).min(CARD_MEM);
        let end = (start + n).min(CARD_MEM);
        let mut out = self.mem[start..end].to_vec();
        out.resize(len, 0);
        self.rsar = end as u16;
        self.rbcr -= n as u16;
        if self.rbcr == 0 {
            self.irq_if_unmasked(ctx, isr::RDC);
        }
        out
    }

    fn write_block(&mut self, ctx: &mut DevCtx<'_, '_>, reg: u16, data: &[u8]) {
        if reg != regs::DATA || self.cr & cr::RD_WRITE == 0 || self.wedged {
            return;
        }
        let n = data.len().min(usize::from(self.rbcr));
        let start = usize::from(self.rsar).min(CARD_MEM);
        let end = (start + n).min(CARD_MEM);
        self.mem[start..end].copy_from_slice(&data[..end - start]);
        self.rsar = end as u16;
        self.rbcr -= n as u16;
        if self.rbcr == 0 {
            self.irq_if_unmasked(ctx, isr::RDC);
        }
    }

    fn timer(&mut self, ctx: &mut DevCtx<'_, '_>, _token: u64) {
        self.irq_if_unmasked(ctx, isr::PTX);
    }

    fn frame_in(&mut self, ctx: &mut DevCtx<'_, '_>, frame: &[u8]) {
        if !self.started || self.wedged || self.ring_pages() < 2 {
            self.rx_dropped += 1;
            return;
        }
        if self.rcr & rcr::PRO == 0 {
            self.rx_dropped += 1;
            return;
        }
        let need_pages = (4 + frame.len()).div_ceil(PAGE) as u8;
        if self.pages_free() < need_pages {
            self.rx_dropped += 1;
            self.irq_if_unmasked(ctx, isr::OVW);
            return;
        }
        // Write the 4-byte header + frame into consecutive ring pages.
        let mut page = self.curr;
        let start = usize::from(page) * PAGE;
        let next = {
            let mut p = page;
            for _ in 0..need_pages {
                p = self.next_page(p);
            }
            p
        };
        let total = 4 + frame.len();
        let mut pkt = Vec::with_capacity(total);
        pkt.push(0x01); // status: OK
        pkt.push(next); // next packet page
        pkt.extend_from_slice(&(total as u16).to_le_bytes());
        pkt.extend_from_slice(frame);
        // Copy with ring wrap at PSTOP.
        let mut written = 0usize;
        let mut dst = start;
        while written < pkt.len() {
            if dst >= usize::from(self.pstop) * PAGE {
                dst = usize::from(self.pstart) * PAGE;
            }
            let room = (usize::from(self.pstop) * PAGE - dst).min(pkt.len() - written);
            self.mem[dst..dst + room].copy_from_slice(&pkt[written..written + room]);
            written += room;
            dst += room;
        }
        page = next;
        self.curr = page;
        self.rx_ok += 1;
        self.irq_if_unmasked(ctx, isr::PRX);
    }

    fn hard_reset(&mut self) {
        self.wedged = false;
        self.soft_reset();
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}
