//! Dynamic update (§5.1 input 6, §6): replace a *live* driver with a newer
//! version while I/O is in progress — no reboot, no failed requests.
//! "Most other operating systems cannot dynamically replace active drivers
//! on the fly like we do."
//!
//! Run with: `cargo run --release --example dynamic_update`

use std::cell::RefCell;
use std::rc::Rc;

use phoenix::apps::{Wget, WgetStatus};
use phoenix::os::{hwmap, names, NicKind, Os};
use phoenix_drivers::libdriver::{Driver, FaultPort};
use phoenix_drivers::Rtl8139Driver;
use phoenix_servers::netproto::stream_md5;
use phoenix_simcore::time::SimDuration;

fn main() {
    let size: u64 = 30_000_000;
    let content_seed = 99;
    let mut os = Os::builder().seed(6).with_network(NicKind::Rtl8139).boot();
    println!(
        "driver {} running as version {}",
        names::ETH_RTL8139,
        os.running_version(names::ETH_RTL8139).unwrap()
    );

    // Start a download so I/O is demonstrably in progress.
    let inet = os.endpoint(names::INET).unwrap();
    let status = Rc::new(RefCell::new(WgetStatus::default()));
    os.spawn_app(
        "wget",
        Box::new(Wget::new(inet, size, content_seed, status.clone())),
    );
    os.run_for(SimDuration::from_millis(500));
    println!(
        "download in progress: {} bytes so far",
        status.borrow().bytes
    );

    // The administrator compiled a patched driver; register it as the next
    // version and ask the reincarnation server for a dynamic update. RS
    // sends SIGTERM (escalating to SIGKILL if ignored) and starts the new
    // binary — skipping the backoff the generic policy applies to real
    // failures (Fig. 2: `if reason != update`).
    let fp = FaultPort::new();
    os.register_update(
        names::ETH_RTL8139,
        Box::new(move || {
            Box::new(Driver::new(Rtl8139Driver::new(
                hwmap::NIC,
                hwmap::NIC_IRQ,
                fp.clone(),
            )))
        }),
    )
    .expect("driver program exists");
    println!("requesting dynamic update mid-transfer ...");
    os.service_update(names::ETH_RTL8139);
    os.run_for(SimDuration::from_secs(1));
    println!(
        "driver now running version {} (defect class 'update': {})",
        os.running_version(names::ETH_RTL8139).unwrap(),
        os.metrics().counter("rs.defect.update")
    );

    // The download rides through the update exactly like a recovery.
    while !status.borrow().done {
        os.run_for(SimDuration::from_millis(100));
    }
    let st = status.borrow();
    assert_eq!(
        st.md5.as_deref(),
        Some(stream_md5(content_seed, size).as_str()),
        "update must not corrupt in-flight data"
    );
    println!(
        "download completed intact: md5 {}",
        st.md5.as_deref().unwrap()
    );
    println!("=> live driver replacement, transparent to the application");
}
