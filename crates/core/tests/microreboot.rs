//! Microreboot tests: crash-only system servers, recursive RS
//! escalation, and recovery-aware applications on the checkpointing
//! machine (`OsBuilder::with_checkpointing`).

use std::cell::RefCell;
use std::rc::Rc;

use phoenix::apps::{Dd, DdStatus, UdpPing, UdpStatus, Wget, WgetStatus};
use phoenix::os::{names, NicKind, Os};
use phoenix_servers::fsfmt::{FileContent, FileSpec};
use phoenix_servers::netproto::stream_md5;
use phoenix_servers::ServerFault;
use phoenix_simcore::time::SimDuration;

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

const FILE_SIZE: u64 = 128 * 1024;

/// Boots the crash-only machine: checkpointing servers, sticky slots,
/// recursive PM guard.
fn boot(seed: u64) -> Os {
    let files = vec![FileSpec {
        name: "stream".to_string(),
        content: FileContent::Synthetic { size: FILE_SIZE },
    }];
    Os::builder()
        .seed(seed)
        .with_network(NicKind::Dp8390)
        .with_disk(FILE_SIZE / 512 + 256, seed ^ 0xd15c, files)
        .with_checkpointing()
        .heartbeat(ms(500), 2)
        .boot()
}

/// Spawns a recovery-aware reader and returns its status cell.
fn spawn_reader(os: &mut Os, name: &str) -> Rc<RefCell<DdStatus>> {
    let vfs = os.endpoint(names::VFS).expect("vfs up");
    let rs = os.endpoint("rs").expect("rs up");
    let st = Rc::new(RefCell::new(DdStatus::default()));
    os.spawn_app_with_ipc(
        name,
        Box::new(Dd::new(vfs, "stream", 8 * 1024, st.clone()).recovery_aware(rs)),
        &["vfs", "pm", "inet", "rs"],
    );
    st
}

fn run_until(os: &mut Os, mut cond: impl FnMut(&Os) -> bool, budget_ms: u64) {
    let mut spent = 0;
    while !cond(os) && spent < budget_ms {
        os.run_for(ms(50));
        spent += 50;
    }
}

/// A pristine read defines the byte-exact expectation.
fn pristine_sha1(os: &mut Os) -> String {
    let st = spawn_reader(os, "dd-pristine");
    run_until(os, |_| st.borrow().done, 10_000);
    let st = st.borrow();
    assert!(st.done, "pristine read finishes");
    assert_eq!(st.errors, 0);
    st.sha1.clone().expect("sha1 set")
}

#[test]
fn vfs_microreboot_is_transparent_to_a_reader() {
    // Crash VFS mid-read: the job must finish byte-exact with zero
    // application-visible errors, against a *replaced* incarnation.
    let mut os = boot(7001);
    let expected = pristine_sha1(&mut os);
    let before = os.endpoint(names::VFS).expect("vfs up");

    os.inject_server_fault_of(names::VFS, ServerFault::Crash);
    let st = spawn_reader(&mut os, "dd-victim");
    run_until(&mut os, |_| st.borrow().done, 30_000);

    let after = os.endpoint(names::VFS).expect("vfs back up");
    assert_ne!(before, after, "VFS incarnation was replaced");
    let st = st.borrow();
    assert!(st.done, "reader finished across the microreboot");
    assert_eq!(st.errors, 0, "microreboot transparent to the reader");
    assert_eq!(st.sha1.as_deref(), Some(expected.as_str()), "byte-exact");
    assert!(st.retries > 0, "the reader did reissue work");
    assert_eq!(os.metrics().counter("rs.escalations.level1"), 1);
}

#[test]
fn stalled_server_is_detected_by_the_request_age_guard() {
    // A wedged MFS swallows requests without crashing; the kernel
    // request-age guard must notice and RS must microreboot it.
    let mut os = boot(7002);
    let expected = pristine_sha1(&mut os);
    let before = os.endpoint(names::MFS).expect("mfs up");

    os.inject_server_fault_of(names::MFS, ServerFault::Stall);
    let st = spawn_reader(&mut os, "dd-victim");
    run_until(&mut os, |_| st.borrow().done, 40_000);

    let after = os.endpoint(names::MFS).expect("mfs back up");
    assert_ne!(before, after, "MFS incarnation was replaced");
    let st = st.borrow();
    assert!(st.done, "reader finished across the stall");
    assert_eq!(st.sha1.as_deref(), Some(expected.as_str()), "byte-exact");
    assert!(
        os.metrics().counter("rs.complaints.evidence.progress") > 0,
        "the request-age guard provided the evidence"
    );
}

#[test]
fn garbling_server_is_convicted_by_application_complaints() {
    // A corrupting VFS garbles its replies; the recovery-aware reader
    // files BAD_REPLY evidence and RS restarts the server.
    let mut os = boot(7003);
    let expected = pristine_sha1(&mut os);
    let before = os.endpoint(names::VFS).expect("vfs up");

    os.inject_server_fault_of(names::VFS, ServerFault::Garble);
    let st = spawn_reader(&mut os, "dd-victim");
    run_until(&mut os, |_| st.borrow().done, 30_000);

    let after = os.endpoint(names::VFS).expect("vfs back up");
    assert_ne!(before, after, "VFS incarnation was replaced");
    let st = st.borrow();
    assert!(st.done);
    assert_eq!(st.sha1.as_deref(), Some(expected.as_str()), "byte-exact");
    assert!(st.complaints > 0, "the reader filed the evidence");
    assert!(os.metrics().counter("rs.complaints.accepted") > 0);
}

#[test]
fn inet_microreboot_resumes_a_download() {
    // Crash INET mid-download: the session slab is externalized, so the
    // restored incarnation still knows the connection and the peer's
    // retransmissions fill the gap.
    let mut os = boot(7004);
    let size = 32 * 1024u64;
    let inet = os.endpoint(names::INET).expect("inet up");
    let rs = os.endpoint("rs").expect("rs up");
    let st = Rc::new(RefCell::new(WgetStatus::default()));
    os.spawn_app_with_ipc(
        "wget-victim",
        Box::new(Wget::new(inet, size, 3, st.clone()).recovery_aware(rs)),
        &["vfs", "pm", "inet", "rs"],
    );
    // The armed fault is consumed by the download's first request.
    os.inject_server_fault_of(names::INET, ServerFault::Crash);
    run_until(&mut os, |_| st.borrow().done, 60_000);

    let after = os.endpoint(names::INET).expect("inet back up");
    assert_ne!(inet, after, "INET incarnation was replaced");
    let st = st.borrow();
    assert!(st.done, "download finished across the microreboot");
    assert_eq!(
        st.md5.as_deref(),
        Some(stream_md5(3, size).as_str()),
        "stream is byte-exact"
    );
}

#[test]
fn pm_is_recovered_recursively_by_rs() {
    // Kill PM: RS notices (audit / liveness ping), respawns it with its
    // own spawn privilege, and service recovery still works afterwards.
    let mut os = boot(7005);
    let pm_before = os.endpoint("pm").expect("pm up");
    os.inject_server_fault_of("pm", ServerFault::Crash);
    run_until(
        &mut os,
        |os| os.endpoint("pm").is_some_and(|e| e != pm_before),
        20_000,
    );
    let pm_after = os.endpoint("pm").expect("pm back up");
    assert_ne!(pm_before, pm_after, "PM incarnation was replaced");
    assert_eq!(os.metrics().counter("rs.pm_recoveries"), 1);

    // The recovered PM must still execute starts: crash a server and
    // watch the (PM-mediated) restart succeed.
    let vfs_before = os.endpoint(names::VFS).expect("vfs up");
    os.inject_server_fault_of(names::VFS, ServerFault::Crash);
    let st = spawn_reader(&mut os, "dd-after");
    run_until(&mut os, |_| st.borrow().done, 30_000);
    assert!(st.borrow().done, "reads work after recursive recovery");
    assert_ne!(os.endpoint(names::VFS), Some(vfs_before));
}

#[test]
fn stalled_pm_is_detected_by_the_liveness_ping() {
    // A wedged PM swallows events with nothing in flight against it; the
    // RS liveness ping is the only detector that can see it.
    let mut os = boot(7006);
    let pm_before = os.endpoint("pm").expect("pm up");
    os.inject_server_fault_of("pm", ServerFault::Stall);
    run_until(
        &mut os,
        |os| os.endpoint("pm").is_some_and(|e| e != pm_before),
        30_000,
    );
    assert_ne!(os.endpoint("pm"), Some(pm_before), "PM was replaced");
    assert!(os.metrics().counter("rs.pm_pings_missed") > 0);
}

#[test]
fn recurring_defect_escalates_to_a_dependency_group_reboot() {
    // Two defects in the same server inside the budget window: the
    // second recovery must escalate to level 2 and reboot the dependent
    // group (MFS rides along with VFS).
    let mut os = boot(7007);
    let _ = pristine_sha1(&mut os);

    let mfs_gen0 = os.endpoint(names::MFS).expect("mfs up");
    for round in 0..2 {
        let before = os.endpoint(names::VFS).expect("vfs up");
        os.inject_server_fault_of(names::VFS, ServerFault::Crash);
        let st = spawn_reader(&mut os, &format!("dd-{round}"));
        run_until(&mut os, |_| st.borrow().done, 30_000);
        assert!(st.borrow().done, "round {round} read finished");
        run_until(
            &mut os,
            |os| os.endpoint(names::VFS).is_some_and(|e| e != before),
            10_000,
        );
    }
    assert_eq!(os.metrics().counter("rs.escalations.level2"), 1);
    // The group reboot replaced the (healthy) dependent too.
    run_until(
        &mut os,
        |os| os.endpoint(names::MFS).is_some_and(|e| e != mfs_gen0),
        10_000,
    );
    assert_ne!(os.endpoint(names::MFS), Some(mfs_gen0), "MFS rebooted too");
    // The group members were killed by RS, not convicted of anything:
    // their deaths must not count against their own restart budgets.
    assert_eq!(os.metrics().counter("rs.gave_up"), 0);
}

#[test]
fn same_seed_runs_are_byte_identical() {
    use phoenix::campaign::{run_microreboot_campaign, MicrorebootConfig};
    let cfg = MicrorebootConfig {
        rounds: 1,
        ..MicrorebootConfig::default()
    };
    let (a, _) = run_microreboot_campaign(&cfg);
    let (b, _) = run_microreboot_campaign(&cfg);
    assert_eq!(a.digest, b.digest, "same seed, same bytes");
    assert!(a.coverage() > 0.0);
}

#[test]
fn no_fault_control_never_restarts_a_healthy_server() {
    use phoenix::campaign::{run_microreboot_control, MicrorebootConfig};
    let control = run_microreboot_control(&MicrorebootConfig::default(), ms(20_000));
    assert_eq!(control.restarts, 0, "no false service restarts");
    assert_eq!(control.pm_recoveries, 0, "no false PM recoveries");
    assert_eq!(control.complaints_accepted, 0, "no accepted complaints");
    assert_eq!(control.escalations, 0, "no escalations");
    assert!(
        control.echoed > 0 && control.disk_bytes > 0,
        "workloads live"
    );
}

#[test]
fn background_traffic_survives_a_full_server_sweep() {
    // Give-up taxonomy guard: killing each server once in sequence must
    // leave zero `gave_up` services and the datagram path still moving.
    let mut os = boot(7008);
    let udp = Rc::new(RefCell::new(UdpStatus::default()));
    let inet = os.endpoint(names::INET).expect("inet up");
    os.spawn_app(
        "udp-bg",
        Box::new(UdpPing::new(inet, 1_000_000, ms(5), udp.clone())),
    );
    os.run_for(ms(500));
    for (round, server) in [names::VFS, names::MFS, names::INET, "pm"]
        .into_iter()
        .enumerate()
    {
        let before = os.endpoint(server).expect("server up");
        os.inject_server_fault_of(server, ServerFault::Crash);
        // A server only consumes its armed fault when an event reaches
        // it: the UDP traffic pokes INET and RS pings PM, but the idle
        // file-system servers need a caller to trip the defect.
        if server == names::VFS || server == names::MFS {
            let _ = spawn_reader(&mut os, &format!("dd-sweep-{round}"));
        }
        run_until(
            &mut os,
            |os| os.endpoint(server).is_some_and(|e| e != before),
            30_000,
        );
        assert_ne!(os.endpoint(server), Some(before), "{server} replaced");
    }
    let echoed_before = udp.borrow().echoed;
    os.run_for(ms(2_000));
    assert!(
        udp.borrow().echoed > echoed_before,
        "datagram traffic still moving after the sweep"
    );
    assert_eq!(os.metrics().counter("rs.gave_up"), 0, "nothing gave up");
}
