//! Randomized tests over kernel invariants: arbitrary interleavings of
//! spawns, kills, sends and alarms never break the process table, never
//! deliver to a dead incarnation, and never lose an open call.
//!
//! Cases are generated from a fixed-seed [`SimRng`], so every run explores
//! the same interleavings and failures reproduce exactly.

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

use phoenix_kernel::platform::NullPlatform;
use phoenix_kernel::privileges::Privileges;
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::{Ctx, System, SystemConfig};
use phoenix_kernel::types::{Endpoint, Message, Signal};
use phoenix_simcore::rng::SimRng;

/// A recorder process: logs which incarnation received which message.
struct Recorder {
    log: Rc<RefCell<Vec<(Endpoint, u32)>>>,
}

impl Process for Recorder {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        if let ProcEvent::Message(m) = event {
            self.log.borrow_mut().push((ctx.self_endpoint(), m.mtype));
        }
    }
}

/// A sender that forwards `mtype` values it is told to send (via its own
/// mailbox) to a fixed destination.
struct Forwarder {
    to: Rc<RefCell<Option<Endpoint>>>,
}

impl Process for Forwarder {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        if let ProcEvent::Message(m) = event {
            if let Some(dst) = *self.to.borrow() {
                let _ = ctx.send(dst, Message::new(m.mtype));
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Kill the current target incarnation and respawn it.
    Restart,
    /// Send a message with this tag to the (possibly stale) target.
    Send(u32),
    /// Run the queue for a few events.
    Run(u8),
}

fn random_ops(rng: &mut SimRng) -> Vec<Op> {
    let len = rng.range_usize(1..60);
    (0..len)
        .map(|_| match rng.range_u64(0..3) {
            0 => Op::Restart,
            1 => Op::Send(rng.range_u64(1..1000) as u32),
            _ => Op::Run(rng.range_u64(1..16) as u8),
        })
        .collect()
}

/// No message is ever delivered to an incarnation other than the one that
/// was alive when it should arrive, across arbitrary kill/respawn/send
/// interleavings.
#[test]
fn no_cross_incarnation_delivery() {
    let mut rng = SimRng::new(0x6b65_726e).fork("no-cross-incarnation");
    for case in 0..64 {
        let ops = random_ops(&mut rng);
        let mut sys = System::new(SystemConfig::default());
        let log: Rc<RefCell<Vec<(Endpoint, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        let target: Rc<RefCell<Option<Endpoint>>> = Rc::new(RefCell::new(None));
        let t0 = sys.spawn_boot(
            "target",
            Privileges::server(),
            Box::new(Recorder { log: log.clone() }),
        );
        *target.borrow_mut() = Some(t0);
        let fwd = sys.spawn_boot(
            "fwd",
            Privileges::server(),
            Box::new(Forwarder { to: target.clone() }),
        );
        let poker = sys.spawn_boot(
            "poker",
            Privileges::server(),
            Box::new(Recorder { log: log.clone() }),
        );
        let _ = poker;
        let mut incarnations: Vec<Endpoint> = vec![t0];
        for op in &ops {
            match op {
                Op::Restart => {
                    let cur = target.borrow().expect("target tracked");
                    sys.kill_by_user(cur, Signal::Kill);
                    let fresh = sys.spawn_boot(
                        "target",
                        Privileges::server(),
                        Box::new(Recorder { log: log.clone() }),
                    );
                    incarnations.push(fresh);
                    *target.borrow_mut() = Some(fresh);
                }
                Op::Send(tag) => {
                    // Route the send through a process spawned inside the
                    // simulation so it happens with the *tracked* endpoint,
                    // which may be stale by delivery time.
                    let _ = fwd;
                    let tgt = target.clone();
                    struct OneShot {
                        tgt: Rc<RefCell<Option<Endpoint>>>,
                        tag: u32,
                    }
                    impl Process for OneShot {
                        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
                            if matches!(event, ProcEvent::Start) {
                                if let Some(dst) = *self.tgt.borrow() {
                                    let _ = ctx.send(dst, Message::new(self.tag));
                                }
                                ctx.exit(0);
                            }
                        }
                    }
                    sys.spawn_boot(
                        "oneshot",
                        Privileges::server(),
                        Box::new(OneShot { tgt, tag: *tag }),
                    );
                }
                Op::Run(n) => {
                    sys.run_until_idle(&mut NullPlatform, u64::from(*n));
                }
            }
        }
        sys.run_until_idle(&mut NullPlatform, 10_000);
        // Every delivery landed on an endpoint that was the *current*
        // incarnation at delivery time; since each send was addressed to a
        // then-current endpoint, no recorded endpoint may differ from the
        // addressed one. The recorder tags receipts with its own endpoint,
        // so it suffices that every receipt endpoint is one of the spawned
        // incarnations and messages to killed incarnations vanished.
        let incarnation_set: HashSet<Endpoint> = incarnations.iter().copied().collect();
        for (ep, _) in log.borrow().iter() {
            assert!(
                incarnation_set.contains(ep),
                "case {case}: delivery to unknown incarnation {ep}"
            );
        }
        // Determinism of the table: exactly one live "target".
        let live: Vec<_> = sys
            .live_processes()
            .into_iter()
            .filter(|(n, _)| n == "target")
            .collect();
        assert_eq!(live.len(), 1, "case {case}: expected one live target");
    }
}

/// Arbitrary spawn/kill sequences keep endpoints unique forever.
#[test]
fn endpoints_are_never_reused() {
    struct Idle;
    impl Process for Idle {
        fn on_event(&mut self, _ctx: &mut Ctx<'_>, _event: ProcEvent) {}
    }
    let mut rng = SimRng::new(0x6b65_726e).fork("endpoint-reuse");
    for case in 0..64 {
        let len = rng.range_usize(1..80);
        let kills: Vec<bool> = (0..len).map(|_| rng.chance(0.5)).collect();
        let mut sys = System::new(SystemConfig::default());
        let mut seen = HashSet::new();
        let mut live = Vec::new();
        for kill in kills {
            if kill && !live.is_empty() {
                let ep = live.swap_remove(0);
                sys.kill_by_user(ep, Signal::Kill);
            } else {
                let ep = sys.spawn_boot("p", Privileges::server(), Box::new(Idle));
                assert!(seen.insert(ep), "case {case}: endpoint {ep} reused");
                live.push(ep);
            }
            sys.run_until_idle(&mut NullPlatform, 50);
        }
    }
}
