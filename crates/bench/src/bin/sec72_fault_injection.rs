//! §7.2: the software fault-injection campaign against the DP8390 driver.
//!
//! Paper: 12,500+ injected faults -> 347 detectable crashes (65% panics,
//! 31% CPU/MMU exceptions, 4% missing heartbeats); recovery succeeded in
//! 100% of induced failures in the emulator, and >99% on real hardware
//! where <5 wedged cards needed a BIOS reset.

use phoenix::campaign::{run_campaign, CampaignConfig};
use phoenix_bench::{print_table, quick_mode};
use phoenix_servers::policy::reason;

fn main() {
    let quick = quick_mode();
    let injections = if quick { 1_000 } else { 12_500 };

    println!("§7.2 — fault-injection campaign, DP8390 driver, {injections} faults\n");

    // Campaign 1: the emulator run (no hardware wedging).
    let cfg = CampaignConfig {
        injections,
        ..CampaignConfig::default()
    };
    let (result, traffic) = run_campaign(&cfg);
    println!("emulator campaign:");
    println!("  {}", result.render());
    let rows = vec![
        row(
            "exits / internal panics",
            result.count(reason::EXIT),
            &result,
            226,
            65,
        ),
        row(
            "CPU/MMU exceptions",
            result.count(reason::EXCEPTION),
            &result,
            109,
            31,
        ),
        row(
            "missing heartbeats",
            result.count(reason::HEARTBEAT),
            &result,
            12,
            4,
        ),
    ];
    print_table(
        &["detection", "crashes", "share", "paper", "paper share"],
        &rows,
    );
    println!(
        "  recovery: {}/{} ({:.1}%)  [paper: 100%]",
        result.recovered() + result.hard_resets(),
        result.crashes.len(),
        result.pct(result.recovered() + result.hard_resets()),
    );
    let t = traffic.borrow();
    println!("  background traffic: {} datagrams echoed\n", t.echoed);

    // Campaign 2: "real hardware" with a small wedge probability.
    let cfg2 = CampaignConfig {
        injections: injections / 4,
        wedge_prob: 0.02,
        seed: 2008,
        ..CampaignConfig::default()
    };
    let (result2, _) = run_campaign(&cfg2);
    println!("real-hardware campaign (wedge-capable card):");
    println!("  {}", result2.render());
    println!(
        "  [paper: success for >99% of detectable failures; <5 cases needed a low-level BIOS reset]"
    );
}

fn row(
    name: &str,
    n: usize,
    r: &phoenix::campaign::CampaignResult,
    paper_n: u32,
    paper_pct: u32,
) -> Vec<String> {
    vec![
        name.to_string(),
        n.to_string(),
        format!("{:.0}%", r.pct(n)),
        paper_n.to_string(),
        format!("{paper_pct}%"),
    ]
}
