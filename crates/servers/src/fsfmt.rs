//! On-disk filesystem format and `mkfs`.
//!
//! A deliberately small extent-based filesystem, enough to host the
//! workloads of §7.1 (a 1 GB file "filled with random data" read through
//! the file server while its disk driver is killed). Layout:
//!
//! ```text
//! LBA 0                superblock
//! LBA 1..1+T           inode table (4 × 128-byte inodes per sector)
//! LBA 1+T..            file data (extents)
//! ```
//!
//! `mkfs` can create *synthetic* files whose content is the disk's
//! deterministic base pattern — no data is actually written, so building a
//! 1 GB file is free, and the experiment harness can compute the expected
//! SHA-1 without touching the simulated disk.

use phoenix_hw::disk::{synth_sector, DiskModel, SECTOR};
use phoenix_simcore::digest::Sha1;

/// Superblock magic.
pub const MAGIC: &[u8; 8] = b"PHXFS1\0\0";
/// Size of an on-disk inode.
pub const INODE_SIZE: usize = 128;
/// Maximum extents per inode.
pub const MAX_EXTENTS: usize = 6;
/// Maximum file-name length.
pub const NAME_LEN: usize = 32;

/// A contiguous run of sectors belonging to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First sector.
    pub start: u64,
    /// Length in sectors.
    pub sectors: u32,
}

/// An in-memory inode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// File name (flat namespace).
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Data extents.
    pub extents: Vec<Extent>,
}

impl Inode {
    /// Serializes to the 128-byte on-disk format.
    ///
    /// # Panics
    ///
    /// Panics if the name or extent list exceed the format limits.
    pub fn encode(&self) -> [u8; INODE_SIZE] {
        assert!(self.name.len() <= NAME_LEN, "file name too long");
        assert!(self.extents.len() <= MAX_EXTENTS, "too many extents");
        let mut out = [0u8; INODE_SIZE];
        out[..self.name.len()].copy_from_slice(self.name.as_bytes());
        out[32..40].copy_from_slice(&self.size.to_le_bytes());
        out[40..44].copy_from_slice(&(self.extents.len() as u32).to_le_bytes());
        for (i, e) in self.extents.iter().enumerate() {
            let base = 44 + i * 12;
            out[base..base + 8].copy_from_slice(&e.start.to_le_bytes());
            out[base + 8..base + 12].copy_from_slice(&e.sectors.to_le_bytes());
        }
        out
    }

    /// Parses the on-disk format; `None` for an empty slot or corrupt
    /// entry.
    pub fn decode(raw: &[u8]) -> Option<Inode> {
        if raw.len() < INODE_SIZE || raw[0] == 0 {
            return None;
        }
        let name_end = raw[..NAME_LEN]
            .iter()
            .position(|&b| b == 0)
            .unwrap_or(NAME_LEN);
        let name = std::str::from_utf8(&raw[..name_end]).ok()?.to_string();
        let size = u64::from_le_bytes(raw[32..40].try_into().ok()?);
        let n = u32::from_le_bytes(raw[40..44].try_into().ok()?) as usize;
        if n > MAX_EXTENTS {
            return None;
        }
        let mut extents = Vec::with_capacity(n);
        for i in 0..n {
            let base = 44 + i * 12;
            extents.push(Extent {
                start: u64::from_le_bytes(raw[base..base + 8].try_into().ok()?),
                sectors: u32::from_le_bytes(raw[base + 8..base + 12].try_into().ok()?),
            });
        }
        Some(Inode {
            name,
            size,
            extents,
        })
    }

    /// Maps a byte offset to `(lba, byte offset within that sector)`;
    /// `None` past EOF.
    pub fn locate(&self, offset: u64) -> Option<(u64, usize)> {
        if offset >= self.size {
            return None;
        }
        let mut sector_index = offset / SECTOR as u64;
        for e in &self.extents {
            if sector_index < u64::from(e.sectors) {
                return Some((e.start + sector_index, (offset % SECTOR as u64) as usize));
            }
            sector_index -= u64::from(e.sectors);
        }
        None
    }

    /// Number of *contiguous* sectors available starting at the sector
    /// containing `offset` (for building large driver requests).
    pub fn contiguous_sectors_at(&self, offset: u64) -> u64 {
        let mut sector_index = offset / SECTOR as u64;
        for e in &self.extents {
            if sector_index < u64::from(e.sectors) {
                return u64::from(e.sectors) - sector_index;
            }
            sector_index -= u64::from(e.sectors);
        }
        0
    }
}

/// The parsed superblock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superblock {
    /// Number of inode slots.
    pub inode_count: u32,
    /// First sector of the inode table.
    pub inode_table_lba: u64,
    /// Sectors occupied by the inode table.
    pub inode_table_sectors: u32,
}

impl Superblock {
    /// Serializes to one sector.
    pub fn encode(&self) -> Vec<u8> {
        let mut s = vec![0u8; SECTOR];
        s[..8].copy_from_slice(MAGIC);
        s[8..12].copy_from_slice(&self.inode_count.to_le_bytes());
        s[16..24].copy_from_slice(&self.inode_table_lba.to_le_bytes());
        s[24..28].copy_from_slice(&self.inode_table_sectors.to_le_bytes());
        s
    }

    /// Parses a sector; `None` if the magic is wrong.
    pub fn decode(raw: &[u8]) -> Option<Superblock> {
        if raw.len() < SECTOR || &raw[..8] != MAGIC {
            return None;
        }
        Some(Superblock {
            inode_count: u32::from_le_bytes(raw[8..12].try_into().ok()?),
            inode_table_lba: u64::from_le_bytes(raw[16..24].try_into().ok()?),
            inode_table_sectors: u32::from_le_bytes(raw[24..28].try_into().ok()?),
        })
    }
}

/// What `mkfs` should put in a file.
#[derive(Debug, Clone)]
pub enum FileContent {
    /// The disk's deterministic base pattern — free to create, and the
    /// expected checksum is computable without I/O.
    Synthetic {
        /// File size in bytes.
        size: u64,
    },
    /// Explicit bytes, written to the disk overlay.
    Bytes(Vec<u8>),
}

/// A file for `mkfs` to create.
#[derive(Debug, Clone)]
pub struct FileSpec {
    /// Name in the flat namespace.
    pub name: String,
    /// Content.
    pub content: FileContent,
}

/// Formats `disk` with the given files. Returns the created inodes.
///
/// # Panics
///
/// Panics if the files do not fit on the disk or exceed format limits.
pub fn mkfs(disk: &mut DiskModel, files: &[FileSpec]) -> Vec<Inode> {
    let inode_count = files.len().max(4) as u32;
    let table_sectors = inode_count.div_ceil((SECTOR / INODE_SIZE) as u32);
    let sb = Superblock {
        inode_count,
        inode_table_lba: 1,
        inode_table_sectors: table_sectors,
    };
    let mut next_free = 1 + u64::from(table_sectors);
    let mut inodes = Vec::new();
    for spec in files {
        let size = match &spec.content {
            FileContent::Synthetic { size } => *size,
            FileContent::Bytes(b) => b.len() as u64,
        };
        let sectors = size.div_ceil(SECTOR as u64);
        assert!(
            next_free + sectors <= disk.sectors(),
            "disk too small for {}",
            spec.name
        );
        let extent = Extent {
            start: next_free,
            sectors: sectors as u32,
        };
        if let FileContent::Bytes(bytes) = &spec.content {
            for (i, chunk) in bytes.chunks(SECTOR).enumerate() {
                let mut sector = chunk.to_vec();
                sector.resize(SECTOR, 0);
                assert!(disk.write(next_free + i as u64, &sector));
            }
        }
        inodes.push(Inode {
            name: spec.name.clone(),
            size,
            extents: vec![extent],
        });
        next_free += sectors;
    }
    // Write the metadata.
    assert!(disk.write(0, &sb.encode()));
    let mut table = vec![0u8; table_sectors as usize * SECTOR];
    for (i, ino) in inodes.iter().enumerate() {
        table[i * INODE_SIZE..(i + 1) * INODE_SIZE].copy_from_slice(&ino.encode());
    }
    for (i, sector) in table.chunks(SECTOR).enumerate() {
        assert!(disk.write(1 + i as u64, sector));
    }
    inodes
}

/// Computes the SHA-1 a reader should observe for a *synthetic* file
/// created by [`mkfs`] on a disk seeded with `disk_seed` — without doing
/// any I/O. Mirrors what `sha1sum` reports in Fig. 8.
pub fn expected_sha1(disk_seed: u64, inode: &Inode) -> String {
    let mut h = Sha1::new();
    let mut remaining = inode.size;
    let mut offset = 0u64;
    while remaining > 0 {
        let (lba, in_off) = inode.locate(offset).expect("within file");
        debug_assert_eq!(in_off, 0, "synthetic files are sector-aligned");
        let sector = synth_sector(disk_seed, lba);
        let take = remaining.min(SECTOR as u64) as usize;
        h.update(&sector[..take]);
        remaining -= take as u64;
        offset += take as u64;
    }
    h.finish_hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inode_roundtrip() {
        let ino = Inode {
            name: "bigfile".to_string(),
            size: 1_000_000,
            extents: vec![
                Extent {
                    start: 10,
                    sectors: 100,
                },
                Extent {
                    start: 500,
                    sectors: 1854,
                },
            ],
        };
        assert_eq!(Inode::decode(&ino.encode()), Some(ino));
    }

    #[test]
    fn inode_decode_rejects_garbage() {
        assert_eq!(Inode::decode(&[0u8; INODE_SIZE]), None, "empty slot");
        assert_eq!(Inode::decode(&[1u8; 10]), None, "short");
        let mut bad = Inode {
            name: "x".to_string(),
            size: 1,
            extents: vec![],
        }
        .encode();
        bad[40] = 200; // extent count way past MAX_EXTENTS
        assert_eq!(Inode::decode(&bad), None);
    }

    #[test]
    fn superblock_roundtrip() {
        let sb = Superblock {
            inode_count: 8,
            inode_table_lba: 1,
            inode_table_sectors: 2,
        };
        assert_eq!(Superblock::decode(&sb.encode()), Some(sb));
        assert_eq!(Superblock::decode(&vec![0u8; SECTOR]), None);
    }

    #[test]
    fn locate_walks_extents() {
        let ino = Inode {
            name: "f".to_string(),
            size: 3 * SECTOR as u64,
            extents: vec![
                Extent {
                    start: 100,
                    sectors: 2,
                },
                Extent {
                    start: 900,
                    sectors: 1,
                },
            ],
        };
        assert_eq!(ino.locate(0), Some((100, 0)));
        assert_eq!(ino.locate(SECTOR as u64 + 7), Some((101, 7)));
        assert_eq!(ino.locate(2 * SECTOR as u64), Some((900, 0)));
        assert_eq!(ino.locate(3 * SECTOR as u64), None, "EOF");
        assert_eq!(ino.contiguous_sectors_at(0), 2);
        assert_eq!(ino.contiguous_sectors_at(2 * SECTOR as u64), 1);
    }

    #[test]
    fn mkfs_lays_out_files_and_metadata() {
        let mut disk = DiskModel::new(10_000, 7);
        let inodes = mkfs(
            &mut disk,
            &[
                FileSpec {
                    name: "readme".to_string(),
                    content: FileContent::Bytes(b"hello fs".to_vec()),
                },
                FileSpec {
                    name: "big".to_string(),
                    content: FileContent::Synthetic { size: 1_000_000 },
                },
            ],
        );
        let sb = Superblock::decode(&disk.read(0).unwrap()).unwrap();
        assert_eq!(sb.inode_table_lba, 1);
        let table = disk.read(1).unwrap();
        let parsed0 = Inode::decode(&table[..INODE_SIZE]).unwrap();
        assert_eq!(parsed0, inodes[0]);
        let parsed1 = Inode::decode(&table[INODE_SIZE..2 * INODE_SIZE]).unwrap();
        assert_eq!(parsed1.name, "big");
        assert_eq!(parsed1.size, 1_000_000);
        // Explicit content landed on disk.
        let first = disk.read(inodes[0].extents[0].start).unwrap();
        assert_eq!(&first[..8], b"hello fs");
        // Extents do not overlap.
        let a = &inodes[0].extents[0];
        let b = &inodes[1].extents[0];
        assert!(a.start + u64::from(a.sectors) <= b.start);
    }

    #[test]
    fn expected_sha1_matches_manual_stream() {
        let seed = 99;
        let mut disk = DiskModel::new(1000, seed);
        let inodes = mkfs(
            &mut disk,
            &[FileSpec {
                name: "f".to_string(),
                content: FileContent::Synthetic {
                    size: 3 * SECTOR as u64 + 100,
                },
            }],
        );
        let want = expected_sha1(seed, &inodes[0]);
        // Manual: read the sectors from the disk model.
        let mut h = Sha1::new();
        let mut left = inodes[0].size;
        let mut off = 0u64;
        while left > 0 {
            let (lba, _) = inodes[0].locate(off).unwrap();
            let s = disk.read(lba).unwrap();
            let take = left.min(SECTOR as u64) as usize;
            h.update(&s[..take]);
            left -= take as u64;
            off += take as u64;
        }
        assert_eq!(h.finish_hex(), want);
    }
}
