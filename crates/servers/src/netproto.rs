//! The reliable transport spoken between INET and the remote peer.
//!
//! A deliberately small TCP analogue: byte-sequence numbers, cumulative
//! ACKs, a fixed go-back-N window, and an exponentially backed-off
//! retransmission timeout. This is the machinery that makes network driver
//! recovery *transparent* (§6.1): every frame lost while the driver was
//! dead is eventually retransmitted, so `wget` completes with an intact
//! MD5 no matter how often the driver is killed.
//!
//! Every frame carries a CRC-16 (the Ethernet-FCS analogue): a frame
//! corrupted anywhere between the two transports decodes to `None` and is
//! treated exactly like a lost frame — retransmission covers it. Without
//! the checksum a single flipped bit in a cumulative ACK could convince
//! the sender the transfer finished, wedging the stream forever.

/// Maximum payload per segment (Ethernet MTU minus headers).
pub const MSS: usize = 1460;

/// Segment header length (including the trailing CRC-16).
pub const HEADER: usize = 16;

/// Protocol magic (first byte of every frame).
pub const MAGIC: u8 = 0x50;

/// Segment flags.
pub mod flags {
    /// Connection request.
    pub const SYN: u8 = 0x01;
    /// Acknowledgement (ack field valid).
    pub const ACK: u8 = 0x02;
    /// Stream end.
    pub const FIN: u8 = 0x04;
    /// Payload present (seq field valid).
    pub const DATA: u8 = 0x08;
    /// Unreliable datagram (UDP analogue).
    pub const DGRAM: u8 = 0x10;
}

/// A parsed transport segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Flag bits.
    pub flags: u8,
    /// Connection id.
    pub conn: u16,
    /// Byte sequence number of the first payload byte.
    pub seq: u32,
    /// Cumulative acknowledgement (next expected byte).
    pub ack: u32,
    /// Payload.
    pub payload: Vec<u8>,
}

/// CRC-16/CCITT-FALSE — detects *all* single-bit errors (and all burst
/// errors up to 16 bits), which is what the chaos layer's bit-flip
/// corruption produces.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in data {
        crc ^= u16::from(b) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

impl Segment {
    /// Builds an unreliable datagram segment (UDP analogue) — the frame
    /// shape the fleet gossip layer and the UDP echo path share. `seq`
    /// is a caller-defined correlation number (gossip sequence, ping id).
    pub fn dgram(conn: u16, seq: u32, payload: Vec<u8>) -> Segment {
        Segment {
            flags: flags::DGRAM,
            conn,
            seq,
            ack: 0,
            payload,
        }
    }

    /// Serializes to wire format (header + CRC-16 + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER + self.payload.len());
        out.push(MAGIC);
        out.push(self.flags);
        out.extend_from_slice(&self.conn.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.ack.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u16).to_le_bytes());
        let mut crc = crc16(&out);
        crc = crc.wrapping_add(crc16(&self.payload));
        out.extend_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses wire format; `None` for frames that are not ours or are
    /// truncated/corrupt (bad CRC).
    pub fn decode(frame: &[u8]) -> Option<Segment> {
        if frame.len() < HEADER || frame[0] != MAGIC {
            return None;
        }
        let len = u16::from_le_bytes([frame[12], frame[13]]) as usize;
        if frame.len() != HEADER + len {
            return None;
        }
        let mut crc = crc16(&frame[..14]);
        crc = crc.wrapping_add(crc16(&frame[HEADER..]));
        if crc != u16::from_le_bytes([frame[14], frame[15]]) {
            return None;
        }
        Some(Segment {
            flags: frame[1],
            conn: u16::from_le_bytes([frame[2], frame[3]]),
            seq: u32::from_le_bytes(frame[4..8].try_into().ok()?),
            ack: u32::from_le_bytes(frame[8..12].try_into().ok()?),
            payload: frame[HEADER..].to_vec(),
        })
    }
}

/// Deterministic download content: byte stream a "remote file server"
/// serves, computable at any offset by both the peer and the experiment
/// harness (for MD5 verification, Fig. 7).
pub fn stream_chunk(seed: u64, offset: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut pos = offset;
    while out.len() < len {
        let word_index = pos / 8;
        let mut x = seed ^ word_index.wrapping_mul(0xA076_1D64_78BD_642F) ^ 0x9E37_79B9_7F4A_7C15;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let word = x.wrapping_mul(0x2545_F491_4F6C_DD1D).to_le_bytes();
        let start = (pos % 8) as usize;
        for &b in &word[start..] {
            if out.len() == len {
                break;
            }
            out.push(b);
        }
        pos += (8 - start) as u64;
    }
    out
}

/// MD5 of the first `size` bytes of [`stream_chunk`] content — what
/// `md5sum` would report for the downloaded file.
pub fn stream_md5(seed: u64, size: u64) -> String {
    let mut h = phoenix_simcore::digest::Md5::new();
    let mut off = 0u64;
    while off < size {
        let take = (size - off).min(1 << 16) as usize;
        h.update(&stream_chunk(seed, off, take));
        off += take as u64;
    }
    h.finish_hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_roundtrip() {
        let s = Segment {
            flags: flags::DATA | flags::ACK,
            conn: 7,
            seq: 123_456,
            ack: 99,
            payload: vec![1, 2, 3],
        };
        assert_eq!(Segment::decode(&s.encode()), Some(s));
    }

    #[test]
    fn dgram_helper_round_trips() {
        let d = Segment::dgram(9, 345, b"gossip".to_vec());
        assert_eq!(d.flags, flags::DGRAM);
        assert_eq!(d.ack, 0);
        assert_eq!(Segment::decode(&d.encode()), Some(d));
    }

    #[test]
    fn decode_rejects_foreign_and_truncated_frames() {
        assert_eq!(Segment::decode(b"not ours"), None);
        let mut good = Segment {
            flags: flags::DATA,
            conn: 1,
            seq: 0,
            ack: 0,
            payload: vec![9; 10],
        }
        .encode();
        good.truncate(good.len() - 1);
        assert_eq!(Segment::decode(&good), None);
    }

    #[test]
    fn decode_rejects_every_single_bit_flip() {
        // The chaos layer corrupts messages by flipping exactly one bit;
        // the CRC-16 must catch every such frame, or a corrupted ACK can
        // wedge the transfer (sender believes it finished).
        let frame = Segment {
            flags: flags::DATA | flags::ACK,
            conn: 3,
            seq: 54_020,
            ack: 8_388_608,
            payload: vec![0xAB; 32],
        }
        .encode();
        for bit in 0..frame.len() * 8 {
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(
                Segment::decode(&bad),
                None,
                "flip of bit {bit} must be rejected"
            );
        }
        assert!(
            Segment::decode(&frame).is_some(),
            "pristine frame still decodes"
        );
    }

    #[test]
    fn stream_chunk_is_offset_consistent() {
        let seed = 42;
        let whole = stream_chunk(seed, 0, 100);
        for split in [1usize, 7, 8, 9, 50, 99] {
            let mut parts = stream_chunk(seed, 0, split);
            parts.extend(stream_chunk(seed, split as u64, 100 - split));
            assert_eq!(parts, whole, "split at {split}");
        }
    }

    #[test]
    fn stream_md5_matches_oneshot() {
        let seed = 7;
        let size = 100_000u64;
        let direct = {
            let mut h = phoenix_simcore::digest::Md5::new();
            h.update(&stream_chunk(seed, 0, size as usize));
            h.finish_hex()
        };
        assert_eq!(stream_md5(seed, size), direct);
    }

    #[test]
    fn different_seeds_different_content() {
        assert_ne!(stream_chunk(1, 0, 64), stream_chunk(2, 0, 64));
    }
}
