//! Typed protocol model parsed from `/// proto:` doc-comment
//! annotations on message-kind constants.
//!
//! ## Annotation grammar
//!
//! Every `pub const NAME: u32` inside a `pub mod` of a `proto.rs` file
//! is a message kind and must carry at least one `/// proto:` line in
//! its doc comment. A line holds comma-separated clauses:
//!
//! ```text
//! /// proto: request, reply=LOOKUP_REPLY, params 0=key-len
//! /// proto: reply, params 0=status, params 1/2=endpoint
//! /// proto: oneway, params 0=conn-id
//! /// proto: value
//! ```
//!
//! Clauses:
//!
//! - `request` — a kind sent with `sendrec`; must name its reply kind
//!   via `reply=NAME` (a const in the same module).
//! - `reply` — a kind sent with `reply`; must be the target of at least
//!   one request's `reply=`.
//! - `oneway` — fire-and-forget (notifications, pushed data).
//! - `value` — not a message kind at all (status codes, evidence
//!   classes). A module whose own doc carries `proto: values` declares
//!   every const inside it a value, so enumerations need not annotate
//!   each entry.
//! - `reply=NAME` — pairing edge for a `request`.
//! - `params S=owner` — parameter-slot ownership for this kind's own
//!   message: slots `S` (one index or `/`-joined indices, each 0..=7)
//!   are owned by feature `owner` (a kebab-case tag such as
//!   `recovery-token` or `ckpt-watermark`).
//! - `reply-params S=owner` — slots the *reply* to this request carries;
//!   they register in the reply kind's slot space, which is exactly how
//!   cross-feature collisions (e.g. a watermark and a token both
//!   claiming reply param 3) become visible.
//!
//! Multiple `/// proto:` lines per const are allowed and encouraged —
//! each feature annotates the slots it rides on, and the
//! [`SlotRegistry`] arbitrates: two claims on the same `(kind, slot)`
//! agree only if they name the same owner.

use std::collections::BTreeMap;

use crate::ast;

/// Direction of a message kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    Request,
    Reply,
    Oneway,
    /// Not a message: a tagged value namespace (status codes, evidence
    /// classes).
    Value,
}

impl Dir {
    pub fn name(self) -> &'static str {
        match self {
            Dir::Request => "request",
            Dir::Reply => "reply",
            Dir::Oneway => "oneway",
            Dir::Value => "value",
        }
    }
}

/// One parsed message kind.
#[derive(Clone, Debug)]
pub struct Kind {
    /// Protocol module, e.g. `bdev`.
    pub module: String,
    /// Const name, e.g. `READ`.
    pub name: String,
    /// Defining file (workspace-relative).
    pub file: String,
    /// 1-based line of the const.
    pub line: usize,
    pub dir: Dir,
    /// For requests: the declared reply kind (same module).
    pub reply: Option<String>,
    /// Slot claims on this kind's own message: `(slot, owner)`.
    pub params: Vec<(u8, String)>,
    /// Slot claims on this request's reply message.
    pub reply_params: Vec<(u8, String)>,
}

impl Kind {
    /// `module::NAME`, the display key used throughout reports.
    pub fn key(&self) -> String {
        format!("{}::{}", self.module, self.name)
    }
}

/// A problem found while parsing annotations into the model.
#[derive(Clone, Debug)]
pub struct ModelError {
    pub file: String,
    pub line: usize,
    /// Finding rule name (for pragma suppression): `proto-missing` or
    /// `proto-malformed`.
    pub rule: &'static str,
    pub message: String,
}

/// The parsed protocol model for the whole workspace.
#[derive(Clone, Debug, Default)]
pub struct ProtoModel {
    pub kinds: Vec<Kind>,
    pub errors: Vec<ModelError>,
}

impl ProtoModel {
    pub fn kind(&self, module: &str, name: &str) -> Option<&Kind> {
        self.kinds
            .iter()
            .find(|k| k.module == module && k.name == name)
    }
}

/// Parses one clause list (the text after `proto:`) into a partially
/// filled kind. Returns an error message on malformed input.
fn parse_clauses(text: &str, kind: &mut KindBuilder) -> Result<(), String> {
    for clause in text.split(',') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        match clause {
            "request" => kind.set_dir(Dir::Request)?,
            "reply" => kind.set_dir(Dir::Reply)?,
            "oneway" => kind.set_dir(Dir::Oneway)?,
            "value" => kind.set_dir(Dir::Value)?,
            _ => {
                if let Some(target) = clause.strip_prefix("reply=") {
                    let target = target.trim();
                    if target.is_empty()
                        || !target
                            .chars()
                            .all(|c| c.is_ascii_alphanumeric() || c == '_')
                    {
                        return Err(format!("bad reply target `{target}`"));
                    }
                    if let Some(prev) = &kind.reply {
                        if prev != target {
                            return Err(format!(
                                "conflicting reply targets `{prev}` and `{target}`"
                            ));
                        }
                    }
                    kind.reply = Some(target.to_string());
                } else if let Some(rest) = clause.strip_prefix("reply-params ") {
                    let claims = parse_slots(rest)?;
                    kind.reply_params.extend(claims);
                } else if let Some(rest) = clause.strip_prefix("params ") {
                    let claims = parse_slots(rest)?;
                    kind.params.extend(claims);
                } else {
                    return Err(format!("unknown clause `{clause}`"));
                }
            }
        }
    }
    Ok(())
}

/// Parses `0/1=endpoint` into `[(0, "endpoint"), (1, "endpoint")]`.
fn parse_slots(spec: &str) -> Result<Vec<(u8, String)>, String> {
    let Some((slots, owner)) = spec.split_once('=') else {
        return Err(format!("slot spec `{spec}` missing `=owner`"));
    };
    let owner = owner.trim();
    if owner.is_empty()
        || !owner
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
    {
        return Err(format!("bad slot owner `{owner}` (kebab-case required)"));
    }
    let mut out = Vec::new();
    for part in slots.trim().split('/') {
        let n: u8 = part
            .trim()
            .parse()
            .map_err(|_| format!("bad slot index `{part}`"))?;
        if n > 7 {
            return Err(format!(
                "slot index {n} out of range (messages have 8 params)"
            ));
        }
        out.push((n, owner.to_string()));
    }
    Ok(out)
}

struct KindBuilder {
    dir: Option<Dir>,
    reply: Option<String>,
    params: Vec<(u8, String)>,
    reply_params: Vec<(u8, String)>,
}

impl KindBuilder {
    fn new() -> Self {
        KindBuilder {
            dir: None,
            reply: None,
            params: Vec::new(),
            reply_params: Vec::new(),
        }
    }
    fn set_dir(&mut self, d: Dir) -> Result<(), String> {
        match self.dir {
            None => {
                self.dir = Some(d);
                Ok(())
            }
            Some(prev) if prev == d => Ok(()),
            Some(prev) => Err(format!(
                "conflicting directions `{}` and `{}`",
                prev.name(),
                d.name()
            )),
        }
    }
}

/// Extracts `proto:` annotation payloads from a doc-comment block.
fn proto_lines(docs: &[String]) -> Vec<String> {
    docs.iter()
        .filter_map(|d| d.trim().strip_prefix("proto:"))
        .map(|rest| rest.trim().to_string())
        .collect()
}

/// Parses one protocol source file into kinds + errors. `rel_path` is
/// the workspace-relative path used in reports.
pub fn parse_proto_source(rel_path: &str, source: &str) -> ProtoModel {
    let file = ast::parse_file(source);
    let mut model = ProtoModel::default();

    // Modules whose doc says `proto: values`: every const inside is a
    // value, annotated or not.
    let value_mods: Vec<String> = file
        .mods
        .iter()
        .filter(|m| proto_lines(&m.docs).iter().any(|l| l.trim() == "values"))
        .map(|m| m.name.clone())
        .collect();

    for c in &file.consts {
        if c.ty != "u32" {
            continue; // message kinds are u32 by repo convention
        }
        let Some(module) = c.mod_path.last().cloned() else {
            continue; // top-level consts are not protocol kinds
        };
        let in_value_mod = value_mods.contains(&module);
        let lines = proto_lines(&c.docs);
        if lines.is_empty() {
            if in_value_mod {
                model.kinds.push(Kind {
                    module,
                    name: c.name.clone(),
                    file: rel_path.to_string(),
                    line: c.line,
                    dir: Dir::Value,
                    reply: None,
                    params: Vec::new(),
                    reply_params: Vec::new(),
                });
            } else {
                model.errors.push(ModelError {
                    file: rel_path.to_string(),
                    line: c.line,
                    rule: "proto-missing",
                    message: format!("{}::{} has no `/// proto:` annotation", module, c.name),
                });
            }
            continue;
        }
        let mut b = KindBuilder::new();
        let mut failed = false;
        for l in &lines {
            if let Err(e) = parse_clauses(l, &mut b) {
                model.errors.push(ModelError {
                    file: rel_path.to_string(),
                    line: c.line,
                    rule: "proto-malformed",
                    message: format!("{}::{}: {e}", module, c.name),
                });
                failed = true;
            }
        }
        if failed {
            continue;
        }
        let dir = match b.dir {
            Some(d) => d,
            None if in_value_mod => Dir::Value,
            None => {
                model.errors.push(ModelError {
                    file: rel_path.to_string(),
                    line: c.line,
                    rule: "proto-malformed",
                    message: format!(
                        "{}::{} annotation declares no direction (request/reply/oneway/value)",
                        module, c.name
                    ),
                });
                continue;
            }
        };
        model.kinds.push(Kind {
            module,
            name: c.name.clone(),
            file: rel_path.to_string(),
            line: c.line,
            dir,
            reply: b.reply,
            params: b.params,
            reply_params: b.reply_params,
        });
    }
    model
}

/// The workspace-wide param-slot ownership registry: `(kind, slot)` →
/// owner feature. Built by folding every kind's own `params` claims plus
/// every request's `reply-params` claims (registered under the reply
/// kind). Conflicting owners for one slot are collisions.
#[derive(Clone, Debug, Default)]
pub struct SlotRegistry {
    /// `(module::KIND, slot)` → (owner, claim site file, line).
    pub slots: BTreeMap<(String, u8), (String, String, usize)>,
    pub collisions: Vec<SlotCollision>,
}

/// Two features claiming the same parameter slot of the same kind.
#[derive(Clone, Debug)]
pub struct SlotCollision {
    /// `module::KIND`.
    pub kind: String,
    pub slot: u8,
    pub first_owner: String,
    pub second_owner: String,
    /// File/line of the colliding (second) claim.
    pub file: String,
    pub line: usize,
}

impl SlotRegistry {
    fn claim(&mut self, kind_key: String, slot: u8, owner: &str, file: &str, line: usize) {
        match self.slots.get(&(kind_key.clone(), slot)) {
            Some((prev, _, _)) if prev != owner => {
                self.collisions.push(SlotCollision {
                    kind: kind_key,
                    slot,
                    first_owner: prev.clone(),
                    second_owner: owner.to_string(),
                    file: file.to_string(),
                    line,
                });
            }
            Some(_) => {}
            None => {
                self.slots.insert(
                    (kind_key, slot),
                    (owner.to_string(), file.to_string(), line),
                );
            }
        }
    }
}

/// Builds the slot registry over a merged model.
pub fn build_slot_registry(model: &ProtoModel) -> SlotRegistry {
    let mut reg = SlotRegistry::default();
    for k in &model.kinds {
        for (slot, owner) in &k.params {
            reg.claim(k.key(), *slot, owner, &k.file, k.line);
        }
    }
    for k in &model.kinds {
        if let Some(reply) = &k.reply {
            let reply_key = format!("{}::{}", k.module, reply);
            for (slot, owner) in &k.reply_params {
                reg.claim(reply_key.clone(), *slot, owner, &k.file, k.line);
            }
        }
    }
    reg
}

/// Merges per-file models into one workspace model.
pub fn merge(models: Vec<ProtoModel>) -> ProtoModel {
    let mut out = ProtoModel::default();
    for m in models {
        out.kinds.extend(m.kinds);
        out.errors.extend(m.errors);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
pub mod ds {
    /// Publish a key.
    /// proto: request, reply=ACK, params 0/1=endpoint, params 2/3=recovery-token
    pub const PUBLISH: u32 = 0x0600;
    /// proto: reply, params 0=status
    pub const ACK: u32 = 0x060A;
}
/// Evidence classes.
/// proto: values
pub mod evidence {
    pub const DEADLINE: u32 = 1;
}
";

    #[test]
    fn parses_directions_pairing_and_slots() {
        let m = parse_proto_source("p.rs", SRC);
        assert!(m.errors.is_empty(), "{:?}", m.errors);
        let publish = m.kind("ds", "PUBLISH").unwrap();
        assert_eq!(publish.dir, Dir::Request);
        assert_eq!(publish.reply.as_deref(), Some("ACK"));
        assert_eq!(publish.params.len(), 4);
        let ack = m.kind("ds", "ACK").unwrap();
        assert_eq!(ack.dir, Dir::Reply);
        let ev = m.kind("evidence", "DEADLINE").unwrap();
        assert_eq!(ev.dir, Dir::Value, "module-level `proto: values` applies");
    }

    #[test]
    fn missing_annotation_is_an_error() {
        let m = parse_proto_source("p.rs", "pub mod x { pub const A: u32 = 1; }");
        assert_eq!(m.errors.len(), 1);
        assert_eq!(m.errors[0].rule, "proto-missing");
    }

    #[test]
    fn malformed_clause_is_an_error() {
        let src = "pub mod x {\n    /// proto: request, reply=\n    pub const A: u32 = 1;\n}";
        let m = parse_proto_source("p.rs", src);
        assert_eq!(m.errors.len(), 1);
        assert_eq!(m.errors[0].rule, "proto-malformed");
    }

    #[test]
    fn slot_out_of_range_is_an_error() {
        let src = "pub mod x {\n    /// proto: oneway, params 9=nope\n    pub const A: u32 = 1;\n}";
        let m = parse_proto_source("p.rs", src);
        assert_eq!(m.errors.len(), 1);
        assert!(m.errors[0].message.contains("out of range"));
    }

    #[test]
    fn registry_flags_cross_feature_collisions() {
        let src = "
pub mod x {
    /// proto: request, reply=R, reply-params 3=ckpt-watermark
    pub const A: u32 = 1;
    /// proto: reply, params 3=recovery-token
    pub const R: u32 = 2;
}
";
        let m = parse_proto_source("p.rs", src);
        let reg = build_slot_registry(&m);
        assert_eq!(reg.collisions.len(), 1);
        let c = &reg.collisions[0];
        assert_eq!(c.kind, "x::R");
        assert_eq!(c.slot, 3);
    }

    #[test]
    fn same_owner_claims_merge_silently() {
        let src = "
pub mod x {
    /// proto: request, reply=R, reply-params 3=tok
    pub const A: u32 = 1;
    /// proto: reply, params 3=tok
    pub const R: u32 = 2;
}
";
        let m = parse_proto_source("p.rs", src);
        let reg = build_slot_registry(&m);
        assert!(reg.collisions.is_empty());
    }
}
