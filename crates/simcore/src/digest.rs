//! Minimal MD5 and SHA-1 implementations.
//!
//! The paper verifies data integrity across driver crashes by comparing MD5
//! checksums of a downloaded file (Fig. 7) and SHA-1 checksums of a disk
//! read (Fig. 8). These streaming implementations let the experiment harness
//! do the same without an external dependency. They are for *integrity
//! checking inside the simulation only* — do not use them for security.

/// Streaming MD5 (RFC 1321).
///
/// # Example
///
/// ```
/// use phoenix_simcore::digest::Md5;
///
/// let mut h = Md5::new();
/// h.update(b"abc");
/// assert_eq!(h.finish_hex(), "900150983cd24fb0d6963f7d28e17f72");
/// ```
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

const MD5_S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

const MD5_K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(MD5_K[i])
                    .wrapping_add(m[g])
                    .rotate_left(MD5_S[i]),
            );
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }

    /// Consumes the hasher and returns the 16-byte digest.
    pub fn finish(mut self) -> [u8; 16] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length must bypass total_len accounting; write block manually.
        self.buf[56..64].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 16];
        for (i, s) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&s.to_le_bytes());
        }
        out
    }

    /// Consumes the hasher and returns the digest as lowercase hex.
    pub fn finish_hex(self) -> String {
        to_hex(&self.finish())
    }

    /// Hashes `data` in one call.
    pub fn digest(data: &[u8]) -> [u8; 16] {
        let mut h = Md5::new();
        h.update(data);
        h.finish()
    }
}

/// Streaming SHA-1 (RFC 3174).
///
/// # Example
///
/// ```
/// use phoenix_simcore::digest::Sha1;
///
/// let mut h = Sha1::new();
/// h.update(b"abc");
/// assert_eq!(h.finish_hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5a827999),
                1 => (b ^ c ^ d, 0x6ed9eba1),
                2 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }

    /// Consumes the hasher and returns the 20-byte digest.
    pub fn finish(mut self) -> [u8; 20] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, s) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&s.to_be_bytes());
        }
        out
    }

    /// Consumes the hasher and returns the digest as lowercase hex.
    pub fn finish_hex(self) -> String {
        to_hex(&self.finish())
    }

    /// Hashes `data` in one call.
    pub fn digest(data: &[u8]) -> [u8; 20] {
        let mut h = Sha1::new();
        h.update(data);
        h.finish()
    }
}

/// Renders bytes as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 1321 appendix A.5 test suite.
    #[test]
    fn md5_rfc_vectors() {
        let cases = [
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                "abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(
                Md5::digest(input.as_bytes()),
                parse_hex16(want),
                "md5({input})"
            );
        }
    }

    // RFC 3174 / FIPS 180 vectors.
    #[test]
    fn sha1_vectors() {
        let cases = [
            ("", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            ("abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(
                Sha1::digest(input.as_bytes()).to_vec(),
                parse_hex(want),
                "sha1({input})"
            );
        }
    }

    #[test]
    fn sha1_million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(h.finish_hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_equals_oneshot_at_odd_boundaries() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7 % 251) as u8).collect();
        for split in [0, 1, 63, 64, 65, 127, 999, 1000] {
            let mut m = Md5::new();
            m.update(&data[..split]);
            m.update(&data[split..]);
            assert_eq!(m.finish(), Md5::digest(&data), "md5 split {split}");
            let mut s = Sha1::new();
            s.update(&data[..split]);
            s.update(&data[split..]);
            assert_eq!(s.finish(), Sha1::digest(&data), "sha1 split {split}");
        }
    }

    #[test]
    fn hex_rendering() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x0a]), "00ff0a");
    }

    fn parse_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn parse_hex16(s: &str) -> [u8; 16] {
        parse_hex(s).try_into().unwrap()
    }
}
