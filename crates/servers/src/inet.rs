//! The network server (INET) with transparent Ethernet-driver recovery
//! (§6.1).
//!
//! INET subscribes to `eth.*` in the data store. Whenever a matching
//! record changes — first start or recovery — INET reinitializes the
//! driver (promiscuous mode, resume I/O), "closely mimicking the steps
//! that are taken when the driver is first started". Reliable streams ride
//! out the outage through retransmission; unreliable datagrams are lost,
//! to be recovered at the application layer if need be (Fig. 4).

use std::collections::BTreeSet;

use phoenix_ckpt::driver::{DriverCkpt, RestoreEvent};
use phoenix_drivers::proto::eth;
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{CallId, Endpoint, Message};
use phoenix_simcore::time::SimDuration;
use phoenix_simcore::trace::{RecoveryId, SpanId, TraceLevel};

use crate::faultplane::{garble_message, FaultAction, FaultPlane, FaultState};
use crate::netproto::{flags, Segment};
use crate::proto::{ds, evidence, pack_endpoint, rs as rsp, sock, unpack_endpoint};

const RTO: SimDuration = SimDuration::from_millis(300);
const RTO_MAX: SimDuration = SimDuration::from_secs(3);

/// Garbled frames per complaint: the wire itself loses/corrupts frames,
/// so INET first retransmits quietly; only a *sustained* stream of
/// undecodable frames escalates to a (low-confidence) RS complaint.
const GARBLE_COMPLAINT_THRESHOLD: u64 = 8;

/// Consecutive wrong-type WRITE replies before a complaint. The chaos
/// fabric corrupts reply headers too, so one bad type proves nothing; a
/// *streak* cannot plausibly be the wire (independent ~0.1% flips), only
/// a driver stuck answering garbage.
const BAD_REPLY_COMPLAINT_THRESHOLD: u64 = 3;

/// How long INET waits for an `eth::INIT` reply before re-sending it — a
/// lost or corrupted INIT exchange must not leave the driver unused
/// forever.
const INIT_RETRY: SimDuration = SimDuration::from_millis(100);

#[derive(Debug)]
struct Conn {
    app: Endpoint,
    connect_call: Option<CallId>,
    established: bool,
    closed: bool,
    rcv_nxt: u32,
    /// Outgoing bytes not yet acknowledged (client requests are small).
    snd_buf: Vec<u8>,
    /// Sequence number of `snd_buf[0]`.
    snd_base: u32,
    rto: SimDuration,
    timer_epoch: u32,
}

/// The network server.
pub struct Inet {
    ds: Endpoint,
    rs: Endpoint,
    driver_key: String,
    driver: Option<Endpoint>,
    driver_ready: bool,
    /// Undecodable frames since the last complaint (or driver restart).
    garbled_streak: u64,
    /// Consecutive wrong-type WRITE replies (reset by any good reply,
    /// a complaint, or a driver restart).
    bad_reply_streak: u64,
    init_call: Option<CallId>,
    /// Bumped on every INIT send and on success, so only the newest retry
    /// alarm may re-send (stale alarms are ignored).
    init_epoch: u32,
    check_call: Option<CallId>,
    eth_calls: BTreeSet<CallId>,
    /// Flat per-connection slab indexed by connection id. Slot 0 is
    /// permanently reserved — the INIT retry alarm shares the timer-token
    /// space under conn id 0 — and closed slots return to `free_conns`
    /// for reuse: at 10⁴⁺-session load the old monotonic 16-bit ids
    /// would exhaust within a single campaign.
    conns: Vec<Option<Conn>>,
    /// Recycled connection ids, each with the timer epoch it retired at,
    /// so a reused slot keeps its epoch monotone and alarms armed before
    /// the close can never fire into the successor session.
    free_conns: Vec<(u16, u32)>,
    dgram_app: Option<Endpoint>,
    /// Recovery episode behind the driver update currently being
    /// reintegrated (from the DS CHECK reply), used to tag our own
    /// reinit/resume trace events with the causing episode.
    recovery: Option<RecoveryId>,
    recovery_parent: Option<SpanId>,
    /// Session-state checkpoint client (crash-only contract): the
    /// connection slab is externalized to the DS store at quiescent
    /// points and rehydrated lazily by a restarted incarnation.
    ckpt: Option<DriverCkpt>,
    /// Session state changed since the last checkpoint save.
    dirty: bool,
    /// Injected-defect latches (microreboot campaign).
    fault: FaultState,
}

impl Inet {
    /// Creates INET bound to the Ethernet driver published under
    /// `driver_key` (e.g. `"eth.rtl8139"`).
    pub fn new(ds: Endpoint, rs: Endpoint, driver_key: &str) -> Self {
        Inet {
            ds,
            rs,
            driver_key: driver_key.to_string(),
            driver: None,
            driver_ready: false,
            garbled_streak: 0,
            bad_reply_streak: 0,
            init_call: None,
            init_epoch: 0,
            check_call: None,
            eth_calls: BTreeSet::new(),
            conns: vec![None],
            free_conns: Vec::new(),
            dgram_app: None,
            recovery: None,
            recovery_parent: None,
            ckpt: None,
            dirty: false,
            fault: FaultState::detached(),
        }
    }

    /// Enables session-state checkpointing: the connection slab, datagram
    /// binding and id allocator are saved to the DS store after every
    /// state change and rehydrated lazily after a microreboot.
    pub fn with_checkpointing(mut self) -> Self {
        self.ckpt = Some(DriverCkpt::new(self.ds, "session"));
        self
    }

    /// Attaches the server fault plane (campaign defect injection).
    pub fn with_fault_plane(mut self, plane: &FaultPlane, name: &str) -> Self {
        self.fault = FaultState::attached(plane, name);
        self
    }

    // ---------------- connection slab ----------------

    fn conn(&self, id: u16) -> Option<&Conn> {
        self.conns.get(usize::from(id)).and_then(Option::as_ref)
    }

    fn conn_mut(&mut self, id: u16) -> Option<&mut Conn> {
        self.conns.get_mut(usize::from(id)).and_then(Option::as_mut)
    }

    /// Occupied connection ids, ascending.
    fn conn_ids(&self) -> Vec<u16> {
        (1..self.conns.len())
            .filter(|&i| self.conns[i].is_some())
            .map(|i| i as u16)
            .collect()
    }

    /// Places a connection in the slab, preferring a recycled id (which
    /// inherits the retired slot's timer epoch). Returns `None` when the
    /// 16-bit id space is fully live.
    fn alloc_conn(&mut self, mut conn: Conn) -> Option<u16> {
        if let Some((id, epoch)) = self.free_conns.pop() {
            conn.timer_epoch = epoch;
            self.conns[usize::from(id)] = Some(conn);
            return Some(id);
        }
        if self.conns.len() > usize::from(u16::MAX) {
            return None;
        }
        let id = self.conns.len() as u16;
        self.conns.push(Some(conn));
        Some(id)
    }

    /// Releases a connection id back to the free list.
    fn free_conn(&mut self, id: u16) {
        if id == 0 {
            return;
        }
        if let Some(slot) = self.conns.get_mut(usize::from(id)) {
            if let Some(conn) = slot.take() {
                self.free_conns.push((id, conn.timer_epoch));
            }
        }
    }

    // ---------------- session externalization ----------------

    fn push_ep(out: &mut Vec<u8>, ep: Endpoint) {
        out.extend_from_slice(&ep.slot().to_le_bytes());
        out.extend_from_slice(&ep.generation().to_le_bytes());
    }

    fn read_ep(buf: &[u8], at: &mut usize) -> Option<Endpoint> {
        let slot = u16::from_le_bytes(buf.get(*at..*at + 2)?.try_into().ok()?);
        let generation = u32::from_le_bytes(buf.get(*at + 2..*at + 6)?.try_into().ok()?);
        *at += 6;
        Some(Endpoint::new(slot, generation))
    }

    /// Serializes the session: slab high-water mark, datagram binding,
    /// and each live connection's transport state (timers, in-flight
    /// connect calls and the free list are per-incarnation and rebuilt,
    /// not externalized).
    fn encode_session(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.conns.len() as u32).to_le_bytes());
        match self.dgram_app {
            Some(ep) => {
                out.push(1);
                Self::push_ep(&mut out, ep);
            }
            None => out.push(0),
        }
        let ids = self.conn_ids();
        out.extend_from_slice(&(ids.len() as u16).to_le_bytes());
        for id in ids {
            let Some(c) = self.conn(id) else { continue };
            out.extend_from_slice(&id.to_le_bytes());
            Self::push_ep(&mut out, c.app);
            out.push(u8::from(c.established) | (u8::from(c.closed) << 1));
            out.extend_from_slice(&c.rcv_nxt.to_le_bytes());
            out.extend_from_slice(&c.snd_base.to_le_bytes());
            out.extend_from_slice(&(c.snd_buf.len() as u32).to_le_bytes());
            out.extend_from_slice(&c.snd_buf);
        }
        out
    }

    /// Rehydrates the session from a restored snapshot payload and nudges
    /// retransmission for rebuilt connections. Returns `false` (leaving a
    /// clean slate) if the payload does not parse.
    fn apply_session(&mut self, ctx: &mut Ctx<'_>, payload: &[u8]) -> bool {
        let mut at = 0usize;
        let Some(hw) = payload.get(at..at + 4) else {
            return false;
        };
        let slab_len = u32::from_le_bytes(hw.try_into().unwrap_or([0; 4])) as usize;
        if slab_len == 0 || slab_len > usize::from(u16::MAX) + 1 {
            return false;
        }
        at += 4;
        let Some(&has_dgram) = payload.get(at) else {
            return false;
        };
        at += 1;
        let dgram_app = if has_dgram == 1 {
            match Self::read_ep(payload, &mut at) {
                Some(ep) => Some(ep),
                None => return false,
            }
        } else {
            None
        };
        let Some(count_bytes) = payload.get(at..at + 2) else {
            return false;
        };
        let count = u16::from_le_bytes(count_bytes.try_into().unwrap_or([0; 2]));
        at += 2;
        let mut slab: Vec<Option<Conn>> = Vec::new();
        slab.resize_with(slab_len, || None);
        for _ in 0..count {
            let Some(id_bytes) = payload.get(at..at + 2) else {
                return false;
            };
            let id = u16::from_le_bytes(id_bytes.try_into().unwrap_or([0; 2]));
            if id == 0 || usize::from(id) >= slab_len {
                return false;
            }
            at += 2;
            let Some(app) = Self::read_ep(payload, &mut at) else {
                return false;
            };
            let Some(&bits) = payload.get(at) else {
                return false;
            };
            at += 1;
            let Some(rcv) = payload.get(at..at + 4) else {
                return false;
            };
            let rcv_nxt = u32::from_le_bytes(rcv.try_into().unwrap_or([0; 4]));
            at += 4;
            let Some(base) = payload.get(at..at + 4) else {
                return false;
            };
            let snd_base = u32::from_le_bytes(base.try_into().unwrap_or([0; 4]));
            at += 4;
            let Some(len_bytes) = payload.get(at..at + 4) else {
                return false;
            };
            let len = u32::from_le_bytes(len_bytes.try_into().unwrap_or([0; 4])) as usize;
            at += 4;
            let Some(buf) = payload.get(at..at + len) else {
                return false;
            };
            at += len;
            slab[usize::from(id)] = Some(Conn {
                app,
                connect_call: None,
                established: bits & 1 != 0,
                closed: bits & 2 != 0,
                rcv_nxt,
                snd_buf: buf.to_vec(),
                snd_base,
                rto: RTO,
                timer_epoch: 0,
            });
        }
        self.dgram_app = dgram_app.or(self.dgram_app);
        self.conns = slab;
        // Rebuild the free list: every unoccupied slot below the restored
        // high-water mark is reusable, recycled smallest-id first.
        self.free_conns = (1..self.conns.len())
            .rev()
            .filter(|&i| self.conns[i].is_none())
            .map(|i| (i as u16, 0))
            .collect();
        ctx.metrics().incr("inet.session_restored");
        if self.driver_ready {
            for id in self.conn_ids() {
                let Some((needs_syn, needs_data)) = self
                    .conn(id)
                    .map(|c| (!c.established && !c.closed, !c.snd_buf.is_empty()))
                else {
                    continue;
                };
                if needs_syn {
                    self.send_syn(ctx, id);
                } else if needs_data {
                    self.send_unacked(ctx, id);
                }
            }
        }
        true
    }

    /// Quiescent-point save: runs at the end of any dispatch that
    /// mutated session state, once the incarnation's restore handshake
    /// has completed (requests are parked until then, so nothing is
    /// lost to the gap).
    fn maybe_save(&mut self, ctx: &mut Ctx<'_>) {
        if !self.dirty {
            return;
        }
        match self.ckpt.as_ref() {
            Some(ckpt) if ckpt.ready() => {}
            Some(_) => return, // restore in flight; retry next dispatch
            None => {
                self.dirty = false;
                return;
            }
        }
        let payload = self.encode_session();
        if let Some(ckpt) = self.ckpt.as_mut() {
            ckpt.save(ctx, payload);
        }
        self.dirty = false;
    }

    /// Sends an app-facing reply through the injected-garble filter.
    fn app_reply(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: Message) {
        let msg = if self.fault.garbling() {
            ctx.metrics().incr("inet.garbled_replies");
            garble_message(msg)
        } else {
            msg
        };
        let _ = ctx.reply(call, msg);
    }

    /// Pushes an app-facing one-way message through the garble filter.
    fn app_send(&mut self, ctx: &mut Ctx<'_>, app: Endpoint, msg: Message) {
        let msg = if self.fault.garbling() {
            ctx.metrics().incr("inet.garbled_replies");
            garble_message(msg)
        } else {
            msg
        };
        let _ = ctx.send(app, msg);
    }

    fn ds_check(&mut self, ctx: &mut Ctx<'_>) {
        if self.check_call.is_none() {
            self.check_call = ctx.sendrec(self.ds, Message::new(ds::CHECK)).ok();
        }
    }

    /// Sends a frame through the Ethernet driver. Failures flip
    /// `driver_ready`; the transport's retransmissions make up for the
    /// loss once the driver is back (§6.1: "the request fails and is
    /// postponed until the driver is back").
    fn eth_write(&mut self, ctx: &mut Ctx<'_>, frame: Vec<u8>) {
        if !self.driver_ready {
            return;
        }
        let Some(driver) = self.driver else { return };
        match ctx.sendrec(driver, Message::new(eth::WRITE).with_data(frame)) {
            Ok(call) => {
                self.eth_calls.insert(call);
            }
            Err(_) => {
                self.driver_ready = false;
                ctx.metrics().incr("inet.postponed_writes");
            }
        }
    }

    fn send_segment(&mut self, ctx: &mut Ctx<'_>, seg: Segment) {
        self.eth_write(ctx, seg.encode());
    }

    fn token(conn: u16, epoch: u32) -> u64 {
        (u64::from(conn) << 32) | u64::from(epoch)
    }

    fn arm_timer(&mut self, ctx: &mut Ctx<'_>, conn_id: u16) {
        let Some(conn) = self.conn_mut(conn_id) else {
            return;
        };
        conn.timer_epoch += 1;
        let tok = Self::token(conn_id, conn.timer_epoch);
        let delay = conn.rto;
        let _ = ctx.set_alarm(delay, tok);
    }

    fn send_syn(&mut self, ctx: &mut Ctx<'_>, conn_id: u16) {
        self.send_segment(
            ctx,
            Segment {
                flags: flags::SYN,
                conn: conn_id,
                seq: 0,
                ack: 0,
                payload: Vec::new(),
            },
        );
        self.arm_timer(ctx, conn_id);
    }

    /// (Re)transmits all unacknowledged outgoing bytes of a connection.
    fn send_unacked(&mut self, ctx: &mut Ctx<'_>, conn_id: u16) {
        let Some(conn) = self.conn_mut(conn_id) else {
            return;
        };
        if conn.snd_buf.is_empty() {
            return;
        }
        let seg = Segment {
            flags: flags::DATA,
            conn: conn_id,
            seq: conn.snd_base,
            ack: conn.rcv_nxt,
            payload: conn.snd_buf.clone(),
        };
        self.send_segment(ctx, seg);
        self.arm_timer(ctx, conn_id);
    }

    fn send_ack(&mut self, ctx: &mut Ctx<'_>, conn_id: u16) {
        let Some(conn) = self.conn(conn_id) else {
            return;
        };
        let seg = Segment {
            flags: flags::ACK,
            conn: conn_id,
            seq: 0,
            ack: conn.rcv_nxt,
            payload: Vec::new(),
        };
        self.send_segment(ctx, seg);
    }

    // [recovery:begin]
    fn on_driver_published(&mut self, ctx: &mut Ctx<'_>, ep: Endpoint) {
        let recovered = self.driver.is_some_and(|old| old != ep);
        self.driver = Some(ep);
        self.driver_ready = false;
        // The new incarnation starts with a clean slate.
        self.garbled_streak = 0;
        self.bad_reply_streak = 0;
        if recovered {
            ctx.metrics().incr("inet.driver_reintegrations");
            let ev = ctx
                .event(
                    TraceLevel::Info,
                    format!("ethernet driver recovered as {ep}; reinitializing"),
                )
                .with_field("ev", "reintegrate")
                .with_field("driver", self.driver_key.as_str())
                .in_recovery_opt(self.recovery)
                .with_parent_opt(self.recovery_parent);
            ctx.trace_event(ev);
        }
        // (Re)initialize: put the card in promiscuous mode and resume I/O
        // — the same steps as a first start (§6.1).
        self.send_init(ctx, ep);
    }

    /// Sends `eth::INIT` and arms a retry alarm: if the request or its
    /// reply is lost in the fabric, INET tries again rather than leaving
    /// the driver permanently unused.
    fn send_init(&mut self, ctx: &mut Ctx<'_>, ep: Endpoint) {
        self.init_call = ctx.sendrec(ep, Message::new(eth::INIT)).ok();
        self.init_epoch += 1;
        // Connection ids start at 1, so conn 0 is free for the INIT timer.
        let _ = ctx.set_alarm(INIT_RETRY, Self::token(0, self.init_epoch));
    }
    // [recovery:end]

    /// A sustained streak of wrong-type WRITE replies — beyond what
    /// independent wire corruption can plausibly produce. Filed as
    /// `SUSPECT_REPLY`, low-confidence evidence that accumulates toward
    /// RS's quorum (§5.1): a driver that *keeps* answering with garbage
    /// gets replaced, a flipped bit on the wire does not flap it.
    fn complain_bad_reply(&mut self, ctx: &mut Ctx<'_>) {
        ctx.metrics().incr("inet.complaints");
        ctx.metrics().incr(&format!(
            "sentinel.inet.{}",
            evidence::name(evidence::SUSPECT_REPLY)
        ));
        ctx.trace(
            TraceLevel::Warn,
            format!(
                "wrong-type reply to an ethernet WRITE from {}; complaining to RS",
                self.driver_key
            ),
        );
        let (slot, generation) = self.driver.map(pack_endpoint).unwrap_or((0, 0));
        let _ = ctx.sendrec(
            self.rs,
            Message::new(rsp::COMPLAIN)
                .with_param(0, u64::from(evidence::SUSPECT_REPLY))
                .with_param(1, slot)
                .with_param(2, generation)
                .with_data(self.driver_key.as_bytes().to_vec()),
        );
    }

    /// A frame failed to decode. Dropping it is normal (the chaotic wire
    /// corrupts frames too), but a driver that *keeps* delivering garbage
    /// is babbling: once the streak reaches the threshold, escalate from
    /// silent retransmission to a low-confidence RS complaint and let
    /// arbitration decide.
    fn on_garbled(&mut self, ctx: &mut Ctx<'_>) {
        ctx.metrics().incr("inet.garbled_frames");
        self.garbled_streak += 1;
        if self.garbled_streak < GARBLE_COMPLAINT_THRESHOLD {
            return;
        }
        self.garbled_streak = 0;
        ctx.metrics().incr("inet.complaints");
        ctx.metrics().incr(&format!(
            "sentinel.inet.{}",
            evidence::name(evidence::GARBLED_FRAMES)
        ));
        ctx.trace(
            TraceLevel::Warn,
            format!(
                "sustained garbled frames from {}; complaining to RS",
                self.driver_key
            ),
        );
        let (slot, generation) = self.driver.map(pack_endpoint).unwrap_or((0, 0));
        let _ = ctx.sendrec(
            self.rs,
            Message::new(rsp::COMPLAIN)
                .with_param(0, u64::from(evidence::GARBLED_FRAMES))
                .with_param(1, slot)
                .with_param(2, generation)
                .with_data(self.driver_key.as_bytes().to_vec()),
        );
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: &[u8]) {
        let Some(seg) = Segment::decode(frame) else {
            self.on_garbled(ctx);
            return;
        };
        self.garbled_streak = 0;
        if seg.flags & flags::DGRAM != 0 {
            if let Some(app) = self.dgram_app {
                self.app_send(
                    ctx,
                    app,
                    Message::new(sock::DGRAM_DATA).with_data(seg.payload),
                );
            }
            return;
        }
        let conn_id = seg.conn;
        if self.conn(conn_id).is_none() {
            if seg.flags & flags::FIN != 0 {
                // The slot was already released by an app-side CLOSE; ack
                // the peer's FIN retransmission so it stops resending
                // into the void.
                let ack = Segment {
                    flags: flags::ACK,
                    conn: conn_id,
                    seq: 0,
                    ack: seg.seq.wrapping_add(1),
                    payload: Vec::new(),
                };
                self.send_segment(ctx, ack);
            }
            return;
        }
        let Some(conn) = self.conn_mut(conn_id) else {
            return;
        };
        if seg.flags & flags::SYN != 0 && seg.flags & flags::ACK != 0 {
            let mut reply_call = None;
            if !conn.established {
                conn.established = true;
                conn.timer_epoch += 1; // disarm SYN retransmit
                reply_call = conn.connect_call.take();
                self.dirty = true;
            }
            if let Some(call) = reply_call {
                self.app_reply(
                    ctx,
                    call,
                    Message::new(sock::CONNECT_REPLY)
                        .with_param(0, 0)
                        .with_param(1, u64::from(conn_id)),
                );
            }
            return;
        }
        if seg.flags & flags::ACK != 0 {
            let acked = seg.ack.saturating_sub(conn.snd_base) as usize;
            if acked > 0 && !conn.snd_buf.is_empty() {
                let n = acked.min(conn.snd_buf.len());
                conn.snd_buf.drain(..n);
                conn.snd_base += n as u32;
                conn.rto = RTO;
                conn.timer_epoch += 1; // disarm; re-armed if data remains
                let more = !conn.snd_buf.is_empty();
                self.dirty = true;
                if more {
                    self.send_unacked(ctx, conn_id);
                    return;
                }
            }
        }
        let Some(conn) = self.conn_mut(conn_id) else {
            return;
        };
        if seg.flags & flags::DATA != 0 {
            if seg.seq == conn.rcv_nxt {
                conn.rcv_nxt = conn.rcv_nxt.wrapping_add(seg.payload.len() as u32);
                let app = conn.app;
                self.dirty = true;
                ctx.metrics()
                    .add("inet.stream_bytes", seg.payload.len() as u64);
                self.app_send(
                    ctx,
                    app,
                    Message::new(sock::DATA)
                        .with_param(0, u64::from(conn_id))
                        .with_data(seg.payload),
                );
            } else {
                ctx.metrics().incr("inet.out_of_order");
            }
            self.send_ack(ctx, conn_id);
            return;
        }
        if seg.flags & flags::FIN != 0 {
            if seg.seq == conn.rcv_nxt && !conn.closed {
                conn.closed = true;
                conn.rcv_nxt = conn.rcv_nxt.wrapping_add(1);
                let app = conn.app;
                self.dirty = true;
                self.app_send(
                    ctx,
                    app,
                    Message::new(sock::CLOSED).with_param(0, u64::from(conn_id)),
                );
            }
            self.send_ack(ctx, conn_id);
        }
    }
}

impl Process for Inet {
    // analyze:recovery-root
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match self.fault.poll() {
            FaultAction::Crash => {
                ctx.metrics().incr("inet.injected_crash");
                ctx.panic("injected server defect: wild store");
                return;
            }
            FaultAction::Stall => {
                // Lost wakeup: the incarnation swallows every event.
                // Pending sendrec rendezvous stay open, which is what the
                // RS stall audit keys on.
                ctx.metrics().incr("inet.stalled_events");
                return;
            }
            FaultAction::Garble | FaultAction::None => {}
        }
        self.dispatch(ctx, event);
        self.maybe_save(ctx);
    }
}

impl Inet {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {
                // §5.3: "the network server subscribes to updates about
                // the configuration of Ethernet drivers by registering
                // the expression 'eth.*'".
                let _ = ctx.sendrec(
                    self.ds,
                    Message::new(ds::SUBSCRIBE).with_data(b"eth.*".to_vec()),
                );
            }
            ProcEvent::Notify { from } if from == self.ds => self.ds_check(ctx),
            ProcEvent::Message(msg) if msg.mtype == eth::RECV => {
                // A restarted incarnation drops frames that race its
                // session restore; the peer's retransmission covers them.
                if let Some(ckpt) = self.ckpt.as_mut() {
                    if !ckpt.ready() {
                        ckpt.ensure_restore(ctx);
                        ctx.metrics().incr("inet.frames_dropped_prerestore");
                        return;
                    }
                }
                let frame = msg.data.clone();
                self.on_frame(ctx, &frame);
            }
            ProcEvent::Request { call, msg } => {
                if let Some(ckpt) = self.ckpt.as_mut() {
                    if ckpt.park_until_restored(ctx, call, msg.clone()) {
                        return;
                    }
                }
                self.handle_request(ctx, call, msg);
            }
            ProcEvent::Reply { call, result } => {
                let ckpt_outcome = match self.ckpt.as_mut() {
                    Some(ckpt) => ckpt.on_reply(ctx, call, &result),
                    None => None,
                };
                if let Some((restore, parked)) = ckpt_outcome {
                    if let RestoreEvent::Restored(snap) = restore {
                        if !self.apply_session(ctx, &snap.payload) {
                            ctx.metrics().incr("inet.session_restore_garbage");
                        }
                    }
                    for (parked_call, parked_msg) in parked {
                        self.handle_request(ctx, parked_call, parked_msg);
                    }
                    return;
                }
                if Some(call) == self.check_call {
                    self.check_call = None;
                    if let Ok(reply) = result {
                        if reply.mtype == ds::CHECK_REPLY && reply.param(0) == 0 {
                            let key = String::from_utf8_lossy(&reply.data).to_string();
                            let ep = unpack_endpoint(reply.param(1), reply.param(2));
                            if key == self.driver_key {
                                self.recovery = RecoveryId::from_wire(reply.param(3));
                                self.recovery_parent = SpanId::from_wire(reply.param(4));
                                self.on_driver_published(ctx, ep);
                            }
                            self.ds_check(ctx);
                        }
                    }
                    return;
                }
                if Some(call) == self.init_call {
                    self.init_call = None;
                    match result {
                        Ok(reply) if reply.mtype == eth::INIT_REPLY && reply.param(0) == 0 => {
                            self.driver_ready = true;
                            self.init_epoch += 1; // disarm the retry alarm
                            let ev = ctx
                                .event(TraceLevel::Info, "ethernet driver initialized".to_string())
                                .with_field("ev", "resume")
                                .with_field("driver", self.driver_key.as_str())
                                .in_recovery_opt(self.recovery.take())
                                .with_parent_opt(self.recovery_parent.take());
                            ctx.trace_event(ev);
                            // Nudge retransmission so streams resume
                            // promptly after reintegration.
                            for id in self.conn_ids() {
                                let Some((needs_syn, needs_data)) = self
                                    .conn(id)
                                    .map(|c| (!c.established, !c.snd_buf.is_empty()))
                                else {
                                    continue;
                                };
                                if needs_syn {
                                    self.send_syn(ctx, id);
                                } else if needs_data {
                                    self.send_unacked(ctx, id);
                                }
                            }
                        }
                        _ => {
                            // Driver could not initialize the hardware;
                            // it will panic and RS will try again, or the
                            // policy gives up (§7.2 wedged-card case).
                            ctx.trace(
                                TraceLevel::Warn,
                                "ethernet driver failed to initialize".to_string(),
                            );
                        }
                    }
                    return;
                }
                // [recovery:begin]
                if self.eth_calls.remove(&call) {
                    match result {
                        Err(_) => {
                            // Rendezvous aborted: the driver died with
                            // our frame; transport retransmission will
                            // cover it.
                            self.driver_ready = false;
                            ctx.metrics().incr("inet.postponed_writes");
                        }
                        Ok(reply) if reply.mtype != eth::WRITE_REPLY => {
                            // Wrong-type reply to our WRITE. The chaos
                            // fabric flips reply headers too, so treat
                            // an isolated one like a lost frame (the
                            // transport retransmits); only a streak is
                            // a defective driver worth a complaint.
                            ctx.metrics().incr("inet.bad_replies");
                            self.bad_reply_streak += 1;
                            if self.bad_reply_streak >= BAD_REPLY_COMPLAINT_THRESHOLD {
                                self.bad_reply_streak = 0;
                                self.complain_bad_reply(ctx);
                            }
                        }
                        Ok(_) => {
                            self.bad_reply_streak = 0;
                        }
                    }
                }
                // [recovery:end]
            }
            ProcEvent::Alarm { token } => {
                let conn_id = (token >> 32) as u16;
                let epoch = (token & 0xFFFF_FFFF) as u32;
                if conn_id == 0 {
                    // INIT retry timer: still not ready and no newer
                    // attempt superseded this alarm -> resend INIT.
                    if epoch == self.init_epoch && !self.driver_ready {
                        if let Some(ep) = self.driver {
                            ctx.metrics().incr("inet.init_retries");
                            ctx.trace(
                                TraceLevel::Warn,
                                "ethernet INIT went unanswered; retrying".to_string(),
                            );
                            self.send_init(ctx, ep);
                        }
                    }
                    return;
                }
                let Some(conn) = self.conn_mut(conn_id) else {
                    return;
                };
                if conn.timer_epoch != epoch {
                    return;
                }
                conn.rto = (conn.rto * 2).min(RTO_MAX);
                if !conn.established {
                    ctx.metrics().incr("inet.syn_retransmits");
                    self.send_syn(ctx, conn_id);
                } else if !conn.snd_buf.is_empty() {
                    ctx.metrics().incr("inet.retransmits");
                    self.send_unacked(ctx, conn_id);
                }
            }
            _ => {}
        }
    }

    /// Serves one socket request (also the replay path for requests that
    /// were parked behind a session restore).
    fn handle_request(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: Message) {
        match msg.mtype {
            sock::CONNECT => {
                let conn = Conn {
                    app: msg.source,
                    connect_call: Some(call),
                    established: false,
                    closed: false,
                    rcv_nxt: 0,
                    snd_buf: Vec::new(),
                    snd_base: 0,
                    rto: RTO,
                    timer_epoch: 0,
                };
                match self.alloc_conn(conn) {
                    Some(conn_id) => {
                        self.dirty = true;
                        self.send_syn(ctx, conn_id);
                    }
                    None => {
                        // Every 16-bit id is live: refuse rather than
                        // silently reuse an open session's id.
                        ctx.metrics().incr("inet.conns_exhausted");
                        self.app_reply(
                            ctx,
                            call,
                            Message::new(sock::CONNECT_REPLY)
                                .with_param(0, 1)
                                .with_param(1, 0),
                        );
                    }
                }
            }
            sock::SEND => {
                let conn_id = msg.param(0) as u16;
                let ok = match self.conn_mut(conn_id) {
                    Some(conn) if conn.established => {
                        conn.snd_buf.extend_from_slice(&msg.data);
                        true
                    }
                    _ => false,
                };
                if ok {
                    self.dirty = true;
                    self.send_unacked(ctx, conn_id);
                }
                self.app_reply(
                    ctx,
                    call,
                    Message::new(sock::ACK).with_param(0, u64::from(!ok)),
                );
            }
            sock::CLOSE => {
                let conn_id = msg.param(0) as u16;
                if self.conn(conn_id).is_some() {
                    self.free_conn(conn_id);
                    self.dirty = true;
                    ctx.metrics().incr("inet.conns_closed");
                }
                // Idempotent: a CLOSE replayed after a session restore
                // (or re-sent by the app) is status 0 as well.
                self.app_reply(ctx, call, Message::new(sock::ACK).with_param(0, 0));
            }
            sock::DGRAM_SEND => {
                if self.dgram_app != Some(msg.source) {
                    self.dgram_app = Some(msg.source);
                    self.dirty = true;
                }
                let seg = Segment {
                    flags: flags::DGRAM,
                    conn: 0,
                    seq: msg.param(1) as u32,
                    ack: 0,
                    payload: msg.data.clone(),
                };
                // Unreliable: fire and forget; loss is explicitly
                // tolerated (§6.1).
                self.send_segment(ctx, seg);
                self.app_reply(ctx, call, Message::new(sock::ACK).with_param(0, 0));
            }
            _ => {
                self.app_reply(ctx, call, Message::new(sock::ACK).with_param(0, 22));
            }
        }
    }
}
