//! Phoenix: a failure-resilient operating system in simulation — a full
//! reproduction of *Failure Resilience for Device Drivers* (Herder, Bos,
//! Gras, Homburg, Tanenbaum; DSN 2007).
//!
//! The system runs every server and device driver as an isolated
//! user-mode process on a microkernel substrate. A reincarnation server
//! detects defects (exits, panics, exceptions, kills, missed heartbeats,
//! complaints, dynamic updates) and repairs them through parametrized
//! policy scripts; a data store propagates the restarted component's new
//! endpoint to its dependents, which reintegrate it — transparently for
//! network and block drivers, with application-level recovery for
//! character drivers.
//!
//! # Quick start
//!
//! ```
//! use phoenix::os::{names, NicKind, Os};
//! use phoenix_simcore::time::SimDuration;
//!
//! // Boot an OS with an RTL8139 NIC, INET and a remote peer.
//! let mut os = Os::builder().seed(7).with_network(NicKind::Rtl8139).boot();
//! assert!(os.is_up(names::ETH_RTL8139));
//!
//! // Kill the Ethernet driver like a hostile user would...
//! let old = os.endpoint(names::ETH_RTL8139).unwrap();
//! os.kill_by_user(names::ETH_RTL8139);
//! os.run_for(SimDuration::from_secs(1));
//!
//! // ...and the reincarnation server has already replaced it.
//! let new = os.endpoint(names::ETH_RTL8139).unwrap();
//! assert_ne!(old, new, "fresh incarnation with a new endpoint");
//! assert_eq!(os.metrics().counter("rs.recoveries"), 1);
//! ```
//!
//! Key modules:
//!
//! * [`os`] — [`os::Os`] and [`os::OsBuilder`]: assemble and drive the OS.
//! * [`apps`] — `wget`, `dd`, printer daemon, MP3 player, CD burner, UDP
//!   ping: the workloads of the paper's evaluation and examples.
//! * [`campaign`] — the §7.2 fault-injection campaign.
//! * [`experiments`] — Fig. 3 / Fig. 7 / Fig. 8 experiment drivers.

pub mod apps;
pub mod audit;
pub mod campaign;
pub mod experiments;
pub mod loadgen;
pub mod os;

pub use audit::{run_authority_workload, AuthoritySnapshot};
pub use campaign::{
    metrics_digest, run_campaign, run_chaos_campaign, run_chaos_campaign_traced, run_ckpt_campaign,
    run_slo_campaign, CampaignConfig, CampaignResult, ChaosCampaignConfig, ChaosCampaignResult,
    ChaosKillRecord, CkptCampaignConfig, CkptCampaignResult, SloCampaignConfig, SloCampaignResult,
    SloPhaseRow,
};
pub use os::{names, NicKind, Os, OsBuilder, OverGrant};

// Re-export the substrate crates so downstream users need only `phoenix`.
pub use phoenix_ckpt as ckpt;
pub use phoenix_drivers as drivers;
pub use phoenix_fault as fault;
pub use phoenix_hw as hw;
pub use phoenix_kernel as kernel;
pub use phoenix_servers as servers;
pub use phoenix_simcore as simcore;
