//! Per-process privilege tables (principle of least authority, §4).
//!
//! Every system process is loaded with a privilege structure restricting its
//! IPC destinations, kernel calls, I/O ports (modeled as whole devices), and
//! IRQ lines. User processes get [`Privileges::user`]; device drivers get a
//! narrow grant covering only their own device.

use std::collections::BTreeSet;

use crate::types::{DeviceId, IrqLine};

/// The kernel calls a process may issue.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum KernelCall {
    /// Programmed device I/O (`sys_devio`).
    Devio,
    /// Register for an IRQ line (`sys_irqctl`).
    IrqCtl,
    /// Capability-checked inter-address-space copy (`sys_safecopy`).
    SafeCopy,
    /// Create/revoke memory grants (`sys_setgrant`).
    SetGrant,
    /// Map an I/O MMU window for DMA (`sys_iommu`).
    IommuMap,
    /// Set a watchdog/alarm timer (`sys_setalarm`).
    SetAlarm,
    /// Create a new system process (`sys_fork`+`sys_exec`; PM only).
    Spawn,
    /// Destroy a process (`sys_kill`; PM only).
    Kill,
    /// Update another process's privilege table (RS via PM).
    PrivCtl,
}

impl KernelCall {
    /// Every kernel call, in declaration order. Used by the least-authority
    /// audit to diff declared grants against observed usage.
    pub const ALL: [KernelCall; 9] = [
        KernelCall::Devio,
        KernelCall::IrqCtl,
        KernelCall::SafeCopy,
        KernelCall::SetGrant,
        KernelCall::IommuMap,
        KernelCall::SetAlarm,
        KernelCall::Spawn,
        KernelCall::Kill,
        KernelCall::PrivCtl,
    ];

    /// Stable lowercase name matching the MINIX-style call it models.
    pub const fn name(self) -> &'static str {
        match self {
            KernelCall::Devio => "sys_devio",
            KernelCall::IrqCtl => "sys_irqctl",
            KernelCall::SafeCopy => "sys_safecopy",
            KernelCall::SetGrant => "sys_setgrant",
            KernelCall::IommuMap => "sys_iommu",
            KernelCall::SetAlarm => "sys_setalarm",
            KernelCall::Spawn => "sys_spawn",
            KernelCall::Kill => "sys_kill",
            KernelCall::PrivCtl => "sys_privctl",
        }
    }
}

/// Which endpoints a process may address with IPC.
///
/// Filters are by *stable process name*, mirroring how MINIX 3 protection
/// files name IPC targets; the kernel resolves names against its process
/// table at send time, so restarted components stay reachable.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum IpcFilter {
    /// May send to any process (trusted servers).
    #[default]
    AllowAll,
    /// May send only to the named processes.
    AllowNamed(BTreeSet<String>),
    /// May not initiate IPC at all (it may still *reply* to open calls, as
    /// replies are capabilities conferred by the incoming request).
    DenyAll,
}

impl IpcFilter {
    /// Builds an allow-list filter from names.
    pub fn named<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        IpcFilter::AllowNamed(names.into_iter().map(Into::into).collect())
    }

    /// Whether a destination with `name` is permitted.
    pub fn allows(&self, name: &str) -> bool {
        match self {
            IpcFilter::AllowAll => true,
            IpcFilter::AllowNamed(set) => set.contains(name),
            IpcFilter::DenyAll => false,
        }
    }
}

/// The complete privilege table of one process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Privileges {
    /// Unprivileged user id assigned to the system process (§4: "System
    /// processes are given an unprivileged user and group ID").
    pub uid: u32,
    /// Allowed IPC destinations.
    pub ipc: IpcFilter,
    /// Allowed kernel calls.
    pub kernel_calls: BTreeSet<KernelCall>,
    /// Devices whose I/O registers this process may touch.
    pub devices: BTreeSet<DeviceId>,
    /// IRQ lines this process may register for.
    pub irq_lines: BTreeSet<IrqLine>,
    /// Size of the process's private address space in bytes.
    pub address_space: usize,
    /// Authorized to file complaints with the reincarnation server asking
    /// for another component's replacement (§5.1 defect class 5).
    pub may_complain: bool,
}

impl Default for Privileges {
    fn default() -> Self {
        Privileges::user()
    }
}

impl Privileges {
    /// Privileges of an ordinary application process: no device access,
    /// IPC only to the servers that implement POSIX for it, and the alarm
    /// call (the kernel backend of POSIX `alarm(2)`).
    pub fn user() -> Self {
        Privileges {
            uid: 1000,
            ipc: IpcFilter::named(["vfs", "pm", "inet"]),
            kernel_calls: [KernelCall::SetAlarm].into_iter().collect(),
            devices: BTreeSet::new(),
            irq_lines: BTreeSet::new(),
            address_space: 64 * 1024,
            may_complain: false,
        }
    }

    /// Privileges of a device driver for one device and one IRQ line.
    ///
    /// The baseline is the least authority *every* driver in the system
    /// exercises: heartbeat pongs to RS, device I/O on its own device, IRQ
    /// registration, and a DMA window. Drivers that serve requests through
    /// grants (block drivers) or push data to a server (network drivers)
    /// extend this with [`Privileges::with_calls`] / [`Privileges::with_ipc`]
    /// at registration; the least-authority audit verifies every extension
    /// is exercised.
    pub fn driver(device: DeviceId, irq: IrqLine) -> Self {
        Privileges {
            uid: 900,
            ipc: IpcFilter::named(["rs"]),
            kernel_calls: [KernelCall::Devio, KernelCall::IrqCtl, KernelCall::IommuMap]
                .into_iter()
                .collect(),
            devices: [device].into_iter().collect(),
            irq_lines: [irq].into_iter().collect(),
            address_space: 256 * 1024,
            may_complain: false,
        }
    }

    /// Privileges of a trusted server (VFS, MFS, INET, DS): full IPC, copy
    /// and alarm calls, no device access.
    pub fn server() -> Self {
        Privileges {
            uid: 800,
            ipc: IpcFilter::AllowAll,
            kernel_calls: [
                KernelCall::SafeCopy,
                KernelCall::SetGrant,
                KernelCall::SetAlarm,
            ]
            .into_iter()
            .collect(),
            devices: BTreeSet::new(),
            irq_lines: BTreeSet::new(),
            address_space: 4 * 1024 * 1024,
            may_complain: true,
        }
    }

    /// Privileges of the process manager: may spawn and kill processes,
    /// and reports exits only to the reincarnation server. PM deliberately
    /// does not hold `PrivCtl`: name-based IPC filters survive restarts,
    /// so nothing in the system needs runtime filter rewrites (the audit
    /// flagged the grant as never exercised).
    pub fn process_manager() -> Self {
        let mut p = Privileges::server();
        p.uid = 0;
        p.ipc = IpcFilter::named(["rs"]);
        p.kernel_calls = [KernelCall::Spawn, KernelCall::Kill].into_iter().collect();
        p
    }

    /// Privileges of the reincarnation server: alarms for heartbeat and
    /// restart timers, and broad IPC (it pings every guarded service by
    /// endpoint). Actual spawning and killing is delegated to the process
    /// manager by IPC, so RS needs no other kernel call.
    pub fn reincarnation_server() -> Self {
        let mut p = Privileges::server();
        p.uid = 0;
        p.kernel_calls = [KernelCall::SetAlarm].into_iter().collect();
        p
    }

    /// Replaces the IPC filter (builder style). Used where a component's
    /// observed authority is narrower than its constructor's default — the
    /// least-authority audit flags the difference otherwise.
    pub fn with_ipc(mut self, ipc: IpcFilter) -> Self {
        self.ipc = ipc;
        self
    }

    /// Replaces the kernel-call set (builder style).
    pub fn with_calls<I: IntoIterator<Item = KernelCall>>(mut self, calls: I) -> Self {
        self.kernel_calls = calls.into_iter().collect();
        self
    }

    /// Returns whether `call` is permitted.
    pub fn allows_call(&self, call: KernelCall) -> bool {
        self.kernel_calls.contains(&call)
    }

    /// Returns whether I/O to `device` is permitted.
    pub fn allows_device(&self, device: DeviceId) -> bool {
        self.devices.contains(&device)
    }

    /// Returns whether registering for `irq` is permitted.
    pub fn allows_irq(&self, irq: IrqLine) -> bool {
        self.irq_lines.contains(&irq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_has_only_the_alarm_call() {
        let p = Privileges::user();
        assert!(!p.allows_call(KernelCall::Devio));
        assert!(!p.allows_call(KernelCall::Spawn));
        assert!(p.allows_call(KernelCall::SetAlarm), "POSIX alarm(2)");
        assert!(p.ipc.allows("vfs"));
        assert!(
            !p.ipc.allows("eth.rtl8139"),
            "apps cannot talk to drivers directly"
        );
    }

    #[test]
    fn driver_confined_to_own_device() {
        let p = Privileges::driver(DeviceId(3), 11);
        assert!(p.allows_device(DeviceId(3)));
        assert!(!p.allows_device(DeviceId(4)));
        assert!(p.allows_irq(11));
        assert!(!p.allows_irq(12));
        assert!(p.allows_call(KernelCall::Devio));
        assert!(!p.allows_call(KernelCall::Kill), "drivers cannot kill");
        assert!(!p.may_complain);
    }

    #[test]
    fn only_pm_spawns() {
        assert!(Privileges::process_manager().allows_call(KernelCall::Spawn));
        assert!(!Privileges::server().allows_call(KernelCall::Spawn));
        assert!(!Privileges::reincarnation_server().allows_call(KernelCall::Spawn));
    }

    #[test]
    fn ipc_filter_variants() {
        assert!(IpcFilter::AllowAll.allows("anyone"));
        assert!(!IpcFilter::DenyAll.allows("anyone"));
        let f = IpcFilter::named(["ds", "rs"]);
        assert!(f.allows("ds"));
        assert!(!f.allows("vfs"));
    }

    #[test]
    fn servers_may_complain_drivers_may_not() {
        assert!(Privileges::server().may_complain);
        assert!(!Privileges::driver(DeviceId(0), 0).may_complain);
    }
}
