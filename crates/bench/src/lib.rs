//! Benchmark harness for the paper's evaluation: one binary per table and
//! figure, plus Criterion micro-benchmarks.
//!
//! | artifact | binary |
//! |---|---|
//! | Fig. 3 (recovery schemes) | `fig3_schemes` |
//! | Fig. 7 (network throughput vs. kill interval) | `fig7_network` |
//! | Fig. 8 (disk throughput vs. kill interval) | `fig8_disk` |
//! | §7.2 (fault-injection campaign) | `sec72_fault_injection` |
//! | Fig. 9 (reengineering effort, LoC) | `fig9_loc` |
//!
//! Every binary accepts `--quick` for a scaled-down run (CI-sized) and
//! prints the same rows/series the paper reports.

pub mod loc;

/// Simple fixed-width table printer for harness output.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Returns true when `--quick` was passed (scaled-down run).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Workspace root (assumes the binary runs via `cargo run` from anywhere
/// inside the workspace).
pub fn workspace_root() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir;
        }
        if !dir.pop() {
            panic!("run from inside the workspace");
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_prints_without_panic() {
        super::print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
