//! Quickstart: boot the failure-resilient OS, kill a device driver the way
//! a hostile user would, and watch the reincarnation server bring it back
//! — transparently, with a fresh endpoint, in well under a second.
//!
//! Run with: `cargo run --example quickstart`

use phoenix::os::{names, NicKind, Os};
use phoenix_simcore::time::SimDuration;

fn main() {
    // Boot an OS with an RTL8139 NIC, the INET server, and a remote peer.
    let mut os = Os::builder().seed(7).with_network(NicKind::Rtl8139).boot();
    println!("booted at {}", os.now());
    for (name, up) in [
        (names::INET, os.is_up(names::INET)),
        (names::ETH_RTL8139, os.is_up(names::ETH_RTL8139)),
    ] {
        println!("  {name:<16} {}", if up { "up" } else { "DOWN" });
    }

    // The Ethernet driver is an ordinary user-mode process with a unique
    // IPC endpoint.
    let old = os.endpoint(names::ETH_RTL8139).expect("driver up");
    println!("\ndriver incarnation: {old}");

    // Kill it like the paper's crash-simulation script does (kill -9).
    println!("killing {} ...", names::ETH_RTL8139);
    os.kill_by_user(names::ETH_RTL8139);
    os.run_for(SimDuration::from_secs(1));

    // The reincarnation server detected the exit via the process manager,
    // ran the recovery policy, restarted the driver, and published the new
    // endpoint in the data store — where INET picked it up and
    // reinitialized the card.
    let new = os.endpoint(names::ETH_RTL8139).expect("driver recovered");
    println!("recovered as:       {new}");
    assert_ne!(old, new, "a restart always yields a fresh endpoint");

    println!("\nrecovery metrics:");
    for key in [
        "rs.recoveries",
        "rs.defect.killed",
        "inet.driver_reintegrations",
    ] {
        println!("  {key:<28} {}", os.metrics().counter(key));
    }
    if let Some(h) = os.metrics().histogram("rs.recovery_time") {
        if let Some(mean) = h.mean() {
            println!("  mean recovery time           {mean:.3}s");
        }
    }

    println!("\nrecovery-related trace:");
    for e in os.trace().events() {
        let m = &e.message;
        if m.contains("died") || m.contains("recovered") || m.contains("publish eth") {
            println!("  {e}");
        }
    }
}
