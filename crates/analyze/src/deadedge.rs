//! Dead protocol edges: message kinds declared in a protocol module that
//! nothing in the workspace ever references.
//!
//! A `pub const NAME: u32` in `crates/{drivers,servers}/src/proto.rs` is
//! a message kind — an edge in the IPC protocol graph. An edge nobody
//! sends or matches on is dead weight: it widens the nominal protocol
//! surface (and therefore what an audit must reason about) without
//! buying any behavior.
//!
//! References are counted as module-qualified uses (`drv::HB_PING`,
//! `rsp::COMPLAIN`), resolving per-file `use ... proto::x as y` aliases,
//! so same-named kinds in different modules (`bdev::READ` vs
//! `cdev::READ`) are kept apart.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::Path;

/// One protocol constant with no references anywhere in the workspace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadEdge {
    /// Protocol module, e.g. `bdev`.
    pub module: String,
    /// Constant name, e.g. `READ`.
    pub name: String,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// 1-based line of the definition.
    pub line: usize,
}

impl fmt::Display for DeadEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [dead-edge] {}::{} is never sent or handled",
            self.file, self.line, self.module, self.name
        )
    }
}

/// Extracts `(module, const, line)` triples for every `pub const NAME:
/// u32` inside a `pub mod` block of a protocol file.
fn extract_consts(source: &str) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    let mut module = String::new();
    for (i, line) in source.lines().enumerate() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("pub mod ") {
            module = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
        } else if let Some(rest) = t.strip_prefix("pub const ") {
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if rest[name.len()..].starts_with(": u32") && !module.is_empty() {
                out.push((module.clone(), name, i + 1));
            }
        }
    }
    out
}

fn ident_before(bytes: &[u8], end: usize) -> String {
    let mut start = end;
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    String::from_utf8_lossy(&bytes[start..end]).into_owned()
}

fn ident_after(bytes: &[u8], start: usize) -> String {
    let mut end = start;
    while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
        end += 1;
    }
    String::from_utf8_lossy(&bytes[start..end]).into_owned()
}

/// Builds the local alias -> protocol-module map for one file from its
/// `use` lines (`use crate::proto::{cdev, status};`,
/// `use crate::proto::rs as rsp;`), and records consts imported by name
/// (`use crate::proto::bdev::{READ, WRITE};`) directly into `seen`.
fn alias_map(
    source: &str,
    modules: &BTreeSet<String>,
    seen: &mut BTreeSet<(String, String)>,
) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for line in source.lines() {
        let t = line.trim();
        if !t.starts_with("use ") {
            continue;
        }
        let Some(idx) = t.rfind("proto::") else {
            continue;
        };
        let tail = t[idx + "proto::".len()..].trim_end_matches(';');
        if let Some(inner) = tail.strip_prefix('{') {
            for item in inner.trim_end_matches('}').split(',') {
                let item = item.trim();
                if item.is_empty() {
                    continue;
                }
                match item.split_once(" as ") {
                    Some((real, alias)) => {
                        map.insert(alias.trim().to_string(), real.trim().to_string());
                    }
                    None => {
                        map.insert(item.to_string(), item.to_string());
                    }
                }
            }
        } else if let Some((module, rest)) = tail.split_once("::") {
            // `use ...proto::m::{A, B}` or `use ...proto::m::A`.
            if modules.contains(module) {
                let names = rest.trim_start_matches('{').trim_end_matches('}');
                for name in names.split(',') {
                    seen.insert((module.to_string(), name.trim().to_string()));
                }
            }
        } else {
            match tail.split_once(" as ") {
                Some((real, alias)) => {
                    map.insert(alias.trim().to_string(), real.trim().to_string());
                }
                None => {
                    map.insert(tail.to_string(), tail.to_string());
                }
            }
        }
    }
    // A fully qualified `proto::m::CONST` needs no import at all.
    for m in modules {
        map.entry(m.clone()).or_insert_with(|| m.clone());
    }
    map
}

/// Records every `(module, const)` pair referenced by `source` as a
/// qualified path into `seen`.
fn record_refs(
    source: &str,
    aliases: &BTreeMap<String, String>,
    consts: &BTreeSet<(String, String)>,
    seen: &mut BTreeSet<(String, String)>,
) {
    let bytes = source.as_bytes();
    let mut i = 0;
    while let Some(pos) = source[i..].find("::") {
        let at = i + pos;
        let qualifier = ident_before(bytes, at);
        let name = ident_after(bytes, at + 2);
        if let Some(module) = aliases.get(&qualifier) {
            let key = (module.clone(), name);
            if consts.contains(&key) {
                seen.insert(key);
            }
        }
        i = at + 2;
    }
}

/// Scans the workspace for protocol constants nobody references.
pub fn find_dead_edges(root: &Path) -> Vec<DeadEdge> {
    let proto_files = [
        "crates/drivers/src/proto.rs",
        "crates/servers/src/proto.rs",
        "crates/ckpt/src/proto.rs",
    ];
    let mut defs: Vec<(String, String, String, usize)> = Vec::new();
    for rel_path in proto_files {
        let Ok(source) = std::fs::read_to_string(root.join(rel_path)) else {
            continue;
        };
        for (module, name, line) in extract_consts(&source) {
            defs.push((module, name, rel_path.to_string(), line));
        }
    }
    let consts: BTreeSet<(String, String)> = defs
        .iter()
        .map(|(m, n, _, _)| (m.clone(), n.clone()))
        .collect();
    let modules: BTreeSet<String> = defs.iter().map(|(m, _, _, _)| m.clone()).collect();

    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for path in crate::workspace_sources(root) {
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        let aliases = alias_map(&source, &modules, &mut seen);
        record_refs(&source, &aliases, &consts, &mut seen);
    }
    // Tests and the umbrella crate reference protocol kinds too; a kind
    // exercised only by a test is not dead.
    let mut extra = Vec::new();
    collect_dir(&root.join("tests"), &mut extra);
    collect_dir(&root.join("src"), &mut extra);
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.filter_map(|e| e.ok()) {
            collect_dir(&entry.path().join("tests"), &mut extra);
        }
    }
    {
        for path in extra {
            let Ok(source) = std::fs::read_to_string(&path) else {
                continue;
            };
            let aliases = alias_map(&source, &modules, &mut seen);
            record_refs(&source, &aliases, &consts, &mut seen);
        }
    }

    defs.into_iter()
        .filter(|(m, n, _, _)| !seen.contains(&(m.clone(), n.clone())))
        .map(|(module, name, file, line)| DeadEdge {
            module,
            name,
            file,
            line,
        })
        .collect()
}

fn collect_dir(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            collect_dir(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_u32_consts_with_their_module() {
        let src = "\
pub mod status {
    pub const OK: u64 = 0;
}
pub mod blk {
    pub const READ: u32 = 0x0201;
    pub const WRITE: u32 = 0x0202;
}
";
        let consts = extract_consts(src);
        assert_eq!(
            consts,
            vec![
                ("blk".to_string(), "READ".to_string(), 5),
                ("blk".to_string(), "WRITE".to_string(), 6),
            ],
            "u64 status codes are not message kinds"
        );
    }

    #[test]
    fn aliased_and_brace_imports_resolve() {
        let modules: BTreeSet<String> = ["rs", "blk", "cdev"]
            .map(String::from)
            .into_iter()
            .collect();
        let mut seen = BTreeSet::new();
        let src = "\
use crate::proto::{cdev, status};
use crate::proto::rs as rsp;
";
        let map = alias_map(src, &modules, &mut seen);
        assert_eq!(map.get("cdev").map(String::as_str), Some("cdev"));
        assert_eq!(map.get("rsp").map(String::as_str), Some("rs"));
        // Unimported modules still resolve under their own name (full
        // `proto::m::CONST` paths need no use line).
        assert_eq!(map.get("blk").map(String::as_str), Some("blk"));
    }

    #[test]
    fn qualified_references_stay_module_scoped() {
        let modules: BTreeSet<String> = ["blk", "cdev"].map(String::from).into_iter().collect();
        let consts: BTreeSet<(String, String)> = [
            ("blk".to_string(), "READ".to_string()),
            ("cdev".to_string(), "READ".to_string()),
            ("blk".to_string(), "WRITE".to_string()),
        ]
        .into_iter()
        .collect();
        let mut seen = BTreeSet::new();
        let aliases = alias_map("use crate::proto::cdev;\n", &modules, &mut seen);
        record_refs(
            "match m.mtype { cdev::READ => serve(), _ => {} }",
            &aliases,
            &consts,
            &mut seen,
        );
        assert!(seen.contains(&("cdev".to_string(), "READ".to_string())));
        assert!(
            !seen.contains(&("blk".to_string(), "READ".to_string())),
            "a cdev::READ use must not mark blk::READ as live"
        );
        assert!(!seen.contains(&("blk".to_string(), "WRITE".to_string())));
    }

    #[test]
    fn direct_const_imports_count_as_references() {
        let modules: BTreeSet<String> = ["blk"].map(String::from).into_iter().collect();
        let mut seen = BTreeSet::new();
        alias_map(
            "use crate::proto::blk::{READ, WRITE};\n",
            &modules,
            &mut seen,
        );
        assert!(seen.contains(&("blk".to_string(), "READ".to_string())));
        assert!(seen.contains(&("blk".to_string(), "WRITE".to_string())));
    }
}
