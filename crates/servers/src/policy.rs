//! Parametrized policy scripts (§5.2, Fig. 2).
//!
//! The reincarnation server executes a small script after each failure to
//! decide how to recover. The paper uses shell scripts; this module
//! provides an equivalent interpreted language with the same inputs —
//! the failed component, the defect class ("reason", §5.1), the current
//! failure count ("repetition"), and free-form script parameters — and the
//! same vocabulary: conditional binary-exponential backoff, restart,
//! failure alerts, dependent-component restarts, giving up, and rebooting
//! the whole system.
//!
//! The generic script of Fig. 2 translates to:
//!
//! ```text
//! # generic recovery script (Fig. 2)
//! if reason != update then
//!     sleep backoff(1s)
//! end
//! restart
//! if param(1) != "" then
//!     alert "failure: $component reason=$reason count=$repetition -> $1"
//! end
//! ```

// [recovery:begin] -- the policy-script language exists solely for
// policy-driven recovery (§5.2)
use std::fmt;

use phoenix_simcore::time::SimDuration;

/// Defect classes, numbered as in §5.1.
pub mod reason {
    /// 1: process exit or panic.
    pub const EXIT: u8 = 1;
    /// 2: crashed by CPU or MMU exception.
    pub const EXCEPTION: u8 = 2;
    /// 3: killed by user.
    pub const KILLED: u8 = 3;
    /// 4: heartbeat message missing.
    pub const HEARTBEAT: u8 = 4;
    /// 5: complaint by another component.
    pub const COMPLAINT: u8 = 5;
    /// 6: dynamic update by user.
    pub const UPDATE: u8 = 6;

    /// Human-readable name of a defect class.
    pub fn name(r: u8) -> &'static str {
        match r {
            EXIT => "exit",
            EXCEPTION => "exception",
            KILLED => "killed",
            HEARTBEAT => "heartbeat",
            COMPLAINT => "complaint",
            UPDATE => "update",
            _ => "unknown",
        }
    }
}

/// Inputs the reincarnation server passes to the script (§5.2: "which
/// component failed, the kind of failure, the current failure count, and
/// the parameters passed along with the script").
#[derive(Debug, Clone)]
pub struct PolicyInput {
    /// Stable name of the failed component.
    pub component: String,
    /// Defect class 1–6.
    pub reason: u8,
    /// Current failure count (1 on the first failure).
    pub repetition: u32,
    /// Script parameters (`$1`, `$2`, ...).
    pub params: Vec<String>,
    /// Live `backoff()` base from the adapt controllers; `None` = use
    /// the script's literal base.
    pub backoff_base: Option<SimDuration>,
    /// Live cap on backoff doublings; `None` = the baseline cap.
    pub backoff_cap: Option<u32>,
}

/// The tunable recovery parameters the reincarnation server runs on.
///
/// One table centralizes every hand-set constant that used to be
/// scattered across `rs.rs` and `fleet/agent.rs`. The static defaults
/// are [`PolicyParams::BASELINE`]; the `adapt` controllers write through
/// the same struct at runtime, so each parameter has exactly one home
/// whether it is fixed or self-tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyParams {
    /// Heartbeat ping period for driver-class services.
    pub heartbeat_period: SimDuration,
    /// Consecutive missed heartbeats before a class-4 defect.
    pub heartbeat_misses: u32,
    /// Base delay for `backoff()` in policy scripts.
    pub backoff_base: SimDuration,
    /// Maximum number of backoff doublings.
    pub backoff_cap: u32,
    /// Restarts allowed inside one budget window before escalation.
    pub restart_budget: u32,
    /// Width of the sliding restart-budget window.
    pub budget_window: SimDuration,
    /// Complaint arbitration window.
    pub complaint_window: SimDuration,
    /// Complaints inside the window that convict on volume alone.
    pub quorum_complaints: u32,
    /// Distinct accusers inside the window that convict.
    pub quorum_accusers: u32,
    /// Distinct accused at which an accuser is inverted (PR 5).
    pub inversion_accused: u32,
}

impl PolicyParams {
    /// The hand-tuned defaults every static (non-adaptive) run uses.
    pub const BASELINE: PolicyParams = PolicyParams {
        heartbeat_period: SimDuration::from_secs(1),
        heartbeat_misses: 3,
        backoff_base: SimDuration::from_secs(1),
        backoff_cap: 7,
        restart_budget: 10,
        budget_window: SimDuration::from_secs(30),
        complaint_window: SimDuration::from_secs(2),
        quorum_complaints: 3,
        quorum_accusers: 2,
        inversion_accused: 3,
    };
}

impl Default for PolicyParams {
    fn default() -> Self {
        PolicyParams::BASELINE
    }
}

/// Parameters an `adapt` rule may bind to a closed-loop controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptParam {
    /// [`PolicyParams::heartbeat_period`] (duration-typed).
    HeartbeatPeriod,
    /// [`PolicyParams::backoff_base`] (duration-typed).
    BackoffBase,
    /// [`PolicyParams::backoff_cap`] (integer-typed).
    BackoffCap,
    /// [`PolicyParams::restart_budget`] (integer-typed).
    RestartBudget,
    /// [`PolicyParams::budget_window`] (duration-typed).
    BudgetWindow,
    /// [`PolicyParams::quorum_complaints`] (integer-typed).
    QuorumComplaints,
}

impl AdaptParam {
    /// Every adaptable parameter, in gauge-emission order.
    pub const ALL: [AdaptParam; 6] = [
        AdaptParam::HeartbeatPeriod,
        AdaptParam::BackoffBase,
        AdaptParam::BackoffCap,
        AdaptParam::RestartBudget,
        AdaptParam::BudgetWindow,
        AdaptParam::QuorumComplaints,
    ];

    /// Script spelling of the parameter.
    pub fn name(self) -> &'static str {
        match self {
            AdaptParam::HeartbeatPeriod => "heartbeat_period",
            AdaptParam::BackoffBase => "backoff_base",
            AdaptParam::BackoffCap => "backoff_cap",
            AdaptParam::RestartBudget => "restart_budget",
            AdaptParam::BudgetWindow => "budget_window",
            AdaptParam::QuorumComplaints => "quorum_complaints",
        }
    }

    /// Obs gauge name carrying the live value (µs for durations).
    pub fn gauge(self) -> &'static str {
        match self {
            AdaptParam::HeartbeatPeriod => "rs.adapt.heartbeat_period_us",
            AdaptParam::BackoffBase => "rs.adapt.backoff_base_us",
            AdaptParam::BackoffCap => "rs.adapt.backoff_cap",
            AdaptParam::RestartBudget => "rs.adapt.restart_budget",
            AdaptParam::BudgetWindow => "rs.adapt.budget_window_us",
            AdaptParam::QuorumComplaints => "rs.adapt.quorum_complaints",
        }
    }

    /// Whether values for this parameter are durations (vs bare ints).
    pub fn is_duration(self) -> bool {
        matches!(
            self,
            AdaptParam::HeartbeatPeriod | AdaptParam::BackoffBase | AdaptParam::BudgetWindow
        )
    }

    fn from_token(tok: &str) -> Option<Self> {
        AdaptParam::ALL.into_iter().find(|p| p.name() == tok)
    }

    /// Reads the parameter's canonical value (µs for durations).
    pub fn read(self, p: &PolicyParams) -> u64 {
        match self {
            AdaptParam::HeartbeatPeriod => p.heartbeat_period.as_micros(),
            AdaptParam::BackoffBase => p.backoff_base.as_micros(),
            AdaptParam::BackoffCap => u64::from(p.backoff_cap),
            AdaptParam::RestartBudget => u64::from(p.restart_budget),
            AdaptParam::BudgetWindow => p.budget_window.as_micros(),
            AdaptParam::QuorumComplaints => u64::from(p.quorum_complaints),
        }
    }

    /// Writes the parameter from its canonical value.
    pub fn write(self, p: &mut PolicyParams, v: u64) {
        match self {
            AdaptParam::HeartbeatPeriod => p.heartbeat_period = SimDuration::from_micros(v),
            AdaptParam::BackoffBase => p.backoff_base = SimDuration::from_micros(v),
            AdaptParam::BackoffCap => p.backoff_cap = v as u32,
            AdaptParam::RestartBudget => p.restart_budget = v as u32,
            AdaptParam::BudgetWindow => p.budget_window = SimDuration::from_micros(v),
            AdaptParam::QuorumComplaints => p.quorum_complaints = v as u32,
        }
    }
}

/// Observed signals an `adapt` rule may condition on. All are sampled by
/// the reincarnation server over its own sliding window, from the same
/// event streams the PR 3 phase histograms fold at campaign end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptSignal {
    /// Defects handled inside the sampling window.
    Failures,
    /// Complaints filed inside the sampling window.
    Complaints,
    /// p95 of recent recovery times, in milliseconds.
    MttrP95Ms,
}

impl AdaptSignal {
    /// Script spelling of the signal.
    pub fn name(self) -> &'static str {
        match self {
            AdaptSignal::Failures => "failures",
            AdaptSignal::Complaints => "complaints",
            AdaptSignal::MttrP95Ms => "mttr_p95",
        }
    }

    fn from_token(tok: &str) -> Option<Self> {
        [
            AdaptSignal::Failures,
            AdaptSignal::Complaints,
            AdaptSignal::MttrP95Ms,
        ]
        .into_iter()
        .find(|s| s.name() == tok)
    }
}

/// What a controller does to its parameter on each evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AdaptAction {
    Halve,
    Double,
    Hold,
    Add(u64),
    Sub(u64),
}

/// One parsed `adapt` rule: a deterministic bang-bang controller binding
/// a [`PolicyParams`] field to an observed signal, clamped to a band.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptRule {
    /// Parameter this controller drives.
    pub param: AdaptParam,
    /// Signal it conditions on.
    pub signal: AdaptSignal,
    op: CmpOp,
    /// Signal threshold (counts; milliseconds for `mttr_p95`).
    pub threshold: i64,
    hot: AdaptAction,
    cold: AdaptAction,
    lo: u64,
    hi: u64,
    /// 1-based source line of the rule, for diagnostics.
    pub line: usize,
}

impl AdaptRule {
    /// The declared safe band, in canonical units (µs for durations).
    pub fn clamp_band(&self) -> (u64, u64) {
        (self.lo, self.hi)
    }

    /// Runs one controller step: compares the sampled signal against the
    /// threshold, applies the hot or cold action to the bound parameter,
    /// and clamps the result into the declared band. Returns the new
    /// canonical value when the parameter actually changed.
    // analyze:recovery-root
    pub fn step(&self, sample: i64, params: &mut PolicyParams) -> Option<u64> {
        let triggered =
            PolicyScript::compare(&Value::Int(sample), self.op, &Value::Int(self.threshold));
        let action = if triggered { self.hot } else { self.cold };
        let cur = self.param.read(params);
        let next = match action {
            AdaptAction::Hold => cur,
            AdaptAction::Halve => cur / 2,
            AdaptAction::Double => cur.saturating_mul(2),
            AdaptAction::Add(v) => cur.saturating_add(v),
            AdaptAction::Sub(v) => cur.saturating_sub(v),
        }
        .clamp(self.lo, self.hi);
        if next == cur {
            return None;
        }
        self.param.write(params, next);
        Some(next)
    }
}

/// What the script decided.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PolicyDecision {
    /// Restart the component (after `delay`).
    pub restart: bool,
    /// Accumulated `sleep` time before restarting.
    pub delay: SimDuration,
    /// Program version to restart (None = latest registered).
    pub version: Option<u32>,
    /// Failure alerts to deliver (the `mail` of Fig. 2).
    pub alerts: Vec<String>,
    /// Log lines for the administrator.
    pub logs: Vec<String>,
    /// Other components whose restart the policy requests (e.g. restart
    /// the DHCP client after a network-server failure, §5.2).
    pub restart_components: Vec<String>,
    /// Reboot the entire system ("clearly better than leaving the system
    /// in an unusable state").
    pub reboot: bool,
    /// The policy explicitly gave up on this component.
    pub gave_up: bool,
}

/// A script parse error with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "policy parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Int(i64),
    Dur(SimDuration),
    Str(String),
    Reason,
    Repetition,
    Param(usize),
    Backoff(SimDuration),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

#[derive(Debug, Clone, PartialEq)]
enum Stmt {
    If {
        lhs: Expr,
        op: CmpOp,
        rhs: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    Sleep(Expr),
    Restart {
        version: Option<u32>,
    },
    GiveUp,
    Alert(String),
    Log(String),
    RestartComponent(String),
    Reboot,
}

/// A parsed, reusable policy script.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyScript {
    body: Vec<Stmt>,
    adapt: Vec<AdaptRule>,
    source: String,
}

/// The generic recovery script of Fig. 2: exponential backoff except for
/// dynamic updates, restart, optional alert when `$1` is set.
pub const GENERIC_POLICY: &str = r#"
# generic recovery script (Fig. 2)
if reason != update then
    sleep backoff(1s)
end
restart
if param(1) != "" then
    alert "failure: $component reason=$reason count=$repetition -> $1"
end
"#;

/// A policy that always restarts immediately — the recovery policy used
/// for the performance tests of §7.1 ("directly restarts the driver
/// without introducing delays").
pub const DIRECT_RESTART_POLICY: &str = "restart\n";

fn tokenize(line: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if in_str {
            if c == '"' {
                out.push(format!("\"{cur}"));
                cur.clear();
                in_str = false;
            } else {
                cur.push(c);
            }
        } else {
            match c {
                '#' => break,
                '"' => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                    in_str = true;
                }
                c if c.is_whitespace() => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                }
                // Make parens and comparison glyphs self-delimiting so
                // `backoff(1s)` and `reason!=update` both tokenize.
                '(' | ')' => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                    out.push(c.to_string());
                }
                '!' | '=' | '<' | '>' => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                    cur.push(c);
                    if let Some('=') = chars.peek() {
                        cur.push('=');
                        chars.next();
                    }
                    out.push(std::mem::take(&mut cur));
                }
                _ => cur.push(c),
            }
        }
    }
    if in_str {
        return Err("unterminated string".to_string());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    Ok(out)
}

fn parse_duration(tok: &str) -> Option<SimDuration> {
    let (num, unit) = tok
        .find(|c: char| c.is_ascii_alphabetic())
        .map(|i| tok.split_at(i))?;
    let n: u64 = num.parse().ok()?;
    match unit {
        "us" => Some(SimDuration::from_micros(n)),
        "ms" => Some(SimDuration::from_millis(n)),
        "s" => Some(SimDuration::from_secs(n)),
        "m" => Some(SimDuration::from_secs(n * 60)),
        _ => None,
    }
}

struct Parser<'a> {
    lines: Vec<(usize, Vec<String>)>,
    pos: usize,
    adapt: Vec<AdaptRule>,
    _src: &'a str,
}

impl<'a> Parser<'a> {
    fn err(&self, line: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            message: message.into(),
        }
    }

    fn parse_expr(&self, toks: &[String], line: usize) -> Result<(Expr, usize), ParseError> {
        let tok = toks
            .first()
            .ok_or_else(|| self.err(line, "expected expression"))?;
        if let Some(s) = tok.strip_prefix('"') {
            return Ok((Expr::Str(s.to_string()), 1));
        }
        if let Ok(n) = tok.parse::<i64>() {
            return Ok((Expr::Int(n), 1));
        }
        if let Some(d) = parse_duration(tok) {
            return Ok((Expr::Dur(d), 1));
        }
        match tok.as_str() {
            "reason" => Ok((Expr::Reason, 1)),
            "repetition" => Ok((Expr::Repetition, 1)),
            "exit" => Ok((Expr::Int(i64::from(reason::EXIT)), 1)),
            "exception" => Ok((Expr::Int(i64::from(reason::EXCEPTION)), 1)),
            "killed" => Ok((Expr::Int(i64::from(reason::KILLED)), 1)),
            "heartbeat" => Ok((Expr::Int(i64::from(reason::HEARTBEAT)), 1)),
            "complaint" => Ok((Expr::Int(i64::from(reason::COMPLAINT)), 1)),
            "update" => Ok((Expr::Int(i64::from(reason::UPDATE)), 1)),
            "param" | "backoff" => {
                if toks.len() < 4 || toks[1] != "(" || toks[3] != ")" {
                    return Err(
                        self.err(line, format!("{tok} requires one parenthesized argument"))
                    );
                }
                let arg = &toks[2];
                if tok == "param" {
                    let n: usize = arg
                        .parse()
                        .map_err(|_| self.err(line, "param() takes an integer"))?;
                    if n == 0 {
                        return Err(self.err(line, "param() indices start at 1"));
                    }
                    Ok((Expr::Param(n), 4))
                } else {
                    let d = parse_duration(arg)
                        .ok_or_else(|| self.err(line, "backoff() takes a duration, e.g. 1s"))?;
                    Ok((Expr::Backoff(d), 4))
                }
            }
            _ => Err(self.err(line, format!("unknown expression `{tok}`"))),
        }
    }

    fn parse_block(&mut self, terminators: &[&str]) -> Result<(Vec<Stmt>, String), ParseError> {
        let mut body = Vec::new();
        while self.pos < self.lines.len() {
            let (line_no, toks) = self.lines[self.pos].clone();
            if toks.is_empty() {
                self.pos += 1;
                continue;
            }
            let head = toks[0].as_str();
            if terminators.contains(&head) {
                self.pos += 1;
                return Ok((body, head.to_string()));
            }
            self.pos += 1;
            match head {
                "if" => {
                    let (lhs, used) = self.parse_expr(&toks[1..], line_no)?;
                    let rest = &toks[1 + used..];
                    let op = match rest.first().map(String::as_str) {
                        Some("==") => CmpOp::Eq,
                        Some("!=") => CmpOp::Ne,
                        Some("<") => CmpOp::Lt,
                        Some("<=") => CmpOp::Le,
                        Some(">") => CmpOp::Gt,
                        Some(">=") => CmpOp::Ge,
                        other => {
                            return Err(self.err(
                                line_no,
                                format!("expected comparison operator, got {other:?}"),
                            ))
                        }
                    };
                    let (rhs, used2) = self.parse_expr(&rest[1..], line_no)?;
                    let tail = &rest[1 + used2..];
                    if tail != ["then"] {
                        return Err(self.err(line_no, "expected `then` at end of if"));
                    }
                    let (then_body, term) = self.parse_block(&["else", "end"])?;
                    let else_body = if term == "else" {
                        let (e, term2) = self.parse_block(&["end"])?;
                        debug_assert_eq!(term2, "end");
                        e
                    } else {
                        Vec::new()
                    };
                    body.push(Stmt::If {
                        lhs,
                        op,
                        rhs,
                        then_body,
                        else_body,
                    });
                }
                "sleep" => {
                    let (e, used) = self.parse_expr(&toks[1..], line_no)?;
                    if 1 + used != toks.len() {
                        return Err(self.err(line_no, "trailing tokens after sleep"));
                    }
                    body.push(Stmt::Sleep(e));
                }
                "restart" => {
                    let version = match toks.get(1).map(String::as_str) {
                        None => None,
                        Some("version") => {
                            if toks.get(2).map(String::as_str) != Some("=") {
                                return Err(self.err(line_no, "expected `version = <n>`"));
                            }
                            let v: u32 = toks
                                .get(3)
                                .and_then(|t| t.parse().ok())
                                .ok_or_else(|| self.err(line_no, "bad version number"))?;
                            Some(v)
                        }
                        Some(other) => {
                            return Err(
                                self.err(line_no, format!("unexpected `{other}` after restart"))
                            )
                        }
                    };
                    body.push(Stmt::Restart { version });
                }
                "give-up" => body.push(Stmt::GiveUp),
                "reboot" => body.push(Stmt::Reboot),
                "alert" | "log" => {
                    let s = toks
                        .get(1)
                        .and_then(|t| t.strip_prefix('"'))
                        .ok_or_else(|| {
                            self.err(line_no, format!("{head} takes a quoted string"))
                        })?;
                    if head == "alert" {
                        body.push(Stmt::Alert(s.to_string()));
                    } else {
                        body.push(Stmt::Log(s.to_string()));
                    }
                }
                "restart-component" => {
                    let name = toks
                        .get(1)
                        .ok_or_else(|| self.err(line_no, "restart-component takes a name"))?;
                    body.push(Stmt::RestartComponent(name.clone()));
                }
                "adapt" => {
                    // Controllers run on the audit sweep, not per-failure,
                    // so a conditional rule would be meaningless: the `if`
                    // inputs (reason, repetition) don't exist at that time.
                    if !terminators.is_empty() {
                        return Err(self.err(
                            line_no,
                            "`adapt` rules must be at top level, not inside `if`",
                        ));
                    }
                    let rule = self.parse_adapt(&toks[1..], line_no)?;
                    self.adapt.push(rule);
                }
                other => return Err(self.err(line_no, format!("unknown statement `{other}`"))),
            }
        }
        if terminators.is_empty() {
            Ok((body, String::new()))
        } else {
            Err(self.err(
                self.lines.last().map_or(0, |(n, _)| *n),
                format!("missing `{}`", terminators.join("`/`")),
            ))
        }
    }

    /// Parses the tail of one `adapt` line:
    /// `<param> when <signal> <cmp> <int> <action> else <action> clamp <lo> <hi>`
    /// where an action is `halve` | `double` | `hold` | `add <val>` |
    /// `sub <val>` and every value is typed to the parameter (durations
    /// for duration params, integers otherwise).
    fn parse_adapt(&self, toks: &[String], line: usize) -> Result<AdaptRule, ParseError> {
        let param_tok = toks
            .first()
            .ok_or_else(|| self.err(line, "adapt takes a parameter name"))?;
        let param = AdaptParam::from_token(param_tok).ok_or_else(|| {
            self.err(
                line,
                format!(
                    "unknown adapt parameter `{param_tok}` (expected one of: {})",
                    AdaptParam::ALL.map(AdaptParam::name).join(", ")
                ),
            )
        })?;
        if toks.get(1).map(String::as_str) != Some("when") {
            return Err(self.err(line, "expected `when` after the adapt parameter"));
        }
        let signal_tok = toks
            .get(2)
            .ok_or_else(|| self.err(line, "expected a signal after `when`"))?;
        let signal = AdaptSignal::from_token(signal_tok).ok_or_else(|| {
            self.err(
                line,
                format!(
                    "unknown adapt signal `{signal_tok}` (expected failures, complaints, or mttr_p95)"
                ),
            )
        })?;
        let op = match toks.get(3).map(String::as_str) {
            Some("==") => CmpOp::Eq,
            Some("!=") => CmpOp::Ne,
            Some("<") => CmpOp::Lt,
            Some("<=") => CmpOp::Le,
            Some(">") => CmpOp::Gt,
            Some(">=") => CmpOp::Ge,
            other => {
                return Err(self.err(
                    line,
                    format!("expected comparison operator after the signal, got {other:?}"),
                ))
            }
        };
        let threshold: i64 = toks
            .get(4)
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| self.err(line, "adapt threshold must be an integer"))?;
        let (hot, used) = self.parse_adapt_action(param, &toks[5..], line)?;
        let mut i = 5 + used;
        if toks.get(i).map(String::as_str) != Some("else") {
            return Err(self.err(line, "expected `else` between the hot and cold actions"));
        }
        let (cold, used2) = self.parse_adapt_action(param, &toks[i + 1..], line)?;
        i += 1 + used2;
        if toks.get(i).map(String::as_str) != Some("clamp") {
            return Err(self.err(line, "expected `clamp <lo> <hi>` to end the adapt rule"));
        }
        let lo = self.parse_adapt_value(param, toks.get(i + 1), line)?;
        let hi = self.parse_adapt_value(param, toks.get(i + 2), line)?;
        if i + 3 != toks.len() {
            return Err(self.err(line, "trailing tokens after the clamp band"));
        }
        if lo == 0 {
            return Err(self.err(line, "clamp lower bound must be positive"));
        }
        if lo > hi {
            return Err(self.err(line, "clamp lower bound exceeds upper bound"));
        }
        Ok(AdaptRule {
            param,
            signal,
            op,
            threshold,
            hot,
            cold,
            lo,
            hi,
            line,
        })
    }

    fn parse_adapt_action(
        &self,
        param: AdaptParam,
        toks: &[String],
        line: usize,
    ) -> Result<(AdaptAction, usize), ParseError> {
        match toks.first().map(String::as_str) {
            Some("halve") => Ok((AdaptAction::Halve, 1)),
            Some("double") => Ok((AdaptAction::Double, 1)),
            Some("hold") => Ok((AdaptAction::Hold, 1)),
            Some(k @ ("add" | "sub")) => {
                let v = self.parse_adapt_value(param, toks.get(1), line)?;
                let action = if k == "add" {
                    AdaptAction::Add(v)
                } else {
                    AdaptAction::Sub(v)
                };
                Ok((action, 2))
            }
            other => Err(self.err(
                line,
                format!("expected adapt action (halve/double/hold/add/sub), got {other:?}"),
            )),
        }
    }

    /// Parses a value typed to the parameter: a duration (canonical µs)
    /// for duration params, a bare integer otherwise.
    fn parse_adapt_value(
        &self,
        param: AdaptParam,
        tok: Option<&String>,
        line: usize,
    ) -> Result<u64, ParseError> {
        let tok =
            tok.ok_or_else(|| self.err(line, format!("expected a `{}` value", param.name())))?;
        if param.is_duration() {
            parse_duration(tok)
                .map(SimDuration::as_micros)
                .ok_or_else(|| {
                    self.err(
                        line,
                        format!(
                            "`{}` values are durations (e.g. 500ms), got `{tok}`",
                            param.name()
                        ),
                    )
                })
        } else {
            tok.parse::<u64>().map_err(|_| {
                self.err(
                    line,
                    format!("`{}` values are integers, got `{tok}`", param.name()),
                )
            })
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Int(i64),
    Dur(SimDuration),
    Str(String),
}

impl PolicyScript {
    /// Parses a policy script.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] with the offending line on bad syntax.
    pub fn parse(source: &str) -> Result<Self, ParseError> {
        let mut lines = Vec::new();
        for (i, raw) in source.lines().enumerate() {
            let toks = tokenize(raw).map_err(|message| ParseError {
                line: i + 1,
                message,
            })?;
            lines.push((i + 1, toks));
        }
        let mut p = Parser {
            lines,
            pos: 0,
            adapt: Vec::new(),
            _src: source,
        };
        let (body, _) = p.parse_block(&[])?;
        Ok(PolicyScript {
            body,
            adapt: p.adapt,
            source: source.to_string(),
        })
    }

    /// The generic recovery script of Fig. 2.
    pub fn generic() -> Self {
        // analyze:allow(unwrap-recovery): parses a const known-good script;
        // covered by the policy unit tests, cannot fail at runtime.
        Self::parse(GENERIC_POLICY).expect("generic policy parses")
    }

    /// A policy that restarts immediately with no delay (§7.1).
    pub fn direct_restart() -> Self {
        // analyze:allow(unwrap-recovery): parses a const known-good script;
        // covered by the policy unit tests, cannot fail at runtime.
        Self::parse(DIRECT_RESTART_POLICY).expect("direct policy parses")
    }

    /// The original script text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The `adapt` controller rules declared by the script, in source
    /// order.
    pub fn adapt_rules(&self) -> &[AdaptRule] {
        &self.adapt
    }

    fn eval(&self, e: &Expr, input: &PolicyInput) -> Value {
        match e {
            Expr::Int(n) => Value::Int(*n),
            Expr::Dur(d) => Value::Dur(*d),
            Expr::Str(s) => Value::Str(interpolate(s, input)),
            Expr::Reason => Value::Int(i64::from(input.reason)),
            Expr::Repetition => Value::Int(i64::from(input.repetition)),
            Expr::Param(n) => Value::Str(input.params.get(*n - 1).cloned().unwrap_or_default()),
            Expr::Backoff(base) => {
                // Binary exponential backoff: base << (repetition - 1),
                // capped to stay sane under crash loops. The adapt
                // controllers may override both the base and the cap.
                let base = input.backoff_base.unwrap_or(*base);
                let cap = input
                    .backoff_cap
                    .unwrap_or(PolicyParams::BASELINE.backoff_cap);
                let shift = input.repetition.saturating_sub(1).min(cap).min(63);
                Value::Dur(base.saturating_mul(1 << shift))
            }
        }
    }

    fn compare(lhs: &Value, op: CmpOp, rhs: &Value) -> bool {
        let ord = match (lhs, rhs) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Dur(a), Value::Dur(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            // Mixed types never compare equal and have no order; treat
            // as not-equal for == and != only.
            _ => {
                return match op {
                    CmpOp::Eq => false,
                    CmpOp::Ne => true,
                    _ => false,
                }
            }
        };
        match op {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => ord.is_ne(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Ge => ord.is_ge(),
        }
    }

    fn run_body(&self, body: &[Stmt], input: &PolicyInput, out: &mut PolicyDecision) {
        for stmt in body {
            match stmt {
                Stmt::If {
                    lhs,
                    op,
                    rhs,
                    then_body,
                    else_body,
                } => {
                    let l = self.eval(lhs, input);
                    let r = self.eval(rhs, input);
                    if Self::compare(&l, *op, &r) {
                        self.run_body(then_body, input, out);
                    } else {
                        self.run_body(else_body, input, out);
                    }
                }
                Stmt::Sleep(e) => match self.eval(e, input) {
                    Value::Dur(d) => out.delay += d,
                    // A bare integer sleeps that many seconds, like sh.
                    Value::Int(n) if n > 0 => out.delay += SimDuration::from_secs(n as u64),
                    _ => {}
                },
                Stmt::Restart { version } => {
                    out.restart = true;
                    out.version = *version;
                }
                Stmt::GiveUp => {
                    out.gave_up = true;
                    out.restart = false;
                }
                Stmt::Alert(s) => out.alerts.push(interpolate(s, input)),
                Stmt::Log(s) => out.logs.push(interpolate(s, input)),
                Stmt::RestartComponent(name) => out.restart_components.push(name.clone()),
                Stmt::Reboot => out.reboot = true,
            }
        }
    }

    /// Executes the script for one failure.
    pub fn run(&self, input: &PolicyInput) -> PolicyDecision {
        let mut out = PolicyDecision::default();
        self.run_body(&self.body, input, &mut out);
        out
    }
}

fn interpolate(template: &str, input: &PolicyInput) -> String {
    let mut out = String::with_capacity(template.len());
    let mut chars = template.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '$' {
            out.push(c);
            continue;
        }
        let mut name = String::new();
        while let Some(&n) = chars.peek() {
            if n.is_ascii_alphanumeric() {
                name.push(n);
                chars.next();
            } else {
                break;
            }
        }
        match name.as_str() {
            "component" => out.push_str(&input.component),
            "reason" => out.push_str(reason::name(input.reason)),
            "repetition" => out.push_str(&input.repetition.to_string()),
            _ => {
                if let Ok(n) = name.parse::<usize>() {
                    if n >= 1 {
                        out.push_str(input.params.get(n - 1).map(String::as_str).unwrap_or(""));
                        continue;
                    }
                }
                out.push('$');
                out.push_str(&name);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(reason_: u8, repetition: u32) -> PolicyInput {
        PolicyInput {
            component: "eth.rtl8139".to_string(),
            reason: reason_,
            repetition,
            params: vec!["admin@example.org".to_string()],
            backoff_base: None,
            backoff_cap: None,
        }
    }

    #[test]
    fn generic_policy_backs_off_exponentially() {
        let p = PolicyScript::generic();
        for (rep, secs) in [(1u32, 1u64), (2, 2), (3, 4), (4, 8), (5, 16)] {
            let d = p.run(&input(reason::EXIT, rep));
            assert!(d.restart);
            assert_eq!(d.delay, SimDuration::from_secs(secs), "repetition {rep}");
        }
    }

    #[test]
    fn generic_policy_skips_backoff_for_updates() {
        let p = PolicyScript::generic();
        let d = p.run(&input(reason::UPDATE, 3));
        assert!(d.restart);
        assert_eq!(d.delay, SimDuration::ZERO, "Fig. 2: no backoff for updates");
    }

    #[test]
    fn generic_policy_alerts_when_param_set() {
        let p = PolicyScript::generic();
        let d = p.run(&input(reason::EXCEPTION, 2));
        assert_eq!(d.alerts.len(), 1);
        assert!(d.alerts[0].contains("eth.rtl8139"));
        assert!(d.alerts[0].contains("exception"));
        assert!(d.alerts[0].contains("admin@example.org"));
        // No param -> no alert.
        let mut i2 = input(reason::EXCEPTION, 2);
        i2.params.clear();
        assert!(p.run(&i2).alerts.is_empty());
    }

    #[test]
    fn direct_restart_has_no_delay() {
        let p = PolicyScript::direct_restart();
        let d = p.run(&input(reason::KILLED, 7));
        assert!(d.restart);
        assert_eq!(d.delay, SimDuration::ZERO);
    }

    #[test]
    fn give_up_after_too_many_failures() {
        let src = r#"
if repetition > 3 then
    alert "giving up on $component"
    give-up
else
    restart
end
"#;
        let p = PolicyScript::parse(src).unwrap();
        assert!(p.run(&input(reason::EXIT, 2)).restart);
        let d = p.run(&input(reason::EXIT, 4));
        assert!(!d.restart);
        assert!(d.gave_up);
        assert_eq!(d.alerts, vec!["giving up on eth.rtl8139".to_string()]);
    }

    #[test]
    fn dedicated_network_server_policy_restarts_dependents() {
        // §5.2: recovering the network server requires restarting the
        // DHCP client (and the X server, in the paper's example).
        let src = r#"
restart
restart-component dhcpd
log "restarted network stack for $component"
"#;
        let p = PolicyScript::parse(src).unwrap();
        let d = p.run(&input(reason::EXIT, 1));
        assert_eq!(d.restart_components, vec!["dhcpd".to_string()]);
        assert_eq!(d.logs.len(), 1);
    }

    #[test]
    fn reboot_policy() {
        let src = "if repetition >= 10 then\n reboot\nelse\n restart\nend\n";
        let p = PolicyScript::parse(src).unwrap();
        assert!(p.run(&input(reason::EXIT, 10)).reboot);
        assert!(!p.run(&input(reason::EXIT, 9)).reboot);
    }

    #[test]
    fn sleep_with_plain_integer_means_seconds() {
        let p = PolicyScript::parse("sleep 3\nrestart\n").unwrap();
        assert_eq!(
            p.run(&input(reason::EXIT, 1)).delay,
            SimDuration::from_secs(3)
        );
    }

    #[test]
    fn restart_pinned_version() {
        let p = PolicyScript::parse("restart version = 2\n").unwrap();
        assert_eq!(p.run(&input(reason::EXIT, 1)).version, Some(2));
    }

    #[test]
    fn backoff_is_capped() {
        let p = PolicyScript::parse("sleep backoff(1s)\nrestart\n").unwrap();
        let d = p.run(&input(reason::EXIT, 40));
        assert_eq!(
            d.delay,
            SimDuration::from_secs(128),
            "capped at 7 doublings"
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = PolicyScript::parse("restart\nfrobnicate\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("frobnicate"));
        let err = PolicyScript::parse("if reason != exit then\nrestart\n").unwrap_err();
        assert!(err.message.contains("missing"));
        let err = PolicyScript::parse("alert unquoted\n").unwrap_err();
        assert!(err.message.contains("quoted"));
        let err = PolicyScript::parse("sleep backoff(zzz)\n").unwrap_err();
        assert!(err.message.contains("duration"));
    }

    #[test]
    fn bad_backoff_durations_are_rejected() {
        // Every malformed duration must fail at parse time, not silently
        // become a zero delay at recovery time.
        for bad in [
            "sleep backoff(zzz)\n",
            "sleep backoff(1x)\n",   // unknown unit
            "sleep backoff(s)\n",    // missing number
            "sleep backoff(-1s)\n",  // negative
            "sleep backoff(1.5s)\n", // fractional
            "sleep backoff()\n",     // empty
        ] {
            let err = PolicyScript::parse(bad).unwrap_err();
            assert_eq!(err.line, 1, "{bad:?}");
            assert!(
                err.message.contains("duration") || err.message.contains("argument"),
                "{bad:?} -> {}",
                err.message
            );
        }
        // `backoff` without parentheses is not a value either.
        assert!(PolicyScript::parse("sleep backoff\n").is_err());
    }

    #[test]
    fn unknown_keywords_are_rejected_with_the_offender_named() {
        // Statement position.
        let err = PolicyScript::parse("restart\nexplode\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("explode"));
        // Expression position.
        let err = PolicyScript::parse("if bogus == 1 then\nrestart\nend\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("bogus"));
        // Garbage after a known statement.
        let err = PolicyScript::parse("restart twice\n").unwrap_err();
        assert!(err.message.contains("twice"));
    }

    #[test]
    fn truncated_scripts_are_rejected() {
        // `if` without its `end`.
        let err = PolicyScript::parse("if reason != exit then\nrestart\n").unwrap_err();
        assert!(err.message.contains("missing"));
        // `else` branch cut off mid-block.
        let err =
            PolicyScript::parse("if reason == exit then\nrestart\nelse\ngive-up\n").unwrap_err();
        assert!(err.message.contains("missing `end`"));
        // Header itself truncated: no `then`.
        let err = PolicyScript::parse("if reason != exit\nrestart\nend\n").unwrap_err();
        assert!(err.message.contains("then"));
        // Comparison cut off after the operator.
        let err = PolicyScript::parse("if reason !=\nrestart\nend\n").unwrap_err();
        assert!(err.message.contains("expression"));
        // A lone `end` with no opener is also an unknown statement.
        assert!(PolicyScript::parse("end\n").is_err());
    }

    #[test]
    fn bad_param_references_are_rejected() {
        let err = PolicyScript::parse("if param(0) != \"\" then\nrestart\nend\n").unwrap_err();
        assert!(err.message.contains("start at 1"));
        let err = PolicyScript::parse("if param(x) != \"\" then\nrestart\nend\n").unwrap_err();
        assert!(err.message.contains("integer"));
    }

    #[test]
    fn tokenizer_handles_dense_syntax() {
        let p = PolicyScript::parse("if reason!=update then\nrestart\nend\n").unwrap();
        let d = p.run(&input(reason::EXIT, 1));
        assert!(d.restart);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = PolicyScript::parse("alert \"oops\n").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn backoff_respects_live_overrides() {
        let p = PolicyScript::parse("sleep backoff(1s)\nrestart\n").unwrap();
        let mut i = input(reason::EXIT, 4);
        i.backoff_base = Some(SimDuration::from_millis(100));
        i.backoff_cap = Some(2);
        // base 100ms, shift min(3, 2) = 2 -> 400ms.
        assert_eq!(p.run(&i).delay, SimDuration::from_millis(400));
        // The override only changes backoff(), not literal sleeps.
        let lit = PolicyScript::parse("sleep 500ms\nrestart\n").unwrap();
        assert_eq!(lit.run(&i).delay, SimDuration::from_millis(500));
    }

    #[test]
    fn baseline_params_match_the_historical_constants() {
        let p = PolicyParams::BASELINE;
        assert_eq!(p.heartbeat_period, SimDuration::from_secs(1));
        assert_eq!(p.heartbeat_misses, 3);
        assert_eq!(p.backoff_base, SimDuration::from_secs(1));
        assert_eq!(p.backoff_cap, 7);
        assert_eq!(p.restart_budget, 10);
        assert_eq!(p.budget_window, SimDuration::from_secs(30));
        assert_eq!(p.complaint_window, SimDuration::from_secs(2));
        assert_eq!(p.quorum_complaints, 3);
        assert_eq!(p.quorum_accusers, 2);
        assert_eq!(p.inversion_accused, 3);
        assert_eq!(PolicyParams::default(), p);
    }

    #[test]
    fn adapt_script_round_trips() {
        let src = r#"
# self-tuning policy: tighten heartbeats when flappy, widen the budget
# window under correlated chaos, keep backoff bounded.
adapt heartbeat_period when failures >= 3 halve else double clamp 250ms 2s
adapt budget_window when failures >= 5 add 5s else sub 1s clamp 10s 120s
adapt backoff_cap when mttr_p95 > 500 sub 1 else add 1 clamp 2 7
adapt quorum_complaints when complaints > 8 add 1 else hold clamp 2 6
if reason != update then
    sleep backoff(1s)
end
restart
"#;
        let p = PolicyScript::parse(src).unwrap();
        let rules = p.adapt_rules();
        assert_eq!(rules.len(), 4);
        assert_eq!(rules[0].param, AdaptParam::HeartbeatPeriod);
        assert_eq!(rules[0].signal, AdaptSignal::Failures);
        assert_eq!(rules[0].clamp_band(), (250_000, 2_000_000));
        assert_eq!(rules[0].line, 4);
        assert_eq!(rules[1].param, AdaptParam::BudgetWindow);
        assert_eq!(rules[1].clamp_band(), (10_000_000, 120_000_000));
        assert_eq!(rules[2].param, AdaptParam::BackoffCap);
        assert_eq!(rules[2].signal, AdaptSignal::MttrP95Ms);
        assert_eq!(rules[2].clamp_band(), (2, 7));
        assert_eq!(rules[3].param, AdaptParam::QuorumComplaints);
        assert_eq!(rules[3].signal, AdaptSignal::Complaints);
        // The per-failure decision path is untouched by adapt rules.
        let d = p.run(&input(reason::EXIT, 1));
        assert!(d.restart);
        assert_eq!(d.delay, SimDuration::from_secs(1));
    }

    #[test]
    fn adapt_controller_steps_stay_inside_the_clamp_band() {
        let src =
            "adapt heartbeat_period when failures >= 3 halve else double clamp 250ms 2s\nrestart\n";
        let p = PolicyScript::parse(src).unwrap();
        let rule = &p.adapt_rules()[0];
        let mut params = PolicyParams::BASELINE;
        // Hot: halve repeatedly; pins at the lower bound, then reports
        // no further change.
        assert_eq!(rule.step(5, &mut params), Some(500_000));
        assert_eq!(rule.step(5, &mut params), Some(250_000));
        assert_eq!(rule.step(5, &mut params), None);
        assert_eq!(params.heartbeat_period, SimDuration::from_millis(250));
        // Cold: double back up; pins at the upper bound.
        assert_eq!(rule.step(0, &mut params), Some(500_000));
        assert_eq!(rule.step(0, &mut params), Some(1_000_000));
        assert_eq!(rule.step(0, &mut params), Some(2_000_000));
        assert_eq!(rule.step(0, &mut params), None);
        assert_eq!(params.heartbeat_period, SimDuration::from_secs(2));
        // add/sub actions clamp the same way.
        let p2 = PolicyScript::parse(
            "adapt restart_budget when failures >= 4 add 25 else sub 25 clamp 5 40\nrestart\n",
        )
        .unwrap();
        let rule2 = &p2.adapt_rules()[0];
        assert_eq!(rule2.step(9, &mut params), Some(35));
        assert_eq!(rule2.step(9, &mut params), Some(40), "clamped to hi");
        assert_eq!(rule2.step(0, &mut params), Some(15));
        assert_eq!(rule2.step(0, &mut params), Some(5), "clamped to lo");
        assert_eq!(params.restart_budget, 5);
    }

    #[test]
    fn adapt_red_paths_carry_line_numbers() {
        for (src, line, needle) in [
            (
                "restart\nadapt flux_capacitor when failures > 3 halve else hold clamp 1 2\n",
                2,
                "flux_capacitor",
            ),
            (
                "adapt heartbeat_period if failures > 3 halve else hold clamp 1ms 2ms\n",
                1,
                "`when`",
            ),
            (
                "adapt heartbeat_period when vibes > 3 halve else hold clamp 1ms 2ms\n",
                1,
                "vibes",
            ),
            (
                "adapt heartbeat_period when failures halve else hold clamp 1ms 2ms\n",
                1,
                "comparison",
            ),
            (
                "adapt heartbeat_period when failures > fast halve else hold clamp 1ms 2ms\n",
                1,
                "integer",
            ),
            (
                "adapt heartbeat_period when failures > 3 explode else hold clamp 1ms 2ms\n",
                1,
                "action",
            ),
            (
                "adapt heartbeat_period when failures > 3 halve hold clamp 1ms 2ms\n",
                1,
                "`else`",
            ),
            (
                "adapt heartbeat_period when failures > 3 halve else hold\n",
                1,
                "clamp",
            ),
            (
                "adapt heartbeat_period when failures > 3 halve else hold clamp 5 2s\n",
                1,
                "duration",
            ),
            (
                "adapt restart_budget when failures > 3 add 5 else sub 1 clamp 1s 9\n",
                1,
                "integer",
            ),
            (
                "adapt restart_budget when failures > 3 add 2s else sub 1 clamp 1 9\n",
                1,
                "integer",
            ),
            (
                "adapt heartbeat_period when failures > 3 halve else hold clamp 2s 250ms\n",
                1,
                "exceeds",
            ),
            (
                "adapt restart_budget when failures > 3 add 1 else hold clamp 0 9\n",
                1,
                "positive",
            ),
            (
                "adapt heartbeat_period when failures > 3 halve else hold clamp 250ms 2s extra\n",
                1,
                "trailing",
            ),
        ] {
            let err = PolicyScript::parse(src).unwrap_err();
            assert_eq!(err.line, line, "{src:?}");
            assert!(err.message.contains(needle), "{src:?} -> {}", err.message);
        }
    }

    #[test]
    fn adapt_is_rejected_inside_if_blocks() {
        let src = "if reason == exit then\nadapt heartbeat_period when failures > 3 halve else hold clamp 250ms 2s\nend\nrestart\n";
        let err = PolicyScript::parse(src).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("top level"));
    }

    #[test]
    fn reason_names_map_to_section_5_1_numbers() {
        assert_eq!(reason::EXIT, 1);
        assert_eq!(reason::EXCEPTION, 2);
        assert_eq!(reason::KILLED, 3);
        assert_eq!(reason::HEARTBEAT, 4);
        assert_eq!(reason::COMPLAINT, 5);
        assert_eq!(reason::UPDATE, 6);
        assert_eq!(reason::name(4), "heartbeat");
    }
}
// [recovery:end]
