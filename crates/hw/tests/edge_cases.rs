//! Device-model edge cases: ring overflow, ring wrap, wire loss, and the
//! wedge/hard-reset lifecycle.

use std::cell::RefCell;
use std::rc::Rc;

use phoenix_hw::bus::{wire_to_host_channel, Bus, WireConfig};
use phoenix_hw::dp8390::{self, Dp8390, Dp8390Config};
use phoenix_hw::rtl8139::{self, Rtl8139, Rtl8139Config};
use phoenix_hw::{PeerCtx, RemotePeer};
use phoenix_kernel::privileges::{KernelCall, Privileges};
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::{Ctx, System, SystemConfig};
use phoenix_kernel::types::DeviceId;
use phoenix_simcore::time::SimDuration;

type Hook = Box<dyn FnMut(&mut Ctx<'_>, &ProcEvent)>;

struct Probe {
    hook: Hook,
}
impl Process for Probe {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        (self.hook)(ctx, &event);
    }
}

const DEV: DeviceId = DeviceId(1);
const IRQ: u8 = 4;

struct Quiet;
impl RemotePeer for Quiet {
    fn frame_from_host(&mut self, _: &mut PeerCtx<'_, '_>, _: &[u8]) {}
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn inject_frames(sys: &mut System, n: usize, size: usize) {
    for i in 0..n {
        sys.schedule_external(
            SimDuration::from_micros(10 + i as u64),
            wire_to_host_channel(DEV),
            vec![0xAB; size],
        );
    }
}

#[test]
fn rtl8139_ring_overflow_drops_and_flags_rer() {
    // Configure the card but never advance CAPR: the ring fills and the
    // device must drop with an RER indication instead of overwriting.
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    bus.add_device(DEV, IRQ, Box::new(Rtl8139::new(Rtl8139Config::default())));
    bus.attach_peer(DEV, WireConfig::default(), Box::new(Quiet));
    let saw_rer = Rc::new(RefCell::new(false));
    let sr = saw_rer.clone();
    sys.spawn_boot(
        "drv",
        Privileges::driver(DEV, IRQ),
        Box::new(Probe {
            hook: Box::new(move |ctx, ev| match ev {
                ProcEvent::Start => {
                    ctx.irq_enable(IRQ).unwrap();
                    ctx.devio_write(DEV, rtl8139::regs::CR, rtl8139::cr::RST)
                        .unwrap();
                    ctx.iommu_map(DEV, 0, 0, rtl8139::RX_RING_LEN).unwrap();
                    ctx.devio_write(DEV, rtl8139::regs::RBSTART, 0).unwrap();
                    ctx.devio_write(DEV, rtl8139::regs::RCR, rtl8139::rcr::AAP)
                        .unwrap();
                    ctx.devio_write(DEV, rtl8139::regs::IMR, 0xFFFF).unwrap();
                    ctx.devio_write(DEV, rtl8139::regs::CR, rtl8139::cr::RE)
                        .unwrap();
                }
                ProcEvent::Irq { .. } => {
                    let isr = ctx.devio_read(DEV, rtl8139::regs::ISR).unwrap();
                    ctx.devio_write(DEV, rtl8139::regs::ISR, isr).unwrap();
                    if isr & rtl8139::isr::RER != 0 {
                        *sr.borrow_mut() = true;
                    }
                    // Deliberately never advance CAPR.
                }
                _ => {}
            }),
        }),
    );
    // 64 KB ring; 1500-byte frames + headers fill it after ~43 frames.
    inject_frames(&mut sys, 60, 1500);
    sys.run_until_idle(&mut bus, 5000);
    let nic: &mut Rtl8139 = bus.device_mut(DEV).unwrap();
    assert!(nic.rx_dropped() > 0, "overflow must drop");
    assert!(
        nic.rx_ok() > 30,
        "most frames landed before the ring filled"
    );
    assert!(*saw_rer.borrow(), "driver saw the RER indication");
}

#[test]
fn dp8390_ring_wraps_and_preserves_frames() {
    // Read frames through the ring long enough to wrap PSTOP->PSTART and
    // verify payload integrity across the wrap.
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    bus.add_device(DEV, IRQ, Box::new(Dp8390::new(Dp8390Config::default())));
    bus.attach_peer(DEV, WireConfig::default(), Box::new(Quiet));
    let frames: Rc<RefCell<Vec<Vec<u8>>>> = Rc::new(RefCell::new(Vec::new()));
    let fr = frames.clone();
    sys.spawn_boot(
        "drv",
        Privileges::driver(DEV, IRQ),
        Box::new(Probe {
            hook: Box::new(move |ctx, ev| {
                use dp8390::{cr, regs};
                match ev {
                    ProcEvent::Start => {
                        ctx.irq_enable(IRQ).unwrap();
                        ctx.devio_write(DEV, regs::CR, cr::RST).unwrap();
                        // A deliberately tiny ring: pages 16..24 (2 KB).
                        ctx.devio_write(DEV, regs::PSTART, 16).unwrap();
                        ctx.devio_write(DEV, regs::PSTOP, 24).unwrap();
                        ctx.devio_write(DEV, regs::BNRY, 16).unwrap();
                        ctx.devio_write(DEV, regs::CURR, 16).unwrap();
                        ctx.devio_write(DEV, regs::IMR, 0xFF).unwrap();
                        ctx.devio_write(DEV, regs::RCR, dp8390::rcr::PRO).unwrap();
                        ctx.devio_write(DEV, regs::CR, cr::STA).unwrap();
                    }
                    ProcEvent::Irq { .. } => {
                        let isr = ctx.devio_read(DEV, regs::ISR).unwrap();
                        ctx.devio_write(DEV, regs::ISR, isr).unwrap();
                        // Drain: read header + payload via remote DMA.
                        loop {
                            let curr = ctx.devio_read(DEV, regs::CURR).unwrap() as u8;
                            let bnry = ctx.devio_read(DEV, regs::BNRY).unwrap() as u8;
                            if curr == bnry {
                                break;
                            }
                            let addr = u16::from(bnry) * 256;
                            ctx.devio_write(DEV, regs::RSAR0, u32::from(addr & 0xFF))
                                .unwrap();
                            ctx.devio_write(DEV, regs::RSAR1, u32::from(addr >> 8))
                                .unwrap();
                            ctx.devio_write(DEV, regs::RBCR0, 4).unwrap();
                            ctx.devio_write(DEV, regs::RBCR1, 0).unwrap();
                            ctx.devio_write(DEV, regs::CR, cr::STA | cr::RD_READ)
                                .unwrap();
                            let hdr = ctx.devio_read_block(DEV, regs::DATA, 4).unwrap();
                            let next = hdr[1];
                            let total = usize::from(u16::from_le_bytes([hdr[2], hdr[3]]));
                            let len = total - 4;
                            // Payload (may wrap at PSTOP).
                            let pstart = 16u16;
                            let pstop = 24u16;
                            let pay_addr = addr + 4;
                            let end = pstop * 256;
                            let frame = if pay_addr + len as u16 <= end {
                                ctx.devio_write(DEV, regs::RSAR0, u32::from(pay_addr & 0xFF))
                                    .unwrap();
                                ctx.devio_write(DEV, regs::RSAR1, u32::from(pay_addr >> 8))
                                    .unwrap();
                                ctx.devio_write(DEV, regs::RBCR0, (len & 0xFF) as u32)
                                    .unwrap();
                                ctx.devio_write(DEV, regs::RBCR1, (len >> 8) as u32)
                                    .unwrap();
                                ctx.devio_write(DEV, regs::CR, cr::STA | cr::RD_READ)
                                    .unwrap();
                                ctx.devio_read_block(DEV, regs::DATA, len).unwrap()
                            } else {
                                let first = usize::from(end - pay_addr);
                                ctx.devio_write(DEV, regs::RSAR0, u32::from(pay_addr & 0xFF))
                                    .unwrap();
                                ctx.devio_write(DEV, regs::RSAR1, u32::from(pay_addr >> 8))
                                    .unwrap();
                                ctx.devio_write(DEV, regs::RBCR0, (first & 0xFF) as u32)
                                    .unwrap();
                                ctx.devio_write(DEV, regs::RBCR1, (first >> 8) as u32)
                                    .unwrap();
                                ctx.devio_write(DEV, regs::CR, cr::STA | cr::RD_READ)
                                    .unwrap();
                                let mut v = ctx.devio_read_block(DEV, regs::DATA, first).unwrap();
                                let rest = len - first;
                                let base = pstart * 256;
                                ctx.devio_write(DEV, regs::RSAR0, u32::from(base & 0xFF))
                                    .unwrap();
                                ctx.devio_write(DEV, regs::RSAR1, u32::from(base >> 8))
                                    .unwrap();
                                ctx.devio_write(DEV, regs::RBCR0, (rest & 0xFF) as u32)
                                    .unwrap();
                                ctx.devio_write(DEV, regs::RBCR1, (rest >> 8) as u32)
                                    .unwrap();
                                ctx.devio_write(DEV, regs::CR, cr::STA | cr::RD_READ)
                                    .unwrap();
                                v.extend(ctx.devio_read_block(DEV, regs::DATA, rest).unwrap());
                                v
                            };
                            fr.borrow_mut().push(frame);
                            ctx.devio_write(DEV, regs::BNRY, u32::from(next)).unwrap();
                        }
                    }
                    _ => {}
                }
            }),
        }),
    );
    // 12 frames of 500 bytes through a 2 KB ring: multiple wraps, but the
    // driver drains between arrivals (1 ms apart).
    for i in 0..12 {
        sys.schedule_external(
            SimDuration::from_millis(1 + i as u64),
            wire_to_host_channel(DEV),
            vec![i as u8; 500],
        );
    }
    sys.run_until_idle(&mut bus, 20_000);
    let got = frames.borrow();
    assert_eq!(got.len(), 12, "all frames received across ring wraps");
    for (i, f) in got.iter().enumerate() {
        assert_eq!(f.len(), 500);
        assert!(
            f.iter().all(|&b| b == i as u8),
            "frame {i} intact across wrap"
        );
    }
}

#[test]
fn lossy_wire_statistics_are_plausible() {
    // At 30% loss, roughly 30% of 400 injected frames vanish en route to
    // the peer. (Deterministic for a given seed.)
    struct Count {
        n: usize,
    }
    impl RemotePeer for Count {
        fn frame_from_host(&mut self, _: &mut PeerCtx<'_, '_>, _: &[u8]) {
            self.n += 1;
        }
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    bus.add_device(DEV, IRQ, Box::new(Rtl8139::new(Rtl8139Config::default())));
    bus.attach_peer(
        DEV,
        WireConfig {
            latency: SimDuration::from_micros(100),
            loss_prob: 0.3,
        },
        Box::new(Count { n: 0 }),
    );
    sys.spawn_boot(
        "drv",
        // This probe paces itself with alarms on top of the driver baseline.
        Privileges::driver(DEV, IRQ).with_calls([
            KernelCall::Devio,
            KernelCall::IrqCtl,
            KernelCall::IommuMap,
            KernelCall::SetAlarm,
        ]),
        Box::new(Probe {
            hook: Box::new(move |ctx, ev| match ev {
                ProcEvent::Start => {
                    ctx.devio_write(DEV, rtl8139::regs::CR, rtl8139::cr::RST)
                        .unwrap();
                    ctx.iommu_map(DEV, 0, 0, rtl8139::RX_RING_LEN + 2048)
                        .unwrap();
                    ctx.devio_write(DEV, rtl8139::regs::CR, rtl8139::cr::TE)
                        .unwrap();
                    ctx.mem_write(rtl8139::RX_RING_LEN, &[9u8; 64]).unwrap();
                    ctx.devio_write(DEV, rtl8139::regs::TSAD0, rtl8139::RX_RING_LEN as u32)
                        .unwrap();
                    ctx.set_alarm(SimDuration::from_micros(50), 0).unwrap();
                }
                ProcEvent::Alarm { token } if *token < 400 => {
                    ctx.devio_write(DEV, rtl8139::regs::TSD0, 64).unwrap();
                    ctx.set_alarm(SimDuration::from_micros(50), token + 1)
                        .unwrap();
                }
                _ => {}
            }),
        }),
    );
    sys.run_until_idle(&mut bus, 100_000);
    let peer: &mut Count = bus.peer_mut(DEV).unwrap();
    let arrived = peer.n;
    assert!(
        (220..=340).contains(&arrived),
        "~70% of 400 frames should arrive, got {arrived}"
    );
}

#[test]
fn wedged_dp8390_survives_soft_reset_until_hard_reset() {
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    bus.add_device(DEV, IRQ, Box::new(Dp8390::new(Dp8390Config::default())));
    {
        let nic: &mut Dp8390 = bus.device_mut(DEV).unwrap();
        nic.force_wedge();
        assert!(nic.is_wedged());
    }
    let reset_worked = Rc::new(RefCell::new(None));
    let rw = reset_worked.clone();
    sys.spawn_boot(
        "drv",
        Privileges::driver(DEV, IRQ),
        Box::new(Probe {
            hook: Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.devio_write(DEV, dp8390::regs::CR, dp8390::cr::RST)
                        .unwrap();
                    let cr = ctx.devio_read(DEV, dp8390::regs::CR).unwrap();
                    *rw.borrow_mut() = Some(cr & dp8390::cr::RST == 0);
                }
            }),
        }),
    );
    sys.run_until_idle(&mut bus, 100);
    assert_eq!(
        *reset_worked.borrow(),
        Some(false),
        "soft reset fails while wedged"
    );
    bus.hard_reset(DEV);
    let nic: &mut Dp8390 = bus.device_mut(DEV).unwrap();
    assert!(!nic.is_wedged(), "BIOS-level reset clears the wedge");
}
