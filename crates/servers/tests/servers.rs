//! Server-level integration tests: the data store, reincarnation server
//! and transport exercised against the real kernel with purpose-built
//! probe processes.

use std::cell::RefCell;
use std::rc::Rc;

use phoenix_kernel::platform::NullPlatform;
use phoenix_kernel::privileges::Privileges;
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::{Ctx, System, SystemConfig};
use phoenix_kernel::types::{Endpoint, Message, Signal};
use phoenix_servers::ds::ds_status;
use phoenix_servers::policy::PolicyScript;
use phoenix_servers::proto::{ds, pack_endpoint, rs as rsp, unpack_endpoint};
use phoenix_servers::rs::{ReincarnationServer, ServiceConfig};
use phoenix_servers::{DataStore, ProcessManager};
use phoenix_simcore::time::SimTime;

type Hook = Box<dyn FnMut(&mut Ctx<'_>, &ProcEvent)>;

struct Probe {
    hook: Hook,
}

impl Process for Probe {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        (self.hook)(ctx, &event);
    }
}

fn probe(sys: &mut System, name: &str, hook: Hook) -> Endpoint {
    sys.spawn_boot(name, Privileges::server(), Box::new(Probe { hook }))
}

fn run(sys: &mut System) {
    sys.run_until_idle(&mut NullPlatform, 10_000);
}

// ---------------------------------------------------------------------
// Data store
// ---------------------------------------------------------------------

#[test]
fn ds_lookup_after_publish() {
    let mut sys = System::new(SystemConfig::default());
    let dse = sys.spawn_boot("ds", Privileges::server(), Box::new(DataStore::new()));
    let target = Endpoint::new(9, 3);
    let looked_up: Rc<RefCell<Option<Endpoint>>> = Rc::new(RefCell::new(None));
    let lu = looked_up.clone();
    let mut step = 0;
    probe(
        &mut sys,
        "rs", // first publisher becomes the trusted publisher
        Box::new(move |ctx, ev| match ev {
            ProcEvent::Start => {
                let (s, g) = pack_endpoint(target);
                let _ = ctx.sendrec(
                    dse,
                    Message::new(ds::PUBLISH)
                        .with_param(0, s)
                        .with_param(1, g)
                        .with_data(b"eth.rtl8139".to_vec()),
                );
            }
            ProcEvent::Reply {
                result: Ok(reply), ..
            } => {
                step += 1;
                if step == 1 {
                    assert_eq!(reply.param(0), ds_status::OK);
                    let _ = ctx.sendrec(
                        dse,
                        Message::new(ds::LOOKUP).with_data(b"eth.rtl8139".to_vec()),
                    );
                } else {
                    assert_eq!(reply.mtype, ds::LOOKUP_REPLY);
                    assert_eq!(reply.param(0), ds_status::OK);
                    *lu.borrow_mut() = Some(unpack_endpoint(reply.param(1), reply.param(2)));
                }
            }
            _ => {}
        }),
    );
    run(&mut sys);
    assert_eq!(*looked_up.borrow(), Some(target));
}

#[test]
fn ds_non_publisher_is_denied() {
    let mut sys = System::new(SystemConfig::default());
    let dse = sys.spawn_boot("ds", Privileges::server(), Box::new(DataStore::new()));
    let outcome: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let oc = outcome.clone();
    // First publisher claims the role...
    probe(
        &mut sys,
        "rs",
        Box::new(move |ctx, ev| {
            if matches!(ev, ProcEvent::Start) {
                let _ = ctx.sendrec(dse, Message::new(ds::PUBLISH).with_data(b"a".to_vec()));
            }
        }),
    );
    run(&mut sys);
    // ...then an impostor tries to publish and to retract.
    probe(
        &mut sys,
        "impostor",
        Box::new(move |ctx, ev| match ev {
            ProcEvent::Start => {
                let _ = ctx.sendrec(dse, Message::new(ds::PUBLISH).with_data(b"evil".to_vec()));
                let _ = ctx.sendrec(dse, Message::new(ds::RETRACT).with_data(b"a".to_vec()));
            }
            ProcEvent::Reply {
                result: Ok(reply), ..
            } => {
                oc.borrow_mut().push(reply.param(0));
            }
            _ => {}
        }),
    );
    run(&mut sys);
    assert_eq!(
        outcome.borrow().as_slice(),
        &[ds_status::DENIED, ds_status::DENIED]
    );
}

#[test]
fn ds_subscription_replays_existing_and_delivers_updates() {
    let mut sys = System::new(SystemConfig::default());
    let dse = sys.spawn_boot("ds", Privileges::server(), Box::new(DataStore::new()));
    let seen: Rc<RefCell<Vec<(String, Endpoint)>>> = Rc::new(RefCell::new(Vec::new()));
    // Publisher publishes BEFORE the subscriber exists.
    let e1 = Endpoint::new(5, 1);
    probe(
        &mut sys,
        "rs",
        Box::new(move |ctx, ev| {
            if matches!(ev, ProcEvent::Start) {
                let (s, g) = pack_endpoint(e1);
                let _ = ctx.sendrec(
                    dse,
                    Message::new(ds::PUBLISH)
                        .with_param(0, s)
                        .with_param(1, g)
                        .with_data(b"eth.one".to_vec()),
                );
            }
        }),
    );
    run(&mut sys);
    let sc = seen.clone();
    let sub = probe(
        &mut sys,
        "inet",
        Box::new(move |ctx, ev| match ev {
            ProcEvent::Start => {
                let _ = ctx.sendrec(
                    dse,
                    Message::new(ds::SUBSCRIBE).with_data(b"eth.*".to_vec()),
                );
            }
            ProcEvent::Notify { .. } => {
                let _ = ctx.sendrec(dse, Message::new(ds::CHECK));
            }
            ProcEvent::Reply {
                result: Ok(reply), ..
            } if reply.mtype == ds::CHECK_REPLY && reply.param(0) == ds_status::OK => {
                sc.borrow_mut().push((
                    String::from_utf8_lossy(&reply.data).to_string(),
                    unpack_endpoint(reply.param(1), reply.param(2)),
                ));
                let _ = ctx.sendrec(dse, Message::new(ds::CHECK));
            }
            _ => {}
        }),
    );
    let _ = sub;
    run(&mut sys);
    assert_eq!(
        seen.borrow().as_slice(),
        &[("eth.one".to_string(), e1)],
        "pre-existing record replayed on subscribe"
    );
}

#[test]
fn ds_store_requires_published_name_and_enforces_ownership() {
    let mut sys = System::new(SystemConfig::default());
    let dse = sys.spawn_boot("ds", Privileges::server(), Box::new(DataStore::new()));
    let results: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));

    // An unpublished component may not store.
    let rc = results.clone();
    probe(
        &mut sys,
        "anon",
        Box::new(move |ctx, ev| match ev {
            ProcEvent::Start => {
                let mut data = b"k".to_vec();
                data.extend_from_slice(b"v");
                let _ = ctx.sendrec(
                    dse,
                    Message::new(ds::STORE).with_param(0, 1).with_data(data),
                );
            }
            ProcEvent::Reply {
                result: Ok(reply), ..
            } => rc.borrow_mut().push(reply.param(0)),
            _ => {}
        }),
    );
    run(&mut sys);
    assert_eq!(results.borrow().as_slice(), &[ds_status::NOT_OWNER]);
}

// ---------------------------------------------------------------------
// Reincarnation server
// ---------------------------------------------------------------------

struct NullService;
impl Process for NullService {
    fn on_event(&mut self, _ctx: &mut Ctx<'_>, _event: ProcEvent) {}
}

fn boot_rs(sys: &mut System, services: Vec<ServiceConfig>) -> Endpoint {
    let pm = sys.spawn_boot(
        "pm",
        Privileges::process_manager(),
        Box::new(ProcessManager::new()),
    );
    let dse = sys.spawn_boot("ds", Privileges::server(), Box::new(DataStore::new()));
    sys.spawn_boot(
        "rs",
        Privileges::reincarnation_server(),
        Box::new(ReincarnationServer::new(
            pm,
            dse,
            services,
            vec!["complainer".to_string()],
        )),
    )
}

fn svc(name: &str, policy: PolicyScript) -> ServiceConfig {
    ServiceConfig::driver(name, name)
        .with_policy(policy)
        .without_heartbeat()
}

#[test]
fn rs_policy_restarts_dependent_components() {
    // §5.2's network-server example: recovering one component requires
    // restarting its dependents (DHCP client, X server). Here `inetd`'s
    // policy restarts `dhcpd` whenever inetd recovers.
    let mut sys = System::new(SystemConfig::default());
    let policy = PolicyScript::parse("restart\nrestart-component dhcpd\n").unwrap();
    let services = vec![
        svc("inetd", policy),
        svc("dhcpd", PolicyScript::direct_restart()),
    ];
    boot_rs(&mut sys, services);
    sys.register_program(
        "inetd",
        Privileges::server(),
        Box::new(|| Box::new(NullService)),
    );
    sys.register_program(
        "dhcpd",
        Privileges::server(),
        Box::new(|| Box::new(NullService)),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(100_000));
    let inetd0 = sys.endpoint_by_name("inetd").unwrap();
    let dhcpd0 = sys.endpoint_by_name("dhcpd").unwrap();
    sys.kill_by_user(inetd0, Signal::Kill);
    sys.run_until(&mut NullPlatform, SimTime::from_micros(400_000));
    let inetd1 = sys.endpoint_by_name("inetd").unwrap();
    let dhcpd1 = sys.endpoint_by_name("dhcpd").unwrap();
    assert_ne!(inetd0, inetd1, "inetd restarted");
    assert_ne!(dhcpd0, dhcpd1, "dependent dhcpd restarted too");
    assert_eq!(sys.metrics().counter("rs.recoveries"), 2);
}

#[test]
fn rs_rejects_complaints_from_unauthorized_sources() {
    let mut sys = System::new(SystemConfig::default());
    let services = vec![svc("victim", PolicyScript::direct_restart())];
    let rs = boot_rs(&mut sys, services);
    sys.register_program(
        "victim",
        Privileges::server(),
        Box::new(|| Box::new(NullService)),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(100_000));
    let victim0 = sys.endpoint_by_name("victim").unwrap();
    let st: Rc<RefCell<Option<u64>>> = Rc::new(RefCell::new(None));
    let st2 = st.clone();
    probe(
        &mut sys,
        "rando",
        Box::new(move |ctx, ev| match ev {
            ProcEvent::Start => {
                let _ = ctx.sendrec(
                    rs,
                    Message::new(rsp::COMPLAIN).with_data(b"victim".to_vec()),
                );
            }
            ProcEvent::Reply {
                result: Ok(reply), ..
            } => {
                *st2.borrow_mut() = Some(reply.param(0));
            }
            _ => {}
        }),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(400_000));
    assert_eq!(*st.borrow(), Some(13), "EACCES");
    assert_eq!(
        sys.endpoint_by_name("victim"),
        Some(victim0),
        "victim untouched by unauthorized complaint"
    );
}

#[test]
fn rs_accepts_complaints_from_authorized_complainants() {
    let mut sys = System::new(SystemConfig::default());
    let services = vec![
        svc("victim", PolicyScript::direct_restart()),
        svc("complainer", PolicyScript::direct_restart()),
    ];
    let rs = boot_rs(&mut sys, services);
    sys.register_program(
        "victim",
        Privileges::server(),
        Box::new(|| Box::new(NullService)),
    );
    // The complainer files a complaint when poked.
    sys.register_program(
        "complainer",
        Privileges::server(),
        Box::new(move || {
            Box::new(Probe {
                hook: Box::new(move |ctx, ev| {
                    if matches!(ev, ProcEvent::Notify { .. }) {
                        let _ = ctx.sendrec(
                            rs,
                            Message::new(rsp::COMPLAIN).with_data(b"victim".to_vec()),
                        );
                    }
                }),
            })
        }),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(100_000));
    let victim0 = sys.endpoint_by_name("victim").unwrap();
    let complainer = sys.endpoint_by_name("complainer").unwrap();
    probe(
        &mut sys,
        "poker",
        Box::new(move |ctx, ev| {
            if matches!(ev, ProcEvent::Start) {
                let _ = ctx.notify(complainer);
            }
        }),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(500_000));
    assert_ne!(
        sys.endpoint_by_name("victim"),
        Some(victim0),
        "victim replaced"
    );
    assert_eq!(sys.metrics().counter("rs.defect.complaint"), 1);
}

#[test]
fn rs_admin_down_disables_recovery() {
    let mut sys = System::new(SystemConfig::default());
    let services = vec![svc("drv", PolicyScript::direct_restart())];
    let rs = boot_rs(&mut sys, services);
    sys.register_program(
        "drv",
        Privileges::server(),
        Box::new(|| Box::new(NullService)),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(100_000));
    assert!(sys.endpoint_by_name("drv").is_some());
    probe(
        &mut sys,
        "admin",
        Box::new(move |ctx, ev| {
            if matches!(ev, ProcEvent::Start) {
                let _ = ctx.sendrec(rs, Message::new(rsp::DOWN).with_data(b"drv".to_vec()));
            }
        }),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(600_000));
    assert!(sys.endpoint_by_name("drv").is_none(), "service stays down");
    assert_eq!(sys.metrics().counter("rs.recoveries"), 0);
    // ...until the admin brings it up again.
    probe(
        &mut sys,
        "admin2",
        Box::new(move |ctx, ev| {
            if matches!(ev, ProcEvent::Start) {
                let _ = ctx.sendrec(rs, Message::new(rsp::UP).with_data(b"drv".to_vec()));
            }
        }),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(800_000));
    assert!(sys.endpoint_by_name("drv").is_some(), "service up again");
}

#[test]
fn rs_sigterm_escalates_to_sigkill_on_update() {
    // A driver that ignores SIGTERM must still be replaceable: RS
    // escalates to SIGKILL after a grace period (§6).
    struct Stubborn;
    impl Process for Stubborn {
        fn on_event(&mut self, _ctx: &mut Ctx<'_>, _event: ProcEvent) {
            // ignores everything, including SIGTERM
        }
    }
    let mut sys = System::new(SystemConfig::default());
    let services = vec![svc("stubborn", PolicyScript::generic())];
    let rs = boot_rs(&mut sys, services);
    sys.register_program(
        "stubborn",
        Privileges::server(),
        Box::new(|| Box::new(Stubborn)),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(100_000));
    let old = sys.endpoint_by_name("stubborn").unwrap();
    probe(
        &mut sys,
        "admin",
        Box::new(move |ctx, ev| {
            if matches!(ev, ProcEvent::Start) {
                let _ = ctx.sendrec(
                    rs,
                    Message::new(rsp::UPDATE).with_data(b"stubborn".to_vec()),
                );
            }
        }),
    );
    // Grace period is 500ms; give it 2s.
    sys.run_until(&mut NullPlatform, SimTime::from_micros(2_100_000));
    let new = sys.endpoint_by_name("stubborn").unwrap();
    assert_ne!(old, new, "escalation killed the stubborn driver");
    assert_eq!(sys.metrics().counter("rs.defect.update"), 1);
}

// ---------------------------------------------------------------------
// Complaint arbitration (fail-silent evidence -> restart decisions)
// ---------------------------------------------------------------------

use phoenix_servers::proto::evidence;

/// Like [`boot_rs`], but with an explicit complainant allowlist.
fn boot_rs_with(
    sys: &mut System,
    services: Vec<ServiceConfig>,
    complainants: Vec<String>,
) -> Endpoint {
    let pm = sys.spawn_boot(
        "pm",
        Privileges::process_manager(),
        Box::new(ProcessManager::new()),
    );
    let dse = sys.spawn_boot("ds", Privileges::server(), Box::new(DataStore::new()));
    sys.spawn_boot(
        "rs",
        Privileges::reincarnation_server(),
        Box::new(ReincarnationServer::new(pm, dse, services, complainants)),
    )
}

fn complain_msg(accused: &str, kind: u32) -> Message {
    Message::new(rsp::COMPLAIN)
        .with_param(0, u64::from(kind))
        .with_data(accused.as_bytes().to_vec())
}

#[test]
fn rs_low_confidence_complaint_below_quorum_does_not_restart() {
    let mut sys = System::new(SystemConfig::default());
    let services = vec![
        svc("victim", PolicyScript::direct_restart()),
        svc("complainer", PolicyScript::direct_restart()),
    ];
    let rs = boot_rs(&mut sys, services);
    sys.register_program(
        "victim",
        Privileges::server(),
        Box::new(|| Box::new(NullService)),
    );
    sys.register_program(
        "complainer",
        Privileges::server(),
        Box::new(move || {
            Box::new(Probe {
                hook: Box::new(move |ctx, ev| {
                    if matches!(ev, ProcEvent::Notify { .. }) {
                        let _ = ctx.sendrec(rs, complain_msg("victim", evidence::CRC_MISMATCH));
                    }
                }),
            })
        }),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(100_000));
    let victim0 = sys.endpoint_by_name("victim").unwrap();
    let complainer = sys.endpoint_by_name("complainer").unwrap();
    probe(
        &mut sys,
        "poker",
        Box::new(move |ctx, ev| {
            if matches!(ev, ProcEvent::Start) {
                let _ = ctx.notify(complainer);
            }
        }),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(500_000));
    assert_eq!(
        sys.endpoint_by_name("victim"),
        Some(victim0),
        "one low-confidence complaint must not restart the accused"
    );
    assert_eq!(sys.metrics().counter("rs.complaints.below_quorum"), 1);
    assert_eq!(sys.metrics().counter("rs.complaints.quorum_restarts"), 0);
    assert_eq!(sys.metrics().counter("rs.defect.complaint"), 0);
}

#[test]
fn rs_low_confidence_quorum_restarts_the_accused() {
    let mut sys = System::new(SystemConfig::default());
    let services = vec![
        svc("victim", PolicyScript::direct_restart()),
        svc("complainer", PolicyScript::direct_restart()),
    ];
    let rs = boot_rs(&mut sys, services);
    sys.register_program(
        "victim",
        Privileges::server(),
        Box::new(|| Box::new(NullService)),
    );
    sys.register_program(
        "complainer",
        Privileges::server(),
        Box::new(move || {
            Box::new(Probe {
                hook: Box::new(move |ctx, ev| {
                    if matches!(ev, ProcEvent::Notify { .. }) {
                        let _ = ctx.sendrec(rs, complain_msg("victim", evidence::CRC_MISMATCH));
                    }
                }),
            })
        }),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(100_000));
    let victim0 = sys.endpoint_by_name("victim").unwrap();
    let complainer = sys.endpoint_by_name("complainer").unwrap();
    // Three pokes, spaced so each notify is delivered separately; all
    // three complaints land inside the 2 s arbitration window.
    let mut pokes = 0u32;
    probe(
        &mut sys,
        "poker",
        Box::new(move |ctx, ev| match ev {
            ProcEvent::Start | ProcEvent::Alarm { .. } => {
                let _ = ctx.notify(complainer);
                pokes += 1;
                if pokes < 3 {
                    let _ = ctx.set_alarm(phoenix_simcore::time::SimDuration::from_millis(50), 0);
                }
            }
            _ => {}
        }),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(800_000));
    assert_ne!(
        sys.endpoint_by_name("victim"),
        Some(victim0),
        "three same-window complaints form a quorum"
    );
    assert_eq!(sys.metrics().counter("rs.complaints.quorum_restarts"), 1);
    assert_eq!(sys.metrics().counter("rs.defect.complaint"), 1);
}

#[test]
fn rs_inverts_suspicion_onto_a_babbling_accuser() {
    // DIR Net's blame assignment: an accuser blaming everything around
    // it is the more plausible defect — restart the accuser, not the
    // accused.
    let mut sys = System::new(SystemConfig::default());
    let services = vec![
        svc("victim-a", PolicyScript::direct_restart()),
        svc("victim-b", PolicyScript::direct_restart()),
        svc("victim-c", PolicyScript::direct_restart()),
        svc("complainer", PolicyScript::direct_restart()),
    ];
    let rs = boot_rs(&mut sys, services);
    for name in ["victim-a", "victim-b", "victim-c"] {
        sys.register_program(
            name,
            Privileges::server(),
            Box::new(|| Box::new(NullService)),
        );
    }
    // The malicious accuser blames a different service on every poke.
    sys.register_program(
        "complainer",
        Privileges::server(),
        Box::new(move || {
            let mut nth = 0usize;
            Box::new(Probe {
                hook: Box::new(move |ctx, ev| {
                    if matches!(ev, ProcEvent::Notify { .. }) {
                        let accused = ["victim-a", "victim-b", "victim-c"][nth % 3];
                        nth += 1;
                        let _ = ctx.sendrec(rs, complain_msg(accused, evidence::CRC_MISMATCH));
                    }
                }),
            })
        }),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(100_000));
    let a0 = sys.endpoint_by_name("victim-a").unwrap();
    let b0 = sys.endpoint_by_name("victim-b").unwrap();
    let c0 = sys.endpoint_by_name("victim-c").unwrap();
    let accuser0 = sys.endpoint_by_name("complainer").unwrap();
    let mut pokes = 0u32;
    probe(
        &mut sys,
        "poker",
        Box::new(move |ctx, ev| match ev {
            ProcEvent::Start | ProcEvent::Alarm { .. } => {
                let _ = ctx.notify(accuser0);
                pokes += 1;
                if pokes < 3 {
                    let _ = ctx.set_alarm(phoenix_simcore::time::SimDuration::from_millis(50), 0);
                }
            }
            _ => {}
        }),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(800_000));
    assert_eq!(sys.endpoint_by_name("victim-a"), Some(a0), "accused spared");
    assert_eq!(sys.endpoint_by_name("victim-b"), Some(b0), "accused spared");
    assert_eq!(sys.endpoint_by_name("victim-c"), Some(c0), "accused spared");
    assert_ne!(
        sys.endpoint_by_name("complainer"),
        Some(accuser0),
        "the serial accuser is the one restarted"
    );
    assert_eq!(sys.metrics().counter("rs.complaints.inversions"), 1);
}

#[test]
fn rs_drops_ghost_complaints_against_dead_incarnations() {
    let mut sys = System::new(SystemConfig::default());
    let services = vec![
        svc("victim", PolicyScript::direct_restart()),
        svc("complainer", PolicyScript::direct_restart()),
    ];
    let rs = boot_rs(&mut sys, services);
    sys.register_program(
        "victim",
        Privileges::server(),
        Box::new(|| Box::new(NullService)),
    );
    let st: Rc<RefCell<Option<u64>>> = Rc::new(RefCell::new(None));
    let st2 = st.clone();
    let victim_ep: Rc<RefCell<Option<Endpoint>>> = Rc::new(RefCell::new(None));
    let victim_ep2 = victim_ep.clone();
    sys.register_program(
        "complainer",
        Privileges::server(),
        Box::new(move || {
            let st3 = st2.clone();
            let victim_ep3 = victim_ep2.clone();
            Box::new(Probe {
                hook: Box::new(move |ctx, ev| match ev {
                    ProcEvent::Notify { .. } => {
                        // Evidence pinned to a stale incarnation of the
                        // victim: same slot, wrong generation. Even a
                        // high-confidence kind says nothing about the
                        // successor.
                        let victim = *victim_ep3.borrow();
                        let (slot, generation) = victim.map(pack_endpoint).unwrap_or((0, 0));
                        let _ = ctx.sendrec(
                            rs,
                            complain_msg("victim", evidence::BAD_REPLY)
                                .with_param(1, slot)
                                .with_param(2, generation + 1000),
                        );
                    }
                    ProcEvent::Reply {
                        result: Ok(reply), ..
                    } if reply.mtype == rsp::ACK => {
                        *st3.borrow_mut() = Some(reply.param(0));
                    }
                    _ => {}
                }),
            })
        }),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(100_000));
    let victim0 = sys.endpoint_by_name("victim").unwrap();
    *victim_ep.borrow_mut() = Some(victim0);
    let complainer = sys.endpoint_by_name("complainer").unwrap();
    probe(
        &mut sys,
        "poker",
        Box::new(move |ctx, ev| {
            if matches!(ev, ProcEvent::Start) {
                let _ = ctx.notify(complainer);
            }
        }),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(500_000));
    assert_eq!(
        sys.endpoint_by_name("victim"),
        Some(victim0),
        "ghost evidence must not restart the successor incarnation"
    );
    assert_eq!(sys.metrics().counter("rs.complaints.rejected_ghost"), 1);
    assert_eq!(sys.metrics().counter("rs.defect.complaint"), 0);
}

#[test]
fn rs_rejects_self_complaints() {
    let mut sys = System::new(SystemConfig::default());
    let services = vec![svc("complainer", PolicyScript::direct_restart())];
    let rs = boot_rs(&mut sys, services);
    let st: Rc<RefCell<Option<u64>>> = Rc::new(RefCell::new(None));
    let st2 = st.clone();
    sys.register_program(
        "complainer",
        Privileges::server(),
        Box::new(move || {
            let st3 = st2.clone();
            Box::new(Probe {
                hook: Box::new(move |ctx, ev| match ev {
                    ProcEvent::Notify { .. } => {
                        // A confused server accusing itself must not be
                        // able to trigger its own restart.
                        let _ = ctx.sendrec(rs, complain_msg("complainer", evidence::BAD_REPLY));
                    }
                    ProcEvent::Reply {
                        result: Ok(reply), ..
                    } if reply.mtype == rsp::ACK => {
                        *st3.borrow_mut() = Some(reply.param(0));
                    }
                    _ => {}
                }),
            })
        }),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(100_000));
    let complainer0 = sys.endpoint_by_name("complainer").unwrap();
    probe(
        &mut sys,
        "poker",
        Box::new(move |ctx, ev| {
            if matches!(ev, ProcEvent::Start) {
                let _ = ctx.notify(complainer0);
            }
        }),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(500_000));
    assert_eq!(*st.borrow(), Some(22), "EINVAL");
    assert_eq!(
        sys.endpoint_by_name("complainer"),
        Some(complainer0),
        "self-complaint rejected"
    );
    assert_eq!(sys.metrics().counter("rs.complaints.rejected_self"), 1);
    assert_eq!(sys.metrics().counter("rs.recoveries"), 0);
}

#[test]
fn rs_counts_but_ignores_complaints_about_unknown_services() {
    let mut sys = System::new(SystemConfig::default());
    let services = vec![svc("complainer", PolicyScript::direct_restart())];
    let rs = boot_rs(&mut sys, services);
    let st: Rc<RefCell<Option<u64>>> = Rc::new(RefCell::new(None));
    let st2 = st.clone();
    sys.register_program(
        "complainer",
        Privileges::server(),
        Box::new(move || {
            let st3 = st2.clone();
            Box::new(Probe {
                hook: Box::new(move |ctx, ev| match ev {
                    ProcEvent::Notify { .. } => {
                        let _ = ctx.sendrec(rs, complain_msg("no-such-svc", evidence::BAD_REPLY));
                    }
                    ProcEvent::Reply {
                        result: Ok(reply), ..
                    } if reply.mtype == rsp::ACK => {
                        *st3.borrow_mut() = Some(reply.param(0));
                    }
                    _ => {}
                }),
            })
        }),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(100_000));
    let complainer = sys.endpoint_by_name("complainer").unwrap();
    probe(
        &mut sys,
        "poker",
        Box::new(move |ctx, ev| {
            if matches!(ev, ProcEvent::Start) {
                let _ = ctx.notify(complainer);
            }
        }),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(500_000));
    assert_eq!(*st.borrow(), Some(22), "EINVAL");
    assert_eq!(sys.metrics().counter("rs.complaints.rejected_unknown"), 1);
    assert_eq!(sys.metrics().counter("rs.recoveries"), 0);
}

#[test]
fn rs_two_distinct_accusers_form_a_quorum() {
    let mut sys = System::new(SystemConfig::default());
    let services = vec![
        svc("victim", PolicyScript::direct_restart()),
        svc("acc-one", PolicyScript::direct_restart()),
        svc("acc-two", PolicyScript::direct_restart()),
    ];
    let rs = boot_rs_with(
        &mut sys,
        services,
        vec!["acc-one".to_string(), "acc-two".to_string()],
    );
    sys.register_program(
        "victim",
        Privileges::server(),
        Box::new(|| Box::new(NullService)),
    );
    for name in ["acc-one", "acc-two"] {
        sys.register_program(
            name,
            Privileges::server(),
            Box::new(move || {
                Box::new(Probe {
                    hook: Box::new(move |ctx, ev| {
                        if matches!(ev, ProcEvent::Notify { .. }) {
                            let _ = ctx.sendrec(rs, complain_msg("victim", evidence::CRC_MISMATCH));
                        }
                    }),
                })
            }),
        );
    }
    sys.run_until(&mut NullPlatform, SimTime::from_micros(100_000));
    let victim0 = sys.endpoint_by_name("victim").unwrap();
    let one = sys.endpoint_by_name("acc-one").unwrap();
    let two = sys.endpoint_by_name("acc-two").unwrap();
    let mut pokes = 0u32;
    probe(
        &mut sys,
        "poker",
        Box::new(move |ctx, ev| match ev {
            ProcEvent::Start | ProcEvent::Alarm { .. } => {
                let _ = ctx.notify(if pokes == 0 { one } else { two });
                pokes += 1;
                if pokes < 2 {
                    let _ = ctx.set_alarm(phoenix_simcore::time::SimDuration::from_millis(50), 0);
                }
            }
            _ => {}
        }),
    );
    sys.run_until(&mut NullPlatform, SimTime::from_micros(800_000));
    assert_ne!(
        sys.endpoint_by_name("victim"),
        Some(victim0),
        "independent corroboration restarts the accused"
    );
    assert_eq!(sys.metrics().counter("rs.complaints.quorum_restarts"), 1);
}
