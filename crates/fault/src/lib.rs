//! Software fault injection for the Phoenix failure-resilient OS.
//!
//! Reproduces the §7.2 methodology: driver hot paths are compiled to a tiny
//! register VM ([`isa`], [`vm`]) whose binary instruction words the injector
//! mutates with the paper's **seven fault types** ([`mutate`]). Execution
//! outcomes map directly onto the paper's defect classes: a failed driver
//! sanity check is a *panic* (class 1), an illegal instruction / memory
//! fault / alignment / divide-by-zero is a *CPU or MMU exception* (class 2),
//! and an inverted loop condition that never terminates leaves the driver
//! *stuck*, detected only by missing heartbeats (class 4).
//!
//! # Example
//!
//! ```
//! use phoenix_fault::isa::{Asm, Instr};
//! use phoenix_fault::mutate::{apply_random_fault};
//! use phoenix_fault::vm::{Outcome, Vm};
//! use phoenix_simcore::rng::SimRng;
//!
//! // A routine with a loop and a sanity check.
//! let mut a = Asm::new();
//! let top = a.label();
//! let done = a.label();
//! a.emit(Instr::MovImm(2, 0));
//! a.emit(Instr::MovImm(3, 0));
//! a.bind(top);
//! a.jge_to(3, 0, done);
//! a.emit(Instr::LoadB(4, 1, 0));
//! a.emit(Instr::Add(2, 4));
//! a.emit(Instr::AddImm(1, 1));
//! a.emit(Instr::AddImm(3, 1));
//! a.jmp_to(top);
//! a.bind(done);
//! a.emit(Instr::Halt);
//! let pristine = a.finish();
//!
//! // Inject one random fault and observe the (possibly changed) outcome.
//! let mut rng = SimRng::new(2007);
//! let mut mutated = pristine.clone();
//! apply_random_fault(&mut mutated, &mut rng).unwrap();
//! let mut vm = Vm::new(64);
//! vm.regs[0] = 8;
//! match vm.run(&mutated, 10_000) {
//!     Outcome::Halted { .. } => {} // silent or harmless
//!     Outcome::Trapped { .. } => {} // panic or exception -> driver dies
//!     Outcome::OutOfGas => {}       // stuck -> heartbeat detection
//! }
//! ```

pub mod chaos;
pub mod isa;
pub mod mutate;
pub mod nodechaos;
pub mod vm;

pub use chaos::{ChaosPlan, ChaosRule, NameFilter, RecoveryKill, StallWindow};
pub use isa::{decode, encode, Asm, Instr, Label, NUM_REGS};
pub use mutate::{apply_fault, apply_random_fault, FaultType, Mutation, ALL_FAULT_TYPES};
pub use nodechaos::{LinkDirection, NodeChaosPlan, NodeFault, NodeFaultKind};
pub use vm::{Outcome, Trap, Vm};
