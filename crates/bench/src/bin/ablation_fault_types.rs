//! Ablation: which of the seven fault types (§7.2) produce which outcome?
//!
//! Runs each mutation operator many times against the DP8390 receive
//! routine (with cold-section padding, like the live campaign) and
//! classifies the pure-VM outcome: silent (correct result), wrong result,
//! panic (assert), exception (trap), or infinite loop. This explains the
//! crash-class distribution the full campaign reports.

use phoenix_bench::print_table;
use phoenix_drivers::routines;
use phoenix_fault::mutate::{apply_fault, ALL_FAULT_TYPES};
use phoenix_fault::vm::{Outcome, Trap, Vm};
use phoenix_simcore::rng::SimRng;

const TRIALS: usize = 5_000;

fn run_once(code: &[u32]) -> (Outcome, u32) {
    let mut vm = Vm::new(2048);
    // A representative received frame: status OK, 600-byte payload.
    vm.mem[0] = 1;
    for i in 0..600 {
        vm.mem[4 + i] = (i % 251) as u8;
    }
    vm.regs[routines::reg::A0 as usize] = 600;
    vm.regs[routines::reg::A1 as usize] = 64;
    let out = vm.run(code, 50_000);
    (out, vm.regs[routines::reg::RES as usize])
}

fn main() {
    println!(
        "ablation — fault type vs. outcome ({} trials each, padded DP8390 rx routine)\n",
        TRIALS
    );
    let pristine = routines::with_cold_section(routines::net_rx(), 30);
    let (baseline, expected_res) = run_once(&pristine);
    assert!(baseline.is_ok(), "pristine routine must succeed");

    let mut rows = Vec::new();
    for fault in ALL_FAULT_TYPES {
        let mut rng = SimRng::new(2007).fork(&fault.to_string());
        let (mut silent, mut wrong, mut panic_, mut exception, mut looped, mut skipped) =
            (0u32, 0u32, 0u32, 0u32, 0u32, 0u32);
        for _ in 0..TRIALS {
            let mut code = pristine.clone();
            if apply_fault(&mut code, fault, &mut rng).is_none() {
                skipped += 1;
                continue;
            }
            match run_once(&code) {
                (Outcome::Halted { .. }, res) => {
                    if res == expected_res {
                        silent += 1;
                    } else {
                        wrong += 1;
                    }
                }
                (
                    Outcome::Trapped {
                        trap: Trap::Assert, ..
                    },
                    _,
                ) => panic_ += 1,
                (Outcome::Trapped { .. }, _) => exception += 1,
                (Outcome::OutOfGas, _) => looped += 1,
            }
        }
        let pct = |n: u32| format!("{:.1}%", 100.0 * f64::from(n) / TRIALS as f64);
        rows.push(vec![
            fault.to_string(),
            pct(silent),
            pct(wrong),
            pct(panic_),
            pct(exception),
            pct(looped),
            skipped.to_string(),
        ]);
    }
    print_table(
        &[
            "fault type",
            "silent",
            "wrong result",
            "panic",
            "exception",
            "loop",
            "n/a",
        ],
        &rows,
    );
    println!("\nsilent + wrong-result mutations are the *undetectable* failures the paper");
    println!("cannot recover from (silent data corruption, §3); panic/exception/loop map");
    println!("to defect classes 1, 2 and 4 respectively.");
}
