//! Fundamental kernel types: endpoints, messages, signals, exit statuses.

use std::fmt;

/// A process slot index in the kernel's process table.
pub type Slot = u16;

/// An IPC endpoint: a process slot plus a generation number.
///
/// The paper (§5.3) relies on *temporarily unique* endpoints: "a component's
/// endpoint changes with each restart, and the IPC capabilities of dependent
/// processes must be updated accordingly". The generation number is what
/// makes a restarted driver unreachable through its old endpoint, so stale
/// messages can never be delivered to the wrong incarnation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Endpoint {
    slot: Slot,
    generation: u32,
}

impl Endpoint {
    /// Constructs an endpoint from its parts. Normally only the kernel does
    /// this; components receive endpoints from the kernel or the data store.
    pub const fn new(slot: Slot, generation: u32) -> Self {
        Endpoint { slot, generation }
    }

    /// The process-table slot.
    pub const fn slot(self) -> Slot {
        self.slot
    }

    /// The incarnation number of the slot.
    pub const fn generation(self) -> u32 {
        self.generation
    }
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}:{}", self.slot, self.generation)
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifies an emulated device on the platform bus.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DeviceId(pub u16);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// A hardware interrupt line number.
pub type IrqLine = u8;

/// The fixed-size IPC message, modeled on MINIX's message union: a type tag,
/// a handful of scalar parameters, and an optional byte payload standing in
/// for the I/O vectors that MINIX passes via memory grants.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Message {
    /// Filled in by the kernel on delivery; senders need not set it.
    pub source: Endpoint,
    /// Protocol-defined message type tag.
    pub mtype: u32,
    /// Scalar parameters (request arguments, status codes, positions...).
    pub params: [u64; 8],
    /// Bulk payload. Kept small in practice; large transfers use grants.
    pub data: Vec<u8>,
}

impl Message {
    /// Creates a message with the given type tag and zeroed parameters.
    pub fn new(mtype: u32) -> Self {
        Message {
            source: Endpoint::new(0, 0),
            mtype,
            params: [0; 8],
            data: Vec::new(),
        }
    }

    /// Sets parameter `i` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn with_param(mut self, i: usize, v: u64) -> Self {
        self.params[i] = v;
        self
    }

    /// Attaches a byte payload (builder style).
    pub fn with_data(mut self, data: Vec<u8>) -> Self {
        self.data = data;
        self
    }

    /// Parameter `i` as `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn param(&self, i: usize) -> u64 {
        self.params[i]
    }
}

impl fmt::Debug for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Message{{type={}, from={}, params={:?}, {}B}}",
            self.mtype,
            self.source,
            &self.params[..4],
            self.data.len()
        )
    }
}

/// Identifies an open `sendrec` call awaiting a reply.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct CallId(pub u64);

/// Identifies a pending kernel alarm so it can be cancelled.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct AlarmId(pub u64);

/// POSIX-style signals the kernel can deliver or act upon.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Signal {
    /// Polite termination request; delivered to the process, which is
    /// expected to exit cleanly (used for dynamic updates, §6).
    Term,
    /// Immediate kill; never delivered, the kernel destroys the process.
    Kill,
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Signal::Term => f.write_str("SIGTERM"),
            Signal::Kill => f.write_str("SIGKILL"),
        }
    }
}

/// Hardware exception kinds a process can die from (§5.1 defect class 2:
/// "crashed by CPU or MMU exception").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExceptionKind {
    /// Access outside the process's address space (bad pointer).
    MmuFault,
    /// Illegal or garbled instruction.
    IllegalInstruction,
    /// Integer division by zero.
    DivideByZero,
    /// Misaligned or otherwise invalid memory operand.
    Alignment,
}

impl fmt::Display for ExceptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExceptionKind::MmuFault => "MMU fault",
            ExceptionKind::IllegalInstruction => "illegal instruction",
            ExceptionKind::DivideByZero => "divide by zero",
            ExceptionKind::Alignment => "alignment fault",
        };
        f.write_str(s)
    }
}

/// Why a process left the system. This is the exit status the process
/// manager collects and forwards to the reincarnation server, which maps it
/// onto the paper's defect classes 1–3 (§5.1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExitReason {
    /// Voluntary `exit(code)`.
    Exited(i32),
    /// Voluntary panic with a diagnostic (MINIX `panic()`).
    Panicked(String),
    /// Killed by the kernel after a CPU/MMU exception.
    Exception(ExceptionKind),
    /// Killed by a signal (`who` records user vs. system origin).
    Signaled(Signal, KillOrigin),
}

/// Who requested a kill — lets the reincarnation server distinguish defect
/// class 3 ("killed by user") from internal terminations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KillOrigin {
    /// An interactive user (e.g. `kill -9` from a shell).
    User,
    /// A system component (e.g. RS escalating SIGTERM to SIGKILL).
    System,
}

/// Full exit record delivered to the parent process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExitStatus {
    /// The endpoint the process had when it died.
    pub endpoint: Endpoint,
    /// Stable process name (e.g. `"eth.rtl8139"`).
    pub name: String,
    /// Why it died.
    pub reason: ExitReason,
}

/// Errors returned by IPC primitives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IpcError {
    /// Destination endpoint's slot is empty or its generation is stale —
    /// the MINIX `EDEADSRCDST` case that aborts a rendezvous when a driver
    /// dies mid-request.
    DeadDestination,
    /// The caller's privilege IPC mask does not allow this destination.
    NotPermitted,
    /// Reply to a call that is no longer open (caller died or already
    /// answered).
    NoSuchCall,
}

impl fmt::Display for IpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IpcError::DeadDestination => "destination process is dead (EDEADSRCDST)",
            IpcError::NotPermitted => "IPC destination not permitted",
            IpcError::NoSuchCall => "no such open call",
        };
        f.write_str(s)
    }
}

impl std::error::Error for IpcError {}

/// Errors returned by kernel calls.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelError {
    /// The calling process's privilege table does not allow this call.
    CallNotPermitted,
    /// Device access denied (not in the I/O port privilege set).
    DeviceNotPermitted,
    /// IRQ line access denied.
    IrqNotPermitted,
    /// No such device on the bus.
    NoSuchDevice,
    /// Grant id invalid, revoked, or not addressed to the caller.
    BadGrant,
    /// Copy range outside the granted region or the address space.
    BadRange,
    /// No program registered under the requested name.
    NoSuchProgram,
    /// Target endpoint invalid or stale.
    BadEndpoint,
    /// Process table is full.
    NoFreeSlot,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KernelError::CallNotPermitted => "kernel call not permitted",
            KernelError::DeviceNotPermitted => "device access not permitted",
            KernelError::IrqNotPermitted => "IRQ line not permitted",
            KernelError::NoSuchDevice => "no such device",
            KernelError::BadGrant => "bad or revoked memory grant",
            KernelError::BadRange => "range outside grant or address space",
            KernelError::NoSuchProgram => "no such program image",
            KernelError::BadEndpoint => "bad or stale endpoint",
            KernelError::NoFreeSlot => "process table full",
        };
        f.write_str(s)
    }
}

impl std::error::Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_identity_includes_generation() {
        let old = Endpoint::new(5, 1);
        let new = Endpoint::new(5, 2);
        assert_ne!(old, new, "same slot, different incarnation");
        assert_eq!(old.slot(), new.slot());
        assert_eq!(format!("{old}"), "ep5:1");
    }

    #[test]
    fn message_builder() {
        let m = Message::new(7).with_param(0, 42).with_data(vec![1, 2, 3]);
        assert_eq!(m.mtype, 7);
        assert_eq!(m.param(0), 42);
        assert_eq!(m.param(1), 0);
        assert_eq!(m.data, vec![1, 2, 3]);
    }

    #[test]
    fn errors_display() {
        assert!(IpcError::DeadDestination
            .to_string()
            .contains("EDEADSRCDST"));
        assert!(KernelError::BadGrant.to_string().contains("grant"));
        assert_eq!(Signal::Kill.to_string(), "SIGKILL");
        assert_eq!(ExceptionKind::MmuFault.to_string(), "MMU fault");
    }
}
