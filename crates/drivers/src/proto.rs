//! Wire protocols spoken between drivers and the rest of the system.
//!
//! Message type tags and parameter layouts for the generic driver protocol
//! (heartbeats, shutdown, announcements), the block device protocol
//! (FS ↔ disk drivers, grant-based data transfer), the Ethernet protocol
//! (INET ↔ network drivers), and the character device protocol
//! (VFS/applications ↔ printer, audio, SCSI drivers).

/// Status codes carried in reply `params[0]`.
pub mod status {
    /// Success.
    pub const OK: u64 = 0;
    /// Generic I/O error.
    pub const EIO: u64 = 5;
    /// Temporarily out of resources; retry later.
    pub const EAGAIN: u64 = 11;
    /// Invalid argument (bad LBA, bad length).
    pub const EINVAL: u64 = 22;
    /// Device not ready / no medium.
    pub const ENODEV: u64 = 19;
}

/// Generic driver protocol (every driver speaks this; supporting it is the
/// "exactly 5 lines of code in the shared driver library" of §7.3).
pub mod drv {
    /// Heartbeat ping from the reincarnation server; `params[0]` = nonce.
    pub const HB_PING: u32 = 0x0100;
    /// Heartbeat pong back to RS; `params[0]` = echoed nonce.
    pub const HB_PONG: u32 = 0x0101;
}

/// Block device protocol (MINIX `BDEV`), §6.2.
///
/// Data moves through memory grants: the file server creates a grant over
/// its buffer cache page and passes the grant id; the driver `safecopy`s
/// into/out of it. Disk block I/O is idempotent, so a restarted driver can
/// simply be asked again.
pub mod bdev {
    /// Open a minor device. `params[0]` = minor. Reply: status, capacity
    /// in sectors in `params[1]`.
    pub const OPEN: u32 = 0x0200;
    /// Read sectors. `params[0]` = LBA, `params[1]` = sector count,
    /// `params[2]` = grant id (write access), `params[3]` = minor.
    pub const READ: u32 = 0x0201;
    /// Write sectors. Same layout; grant must allow read.
    pub const WRITE: u32 = 0x0202;
    /// Reply to any request: `params[0]` = status, `params[1]` = bytes
    /// transferred.
    pub const REPLY: u32 = 0x0203;
}

/// Ethernet driver protocol (MINIX `DL`), §6.1.
pub mod eth {
    /// (Re)initialize: put the card in promiscuous mode, enable rx/tx.
    /// Sent by INET when it learns a driver's endpoint from the data
    /// store — both at first start and after every recovery.
    pub const INIT: u32 = 0x0300;
    /// Reply to INIT: `params[0]` = status.
    pub const INIT_REPLY: u32 = 0x0301;
    /// Transmit a frame; the frame travels in `data`.
    pub const WRITE: u32 = 0x0302;
    /// Reply to WRITE: `params[0]` = status.
    pub const WRITE_REPLY: u32 = 0x0303;
    /// Received frame pushed to the network server (one-way); frame in
    /// `data`.
    pub const RECV: u32 = 0x0304;
    /// Statistics request. Reply in STAT_REPLY.
    pub const GET_STAT: u32 = 0x0305;
    /// `params[0]` = frames received, `params[1]` = frames sent.
    pub const STAT_REPLY: u32 = 0x0306;
}

/// Character device protocol, §6.3.
pub mod cdev {
    /// Open. `params[0]` = minor.
    pub const OPEN: u32 = 0x0400;
    /// Write a byte stream; payload in `data`. Reply: status +
    /// `params[1]` = bytes accepted (may be short — stream devices apply
    /// backpressure).
    pub const WRITE: u32 = 0x0401;
    /// Reply to any cdev request.
    pub const REPLY: u32 = 0x0402;
    /// Read up to `params[0]` bytes from an input stream device. Reply:
    /// status + data (possibly empty when no input is pending).
    pub const READ: u32 = 0x0405;
    /// SCSI burner: begin a burn. `params[0]` = total chunks.
    pub const BURN_START: u32 = 0x0410;
    /// SCSI burner: write chunk `params[0]`; payload in `data`.
    pub const BURN_CHUNK: u32 = 0x0411;
    /// SCSI burner: finalize the disc.
    pub const BURN_FINALIZE: u32 = 0x0412;
}
