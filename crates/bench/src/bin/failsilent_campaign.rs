//! Fail-silent defect campaign: §7.2 mutations that do *not* crash the
//! driver, against the protocol-sentinel / babble-guard / complaint-
//! arbitration stack.
//!
//! Drives the mutation engine round-robin over all three driver classes
//! (DP8390 net, SATA block, printer char) while one workload per class
//! keeps the hot paths busy, and classifies every injection as
//! detected-and-recovered, fail-silent-survived (the user has to restart
//! by hand), or benign. A second arm runs the identical schedule with the
//! sentinel layers disarmed (`without_sentinels`) — the crash-only
//! baseline — and a no-fault control run checks that healthy drivers are
//! never restarted.
//!
//! The binary is also a regression gate (CI runs it with `--quick`):
//!
//! * two same-seed campaign runs must produce byte-identical metric
//!   digests;
//! * at least one detection must be sentinel-only (complaint evidence
//!   with no crash-class counter movement): coverage strictly above the
//!   crash-only baseline;
//! * every detected or user-restarted driver must recover;
//! * the no-fault control run must report zero restarts and zero
//!   accepted complaints, with all three workloads live.
//!
//! Any violation exits non-zero.

use std::fmt::Write as _;
use std::process::ExitCode;

use phoenix::campaign::{run_failsilent_campaign, run_failsilent_control, FailsilentConfig};
use phoenix_bench::{print_table, quick_mode, write_report, CampaignGate};
use phoenix_simcore::obs::sentinel_counters;
use phoenix_simcore::time::SimDuration;

fn cfg(quick: bool) -> FailsilentConfig {
    let base = FailsilentConfig::default();
    if quick {
        base.quick()
    } else {
        base
    }
}

fn main() -> ExitCode {
    let quick = quick_mode();
    let cfg = cfg(quick);
    println!(
        "fail-silent campaign — {} mutation rounds x 3 driver classes{}\n",
        cfg.rounds,
        if quick { ", --quick" } else { "" },
    );

    // Armed arm, twice: the second run exists only to check determinism.
    let (armed, os) = run_failsilent_campaign(&cfg);
    let (rerun, _) = run_failsilent_campaign(&cfg);

    // Crash-only baseline arm: same schedule, sentinels disarmed.
    let baseline_cfg = FailsilentConfig {
        sentinels: false,
        ..cfg.clone()
    };
    let (baseline, _) = run_failsilent_campaign(&baseline_cfg);

    // No-fault control: anything restarted here is a false positive.
    let control = run_failsilent_control(&cfg, SimDuration::from_secs(30));

    println!("sentinels armed:");
    println!("{}\n", armed.render());
    println!("crash-only baseline (sentinels disarmed):");
    println!("{}\n", baseline.render());
    println!(
        "no-fault control (30 s): {} restarts, {} accepted complaints; \
         echoed {} datagrams, read {} disk bytes, printed {} bytes",
        control.restarts,
        control.complaints_accepted,
        control.echoed,
        control.disk_bytes,
        control.printed,
    );

    let rows: Vec<Vec<String>> = sentinel_counters(os.metrics())
        .into_iter()
        .map(|(k, v)| vec![k, v.to_string()])
        .collect();
    println!();
    print_table(&["counter", "value"], &rows);

    let mut gate = CampaignGate::new();
    gate.require(
        armed.digest == rerun.digest,
        format!(
            "same-seed campaign digests differ: {} vs {}",
            armed.digest, rerun.digest
        ),
    );
    gate.require(
        armed.sentinel_only() > 0,
        "no sentinel-only detection: coverage is not above the \
         crash-only baseline",
    );
    gate.require(
        armed.coverage() > armed.crash_only_coverage(),
        format!(
            "coverage {:.3} not strictly above crash-only baseline {:.3}",
            armed.coverage(),
            armed.crash_only_coverage()
        ),
    );
    gate.require(
        armed.unrecovered() == 0,
        format!(
            "{} drivers failed to recover after restart",
            armed.unrecovered()
        ),
    );
    gate.require(
        control.restarts == 0 && control.complaints_accepted == 0,
        format!(
            "false positives in the no-fault control: {} restarts, {} \
             accepted complaints",
            control.restarts, control.complaints_accepted
        ),
    );
    gate.require(
        control.echoed > 0 && control.disk_bytes > 0 && control.printed > 0,
        format!(
            "control workloads not live: echoed {}, disk {}, printed {}",
            control.echoed, control.disk_bytes, control.printed
        ),
    );

    // ---- report into results/ ----
    let mut report = String::new();
    let _ = writeln!(report, "sentinels armed:\n{}\n", armed.render());
    let _ = writeln!(
        report,
        "crash-only baseline (sentinels disarmed):\n{}\n",
        baseline.render()
    );
    let _ = writeln!(
        report,
        "no-fault control: {} restarts, {} accepted complaints, echoed {}, \
         disk bytes {}, printed {}",
        control.restarts,
        control.complaints_accepted,
        control.echoed,
        control.disk_bytes,
        control.printed,
    );
    let _ = writeln!(report);
    for (k, v) in sentinel_counters(os.metrics()) {
        let _ = writeln!(report, "{k}={v}");
    }
    let timeline = os.timeline();
    let _ = writeln!(report);
    let _ = writeln!(report, "{}", timeline.render());

    write_report("failsilent_campaign", quick, &report);

    gate.finish(
        "all gates passed: same-seed digest identical, sentinel-only\n\
         detections present, all restarts recovered, zero false positives",
    )
}
