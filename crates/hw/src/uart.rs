//! A UART-style serial input device (keyboard/console line).
//!
//! This is the §6.3 *input* case: "If an input stream is interrupted due
//! to a device driver crash, input might be lost because it can only be
//! read from the controller once." The device has a tiny hardware FIFO;
//! bytes arrive on the line (injected as external events, like NIC
//! frames), and anything not drained by a driver before the FIFO fills —
//! or sitting in a crashed driver's buffer — is gone forever.

use std::any::Any;
use std::collections::VecDeque;

use crate::bus::{DevCtx, Device};

/// Register map.
pub mod uart_regs {
    /// Data register: reading pops one byte from the rx FIFO.
    pub const DATA: u16 = 0x00;
    /// Number of bytes waiting in the rx FIFO (read-only).
    pub const AVAILABLE: u16 = 0x04;
    /// Control: write 1 to reset (clears the FIFO — more input loss).
    pub const CONTROL: u16 = 0x08;
}

/// Hardware rx FIFO depth (16550-style).
pub const FIFO_DEPTH: usize = 16;

/// The serial input device.
#[derive(Debug, Default)]
pub struct Uart {
    fifo: VecDeque<u8>,
    /// Every byte that ever arrived on the line.
    line_total: u64,
    /// Bytes lost because the FIFO was full when they arrived.
    overruns: u64,
}

impl Uart {
    /// Creates the device with an empty FIFO.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes that arrived on the line since power-on.
    pub fn line_total(&self) -> u64 {
        self.line_total
    }

    /// Bytes dropped due to FIFO overrun (nobody drained in time).
    pub fn overruns(&self) -> u64 {
        self.overruns
    }
}

impl Device for Uart {
    fn name(&self) -> &str {
        "uart"
    }

    fn read(&mut self, _ctx: &mut DevCtx<'_, '_>, reg: u16) -> u32 {
        match reg {
            uart_regs::DATA => u32::from(self.fifo.pop_front().unwrap_or(0)),
            uart_regs::AVAILABLE => self.fifo.len() as u32,
            _ => 0,
        }
    }

    fn write(&mut self, _ctx: &mut DevCtx<'_, '_>, reg: u16, value: u32) {
        if reg == uart_regs::CONTROL && value & 1 != 0 {
            self.fifo.clear();
        }
    }

    fn read_block(&mut self, _ctx: &mut DevCtx<'_, '_>, reg: u16, len: usize) -> Vec<u8> {
        if reg != uart_regs::DATA {
            return vec![0; len];
        }
        let n = len.min(self.fifo.len());
        self.fifo.drain(..n).collect()
    }

    fn frame_in(&mut self, ctx: &mut DevCtx<'_, '_>, frame: &[u8]) {
        // Bytes arriving on the line. The FIFO is the only buffer the
        // hardware has: overruns are silent input loss.
        for &b in frame {
            self.line_total += 1;
            if self.fifo.len() == FIFO_DEPTH {
                self.overruns += 1;
            } else {
                self.fifo.push_back(b);
            }
        }
        if !frame.is_empty() {
            ctx.raise_irq();
        }
    }

    fn hard_reset(&mut self) {
        self.fifo.clear();
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{wire_to_host_channel, Bus};
    use phoenix_kernel::memory::MemoryPool;
    use phoenix_kernel::platform::HwCtx;
    use phoenix_kernel::platform::Platform;
    use phoenix_kernel::types::DeviceId;
    use phoenix_simcore::rng::SimRng;
    use phoenix_simcore::time::SimTime;

    #[test]
    fn fifo_overrun_loses_input() {
        let dev = DeviceId(9);
        let mut bus = Bus::new();
        bus.add_device(dev, 3, Box::new(Uart::new()));
        let mut mem = MemoryPool::new();
        let mut rng = SimRng::new(1);
        let mut fx = Vec::new();
        let mut ctx = HwCtx::new(SimTime::ZERO, &mut mem, &mut rng, &mut fx);
        // 24 bytes into a 16-byte FIFO: 8 lost.
        bus.external(wire_to_host_channel(dev), (0..24u8).collect(), &mut ctx);
        let uart: &mut Uart = bus.device_mut(dev).unwrap();
        assert_eq!(uart.line_total(), 24);
        assert_eq!(uart.overruns(), 8);
        // Drain: only the first 16 survived, in order.
        let mut got = Vec::new();
        let mut ctx = HwCtx::new(SimTime::ZERO, &mut mem, &mut rng, &mut fx);
        let avail = bus.io_read(dev, uart_regs::AVAILABLE, &mut ctx);
        assert_eq!(avail, 16);
        got.extend(bus.io_read_block(dev, uart_regs::DATA, 16, &mut ctx));
        assert_eq!(got, (0..16u8).collect::<Vec<_>>());
    }
}
