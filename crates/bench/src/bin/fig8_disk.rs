//! Fig. 8: disk read throughput while repeatedly killing the SATA driver.
//!
//! Paper baseline: a 1 GB `dd | sha1sum` at 32.7 MB/s uninterrupted; with
//! kills every 1..15 s, overhead runs from 62% (1 s) to ~7% (15 s), and
//! the SHA-1 always matches.

use phoenix::experiments::fig8_disk_run;
use phoenix_bench::{print_table, quick_mode};
use phoenix_simcore::time::SimDuration;

fn main() {
    let quick = quick_mode();
    let size: u64 = if quick { 64_000_000 } else { 1_000 * 1_000_000 };
    let seed = 2007;
    let intervals: Vec<u64> = if quick {
        vec![1, 2, 4, 8, 15]
    } else {
        (1..=15).collect()
    };

    println!("Fig. 8 — disk throughput vs. driver kill interval");
    println!(
        "transfer: {} MB via SATA + MFS + VFS, driver restarts from RAM\n",
        size / 1_000_000
    );

    let base = fig8_disk_run(size, None, seed);
    let mut rows = vec![vec![
        "uninterrupted".to_string(),
        format!("{:.2}", base.elapsed.as_secs_f64()),
        format!("{:.2}", base.throughput_mbs),
        "-".to_string(),
        "0".to_string(),
        if base.sha1_ok { "ok" } else { "MISMATCH" }.to_string(),
    ]];
    for k in &intervals {
        let r = fig8_disk_run(size, Some(SimDuration::from_secs(*k)), seed);
        let overhead = 100.0 * (r.elapsed.as_secs_f64() / base.elapsed.as_secs_f64() - 1.0);
        rows.push(vec![
            format!("kill every {k}s"),
            format!("{:.2}", r.elapsed.as_secs_f64()),
            format!("{:.2}", r.throughput_mbs),
            format!("{overhead:.0}%"),
            r.kills.to_string(),
            if r.sha1_ok && r.app_errors == 0 {
                "ok"
            } else {
                "MISMATCH"
            }
            .to_string(),
        ]);
    }
    print_table(
        &["scenario", "time (s)", "MB/s", "overhead", "kills", "sha1"],
        &rows,
    );
    println!(
        "\npaper shape: uninterrupted 32.7 MB/s; overhead 62% at 1s -> ~7% at 15s; sha1 intact"
    );
}
