//! Causal recovery tracing walkthrough: crash the disk driver mid-read,
//! then reconstruct the episode from the structured trace — who noticed,
//! when the fresh incarnation came up, when the data store republished the
//! endpoint, and when the file server resumed the pending I/O.
//!
//! Run with: `cargo run --release --example recovery_timeline`

use std::cell::RefCell;
use std::rc::Rc;

use phoenix::apps::{Dd, DdStatus};
use phoenix::os::{names, Os};
use phoenix_servers::fsfmt::{FileContent, FileSpec};
use phoenix_simcore::export::export_jsonl;
use phoenix_simcore::time::SimDuration;

fn main() {
    let ms = SimDuration::from_millis;
    let file_size = 4_000_000u64;
    let files = vec![FileSpec {
        name: "bigfile".to_string(),
        content: FileContent::Synthetic { size: file_size },
    }];
    let mut os = Os::builder()
        .seed(2007)
        .with_disk(file_size / 512 + 1024, 77, files)
        .boot();
    let vfs = os.endpoint(names::VFS).expect("vfs up");
    let status = Rc::new(RefCell::new(DdStatus::default()));
    os.spawn_app(
        "dd",
        Box::new(Dd::new(vfs, "bigfile", 64 * 1024, status.clone())),
    );
    os.run_for(ms(100));

    println!("killing {} mid-read ...\n", names::BLK_SATA);
    os.kill_by_user(names::BLK_SATA);
    let mut guard = 0;
    while !status.borrow().done && guard < 600 {
        os.run_for(ms(100));
        guard += 1;
    }
    assert!(status.borrow().done, "dd must complete despite the crash");

    // Fold the trace into recovery episodes and walk the one we caused.
    let timeline = os.timeline();
    println!("reconstructed episodes:");
    print!("{}", timeline.render());

    let ep = timeline
        .for_service(names::BLK_SATA)
        .find(|e| e.complete())
        .expect("a complete blk.sata episode");
    println!("\nevents of episode {} in causal order:", ep.rid);
    for (_, e) in os.trace().events_for(ep.rid) {
        println!("  {e}");
    }
    println!("\nphase breakdown of {}:", ep.rid);
    println!("  detection     {}", ep.detection().expect("complete"));
    println!("  repair        {}", ep.repair().expect("complete"));
    println!("  reintegration {}", ep.reintegration().expect("complete"));
    println!("  total         {}", ep.total().expect("complete"));

    let jsonl = export_jsonl(os.trace().events());
    println!(
        "\nstructured trace: {} events, {} bytes as JSONL \
         (see phoenix_simcore::export for the Chrome-trace dump)",
        os.trace().events().count(),
        jsonl.len()
    );
}
