//! Block storage device models: a SATA disk and a floppy drive.
//!
//! Both expose a simple command/LBA/count/DMA register interface and
//! complete operations asynchronously after a modeled seek + transfer
//! delay, raising an IRQ. Disk contents are *synthetic*: unwritten blocks
//! read as a deterministic function of `(disk_seed, lba)`, and writes are
//! kept in a sparse overlay. This lets the Fig. 8 experiment read a 1 GB
//! "file filled with random data" without a gigabyte of host memory, while
//! the harness can independently compute the expected SHA-1.

use std::any::Any;
use std::collections::BTreeMap;

use phoenix_simcore::time::{SimDuration, SimTime};

use crate::bus::{DevCtx, Device};

/// Sector size in bytes.
pub const SECTOR: usize = 512;

/// Deterministic content of an unwritten sector.
///
/// A small xorshift keyed by `(seed, lba)`; the experiment harness uses the
/// same function to compute expected checksums.
pub fn synth_sector(seed: u64, lba: u64) -> Vec<u8> {
    let mut x = seed ^ lba.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5DEE_CE66_D1CE_4E5B;
    let mut out = Vec::with_capacity(SECTOR);
    for _ in 0..SECTOR / 8 {
        // xorshift64*
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        out.extend_from_slice(&x.wrapping_mul(0x2545_F491_4F6C_DD1D).to_le_bytes());
    }
    out
}

/// Pure storage model: capacity, synthetic base content, write overlay.
#[derive(Debug, Clone)]
pub struct DiskModel {
    sectors: u64,
    seed: u64,
    overlay: BTreeMap<u64, Vec<u8>>,
}

impl DiskModel {
    /// Creates a disk of `sectors` sectors with synthetic content derived
    /// from `seed`.
    pub fn new(sectors: u64, seed: u64) -> Self {
        DiskModel {
            sectors,
            seed,
            overlay: BTreeMap::new(),
        }
    }

    /// Number of sectors.
    pub fn sectors(&self) -> u64 {
        self.sectors
    }

    /// Reads one sector. Out-of-range LBAs return `None`.
    pub fn read(&self, lba: u64) -> Option<Vec<u8>> {
        if lba >= self.sectors {
            return None;
        }
        Some(
            self.overlay
                .get(&lba)
                .cloned()
                .unwrap_or_else(|| synth_sector(self.seed, lba)),
        )
    }

    /// Writes one sector. Returns `false` for out-of-range LBAs or short
    /// data.
    pub fn write(&mut self, lba: u64, data: &[u8]) -> bool {
        if lba >= self.sectors || data.len() != SECTOR {
            return false;
        }
        self.overlay.insert(lba, data.to_vec());
        true
    }

    /// Number of sectors that have ever been written.
    pub fn written_sectors(&self) -> usize {
        self.overlay.len()
    }
}

/// Common register map shared by both disk devices.
pub mod regs {
    /// Command: write one of the [`super::cmd`] codes to start an operation.
    pub const CMD: u16 = 0x00;
    /// Logical block address of the operation.
    pub const LBA: u16 = 0x04;
    /// Sector count (1..=256).
    pub const COUNT: u16 = 0x08;
    /// Device-side DMA address (inside the driver's IOMMU window).
    pub const DMA_ADDR: u16 = 0x0C;
    /// Status register.
    pub const STATUS: u16 = 0x10;
    /// Interrupt status (write-1-to-clear).
    pub const ISR: u16 = 0x14;
    /// Capacity in sectors (read-only).
    pub const CAPACITY: u16 = 0x18;
    /// Floppy only: motor control.
    pub const MOTOR: u16 = 0x1C;
}

/// Command codes.
pub mod cmd {
    /// Read `COUNT` sectors at `LBA` into `DMA_ADDR`.
    pub const READ: u32 = 1;
    /// Write `COUNT` sectors at `LBA` from `DMA_ADDR`.
    pub const WRITE: u32 = 2;
    /// Reset the controller, aborting any in-flight operation.
    pub const RESET: u32 = 3;
}

/// Status bits.
pub mod status {
    /// Controller ready for a command.
    pub const READY: u32 = 0x01;
    /// Operation in progress.
    pub const BUSY: u32 = 0x02;
    /// Last operation failed.
    pub const ERR: u32 = 0x04;
}

/// ISR bits.
pub mod disk_isr {
    /// Operation completed successfully.
    pub const DONE: u32 = 0x01;
    /// Operation failed (bad LBA, DMA fault, motor off).
    pub const FAIL: u32 = 0x02;
}

/// Timing and behavior parameters for a disk device.
#[derive(Debug, Clone)]
pub struct DiskTiming {
    /// Sustained media transfer rate, bytes/second.
    pub rate: u64,
    /// Fixed per-command overhead (seek + controller latency).
    pub overhead: SimDuration,
    /// Whether the device needs the motor spun up (floppy).
    pub needs_motor: bool,
    /// Motor spin-up time (floppy).
    pub spinup: SimDuration,
    /// Time after a controller reset before commands proceed (SATA link
    /// renegotiation). A restarted driver resets the controller, so every
    /// recovery pays this — the dominant term in Fig. 8's overhead.
    pub reset_settle: SimDuration,
}

impl DiskTiming {
    /// 2007-era SATA disk: ~33 MB/s sustained sequential, sub-ms overhead,
    /// ~half a second of link renegotiation after a controller reset.
    pub fn sata() -> Self {
        DiskTiming {
            rate: 33_000_000,
            overhead: SimDuration::from_micros(150),
            needs_motor: false,
            spinup: SimDuration::ZERO,
            reset_settle: SimDuration::from_millis(500),
        }
    }

    /// 3.5" floppy: ~60 KB/s, long seeks, motor spin-up.
    pub fn floppy() -> Self {
        DiskTiming {
            rate: 60_000,
            overhead: SimDuration::from_millis(80),
            needs_motor: true,
            spinup: SimDuration::from_millis(300),
            reset_settle: SimDuration::ZERO,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Pending {
    None,
    Read { lba: u64, count: u32, dma: u64 },
    Write { lba: u64, count: u32, dma: u64 },
}

/// A disk controller device (used for both SATA and floppy with different
/// [`DiskTiming`]).
#[derive(Debug)]
pub struct DiskDevice {
    model: DiskModel,
    timing: DiskTiming,
    name: &'static str,
    lba: u32,
    count: u32,
    dma: u32,
    isr: u32,
    err: bool,
    motor_on: bool,
    pending: Pending,
    /// Commands issued before this instant stall until the link settles.
    link_ready_at: SimTime,
    /// Incremented on reset so late timers from an aborted op are ignored.
    op_epoch: u64,
    ops_done: u64,
    ops_failed: u64,
}

impl DiskDevice {
    /// Creates a SATA disk of `sectors` sectors.
    pub fn sata(sectors: u64, seed: u64) -> Self {
        Self::new("sata", DiskModel::new(sectors, seed), DiskTiming::sata())
    }

    /// Creates a 1.44 MB floppy.
    pub fn floppy(seed: u64) -> Self {
        Self::new("floppy", DiskModel::new(2880, seed), DiskTiming::floppy())
    }

    /// Creates a disk with explicit model and timing.
    pub fn new(name: &'static str, model: DiskModel, timing: DiskTiming) -> Self {
        DiskDevice {
            model,
            timing,
            name,
            lba: 0,
            count: 0,
            dma: 0,
            isr: 0,
            err: false,
            motor_on: false,
            pending: Pending::None,
            link_ready_at: SimTime::ZERO,
            op_epoch: 0,
            ops_done: 0,
            ops_failed: 0,
        }
    }

    /// The underlying storage model (test/harness access).
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Mutable storage model access (e.g. for mkfs-style preparation).
    pub fn model_mut(&mut self) -> &mut DiskModel {
        &mut self.model
    }

    /// Completed operations.
    pub fn ops_done(&self) -> u64 {
        self.ops_done
    }

    /// Failed operations.
    pub fn ops_failed(&self) -> u64 {
        self.ops_failed
    }

    fn fail(&mut self, ctx: &mut DevCtx<'_, '_>) {
        self.err = true;
        self.pending = Pending::None;
        self.ops_failed += 1;
        self.isr |= disk_isr::FAIL;
        ctx.raise_irq();
    }

    fn start(&mut self, ctx: &mut DevCtx<'_, '_>, write: bool) {
        if self.pending != Pending::None {
            // Command while busy: reject.
            self.fail(ctx);
            return;
        }
        if self.timing.needs_motor && !self.motor_on {
            self.fail(ctx);
            return;
        }
        let count = self.count.clamp(1, 256);
        let lba = u64::from(self.lba);
        if lba + u64::from(count) > self.model.sectors() {
            self.fail(ctx);
            return;
        }
        let dma = u64::from(self.dma);
        self.pending = if write {
            Pending::Write { lba, count, dma }
        } else {
            Pending::Read { lba, count, dma }
        };
        self.err = false;
        let bytes = u64::from(count) * SECTOR as u64;
        // Stall behind any in-progress link renegotiation after a reset.
        let settle = self.link_ready_at.since(ctx.now());
        let delay =
            settle + self.timing.overhead + SimDuration::for_transfer(bytes, self.timing.rate);
        ctx.set_timer_after(delay, self.op_epoch);
    }
}

impl Device for DiskDevice {
    fn name(&self) -> &str {
        self.name
    }

    fn read(&mut self, _ctx: &mut DevCtx<'_, '_>, reg: u16) -> u32 {
        match reg {
            regs::STATUS => {
                let mut s = 0;
                match self.pending {
                    Pending::None => s |= status::READY,
                    _ => s |= status::BUSY,
                }
                if self.err {
                    s |= status::ERR;
                }
                s
            }
            regs::ISR => self.isr,
            regs::LBA => self.lba,
            regs::COUNT => self.count,
            regs::DMA_ADDR => self.dma,
            regs::CAPACITY => self.model.sectors() as u32,
            regs::MOTOR => u32::from(self.motor_on),
            _ => 0,
        }
    }

    fn write(&mut self, ctx: &mut DevCtx<'_, '_>, reg: u16, value: u32) {
        match reg {
            regs::LBA => self.lba = value,
            regs::COUNT => self.count = value,
            regs::DMA_ADDR => self.dma = value,
            regs::ISR => self.isr &= !value,
            regs::MOTOR => {
                self.motor_on = value != 0;
            }
            regs::CMD => match value {
                cmd::READ => self.start(ctx, false),
                cmd::WRITE => self.start(ctx, true),
                cmd::RESET => {
                    // Abort any in-flight operation; a timer from the old
                    // epoch will be ignored. Disk I/O stays idempotent, so
                    // the restarted driver simply reissues the request.
                    // SATA link renegotiation stalls subsequent commands.
                    self.op_epoch += 1;
                    self.pending = Pending::None;
                    self.err = false;
                    self.isr = 0;
                    self.link_ready_at = ctx.now() + self.timing.reset_settle;
                }
                _ => {}
            },
            _ => {}
        }
    }

    fn timer(&mut self, ctx: &mut DevCtx<'_, '_>, token: u64) {
        if token != self.op_epoch {
            return; // aborted by reset
        }
        match self.pending {
            Pending::None => {}
            Pending::Read { lba, count, dma } => {
                for i in 0..u64::from(count) {
                    let sector = self.model.read(lba + i).expect("range checked at start");
                    if ctx.dma_write(dma + i * SECTOR as u64, &sector).is_err() {
                        self.fail(ctx);
                        return;
                    }
                }
                self.pending = Pending::None;
                self.ops_done += 1;
                self.isr |= disk_isr::DONE;
                ctx.raise_irq();
            }
            Pending::Write { lba, count, dma } => {
                let mut buf = vec![0u8; SECTOR];
                for i in 0..u64::from(count) {
                    if ctx.dma_read(dma + i * SECTOR as u64, &mut buf).is_err() {
                        self.fail(ctx);
                        return;
                    }
                    self.model.write(lba + i, &buf);
                }
                self.pending = Pending::None;
                self.ops_done += 1;
                self.isr |= disk_isr::DONE;
                ctx.raise_irq();
            }
        }
    }

    fn hard_reset(&mut self) {
        self.op_epoch += 1;
        self.pending = Pending::None;
        self.err = false;
        self.isr = 0;
        self.motor_on = false;
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_sector_is_deterministic_and_distinct() {
        assert_eq!(synth_sector(1, 5), synth_sector(1, 5));
        assert_ne!(synth_sector(1, 5), synth_sector(1, 6));
        assert_ne!(synth_sector(1, 5), synth_sector(2, 5));
        assert_eq!(synth_sector(1, 5).len(), SECTOR);
    }

    #[test]
    fn model_overlay_shadows_synthetic_content() {
        let mut m = DiskModel::new(10, 42);
        let base = m.read(3).unwrap();
        let new = vec![0xAB; SECTOR];
        assert!(m.write(3, &new));
        assert_eq!(m.read(3).unwrap(), new);
        assert_ne!(m.read(3).unwrap(), base);
        assert_eq!(m.read(4).unwrap(), synth_sector(42, 4));
        assert_eq!(m.written_sectors(), 1);
    }

    #[test]
    fn model_bounds() {
        let mut m = DiskModel::new(4, 0);
        assert!(m.read(4).is_none());
        assert!(!m.write(4, &vec![0; SECTOR]));
        assert!(!m.write(0, b"short"));
    }
}
