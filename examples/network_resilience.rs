//! The Fig. 4 / Fig. 7 scenario: `wget` downloads a file from a remote
//! peer while the Ethernet driver is repeatedly killed. TCP-style
//! retransmission masks every outage; the download completes with an
//! intact MD5 and the user never notices beyond a throughput dip.
//!
//! Run with: `cargo run --release --example network_resilience`

use std::cell::RefCell;
use std::rc::Rc;

use phoenix::apps::{Wget, WgetStatus};
use phoenix::os::{names, NicKind, Os};
use phoenix_servers::netproto::stream_md5;
use phoenix_simcore::time::SimDuration;

fn main() {
    let size: u64 = 50_000_000; // 50 MB download
    let content_seed = 1234;
    let kill_interval = SimDuration::from_secs(1);

    let mut os = Os::builder().seed(42).with_network(NicKind::Rtl8139).boot();
    let inet = os.endpoint(names::INET).expect("inet up");
    let status = Rc::new(RefCell::new(WgetStatus::default()));
    let start = os.now();
    os.spawn_app(
        "wget",
        Box::new(Wget::new(inet, size, content_seed, status.clone())),
    );
    println!(
        "downloading {} MB while killing {} every {kill_interval} ...",
        size / 1_000_000,
        names::ETH_RTL8139
    );

    let mut kills = 0;
    let mut next_kill = start + kill_interval;
    while !status.borrow().done {
        os.run_for(SimDuration::from_millis(100));
        if os.now() >= next_kill && !status.borrow().done {
            if os.kill_by_user(names::ETH_RTL8139) {
                kills += 1;
                println!("  t={} kill #{kills}", os.now());
            }
            next_kill = os.now() + kill_interval;
        }
    }

    let st = status.borrow();
    let elapsed = st.finished_at.expect("done").since(start);
    let expected = stream_md5(content_seed, size);
    println!(
        "\ndownload finished in {elapsed} ({:.2} MB/s)",
        size as f64 / 1e6 / elapsed.as_secs_f64()
    );
    println!(
        "driver kills: {kills}, recoveries: {}",
        os.metrics().counter("rs.recoveries")
    );
    println!("md5 received: {}", st.md5.as_deref().unwrap_or("?"));
    println!("md5 expected: {expected}");
    assert_eq!(
        st.md5.as_deref(),
        Some(expected.as_str()),
        "no data corruption"
    );
    println!("=> transparent recovery: every byte intact");
    if !st.gaps.is_empty() {
        let mean: f64 =
            st.gaps.iter().map(|(_, g)| g.as_secs_f64()).sum::<f64>() / st.gaps.len() as f64;
        println!("mean data-flow gap per kill: {mean:.2}s (paper reports 0.48s)");
    }
}
