//! Deterministic trace exporters: JSONL and Chrome-trace-format dumps.
//!
//! Both formats are emitted with a hand-rolled writer (the workspace takes
//! no serialization dependency) in a fixed key order, so two same-seed runs
//! produce byte-identical output. Timestamps are virtual microseconds —
//! Chrome's `about:tracing` / Perfetto render the simulation clock directly.
//!
//! A minimal parser for the JSONL schema is included so CI can round-trip
//! every export (`parse_jsonl(export_jsonl(events)) == events`), catching
//! writer/escaping regressions without external tooling.

use std::fmt::Write as _;

use crate::obs::Timeline;
use crate::trace::{FieldValue, RecoveryId, SpanId, TraceEvent, TraceLevel};

// ---------------------------------------------------------------------------
// JSON string escaping

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// JSONL export

/// Serializes one event as a single JSON line (no trailing newline).
///
/// Key order is fixed: `at`, `level`, `component`, `message`, then
/// optionally `fields` (an object in author order), `recovery`, `span`,
/// `parent` — absent keys are omitted entirely.
pub fn event_to_json(e: &TraceEvent) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"at\":");
    let _ = write!(out, "{}", e.at.as_micros());
    out.push_str(",\"level\":");
    escape_into(&mut out, &e.level.to_string());
    out.push_str(",\"component\":");
    escape_into(&mut out, &e.component);
    out.push_str(",\"message\":");
    escape_into(&mut out, &e.message);
    if !e.fields.is_empty() {
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in e.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, k);
            out.push(':');
            match v {
                FieldValue::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                FieldValue::Str(s) => escape_into(&mut out, s),
            }
        }
        out.push('}');
    }
    if let Some(rid) = e.recovery {
        let _ = write!(out, ",\"recovery\":{}", rid.as_u64());
    }
    if let Some(span) = e.span {
        let _ = write!(out, ",\"span\":{}", span.as_u64());
    }
    if let Some(parent) = e.parent {
        let _ = write!(out, ",\"parent\":{}", parent.as_u64());
    }
    out.push('}');
    out
}

/// Serializes events as JSONL: one JSON object per line, oldest first.
// analyze:recovery-root
pub fn export_jsonl<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_to_json(e));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// JSONL parsing (round-trip check)

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn parse_u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad utf8 in number"))?
            .parse::<u64>()
            .map_err(|_| self.err("number out of range"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad utf8 in \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad hex in \\u escape"))?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("non-scalar \\u escape"))?;
                            out.push(c);
                            self.pos += 3; // the final +1 below consumes the 4th digit
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("bad utf8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the `fields` object: string keys, number-or-string values.
    fn parse_fields(&mut self) -> Result<Vec<(String, FieldValue)>, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.eat(b':')?;
            self.skip_ws();
            let value = if self.peek() == Some(b'"') {
                FieldValue::Str(self.parse_string()?)
            } else {
                FieldValue::U64(self.parse_u64()?)
            };
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                _ => return Err(self.err("expected ',' or '}' in fields")),
            }
        }
    }
}

fn level_from_str(s: &str) -> Result<TraceLevel, String> {
    match s {
        "DEBUG" => Ok(TraceLevel::Debug),
        "INFO" => Ok(TraceLevel::Info),
        "WARN" => Ok(TraceLevel::Warn),
        "ERROR" => Ok(TraceLevel::Error),
        other => Err(format!("unknown level {other:?}")),
    }
}

/// Parses one JSON line produced by [`event_to_json`].
pub fn event_from_json(line: &str) -> Result<TraceEvent, String> {
    let mut p = Parser::new(line);
    p.eat(b'{')?;
    let mut at = None;
    let mut level = None;
    let mut component = None;
    let mut message = None;
    let mut fields = Vec::new();
    let mut recovery = None;
    let mut span = None;
    let mut parent = None;
    loop {
        p.skip_ws();
        if p.peek() == Some(b'}') {
            break;
        }
        let key = p.parse_string()?;
        p.eat(b':')?;
        match key.as_str() {
            "at" => at = Some(p.parse_u64()?),
            "level" => level = Some(level_from_str(&p.parse_string()?)?),
            "component" => component = Some(p.parse_string()?),
            "message" => message = Some(p.parse_string()?),
            "fields" => fields = p.parse_fields()?,
            "recovery" => recovery = RecoveryId::from_wire(p.parse_u64()?),
            "span" => span = SpanId::from_wire(p.parse_u64()?),
            "parent" => parent = SpanId::from_wire(p.parse_u64()?),
            other => return Err(format!("unknown key {other:?}")),
        }
        p.skip_ws();
        match p.peek() {
            Some(b',') => p.pos += 1,
            Some(b'}') => break,
            _ => return Err(p.err("expected ',' or '}'")),
        }
    }
    let mut e = TraceEvent::new(
        crate::time::SimTime::from_micros(at.ok_or("missing 'at'")?),
        level.ok_or("missing 'level'")?,
        component.ok_or("missing 'component'")?,
        message.ok_or("missing 'message'")?,
    );
    e.fields = fields;
    e.recovery = recovery;
    e.span = span;
    e.parent = parent;
    Ok(e)
}

/// Parses a full JSONL export back into events. Fails on the first
/// malformed line (1-based line number in the error).
// analyze:recovery-root
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(event_from_json(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(events)
}

// ---------------------------------------------------------------------------
// Chrome trace format

/// Renders a [`Timeline`] as a Chrome-trace-format JSON array (load in
/// `about:tracing` or Perfetto). Each service gets a virtual thread; each
/// episode contributes one complete (`ph:"X"`) slice per phase, plus an
/// instant marker at the defect. Timestamps are virtual microseconds.
// analyze:recovery-root
pub fn export_chrome_trace(timeline: &Timeline) -> String {
    let mut out = String::from("[");
    let mut first = true;
    let mut emit = |obj: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&obj);
    };
    // Thread-name metadata: one virtual thread per service, tids assigned
    // in first-appearance order (deterministic: episodes are rid-ordered).
    let mut tids: Vec<String> = Vec::new();
    let tid_of = |service: &str, tids: &mut Vec<String>| -> usize {
        match tids.iter().position(|s| s == service) {
            Some(i) => i + 1,
            None => {
                tids.push(service.to_string());
                tids.len()
            }
        }
    };
    let mut body = String::new();
    for ep in &timeline.episodes {
        let service = if ep.service.is_empty() {
            "?"
        } else {
            &ep.service
        };
        let tid = tid_of(service, &mut tids);
        let mut esc_service = String::new();
        escape_into(&mut esc_service, service);
        let mut esc_class = String::new();
        escape_into(
            &mut esc_class,
            if ep.class.is_empty() { "?" } else { &ep.class },
        );
        let args = format!(
            "{{\"rid\":{},\"service\":{esc_service},\"class\":{esc_class}}}",
            ep.rid.as_u64()
        );
        if let Some(noticed) = ep.noticed_at {
            emit(
                format!(
                    "{{\"name\":\"defect\",\"cat\":\"recovery\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{},\"pid\":1,\"tid\":{tid},\"args\":{args}}}",
                    ep.defect_at.unwrap_or(noticed).as_micros()
                ),
                &mut body,
            );
            if let Some(d) = ep.detection() {
                emit(
                    format!(
                        "{{\"name\":\"detect\",\"cat\":\"recovery\",\"ph\":\"X\",\
                         \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid},\"args\":{args}}}",
                        ep.defect_at.unwrap_or(noticed).as_micros(),
                        d.as_micros()
                    ),
                    &mut body,
                );
            }
        }
        if let (Some(noticed), Some(d)) = (ep.noticed_at, ep.repair()) {
            emit(
                format!(
                    "{{\"name\":\"repair\",\"cat\":\"recovery\",\"ph\":\"X\",\
                     \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid},\"args\":{args}}}",
                    noticed.as_micros(),
                    d.as_micros()
                ),
                &mut body,
            );
        }
        if let (Some(published), Some(d)) = (ep.published_at, ep.reintegration()) {
            emit(
                format!(
                    "{{\"name\":\"reintegrate\",\"cat\":\"recovery\",\"ph\":\"X\",\
                     \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid},\"args\":{args}}}",
                    published.as_micros(),
                    d.as_micros()
                ),
                &mut body,
            );
        }
    }
    for (i, service) in tids.iter().enumerate() {
        let mut esc = String::new();
        escape_into(&mut esc, service);
        emit(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":{esc}}}}}",
                i + 1
            ),
            &mut body,
        );
    }
    out.push_str(&body);
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{fold_timeline, kind};
    use crate::time::SimTime;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::new(
                SimTime::from_micros(100),
                TraceLevel::Warn,
                "kernel",
                "died",
            )
            .with_field("ev", kind::DEATH)
            .with_field("proc", "eth.rtl8139"),
            TraceEvent::new(
                SimTime::from_micros(110),
                TraceLevel::Warn,
                "rs",
                "defect in eth.rtl8139: \"exit\"\n(failure #1)",
            )
            .with_field("ev", kind::DEFECT)
            .with_field("service", "eth.rtl8139")
            .with_field("class", "exit")
            .in_recovery(RecoveryId(1))
            .with_span(SpanId(4)),
            TraceEvent::new(SimTime::from_micros(500), TraceLevel::Info, "rs", "alive")
                .with_field("ev", kind::ALIVE)
                .in_recovery(RecoveryId(1))
                .with_span(SpanId(5))
                .with_parent(SpanId(4)),
            TraceEvent::new(SimTime::from_micros(510), TraceLevel::Info, "ds", "publish")
                .with_field("ev", kind::PUBLISH)
                .in_recovery(RecoveryId(1)),
            TraceEvent::new(
                SimTime::from_micros(900),
                TraceLevel::Info,
                "inet",
                "resumed",
            )
            .with_field("ev", kind::RESUME)
            .in_recovery(RecoveryId(1)),
        ]
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let events = sample_events();
        let jsonl = export_jsonl(events.iter());
        let parsed = parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed, events);
        // And the re-export is byte-identical.
        assert_eq!(export_jsonl(parsed.iter()), jsonl);
    }

    #[test]
    fn jsonl_escapes_specials() {
        let e = TraceEvent::new(
            SimTime::from_micros(1),
            TraceLevel::Info,
            "c\\o",
            "say \"hi\"\tnow\n\u{1}",
        )
        .with_field("k\"ey", "v\\al");
        let line = event_to_json(&e);
        let back = event_from_json(&line).unwrap();
        assert_eq!(back, e);
        assert!(line.contains("\\u0001"));
    }

    #[test]
    fn jsonl_omits_absent_identity() {
        let e = TraceEvent::new(SimTime::from_micros(1), TraceLevel::Info, "c", "m");
        let line = event_to_json(&e);
        assert!(!line.contains("recovery"));
        assert!(!line.contains("fields"));
        assert_eq!(event_from_json(&line).unwrap(), e);
    }

    #[test]
    fn parse_rejects_garbage_with_line_number() {
        let err = parse_jsonl("{\"at\":1}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}"); // line 1 lacks keys
        let err = parse_jsonl(
            "{\"at\":1,\"level\":\"INFO\",\"component\":\"c\",\"message\":\"m\"}\nnope\n",
        )
        .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn chrome_trace_contains_phases_and_thread_names() {
        let events = sample_events();
        let tl = fold_timeline(events.iter());
        let json = export_chrome_trace(&tl);
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        for needle in [
            "\"name\":\"detect\"",
            "\"name\":\"repair\"",
            "\"name\":\"reintegrate\"",
            "\"name\":\"thread_name\"",
            "\"eth.rtl8139\"",
            "\"ph\":\"X\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn chrome_trace_of_empty_timeline_is_valid() {
        let tl = fold_timeline(std::iter::empty());
        let json = export_chrome_trace(&tl);
        assert_eq!(json, "[\n]\n");
    }
}
