//! Recovery timeline: phase-resolved MTTR under the standard chaos
//! campaign.
//!
//! Runs the chaos campaign (repeated kills of the network and block
//! drivers under a hostile IPC fabric), folds the causal trace into
//! per-episode phase timings — detection, repair, reintegration — and
//! emits a phase-breakdown report plus deterministic JSONL and
//! Chrome-trace exports into `results/`.
//!
//! The binary is also a regression gate (CI runs it with `--quick`):
//!
//! * every scripted kill must reconstruct into an accounted episode
//!   (complete, superseded by a later one, or explicitly given up);
//! * every complete episode must have all three phases;
//! * two same-seed runs must export byte-identical JSONL;
//! * the JSONL export must parse back losslessly.
//!
//! Any violation exits non-zero.

use std::fmt::Write as _;
use std::process::ExitCode;

use phoenix::campaign::{run_chaos_campaign_traced, ChaosCampaignConfig};
use phoenix::Os;
use phoenix_bench::{print_table, quick_mode, workspace_root};
use phoenix_simcore::export::{export_chrome_trace, export_jsonl, parse_jsonl};
use phoenix_simcore::time::SimDuration;

fn cfg(quick: bool) -> ChaosCampaignConfig {
    ChaosCampaignConfig {
        seed: 2007,
        intensity: 1.0,
        // 2 targets (network + block driver), so 50 rounds = the 100-fault
        // campaign of the acceptance bar; --quick scales to 6 faults.
        kills_per_target: if quick { 3 } else { 50 },
        kill_interval: SimDuration::from_secs(2),
        mid_recovery_kill: false,
        ..ChaosCampaignConfig::default()
    }
}

fn phase_rows(os: &mut Os) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for phase in ["detect", "repair", "reintegrate", "total"] {
        let name = format!("recovery.phase.{phase}");
        let h = os.metrics_mut().histogram_mut(&name);
        if h.count() == 0 {
            continue;
        }
        let fmt = |d: Option<SimDuration>| match d {
            Some(d) => format!("{d}"),
            None => "-".to_string(),
        };
        rows.push(vec![
            phase.to_string(),
            format!("{}", h.count()),
            fmt(h.mean_duration()),
            fmt(h.quantile_duration(0.5)),
            fmt(h.quantile_duration(0.95)),
            fmt(h.max_duration()),
        ]);
    }
    rows
}

fn main() -> ExitCode {
    let quick = quick_mode();
    let cfg = cfg(quick);
    println!(
        "recovery timeline — phase-resolved MTTR over the chaos campaign \
         ({} scripted kills{})\n",
        2 * cfg.kills_per_target,
        if quick { ", --quick" } else { "" },
    );

    // Two same-seed runs: the second exists only to check determinism.
    let (result, os) = run_chaos_campaign_traced(&cfg);
    let (_, os2) = run_chaos_campaign_traced(&cfg);
    let jsonl = export_jsonl(os.trace().events());
    let jsonl2 = export_jsonl(os2.trace().events());
    let mut os = os;

    let mut failures = Vec::new();
    if jsonl != jsonl2 {
        failures.push("same-seed runs exported different JSONL traces".to_string());
    }
    match parse_jsonl(&jsonl) {
        Ok(parsed) => {
            if export_jsonl(parsed.iter()) != jsonl {
                failures.push("JSONL round-trip is lossy".to_string());
            }
        }
        Err(e) => failures.push(format!("JSONL export failed to parse back: {e}")),
    }

    let timeline = os.timeline();
    println!("{}", result.render());
    println!();
    println!("{}", timeline.render());

    let expected = result.kills.iter().filter(|k| k.recovered).count();
    if timeline.complete_count() < expected {
        failures.push(format!(
            "only {} complete episodes for {} recovered kills",
            timeline.complete_count(),
            expected
        ));
    }
    for ep in timeline.unaccounted() {
        failures.push(format!("unaccounted episode: {}", ep.render()));
    }
    for ep in timeline.episodes.iter().filter(|e| e.complete()) {
        if ep.detection().is_none() || ep.repair().is_none() || ep.reintegration().is_none() {
            failures.push(format!("episode missing a phase: {}", ep.render()));
        }
    }
    if result.trace_dropped > 0 {
        println!(
            "WARNING: {} trace events lost to ring eviction; the timeline \
             above may be missing episodes",
            result.trace_dropped
        );
    }

    let headers = ["phase", "episodes", "mean", "p50", "p95", "max"];
    let rows = phase_rows(&mut os);
    print_table(&headers, &rows);

    // ---- report + exports into results/ ----
    let mut report = String::new();
    let _ = writeln!(report, "{}", result.render());
    let _ = writeln!(report);
    let _ = writeln!(report, "{}", timeline.render());
    for row in &rows {
        let _ = writeln!(report, "{}", row.join("  "));
    }
    let suffix = if quick { "_quick" } else { "" };
    let dir = workspace_root().join("results");
    let _ = std::fs::create_dir_all(&dir);
    let write = |name: &str, data: &str| {
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, data) {
            eprintln!("failed to write {}: {e}", path.display());
        } else {
            println!("wrote {}", path.display());
        }
    };
    println!();
    write(&format!("recovery_timeline{suffix}.txt"), &report);
    write(&format!("recovery_timeline{suffix}.jsonl"), &jsonl);
    write(
        &format!("recovery_timeline{suffix}.trace.json"),
        &export_chrome_trace(&timeline),
    );

    if failures.is_empty() {
        println!("\nall gates passed: every kill reconstructed, phases complete,");
        println!("same-seed exports byte-identical, JSONL round-trips losslessly");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("GATE FAILED: {f}");
        }
        ExitCode::FAILURE
    }
}
