//! Discrete-event simulation substrate for the Phoenix failure-resilient OS.
//!
//! This crate contains everything the simulated operating system needs that
//! is not operating-system specific:
//!
//! * [`time`] — a virtual clock ([`SimTime`], [`SimDuration`]) decoupled from
//!   wall-clock time so every experiment is deterministic and can model
//!   second-scale I/O transfers in milliseconds of host time.
//! * [`event`] — a cancellable priority event queue, the heart of the
//!   discrete-event engine.
//! * [`rng`] — a seedable, splittable random number generator wrapper so that
//!   fault-injection campaigns are reproducible.
//! * [`metrics`] — counters, histograms and time series used by the
//!   experiment harness to regenerate the paper's figures.
//! * [`trace`] — a lightweight bounded trace ring used for debugging and for
//!   asserting recovery-order properties in tests; events carry typed fields
//!   and causal identity (spans, recovery correlation tokens).
//! * [`obs`] — folds a trace into per-recovery-episode phase timings
//!   (detection / repair / reintegration latency, §7.1).
//! * [`export`] — deterministic JSONL and Chrome-trace-format dumps of a
//!   trace, with a round-trip parser for CI checks.
//! * [`digest`] — minimal MD5 and SHA-1 implementations used to verify data
//!   integrity across driver crashes, mirroring the paper's use of `md5sum`
//!   (Fig. 7) and `sha1sum` (Fig. 8).
//!
//! # Example
//!
//! ```
//! use phoenix_simcore::event::EventQueue;
//! use phoenix_simcore::time::{SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule_after(SimDuration::from_millis(5), "world");
//! q.schedule_after(SimDuration::from_millis(1), "hello");
//! let (t1, e1) = q.pop().unwrap();
//! let (t2, e2) = q.pop().unwrap();
//! assert_eq!((e1, e2), ("hello", "world"));
//! assert!(t1 < t2);
//! assert_eq!(q.now(), SimTime::ZERO + SimDuration::from_millis(5));
//! ```

pub mod digest;
pub mod event;
pub mod export;
pub mod metrics;
pub mod obs;
pub mod rng;
pub mod time;
pub mod trace;

pub use event::{EventId, EventQueue};
pub use export::{export_chrome_trace, export_jsonl, parse_jsonl};
pub use metrics::{Counter, Histogram, MetricsRegistry, TimeSeries};
pub use obs::{fold_timeline, Episode, Timeline};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{FieldValue, RecoveryId, SpanId, TraceEvent, TraceLevel, TraceRing};
