//! Process address spaces, memory grants, and the I/O MMU.
//!
//! §4 of the paper: processes live in private, hardware-protected address
//! spaces; selective sharing happens through *capabilities* describing a
//! precise memory area and access rights ("virtual copy"); DMA is made safe
//! by an I/O MMU window that the driver must explicitly set up via a kernel
//! call before programming the device.

use std::collections::BTreeMap;
use std::fmt;

use crate::types::{DeviceId, Endpoint, KernelError, Slot};

/// Access rights carried by a memory grant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GrantAccess {
    /// Grantee may read the region.
    Read,
    /// Grantee may write the region.
    Write,
    /// Grantee may read and write the region.
    ReadWrite,
}

impl GrantAccess {
    fn allows_read(self) -> bool {
        matches!(self, GrantAccess::Read | GrantAccess::ReadWrite)
    }
    fn allows_write(self) -> bool {
        matches!(self, GrantAccess::Write | GrantAccess::ReadWrite)
    }
}

/// A capability referring to a region of the *granter's* memory.
///
/// Grant ids are only meaningful together with the granter's endpoint; a
/// granter restart invalidates all its grants because the endpoint
/// generation no longer matches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GrantId(pub u32);

#[derive(Clone, Debug)]
struct Grant {
    grantee: Endpoint,
    offset: usize,
    len: usize,
    access: GrantAccess,
}

/// One process's private memory plus its outstanding grants.
#[derive(Debug, Default)]
struct Space {
    mem: Vec<u8>,
    owner: Option<Endpoint>,
    grants: BTreeMap<GrantId, Grant>,
    next_grant: u32,
}

/// An I/O MMU window authorizing one device to DMA into a region of one
/// process's address space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IommuWindow {
    /// The process whose memory is exposed.
    pub owner: Endpoint,
    /// Device-visible base address of the window.
    pub base: u64,
    /// Offset of the window within the owner's address space.
    pub offset: usize,
    /// Window length in bytes.
    pub len: usize,
}

/// DMA failures surfaced to device models.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DmaFault {
    /// The device has no mapped window.
    NoWindow,
    /// The access fell outside the mapped window.
    OutOfWindow,
    /// The window's owning process has exited or restarted.
    StaleOwner,
}

impl fmt::Display for DmaFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DmaFault::NoWindow => "no IOMMU window mapped for device",
            DmaFault::OutOfWindow => "DMA access outside IOMMU window",
            DmaFault::StaleOwner => "IOMMU window owner is gone",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DmaFault {}

/// All process address spaces, grants, and IOMMU state.
///
/// Owned by the kernel; device models reach it through [`crate::platform::HwCtx`]
/// so that every DMA access is IOMMU-checked.
#[derive(Debug, Default)]
pub struct MemoryPool {
    spaces: Vec<Space>,
    iommu: BTreeMap<DeviceId, IommuWindow>,
}

impl MemoryPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    fn space(&self, slot: Slot) -> Option<&Space> {
        self.spaces.get(slot as usize)
    }

    fn space_mut(&mut self, slot: Slot) -> Option<&mut Space> {
        self.spaces.get_mut(slot as usize)
    }

    /// Attaches a fresh address space of `size` bytes for `owner`.
    pub fn attach(&mut self, owner: Endpoint, size: usize) {
        let idx = owner.slot() as usize;
        if self.spaces.len() <= idx {
            self.spaces.resize_with(idx + 1, Space::default);
        }
        self.spaces[idx] = Space {
            mem: vec![0; size],
            owner: Some(owner),
            grants: BTreeMap::new(),
            next_grant: 1,
        };
    }

    /// Tears down the address space of a dead process: memory freed, all its
    /// grants revoked, and any IOMMU windows it owned unmapped — so a device
    /// can never DMA into a recycled slot.
    pub fn detach(&mut self, owner: Endpoint) {
        if let Some(sp) = self.space_mut(owner.slot()) {
            if sp.owner == Some(owner) {
                *sp = Space::default();
            }
        }
        self.iommu.retain(|_, w| w.owner != owner);
    }

    fn live_space_of(&self, ep: Endpoint) -> Result<&Space, KernelError> {
        let sp = self.space(ep.slot()).ok_or(KernelError::BadEndpoint)?;
        if sp.owner == Some(ep) {
            Ok(sp)
        } else {
            Err(KernelError::BadEndpoint)
        }
    }

    fn live_space_of_mut(&mut self, ep: Endpoint) -> Result<&mut Space, KernelError> {
        let sp = self.space_mut(ep.slot()).ok_or(KernelError::BadEndpoint)?;
        if sp.owner == Some(ep) {
            Ok(sp)
        } else {
            Err(KernelError::BadEndpoint)
        }
    }

    /// Reads `len` bytes at `offset` from `ep`'s own memory.
    pub fn read_own(&self, ep: Endpoint, offset: usize, len: usize) -> Result<&[u8], KernelError> {
        let sp = self.live_space_of(ep)?;
        sp.mem
            .get(offset..offset.checked_add(len).ok_or(KernelError::BadRange)?)
            .ok_or(KernelError::BadRange)
    }

    /// Writes `data` at `offset` into `ep`'s own memory.
    pub fn write_own(
        &mut self,
        ep: Endpoint,
        offset: usize,
        data: &[u8],
    ) -> Result<(), KernelError> {
        let sp = self.live_space_of_mut(ep)?;
        let end = offset
            .checked_add(data.len())
            .ok_or(KernelError::BadRange)?;
        let dst = sp.mem.get_mut(offset..end).ok_or(KernelError::BadRange)?;
        dst.copy_from_slice(data);
        Ok(())
    }

    /// Size of `ep`'s address space.
    pub fn size_of(&self, ep: Endpoint) -> Result<usize, KernelError> {
        Ok(self.live_space_of(ep)?.mem.len())
    }

    /// Creates a grant on `granter`'s memory for `grantee`.
    pub fn grant_create(
        &mut self,
        granter: Endpoint,
        grantee: Endpoint,
        offset: usize,
        len: usize,
        access: GrantAccess,
    ) -> Result<GrantId, KernelError> {
        let sp = self.live_space_of_mut(granter)?;
        let end = offset.checked_add(len).ok_or(KernelError::BadRange)?;
        if end > sp.mem.len() {
            return Err(KernelError::BadRange);
        }
        let id = GrantId(sp.next_grant);
        sp.next_grant += 1;
        sp.grants.insert(
            id,
            Grant {
                grantee,
                offset,
                len,
                access,
            },
        );
        Ok(id)
    }

    /// Revokes a grant previously created by `granter`.
    pub fn grant_revoke(&mut self, granter: Endpoint, id: GrantId) -> Result<(), KernelError> {
        let sp = self.live_space_of_mut(granter)?;
        sp.grants
            .remove(&id)
            .map(|_| ())
            .ok_or(KernelError::BadGrant)
    }

    fn check_grant(
        &self,
        granter: Endpoint,
        id: GrantId,
        caller: Endpoint,
        offset: usize,
        len: usize,
        write: bool,
    ) -> Result<usize, KernelError> {
        let sp = self.live_space_of(granter)?;
        let g = sp.grants.get(&id).ok_or(KernelError::BadGrant)?;
        if g.grantee != caller {
            return Err(KernelError::BadGrant);
        }
        let ok = if write {
            g.access.allows_write()
        } else {
            g.access.allows_read()
        };
        if !ok {
            return Err(KernelError::BadGrant);
        }
        let end = offset.checked_add(len).ok_or(KernelError::BadRange)?;
        if end > g.len {
            return Err(KernelError::BadRange);
        }
        Ok(g.offset + offset)
    }

    /// `sys_safecopyfrom`: copies `len` bytes from (`granter`, `grant`) at
    /// `grant_offset` into `caller`'s memory at `dst_offset`.
    ///
    /// # Errors
    ///
    /// Fails with [`KernelError::BadGrant`] when the grant does not exist,
    /// is not addressed to the caller, or lacks read access; with
    /// [`KernelError::BadEndpoint`] when the granter is dead or restarted;
    /// with [`KernelError::BadRange`] when any range is out of bounds.
    #[allow(clippy::too_many_arguments)]
    pub fn safecopy_from(
        &mut self,
        caller: Endpoint,
        granter: Endpoint,
        grant: GrantId,
        grant_offset: usize,
        dst_offset: usize,
        len: usize,
    ) -> Result<(), KernelError> {
        let src_base = self.check_grant(granter, grant, caller, grant_offset, len, false)?;
        let data = self
            .live_space_of(granter)?
            .mem
            .get(src_base..src_base + len)
            .ok_or(KernelError::BadRange)?
            .to_vec();
        self.write_own(caller, dst_offset, &data)
    }

    /// `sys_safecopyto`: copies `len` bytes from `caller`'s memory at
    /// `src_offset` into (`granter`, `grant`) at `grant_offset`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`MemoryPool::safecopy_from`], requiring write
    /// access on the grant.
    #[allow(clippy::too_many_arguments)]
    pub fn safecopy_to(
        &mut self,
        caller: Endpoint,
        granter: Endpoint,
        grant: GrantId,
        grant_offset: usize,
        src_offset: usize,
        len: usize,
    ) -> Result<(), KernelError> {
        let dst_base = self.check_grant(granter, grant, caller, grant_offset, len, true)?;
        let data = self.read_own(caller, src_offset, len)?.to_vec();
        let sp = self.live_space_of_mut(granter)?;
        sp.mem[dst_base..dst_base + len].copy_from_slice(&data);
        Ok(())
    }

    /// Maps (or unmaps, with `None`) the IOMMU window of a device.
    pub fn iommu_map(
        &mut self,
        dev: DeviceId,
        window: Option<IommuWindow>,
    ) -> Result<(), KernelError> {
        match window {
            Some(w) => {
                let sp = self.live_space_of(w.owner)?;
                let end = w.offset.checked_add(w.len).ok_or(KernelError::BadRange)?;
                if end > sp.mem.len() {
                    return Err(KernelError::BadRange);
                }
                self.iommu.insert(dev, w);
            }
            None => {
                self.iommu.remove(&dev);
            }
        }
        Ok(())
    }

    /// The current IOMMU window of `dev`, if mapped.
    pub fn iommu_window(&self, dev: DeviceId) -> Option<IommuWindow> {
        self.iommu.get(&dev).copied()
    }

    fn dma_resolve(
        &self,
        dev: DeviceId,
        addr: u64,
        len: usize,
    ) -> Result<(Endpoint, usize), DmaFault> {
        let w = self.iommu.get(&dev).ok_or(DmaFault::NoWindow)?;
        let end = addr.checked_add(len as u64).ok_or(DmaFault::OutOfWindow)?;
        if addr < w.base || end > w.base + w.len as u64 {
            return Err(DmaFault::OutOfWindow);
        }
        let sp = self.space(w.owner.slot()).ok_or(DmaFault::StaleOwner)?;
        if sp.owner != Some(w.owner) {
            return Err(DmaFault::StaleOwner);
        }
        Ok((w.owner, w.offset + (addr - w.base) as usize))
    }

    /// Device-initiated read of `buf.len()` bytes at device address `addr`.
    ///
    /// # Errors
    ///
    /// Faults if no window is mapped, the access leaves the window, or the
    /// owning process has died — exactly the protection §4 ascribes to the
    /// I/O MMU.
    pub fn dma_read(&self, dev: DeviceId, addr: u64, buf: &mut [u8]) -> Result<(), DmaFault> {
        let (owner, off) = self.dma_resolve(dev, addr, buf.len())?;
        // analyze:allow(panic-reach): dma_resolve faulted already unless
        // the owning space exists; the lookup cannot miss on the line
        // after a successful resolve.
        let sp = self.space(owner.slot()).expect("resolved space");
        buf.copy_from_slice(&sp.mem[off..off + buf.len()]);
        Ok(())
    }

    /// Device-initiated write of `data` at device address `addr`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`MemoryPool::dma_read`].
    pub fn dma_write(&mut self, dev: DeviceId, addr: u64, data: &[u8]) -> Result<(), DmaFault> {
        let (owner, off) = self.dma_resolve(dev, addr, data.len())?;
        let sp = self.space_mut(owner.slot()).expect("resolved space");
        sp.mem[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_with(eps: &[(Endpoint, usize)]) -> MemoryPool {
        let mut p = MemoryPool::new();
        for &(ep, size) in eps {
            p.attach(ep, size);
        }
        p
    }

    const A: Endpoint = Endpoint::new(0, 1);
    const B: Endpoint = Endpoint::new(1, 1);

    #[test]
    fn safecopy_roundtrip() {
        let mut p = pool_with(&[(A, 128), (B, 128)]);
        p.write_own(A, 10, b"hello").unwrap();
        let g = p.grant_create(A, B, 10, 5, GrantAccess::Read).unwrap();
        p.safecopy_from(B, A, g, 0, 50, 5).unwrap();
        assert_eq!(p.read_own(B, 50, 5).unwrap(), b"hello");
    }

    #[test]
    fn safecopy_to_respects_write_access() {
        let mut p = pool_with(&[(A, 64), (B, 64)]);
        let ro = p.grant_create(A, B, 0, 8, GrantAccess::Read).unwrap();
        p.write_own(B, 0, b"x").unwrap();
        assert_eq!(
            p.safecopy_to(B, A, ro, 0, 0, 1),
            Err(KernelError::BadGrant),
            "read-only grant rejects writes"
        );
        let rw = p.grant_create(A, B, 0, 8, GrantAccess::ReadWrite).unwrap();
        p.safecopy_to(B, A, rw, 2, 0, 1).unwrap();
        assert_eq!(p.read_own(A, 2, 1).unwrap(), b"x");
    }

    #[test]
    fn grant_is_capability_for_specific_grantee() {
        let c = Endpoint::new(2, 1);
        let mut p = pool_with(&[(A, 64), (B, 64), (c, 64)]);
        let g = p.grant_create(A, B, 0, 8, GrantAccess::ReadWrite).unwrap();
        assert_eq!(
            p.safecopy_from(c, A, g, 0, 0, 4),
            Err(KernelError::BadGrant),
            "third party cannot use someone else's grant"
        );
    }

    #[test]
    fn grant_offset_bounds_enforced() {
        let mut p = pool_with(&[(A, 64), (B, 64)]);
        let g = p.grant_create(A, B, 8, 8, GrantAccess::Read).unwrap();
        assert_eq!(
            p.safecopy_from(B, A, g, 4, 0, 8),
            Err(KernelError::BadRange)
        );
        assert!(p.safecopy_from(B, A, g, 4, 0, 4).is_ok());
    }

    #[test]
    fn grant_create_beyond_space_fails() {
        let mut p = pool_with(&[(A, 64)]);
        assert_eq!(
            p.grant_create(A, B, 60, 8, GrantAccess::Read),
            Err(KernelError::BadRange)
        );
    }

    #[test]
    fn detach_revokes_grants_via_stale_endpoint() {
        let mut p = pool_with(&[(A, 64), (B, 64)]);
        let g = p.grant_create(A, B, 0, 8, GrantAccess::Read).unwrap();
        p.detach(A);
        assert_eq!(
            p.safecopy_from(B, A, g, 0, 0, 4),
            Err(KernelError::BadEndpoint),
            "grants die with the granter"
        );
        // A restarted incarnation in the same slot must not inherit grants.
        let a2 = Endpoint::new(0, 2);
        p.attach(a2, 64);
        assert_eq!(
            p.safecopy_from(B, A, g, 0, 0, 4),
            Err(KernelError::BadEndpoint)
        );
    }

    #[test]
    fn revoked_grant_unusable() {
        let mut p = pool_with(&[(A, 64), (B, 64)]);
        let g = p.grant_create(A, B, 0, 8, GrantAccess::Read).unwrap();
        p.grant_revoke(A, g).unwrap();
        assert_eq!(
            p.safecopy_from(B, A, g, 0, 0, 4),
            Err(KernelError::BadGrant)
        );
    }

    #[test]
    fn dma_through_window() {
        let dev = DeviceId(7);
        let mut p = pool_with(&[(A, 256)]);
        p.write_own(A, 100, b"frame").unwrap();
        p.iommu_map(
            dev,
            Some(IommuWindow {
                owner: A,
                base: 0x1000,
                offset: 100,
                len: 16,
            }),
        )
        .unwrap();
        let mut buf = [0u8; 5];
        p.dma_read(dev, 0x1000, &mut buf).unwrap();
        assert_eq!(&buf, b"frame");
        p.dma_write(dev, 0x1005, b"!").unwrap();
        assert_eq!(p.read_own(A, 105, 1).unwrap(), b"!");
    }

    #[test]
    fn dma_outside_window_faults() {
        let dev = DeviceId(7);
        let mut p = pool_with(&[(A, 256)]);
        p.iommu_map(
            dev,
            Some(IommuWindow {
                owner: A,
                base: 0x1000,
                offset: 0,
                len: 16,
            }),
        )
        .unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(
            p.dma_read(dev, 0x0800, &mut buf),
            Err(DmaFault::OutOfWindow)
        );
        assert_eq!(
            p.dma_read(dev, 0x100c, &mut buf),
            Err(DmaFault::OutOfWindow)
        );
        assert_eq!(
            p.dma_read(DeviceId(9), 0x1000, &mut buf),
            Err(DmaFault::NoWindow)
        );
    }

    #[test]
    fn dma_after_owner_death_faults() {
        let dev = DeviceId(7);
        let mut p = pool_with(&[(A, 256)]);
        p.iommu_map(
            dev,
            Some(IommuWindow {
                owner: A,
                base: 0,
                offset: 0,
                len: 16,
            }),
        )
        .unwrap();
        p.detach(A);
        let mut buf = [0u8; 4];
        // detach unmaps the window entirely.
        assert_eq!(p.dma_read(dev, 0, &mut buf), Err(DmaFault::NoWindow));
    }

    #[test]
    fn own_memory_bounds() {
        let mut p = pool_with(&[(A, 16)]);
        assert_eq!(p.write_own(A, 12, b"12345"), Err(KernelError::BadRange));
        assert!(p.read_own(A, 16, 0).is_ok(), "empty read at end is fine");
        assert_eq!(p.read_own(A, 16, 1).err(), Some(KernelError::BadRange));
        assert_eq!(p.size_of(A).unwrap(), 16);
    }
}
