//! The `phoenix-analyze` gate binary.
//!
//! ```text
//! cargo run -q -p phoenix-analyze            # full gate: lints + dead edges + audit
//! cargo run -q -p phoenix-analyze -- --lint-only
//! cargo run -q -p phoenix-analyze -- --audit-only
//! cargo run -q -p phoenix-analyze -- --report   # verbose authority tables
//! ```
//!
//! Exit status 0 iff no unsuppressed finding of any kind; `ci.sh` treats
//! a nonzero exit as a hard failure.

use phoenix_analyze::{audit, deadedge, lint, workspace_root};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let lint_only = args.iter().any(|a| a == "--lint-only");
    let audit_only = args.iter().any(|a| a == "--audit-only");
    let report = args.iter().any(|a| a == "--report");
    if let Some(bad) = args
        .iter()
        .find(|a| !matches!(a.as_str(), "--lint-only" | "--audit-only" | "--report"))
    {
        eprintln!("unknown flag {bad}; flags: --lint-only --audit-only --report");
        std::process::exit(2);
    }

    let root = workspace_root();
    let mut failures = 0usize;

    if !audit_only {
        let findings = lint::lint_workspace(&root);
        let edges = deadedge::find_dead_edges(&root);
        println!(
            "determinism lints: {} finding(s), {} dead protocol edge(s)",
            findings.len(),
            edges.len()
        );
        for f in &findings {
            println!("  {f}");
        }
        for e in &edges {
            println!("  {e}");
        }
        failures += findings.len() + edges.len();
    }

    if !lint_only {
        let outcome = audit::run_audit(audit::AUDIT_SEED, Vec::new());
        if report {
            println!("{}", audit::render_report(&outcome));
        } else {
            println!(
                "least-authority audit: {} violation(s), {} justified wildcard(s) \
                 across {} audited component(s)",
                outcome.violations.len(),
                outcome.justified.len(),
                outcome.snapshot.scope.len()
            );
            for v in &outcome.violations {
                println!("  VIOLATION: {v}");
            }
        }
        failures += outcome.violations.len();
    }

    if failures > 0 {
        eprintln!("phoenix-analyze: {failures} finding(s)");
        std::process::exit(1);
    }
    println!("phoenix-analyze: clean");
}
