//! The §6.3 character-device story, end to end:
//!
//! 1. a *recovery-aware* printer daemon rides out a driver crash by
//!    reissuing the whole job (possibly printing a duplicate page) — the
//!    user never hears about it;
//! 2. an MP3 player keeps playing through an audio-driver crash, with a
//!    small audible hiccup;
//! 3. a CD burn cannot survive its driver's crash: the disc is ruined and
//!    the error must be reported to the user.
//!
//! Run with: `cargo run --release --example printer_spooler`

use std::cell::RefCell;
use std::rc::Rc;

use phoenix::apps::{CdBurn, CdBurnStatus, Lpd, LpdStatus, Mp3Player, Mp3Status};
use phoenix::os::{hwmap, names, Os};
use phoenix_hw::chardev::ScsiCdBurner;
use phoenix_hw::{AudioDac, Printer};
use phoenix_simcore::time::SimDuration;

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

fn main() {
    println!("--- printer: app-level recovery (job reissued) ---");
    let mut os = Os::builder().seed(3).with_chardevs().boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let lpd = Rc::new(RefCell::new(LpdStatus::default()));
    let job: Vec<u8> = b"PAGE-1 of quarterly report\n".repeat(2000);
    os.spawn_app("lpd", Box::new(Lpd::new(vfs, job.clone(), lpd.clone())));
    os.run_for(ms(500));
    println!("killing {} mid-job ...", names::CHR_PRINTER);
    os.kill_by_user(names::CHR_PRINTER);
    while !lpd.borrow().done {
        os.run_for(ms(100));
    }
    let st = lpd.borrow();
    println!(
        "job done; reissued {} time(s); {} bytes accepted for a {}-byte job",
        st.job_restarts,
        st.accepted,
        job.len()
    );
    let printer: &mut Printer = os.device_mut(hwmap::PRINTER).unwrap();
    println!(
        "paper output: {} bytes ({} duplicated) — \"duplicate printouts may result\"\n",
        printer.printed().len(),
        printer.printed().len().saturating_sub(job.len()),
    );

    println!("--- mp3 player: hiccup, playback continues ---");
    let mut os = Os::builder().seed(4).with_chardevs().boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let mp3 = Rc::new(RefCell::new(Mp3Status::default()));
    os.spawn_app(
        "mp3",
        Box::new(Mp3Player::new(vfs, 300, 4096, ms(23), mp3.clone())),
    );
    os.run_for(SimDuration::from_secs(2));
    println!("killing {} mid-song ...", names::CHR_AUDIO);
    os.kill_by_user(names::CHR_AUDIO);
    while !mp3.borrow().done {
        os.run_for(ms(100));
    }
    let st = mp3.borrow();
    let dac: &mut AudioDac = os.device_mut(hwmap::AUDIO).unwrap();
    println!(
        "song finished: {} blocks played, {} dropped, {} audible hiccup(s)\n",
        st.blocks_played,
        st.blocks_dropped,
        dac.underruns()
    );

    println!("--- cd burn: failure must reach the user ---");
    let mut os = Os::builder().seed(5).with_chardevs().boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let cd = Rc::new(RefCell::new(CdBurnStatus::default()));
    os.spawn_app("cdburn", Box::new(CdBurn::new(vfs, 5000, 4096, cd.clone())));
    os.run_for(ms(400));
    println!(
        "killing {} after {} chunks ...",
        names::CHR_SCSI,
        cd.borrow().chunks_written
    );
    os.kill_by_user(names::CHR_SCSI);
    os.run_for(SimDuration::from_secs(2));
    let st = cd.borrow();
    let burner: &mut ScsiCdBurner = os.device_mut(hwmap::SCSI).unwrap();
    println!(
        "burn aborted: reported_to_user={} discs_ruined={}",
        st.reported_to_user,
        burner.discs_ruined()
    );
    println!("=> exactly Fig. 3: network/block transparent, character 'maybe'");
}
