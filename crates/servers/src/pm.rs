//! The process manager.
//!
//! PM is the parent of all system processes: it executes programs on
//! behalf of the reincarnation server (which lacks the spawn privilege
//! itself), delivers signals, and — being the parent — receives every
//! child's exit status from the kernel, which it forwards to RS as a
//! `SIGCHLD` report "according to the POSIX specification" (§5.1).

use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{Endpoint, ExitReason, KillOrigin, Message, Signal};
use phoenix_simcore::trace::TraceLevel;

use crate::proto::{pack_endpoint, pm, unpack_endpoint};

/// Status codes in PM replies.
pub mod pm_status {
    /// Success.
    pub const OK: u64 = 0;
    /// Unknown program.
    pub const NO_PROGRAM: u64 = 2;
    /// Target endpoint is stale.
    pub const NO_PROCESS: u64 = 3;
    /// Caller is not authorized.
    pub const DENIED: u64 = 13;
}

/// The process manager server.
#[derive(Debug, Default)]
pub struct ProcessManager {
    /// Who receives SIGCHLD forwards (the reincarnation server).
    reaper: Option<Endpoint>,
}

impl ProcessManager {
    /// Creates the process manager.
    pub fn new() -> Self {
        Self::default()
    }

    fn encode_reason(reason: &ExitReason) -> (u64, u64) {
        match reason {
            ExitReason::Exited(code) => (0, *code as u64),
            ExitReason::Panicked(_) => (1, 0),
            ExitReason::Exception(k) => (2, *k as u64),
            ExitReason::Signaled(_, KillOrigin::User) => (3, 1),
            ExitReason::Signaled(_, KillOrigin::System) => (3, 0),
        }
    }
}

impl Process for ProcessManager {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Message(msg) if msg.mtype == pm::REGISTER => {
                self.reaper = Some(msg.source);
                ctx.trace(
                    TraceLevel::Info,
                    format!("exit reports will go to {}", msg.source),
                );
            }
            ProcEvent::Request { call, msg } => match msg.mtype {
                pm::START => {
                    // Only the registered reaper (RS) may start services.
                    if self.reaper != Some(msg.source) {
                        let _ = ctx.reply(
                            call,
                            Message::new(pm::START_REPLY).with_param(0, pm_status::DENIED),
                        );
                        return;
                    }
                    let program = String::from_utf8_lossy(&msg.data).to_string();
                    let version = match msg.param(0) {
                        0 => None,
                        v => Some(v as u32),
                    };
                    match ctx.sys_spawn(&program, version) {
                        Ok(ep) => {
                            let (s, g) = pack_endpoint(ep);
                            let _ = ctx.reply(
                                call,
                                Message::new(pm::START_REPLY)
                                    .with_param(0, pm_status::OK)
                                    .with_param(1, s)
                                    .with_param(2, g),
                            );
                        }
                        Err(_) => {
                            let _ = ctx.reply(
                                call,
                                Message::new(pm::START_REPLY).with_param(0, pm_status::NO_PROGRAM),
                            );
                        }
                    }
                }
                pm::KILL => {
                    if self.reaper != Some(msg.source) {
                        let _ = ctx.reply(
                            call,
                            Message::new(pm::KILL_REPLY).with_param(0, pm_status::DENIED),
                        );
                        return;
                    }
                    let target = unpack_endpoint(msg.param(0), msg.param(1));
                    let signal = if msg.param(2) == 1 {
                        Signal::Kill
                    } else {
                        Signal::Term
                    };
                    let st = match ctx.sys_kill(target, signal) {
                        Ok(()) => pm_status::OK,
                        Err(_) => pm_status::NO_PROCESS,
                    };
                    let _ = ctx.reply(call, Message::new(pm::KILL_REPLY).with_param(0, st));
                }
                _ => {
                    let _ = ctx.reply(
                        call,
                        Message::new(pm::KILL_REPLY).with_param(0, pm_status::DENIED),
                    );
                }
            },
            ProcEvent::ChildExited(status) => {
                // Forward the exit to the reincarnation server — this is
                // the SIGCHLD + wait() path that makes defect classes 1-3
                // immediately visible (§5.1).
                if let Some(reaper) = self.reaper {
                    let (kind, detail) = Self::encode_reason(&status.reason);
                    let (s, g) = pack_endpoint(status.endpoint);
                    let _ = ctx.send(
                        reaper,
                        Message::new(pm::SIGCHLD)
                            .with_param(0, s)
                            .with_param(1, g)
                            .with_param(2, kind)
                            .with_param(3, detail)
                            .with_data(status.name.into_bytes()),
                    );
                }
            }
            _ => {}
        }
    }
}
