//! Deterministic workload for the least-authority conformance audit.
//!
//! The audit (§4's principle-of-least-authority tables) compares each
//! component's *declared* privileges against the authority it actually
//! *exercises*. "Actually exercises" needs a workload that drives every
//! subsystem through its full repertoire: normal traffic, driver crashes
//! and recoveries, a wedged driver caught by the file server's deadline
//! complaint, and a chaos phase that stresses the retry paths. This
//! module runs that workload under the simulator and returns the
//! observed-vs-declared snapshot for [`phoenix_kernel::audit`].
//!
//! Everything here is a pure function of the seed: the snapshot — and
//! therefore the audit verdict gating CI — is byte-stable across runs.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use phoenix_fault::chaos::ChaosPlan;
use phoenix_kernel::authority::{audit, AuthorityUsage, PolaFinding};
use phoenix_kernel::privileges::Privileges;
use phoenix_servers::fsfat::{FatContent, FatFileSpec};
use phoenix_servers::fsfmt::{FileContent, FileSpec};
use phoenix_simcore::time::SimDuration;

use crate::apps::{
    CdBurn, CdBurnStatus, Dd, DdStatus, Lpd, LpdStatus, Mp3Player, Mp3Status, TtyReader, TtyStatus,
    UdpPing, UdpStatus, Wget, WgetStatus,
};
use crate::os::{names, NicKind, Os, OverGrant};

/// Everything the audit needs from one workload run.
#[derive(Clone, Debug)]
pub struct AuthoritySnapshot {
    /// Declared privilege table per component (program registry overlaid
    /// on live processes, keyed by stable name).
    pub declared: BTreeMap<String, Privileges>,
    /// Authority actually exercised during the run.
    pub usage: AuthorityUsage,
    /// Components in audit scope: long-lived system services, not
    /// transient apps or service utilities.
    pub scope: BTreeSet<String>,
}

impl AuthoritySnapshot {
    /// Diffs declared against observed authority for in-scope components.
    pub fn findings(&self) -> Vec<PolaFinding> {
        audit(&self.declared, &self.usage, &self.scope)
    }
}

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

/// Runs `os` until `done()` holds, in 100 ms steps, bounded by `guard`
/// steps so a regression can't hang the audit.
fn run_until(os: &mut Os, guard: u32, mut done: impl FnMut() -> bool) {
    let mut left = guard;
    while !done() && left > 0 {
        os.run_for(ms(100));
        left -= 1;
    }
    assert!(done(), "audit workload phase did not complete within guard");
}

/// Boots the full system configuration and drives the authority
/// workload: every server and driver class does real work, three drivers
/// are crashed and recovered, one driver is wedged so the file server's
/// deadline complaint path fires, and a chaos phase exercises the
/// retransmit/reissue machinery. Returns the declared/observed snapshot.
///
/// `overgrants` seed deliberate POLA violations into the declared tables
/// (red-path testing); pass an empty `Vec` for the real audit.
pub fn run_authority_workload(
    seed: u64,
    overgrants: Vec<(String, OverGrant)>,
) -> AuthoritySnapshot {
    let disk_seed = seed ^ 0x5eed;
    let fat_seed = seed ^ 0xfa7;
    let mfs_size = 900_000u64;
    let fat_size = 300_000u32;
    let net_size = 400_000u64;
    let content_seed = seed.wrapping_mul(3) | 1;

    let mut builder = Os::builder()
        .seed(seed)
        .with_network(NicKind::Rtl8139)
        .with_disk(
            mfs_size / 512 + 1024,
            disk_seed,
            vec![FileSpec {
                name: "bigfile".to_string(),
                content: FileContent::Synthetic { size: mfs_size },
            }],
        )
        .with_fat_disk(
            u64::from(fat_size) / 512 + 1024,
            fat_seed,
            vec![FatFileSpec {
                name: "big.bin".to_string(),
                content: FatContent::Synthetic { size: fat_size },
            }],
        )
        .with_chardevs()
        // Slow enough (detection ~8 s) that MFS's 5 s driver deadline
        // fires first for the wedged SATA driver — the complaint path is
        // part of the authority being audited.
        .heartbeat(ms(2000), 3);
    for (service, grant) in overgrants {
        builder = builder.overgrant(&service, grant);
    }
    let mut os = builder.boot();

    let inet = os.endpoint(names::INET).expect("inet up");
    let vfs = os.endpoint(names::VFS).expect("vfs up");

    // Phase 1: every subsystem does real work concurrently — TCP download
    // (inet + ethernet), MFS and FAT reads (both block drivers, grants,
    // per-chunk deadlines), printing, audio playback, a CD burn, UDP
    // echo, and keyboard input.
    let wget = Rc::new(RefCell::new(WgetStatus::default()));
    os.spawn_app(
        "wget",
        Box::new(Wget::new(inet, net_size, content_seed, wget.clone())),
    );
    let dd_mfs = Rc::new(RefCell::new(DdStatus::default()));
    os.spawn_app(
        "dd-mfs",
        Box::new(Dd::new(vfs, "bigfile", 64 * 1024, dd_mfs.clone())),
    );
    let dd_fat = Rc::new(RefCell::new(DdStatus::default()));
    os.spawn_app(
        "dd-fat",
        Box::new(Dd::new(vfs, "/fat/big.bin", 64 * 1024, dd_fat.clone())),
    );
    let lpd = Rc::new(RefCell::new(LpdStatus::default()));
    os.spawn_app(
        "lpd",
        Box::new(Lpd::new(vfs, vec![b'x'; 48 * 1024], lpd.clone())),
    );
    let mp3 = Rc::new(RefCell::new(Mp3Status::default()));
    os.spawn_app(
        "mp3",
        Box::new(Mp3Player::new(vfs, 60, 4096, ms(23), mp3.clone())),
    );
    let burn = Rc::new(RefCell::new(CdBurnStatus::default()));
    os.spawn_app(
        "cdburn",
        Box::new(CdBurn::new(vfs, 120, 4096, burn.clone())),
    );
    let udp = Rc::new(RefCell::new(UdpStatus::default()));
    os.spawn_app("udp", Box::new(UdpPing::new(inet, 60, ms(5), udp.clone())));
    let tty = Rc::new(RefCell::new(TtyStatus::default()));
    os.spawn_app("tty", Box::new(TtyReader::new(vfs, ms(50), tty.clone())));
    for (i, chunk) in (b'a'..=b'z').collect::<Vec<_>>().chunks(4).enumerate() {
        os.type_input(ms(20 * (i as u64 + 1)), chunk.to_vec());
    }

    // Phase 2: driver defects mid-work. The SATA driver is wedged in a
    // loop right away, so the first dd chunk drives it into the loop and
    // MFS's per-chunk deadline expires and files a complaint with RS
    // (§5.1 defect class 5) — exercising the file server's declared rs
    // IPC grant. The printer driver gets its checksum computation
    // garbled (a fail-silent defect): VFS's protocol sentinel spots the
    // bad echoes and complains until the quorum restarts it — the path
    // behind VFS's declared rs IPC grant. The ethernet driver is killed
    // outright mid-transfer (exit-report recovery).
    assert!(os.wedge_driver_in_loop(names::BLK_SATA), "sata wedge");
    assert!(
        os.garble_driver_checksum(names::CHR_PRINTER),
        "printer garble"
    );
    os.run_for(ms(200));
    assert!(os.kill_by_user(names::ETH_RTL8139), "eth kill");

    run_until(&mut os, 900, || {
        wget.borrow().done
            && dd_mfs.borrow().done
            && dd_fat.borrow().done
            && lpd.borrow().done
            && mp3.borrow().done
            && burn.borrow().completed
            && udp.borrow().done
    });
    assert!(
        os.metrics().counter("rs.recoveries") >= 3,
        "eth, printer and wedged sata all recovered (rs.recoveries={}, heartbeat={}, exit={}, complaint={})",
        os.metrics().counter("rs.recoveries"),
        os.metrics().counter("rs.defect.heartbeat"),
        os.metrics().counter("rs.defect.exit"),
        os.metrics().counter("rs.defect.complaint"),
    );
    assert!(
        os.metrics().counter("mfs.complaints") >= 1 || os.trace().find("complain").is_some(),
        "the wedge forced a deadline complaint"
    );
    assert!(
        os.metrics().counter("vfs.complaints") >= 1,
        "the garbled printer checksum forced a sentinel complaint (vfs.complaints={})",
        os.metrics().counter("vfs.complaints"),
    );

    // Phase 3: chaos. The driver-traffic preset drops/delays/duplicates/
    // corrupts driver IPC while a second download rides through another
    // ethernet crash — retry and reissue paths all fire.
    os.set_chaos(Box::new(ChaosPlan::driver_traffic(1.0)));
    let wget2 = Rc::new(RefCell::new(WgetStatus::default()));
    os.spawn_app(
        "wget2",
        Box::new(Wget::new(
            inet,
            net_size / 2,
            content_seed ^ 5,
            wget2.clone(),
        )),
    );
    os.run_for(ms(150));
    assert!(os.kill_by_user(names::ETH_RTL8139), "eth kill under chaos");
    run_until(&mut os, 900, || wget2.borrow().done);
    os.clear_chaos();

    // Settle so in-flight recovery chatter (publishes, acks, heartbeat
    // catch-up) lands before the books close.
    os.run_for(SimDuration::from_secs(2));

    AuthoritySnapshot {
        declared: os.declared_privileges(),
        usage: os.authority_usage().clone(),
        scope: os.audit_scope(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_snapshots_are_identical() {
        let a = run_authority_workload(11, Vec::new());
        let b = run_authority_workload(11, Vec::new());
        assert_eq!(a.declared, b.declared);
        assert_eq!(a.usage.components().count(), b.usage.components().count());
        for ((na, ra), (nb, rb)) in a.usage.components().zip(b.usage.components()) {
            assert_eq!(na, nb);
            assert_eq!(ra, rb);
        }
        assert_eq!(a.scope, b.scope);
    }
}
