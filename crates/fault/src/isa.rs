//! Instruction set of the fault-injection VM.
//!
//! Driver hot paths are compiled to this tiny 32-bit RISC so the fault
//! injector can mutate *binary code*, like the injectors the paper builds
//! on (Ng & Chen's and Nooks', §7.2). Each instruction is one `u32` word:
//!
//! ```text
//!  31        26 25  23 22  20 19  16 15            0
//! +------------+------+------+------+----------------+
//! |   opcode   | dst  | src  | rsvd |      imm       |
//! +------------+------+------+------+----------------+
//! ```
//!
//! Decoding is total but validated: unknown opcodes or non-zero reserved
//! bits decode to [`Instr::Invalid`], which traps as an illegal
//! instruction — exactly what a bit-flipped opcode does on real hardware.

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 8;

/// A register index (0..8).
pub type Reg = u8;

/// Decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// No operation.
    Nop,
    /// `dst = imm` (zero-extended).
    MovImm(Reg, u16),
    /// `dst = src`.
    Mov(Reg, Reg),
    /// `dst = dst + src` (wrapping).
    Add(Reg, Reg),
    /// `dst = dst + imm` (wrapping).
    AddImm(Reg, u16),
    /// `dst = dst - src` (wrapping).
    Sub(Reg, Reg),
    /// `dst = dst * src` (wrapping).
    Mul(Reg, Reg),
    /// `dst = dst / src`; traps on division by zero.
    Div(Reg, Reg),
    /// `dst = dst & src`.
    And(Reg, Reg),
    /// `dst = dst | src`.
    Or(Reg, Reg),
    /// `dst = dst ^ src`.
    Xor(Reg, Reg),
    /// `dst = dst << imm`.
    Shl(Reg, u16),
    /// `dst = dst >> imm`.
    Shr(Reg, u16),
    /// `dst = mem32[src + imm]`; traps on out-of-bounds or misalignment.
    Load(Reg, Reg, u16),
    /// `mem32[dst + imm] = src`; traps on out-of-bounds or misalignment.
    Store(Reg, Reg, u16),
    /// `dst = mem8[src + imm]`; traps on out-of-bounds.
    LoadB(Reg, Reg, u16),
    /// `mem8[dst + imm] = src as u8`; traps on out-of-bounds.
    StoreB(Reg, Reg, u16),
    /// Unconditional jump to absolute instruction index `imm`.
    Jmp(u16),
    /// Jump to `imm` if `src == 0`.
    Jz(Reg, u16),
    /// Jump to `imm` if `src != 0`.
    Jnz(Reg, u16),
    /// Jump to `imm` if `dst < src` (unsigned).
    Jlt(Reg, Reg, u16),
    /// Jump to `imm` if `dst >= src` (unsigned).
    Jge(Reg, Reg, u16),
    /// Driver sanity check: trap with a panic if `src == 0`.
    Assert(Reg),
    /// Successful end of the routine.
    Halt,
    /// Undecodable word; traps as an illegal instruction.
    Invalid(u32),
}

mod op {
    pub const NOP: u32 = 0;
    pub const MOVI: u32 = 1;
    pub const MOV: u32 = 2;
    pub const ADD: u32 = 3;
    pub const ADDI: u32 = 4;
    pub const SUB: u32 = 5;
    pub const MUL: u32 = 6;
    pub const DIV: u32 = 7;
    pub const AND: u32 = 8;
    pub const OR: u32 = 9;
    pub const XOR: u32 = 10;
    pub const SHL: u32 = 11;
    pub const SHR: u32 = 12;
    pub const LOAD: u32 = 13;
    pub const STORE: u32 = 14;
    pub const LOADB: u32 = 15;
    pub const STOREB: u32 = 16;
    pub const JMP: u32 = 17;
    pub const JZ: u32 = 18;
    pub const JNZ: u32 = 19;
    pub const JLT: u32 = 20;
    pub const JGE: u32 = 21;
    pub const ASSERT: u32 = 22;
    pub const HALT: u32 = 23;
    pub const MAX: u32 = 23;
}

fn pack(opcode: u32, dst: Reg, src: Reg, imm: u16) -> u32 {
    debug_assert!(opcode <= op::MAX);
    debug_assert!((dst as usize) < NUM_REGS && (src as usize) < NUM_REGS);
    (opcode << 26) | (u32::from(dst) << 23) | (u32::from(src) << 20) | u32::from(imm)
}

/// Encodes an instruction to its 32-bit word.
pub fn encode(i: Instr) -> u32 {
    use Instr::*;
    match i {
        Nop => pack(op::NOP, 0, 0, 0),
        MovImm(d, imm) => pack(op::MOVI, d, 0, imm),
        Mov(d, s) => pack(op::MOV, d, s, 0),
        Add(d, s) => pack(op::ADD, d, s, 0),
        AddImm(d, imm) => pack(op::ADDI, d, 0, imm),
        Sub(d, s) => pack(op::SUB, d, s, 0),
        Mul(d, s) => pack(op::MUL, d, s, 0),
        Div(d, s) => pack(op::DIV, d, s, 0),
        And(d, s) => pack(op::AND, d, s, 0),
        Or(d, s) => pack(op::OR, d, s, 0),
        Xor(d, s) => pack(op::XOR, d, s, 0),
        Shl(d, imm) => pack(op::SHL, d, 0, imm),
        Shr(d, imm) => pack(op::SHR, d, 0, imm),
        Load(d, s, imm) => pack(op::LOAD, d, s, imm),
        Store(d, s, imm) => pack(op::STORE, d, s, imm),
        LoadB(d, s, imm) => pack(op::LOADB, d, s, imm),
        StoreB(d, s, imm) => pack(op::STOREB, d, s, imm),
        Jmp(imm) => pack(op::JMP, 0, 0, imm),
        Jz(s, imm) => pack(op::JZ, 0, s, imm),
        Jnz(s, imm) => pack(op::JNZ, 0, s, imm),
        Jlt(d, s, imm) => pack(op::JLT, d, s, imm),
        Jge(d, s, imm) => pack(op::JGE, d, s, imm),
        Assert(s) => pack(op::ASSERT, 0, s, 0),
        Halt => pack(op::HALT, 0, 0, 0),
        Invalid(w) => w,
    }
}

/// Decodes a 32-bit word; undecodable words become [`Instr::Invalid`].
pub fn decode(w: u32) -> Instr {
    use Instr::*;
    let opcode = w >> 26;
    let dst = ((w >> 23) & 0x7) as Reg;
    let src = ((w >> 20) & 0x7) as Reg;
    let rsvd = (w >> 16) & 0xF;
    let imm = (w & 0xFFFF) as u16;
    if rsvd != 0 {
        return Invalid(w);
    }
    match opcode {
        op::NOP if dst == 0 && src == 0 && imm == 0 => Nop,
        op::NOP => Invalid(w),
        op::MOVI => MovImm(dst, imm),
        op::MOV => Mov(dst, src),
        op::ADD => Add(dst, src),
        op::ADDI => AddImm(dst, imm),
        op::SUB => Sub(dst, src),
        op::MUL => Mul(dst, src),
        op::DIV => Div(dst, src),
        op::AND => And(dst, src),
        op::OR => Or(dst, src),
        op::XOR => Xor(dst, src),
        op::SHL => Shl(dst, imm),
        op::SHR => Shr(dst, imm),
        op::LOAD => Load(dst, src, imm),
        op::STORE => Store(dst, src, imm),
        op::LOADB => LoadB(dst, src, imm),
        op::STOREB => StoreB(dst, src, imm),
        op::JMP => Jmp(imm),
        op::JZ => Jz(src, imm),
        op::JNZ => Jnz(src, imm),
        op::JLT => Jlt(dst, src, imm),
        op::JGE => Jge(dst, src, imm),
        op::ASSERT => Assert(src),
        op::HALT => Halt,
        _ => Invalid(w),
    }
}

/// A forward-reference label handed out by [`Asm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Two-pass assembler with labels.
///
/// # Example
///
/// ```
/// use phoenix_fault::isa::{Asm, Instr};
///
/// // Sum bytes 0..len (len in R0, base in R1) into R2.
/// let mut a = Asm::new();
/// let top = a.label();
/// let done = a.label();
/// a.emit(Instr::MovImm(2, 0)); // acc = 0
/// a.emit(Instr::MovImm(3, 0)); // i = 0
/// a.bind(top);
/// a.jge_to(3, 0, done); // while i < len
/// a.emit(Instr::LoadB(4, 1, 0)); // tmp = mem[base] -- base advanced below
/// a.emit(Instr::Add(2, 4));
/// a.emit(Instr::AddImm(1, 1));
/// a.emit(Instr::AddImm(3, 1));
/// a.jmp_to(top);
/// a.bind(done);
/// a.emit(Instr::Halt);
/// let program = a.finish();
/// assert!(program.len() == 9);
/// ```
#[derive(Debug, Default)]
pub struct Asm {
    words: Vec<u32>,
    labels: Vec<Option<u16>>,
    fixups: Vec<(usize, Label)>,
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.words.len() as u16);
    }

    /// Current instruction index.
    pub fn here(&self) -> usize {
        self.words.len()
    }

    /// Emits an instruction.
    pub fn emit(&mut self, i: Instr) -> &mut Self {
        self.words.push(encode(i));
        self
    }

    fn emit_jump(&mut self, i: Instr, label: Label) {
        self.fixups.push((self.words.len(), label));
        self.emit(i);
    }

    /// Emits `Jmp` to a label.
    pub fn jmp_to(&mut self, label: Label) {
        self.emit_jump(Instr::Jmp(0), label);
    }

    /// Emits `Jz src, label`.
    pub fn jz_to(&mut self, src: Reg, label: Label) {
        self.emit_jump(Instr::Jz(src, 0), label);
    }

    /// Emits `Jnz src, label`.
    pub fn jnz_to(&mut self, src: Reg, label: Label) {
        self.emit_jump(Instr::Jnz(src, 0), label);
    }

    /// Emits `Jlt dst, src, label`.
    pub fn jlt_to(&mut self, dst: Reg, src: Reg, label: Label) {
        self.emit_jump(Instr::Jlt(dst, src, 0), label);
    }

    /// Emits `Jge dst, src, label`.
    pub fn jge_to(&mut self, dst: Reg, src: Reg, label: Label) {
        self.emit_jump(Instr::Jge(dst, src, 0), label);
    }

    /// Resolves labels and returns the program words.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label is unbound.
    pub fn finish(mut self) -> Vec<u32> {
        for (pos, label) in &self.fixups {
            // analyze:allow(panic-reach): assembler invariant over the
            // static built-in firmware programs — every label they
            // reference is bound before finish(); no runtime input
            // reaches the assembler.
            let target = self.labels[label.0].expect("unbound label referenced");
            self.words[*pos] = (self.words[*pos] & 0xFFFF_0000) | u32::from(target);
        }
        self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_variant() {
        let all = [
            Instr::Nop,
            Instr::MovImm(3, 0xBEEF),
            Instr::Mov(1, 2),
            Instr::Add(7, 6),
            Instr::AddImm(0, 9),
            Instr::Sub(2, 3),
            Instr::Mul(4, 5),
            Instr::Div(1, 1),
            Instr::And(0, 7),
            Instr::Or(5, 2),
            Instr::Xor(3, 3),
            Instr::Shl(2, 4),
            Instr::Shr(6, 1),
            Instr::Load(1, 2, 100),
            Instr::Store(3, 4, 8),
            Instr::LoadB(5, 6, 1),
            Instr::StoreB(7, 0, 2),
            Instr::Jmp(77),
            Instr::Jz(1, 5),
            Instr::Jnz(2, 6),
            Instr::Jlt(3, 4, 7),
            Instr::Jge(5, 6, 8),
            Instr::Assert(4),
            Instr::Halt,
        ];
        for i in all {
            assert_eq!(decode(encode(i)), i, "{i:?}");
        }
    }

    #[test]
    fn bad_opcode_decodes_invalid() {
        let w = 63 << 26;
        assert_eq!(decode(w), Instr::Invalid(w));
    }

    #[test]
    fn nonzero_reserved_bits_decode_invalid() {
        let w = encode(Instr::Add(1, 2)) | (1 << 17);
        assert_eq!(decode(w), Instr::Invalid(w));
    }

    #[test]
    fn assembler_resolves_forward_and_backward_labels() {
        let mut a = Asm::new();
        let top = a.label();
        let end = a.label();
        a.bind(top);
        a.emit(Instr::AddImm(0, 1));
        a.jz_to(1, end); // forward
        a.jmp_to(top); // backward
        a.bind(end);
        a.emit(Instr::Halt);
        let p = a.finish();
        assert_eq!(decode(p[1]), Instr::Jz(1, 3));
        assert_eq!(decode(p[2]), Instr::Jmp(0));
        assert_eq!(decode(p[3]), Instr::Halt);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Asm::new();
        let l = a.label();
        a.jmp_to(l);
        let _ = a.finish();
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }
}
