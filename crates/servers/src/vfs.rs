//! The virtual file system server.
//!
//! VFS routes application I/O: paths under `/dev/` go to character device
//! drivers (discovered via the data store under `chr.*`), everything else
//! goes to the file server (`fs.*`). For character devices VFS implements
//! the §6.3 contract: a driver failure mid-stream cannot be recovered
//! transparently, so the error — including an explicit "driver died"
//! indication — is pushed up to the application, which may be
//! recovery-aware (reissue the print job) or must inform the user.

use std::collections::BTreeMap;

use phoenix_ckpt::proto::wal_params;
use phoenix_drivers::proto::{cdev, status};
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{CallId, Endpoint, Message};
use phoenix_simcore::trace::{RecoveryId, SpanId, TraceLevel};

use crate::proto::{ds, evidence, fs, pack_endpoint, rs as rsp, unpack_endpoint};

/// Extra reply parameter index: set to 1 when the failure was a dead
/// driver (aborted rendezvous) rather than an ordinary I/O error.
pub const DRIVER_DIED_PARAM: usize = 2;

/// Built-in device-name table: `/dev/<name>` -> data-store key.
const DEV_TABLE: &[(&str, &str)] = &[
    ("/dev/lp", "chr.printer"),
    ("/dev/audio", "chr.audio"),
    ("/dev/cd", "chr.scsi"),
    ("/dev/kbd", "chr.kbd"),
];

#[derive(Debug, Clone, Copy)]
struct Forward {
    client: CallId,
    /// Write-ahead-log sequence of the forwarded request (0 = not
    /// logged). Echoed in the failure reply so a checkpointing client
    /// can mark exactly which log entry was in flight when the driver
    /// died — the entry it must replay first.
    wal_seq: u64,
    /// Protocol-sentinel expectation for char-driver forwards; `None`
    /// for file-server forwards (those have their own sentinels in MFS).
    sentinel: Option<SentinelExpect>,
}

/// What a char-driver reply must conform to (the protocol sentinel's
/// state-machine expectation, recorded when the request was forwarded).
#[derive(Debug, Clone, Copy)]
struct SentinelExpect {
    /// Data-store key (doubles as the accused service name).
    key: &'static str,
    /// Driver incarnation the request went to.
    driver: Endpoint,
    /// Forwarded request type.
    kind: u32,
    /// Request payload length (WRITE) or requested byte cap (READ).
    len: usize,
    /// Byte-sum of the forwarded payload (WRITE only).
    sum: Option<u32>,
}

/// Plain byte-sum, mirroring the checksum the char-driver fault routine
/// computes over the payload it processed.
fn byte_sum(data: &[u8]) -> u32 {
    data.iter().map(|&b| u32::from(b)).sum()
}

/// Validates a char-driver reply against the sentinel expectation.
/// Returns the evidence class and description of the violation, if any.
fn vet_reply(exp: &SentinelExpect, reply: &Message) -> Option<(u32, &'static str)> {
    if reply.mtype != cdev::REPLY {
        return Some((evidence::BAD_REPLY, "wrong reply type"));
    }
    if reply.param(0) != status::OK {
        return None; // error replies carry nothing to vet
    }
    let bytes = reply.param(1) as usize;
    match exp.kind {
        cdev::WRITE if bytes > exp.len => {
            return Some((evidence::SUSPECT_REPLY, "accepted more bytes than sent"));
        }
        cdev::READ if bytes != reply.data.len() || reply.data.len() > exp.len => {
            return Some((evidence::SUSPECT_REPLY, "reply length inconsistent"));
        }
        _ => {}
    }
    // Checksum echo (params[2] = 1 + sum, 0 = driver does not echo):
    // writes are checked against the payload we forwarded, reads
    // against the data the driver delivered.
    let echo = reply.param(2);
    if echo != 0 {
        let sum = match exp.kind {
            cdev::WRITE => exp.sum,
            cdev::READ => Some(byte_sum(&reply.data)),
            _ => None,
        };
        if let Some(s) = sum {
            if echo != 1 + u64::from(s) {
                return Some((evidence::CRC_MISMATCH, "checksum echo mismatch"));
            }
        }
    }
    None
}

/// The VFS server.
pub struct Vfs {
    ds: Endpoint,
    rs: Endpoint,
    fs_key: String,
    fs: Option<Endpoint>,
    /// Optional second file server (Fig. 5's FAT) mounted at `/fat/`.
    fat_key: Option<String>,
    fat: Option<Endpoint>,
    chr: BTreeMap<String, Endpoint>,
    check_call: Option<CallId>,
    forwards: BTreeMap<CallId, Forward>,
    /// Requests parked until the file server is known.
    waiting_fs: Vec<(CallId, Message)>,
}

impl Vfs {
    /// Creates VFS; the file server is discovered under `fs_key`
    /// (e.g. `"mfs"`). `rs` receives protocol-sentinel complaints.
    pub fn new(ds: Endpoint, rs: Endpoint, fs_key: &str) -> Self {
        Vfs {
            ds,
            rs,
            fs_key: fs_key.to_string(),
            fs: None,
            fat_key: None,
            fat: None,
            chr: BTreeMap::new(),
            check_call: None,
            forwards: BTreeMap::new(),
            waiting_fs: Vec::new(),
        }
    }

    /// Additionally mounts a FAT server (discovered under `fat_key`) at
    /// the `/fat/` prefix (builder style).
    pub fn with_fat(mut self, fat_key: &str) -> Self {
        self.fat_key = Some(fat_key.to_string());
        self
    }

    fn ds_check(&mut self, ctx: &mut Ctx<'_>) {
        if self.check_call.is_none() {
            self.check_call = ctx.sendrec(self.ds, Message::new(ds::CHECK)).ok();
        }
    }

    fn device_key(path: &str) -> Option<&'static str> {
        DEV_TABLE
            .iter()
            .find(|(dev, _)| *dev == path)
            .map(|(_, key)| *key)
    }

    fn fail(&self, ctx: &mut Ctx<'_>, call: CallId, st: u64, driver_died: bool) {
        self.fail_wal(ctx, call, st, driver_died, 0);
    }

    fn fail_wal(&self, ctx: &mut Ctx<'_>, call: CallId, st: u64, driver_died: bool, wal_seq: u64) {
        if wal_seq != 0 {
            ctx.metrics().incr("vfs.ckpt_aborted_requests");
        }
        let _ = ctx.reply(
            call,
            Message::new(fs::DATA_REPLY)
                .with_param(0, st)
                .with_param(DRIVER_DIED_PARAM, u64::from(driver_died))
                .with_param(wal_params::ACK_SEQ, wal_seq),
        );
    }

    fn forward(&mut self, ctx: &mut Ctx<'_>, dst: Endpoint, client: CallId, msg: Message) {
        self.forward_vetted(ctx, dst, client, msg, None);
    }

    /// Forwards to a char driver, recording the sentinel expectation its
    /// reply will be vetted against.
    fn forward_dev(
        &mut self,
        ctx: &mut Ctx<'_>,
        key: &'static str,
        drv: Endpoint,
        client: CallId,
        msg: Message,
    ) {
        let exp = SentinelExpect {
            key,
            driver: drv,
            kind: msg.mtype,
            len: match msg.mtype {
                cdev::READ => msg.param(0) as usize,
                _ => msg.data.len(),
            },
            sum: match msg.mtype {
                cdev::WRITE => Some(byte_sum(&msg.data)),
                _ => None,
            },
        };
        self.forward_vetted(ctx, drv, client, msg, Some(exp));
    }

    fn forward_vetted(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: Endpoint,
        client: CallId,
        msg: Message,
        sentinel: Option<SentinelExpect>,
    ) {
        let wal_seq = msg.param(wal_params::REQ_SEQ);
        match ctx.sendrec(dst, msg) {
            Ok(call) => {
                self.forwards.insert(
                    call,
                    Forward {
                        client,
                        wal_seq,
                        sentinel,
                    },
                );
            }
            Err(_) => self.fail_wal(ctx, client, status::EIO, true, wal_seq),
        }
    }

    /// Files a sentinel complaint with RS about a char driver.
    fn complain(&mut self, ctx: &mut Ctx<'_>, exp: &SentinelExpect, kind: u32, why: &str) {
        ctx.trace(
            TraceLevel::Warn,
            format!("complaining about {}: {why}", exp.key),
        );
        ctx.metrics().incr("vfs.complaints");
        ctx.metrics()
            .incr(&format!("sentinel.vfs.{}", evidence::name(kind)));
        let (slot, generation) = pack_endpoint(exp.driver);
        let _ = ctx.sendrec(
            self.rs,
            Message::new(rsp::COMPLAIN)
                .with_param(0, u64::from(kind))
                .with_param(1, slot)
                .with_param(2, generation)
                .with_data(exp.key.as_bytes().to_vec()),
        );
    }

    fn route(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: Message) {
        // Character-device traffic carries the device path in OPEN; data
        // requests carry the resolved key in params[7] (set by the app
        // library in `phoenix::apps`), or the message is addressed to the
        // file server.
        match msg.mtype {
            fs::OPEN => {
                let path = String::from_utf8_lossy(&msg.data).to_string();
                if let Some(key) = Self::device_key(&path) {
                    match self.chr.get(key).copied() {
                        Some(drv) => {
                            self.forward_dev(ctx, key, drv, call, Message::new(cdev::OPEN));
                        }
                        None => self.fail(ctx, call, status::ENODEV, false),
                    }
                } else if let Some(name) = path.strip_prefix("/fat/") {
                    // The FAT mount (Fig. 5's second file server).
                    match self.fat {
                        Some(fat) => {
                            let fwd = Message::new(fs::OPEN)
                                .with_param(7, 1) // fs id 1 = fat
                                .with_data(name.as_bytes().to_vec());
                            self.forward(ctx, fat, call, fwd);
                        }
                        None => self.fail(ctx, call, status::ENODEV, false),
                    }
                } else {
                    match self.fs {
                        Some(fsrv) => self.forward(ctx, fsrv, call, msg),
                        None => self.waiting_fs.push((call, msg)),
                    }
                }
            }
            fs::READ | fs::WRITE => {
                // params[7]: which file server the handle belongs to
                // (0 = root/MFS, 1 = the FAT mount).
                let dst = if msg.param(7) == 1 { self.fat } else { self.fs };
                match dst {
                    Some(fsrv) => self.forward(ctx, fsrv, call, msg),
                    None => self.waiting_fs.push((call, msg)),
                }
            }
            cdev::WRITE
            | cdev::READ
            | cdev::BURN_START
            | cdev::BURN_CHUNK
            | cdev::BURN_FINALIZE => {
                // params[7] carries the device index into DEV_TABLE.
                let Some((_, key)) = DEV_TABLE.get(msg.param(7) as usize) else {
                    self.fail(ctx, call, status::EINVAL, false);
                    return;
                };
                match self.chr.get(*key).copied() {
                    Some(drv) => self.forward_dev(ctx, key, drv, call, msg),
                    None => self.fail(ctx, call, status::ENODEV, false),
                }
            }
            _ => self.fail(ctx, call, status::EINVAL, false),
        }
    }
}

impl Process for Vfs {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {
                let mut pats = vec![self.fs_key.clone(), "chr.*".to_string()];
                if let Some(fat) = &self.fat_key {
                    pats.push(fat.clone());
                }
                for pat in pats {
                    let _ = ctx.sendrec(
                        self.ds,
                        Message::new(ds::SUBSCRIBE).with_data(pat.into_bytes()),
                    );
                }
            }
            ProcEvent::Notify { from } if from == self.ds => self.ds_check(ctx),
            ProcEvent::Request { call, msg } => self.route(ctx, call, msg),
            ProcEvent::Reply { call, result } => {
                if Some(call) == self.check_call {
                    self.check_call = None;
                    if let Ok(reply) = result {
                        if reply.mtype == ds::CHECK_REPLY && reply.param(0) == 0 {
                            let key = String::from_utf8_lossy(&reply.data).to_string();
                            let ep = unpack_endpoint(reply.param(1), reply.param(2));
                            // Episode behind this update (0 = boot publish).
                            let rid = RecoveryId::from_wire(reply.param(3));
                            let parent = SpanId::from_wire(reply.param(4));
                            if key == self.fs_key {
                                let rebound = self.fs.is_some_and(|old| old != ep);
                                self.fs = Some(ep);
                                let parked = std::mem::take(&mut self.waiting_fs);
                                if rebound || !parked.is_empty() {
                                    let ev = ctx
                                        .event(
                                            TraceLevel::Info,
                                            format!(
                                                "file server {key} -> {ep}; {} parked requests",
                                                parked.len()
                                            ),
                                        )
                                        .with_field("ev", "resume")
                                        .with_field("key", key.as_str())
                                        .with_field("parked", parked.len() as u64)
                                        .in_recovery_opt(rid)
                                        .with_parent_opt(parent);
                                    ctx.trace_event(ev);
                                }
                                for (c, m) in parked {
                                    self.forward(ctx, ep, c, m);
                                }
                            } else if Some(&key) == self.fat_key.as_ref() {
                                self.fat = Some(ep);
                            } else if key.starts_with("chr.") {
                                let rebound = self.chr.get(&key).is_some_and(|&old| old != ep);
                                let ev = ctx
                                    .event(TraceLevel::Info, format!("char driver {key} -> {ep}"))
                                    .with_field(
                                        "ev",
                                        if rebound { "reintegrate" } else { "resume" },
                                    )
                                    .with_field("key", key.as_str())
                                    .in_recovery_opt(rid)
                                    .with_parent_opt(parent);
                                ctx.trace_event(ev);
                                self.chr.insert(key, ep);
                            }
                            self.ds_check(ctx);
                        }
                    }
                    return;
                }
                // [recovery:begin]
                let Some(fwd) = self.forwards.remove(&call) else {
                    return; // subscribe acks etc.
                };
                match result {
                    Ok(mut reply) => {
                        if let Some(exp) = fwd.sentinel {
                            if let Some((kind, why)) = vet_reply(&exp, &reply) {
                                // Protocol violation: complain to RS and
                                // push an explicit error to the client
                                // rather than relaying garbage. The
                                // driver-died flag is set so recovery-
                                // aware clients treat the suspect driver
                                // like a dead one and redo the work.
                                self.complain(ctx, &exp, kind, why);
                                self.fail_wal(ctx, fwd.client, status::EIO, true, fwd.wal_seq);
                                return;
                            }
                            // The checksum echo is a VFS<->driver protocol
                            // detail; strip it so the client-visible slot
                            // keeps its driver-died-flag meaning.
                            reply.params[DRIVER_DIED_PARAM] = 0;
                        }
                        let _ = ctx.reply(fwd.client, reply);
                    }
                    Err(_) => {
                        // §6.3: the char driver (or FS) died mid-request;
                        // push the error to the application.
                        ctx.metrics().incr("vfs.driver_died_errors");
                        self.fail_wal(ctx, fwd.client, status::EIO, true, fwd.wal_seq);
                    }
                }
                // [recovery:end]
            }
            _ => {}
        }
    }
}
