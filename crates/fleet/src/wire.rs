//! The inter-node wire: a full mesh of directed links with fixed
//! latency, per-link loss/cut windows (the node-level chaos surface),
//! and a deterministic delivery queue.
//!
//! Every directed link draws its loss trials from its own RNG stream,
//! forked off the fleet seed by `(domain, a·256 + b)` — so two runs of
//! the same fleet replay byte-identically, and chaos on one link never
//! perturbs another link's stream.

use std::collections::BTreeMap;

use phoenix_fault::LinkDirection;
use phoenix_simcore::rng::SimRng;
use phoenix_simcore::time::{SimDuration, SimTime};

use crate::proto::Frame;

/// What a link carries: typed gossip frames for the backbone, encoded
/// transport segments for the snapshot transfer layer.
#[derive(Clone, Debug)]
pub enum Payload {
    /// A fleet backbone frame.
    Gossip(Frame),
    /// An encoded [`phoenix_servers::netproto::Segment`].
    Transfer(Vec<u8>),
}

/// One delivered payload.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// Destination node.
    pub to: u8,
    /// Originating node.
    pub from: u8,
    /// The payload.
    pub payload: Payload,
}

/// Per-directed-link state: chaos windows plus the loss RNG.
#[derive(Debug)]
struct Link {
    /// Hard cut active until this time.
    cut_until: SimTime,
    /// Elevated loss active until this time.
    loss_until: SimTime,
    /// Per-frame drop probability while the loss window is open.
    loss_prob: f64,
    rng: SimRng,
}

/// Counters the campaign digest folds in.
#[derive(Clone, Copy, Debug, Default)]
pub struct WireStats {
    /// Frames offered to the wire.
    pub sent: u64,
    /// Frames delivered.
    pub delivered: u64,
    /// Frames dropped by an open loss window.
    pub dropped_loss: u64,
    /// Frames dropped by a hard cut.
    pub dropped_cut: u64,
}

/// The fleet's inter-node network.
#[derive(Debug)]
pub struct FleetWire {
    latency: SimDuration,
    links: BTreeMap<(u8, u8), Link>,
    queue: BTreeMap<(SimTime, u64), Delivery>,
    next_seq: u64,
    /// Delivery/drop counters.
    pub stats: WireStats,
}

impl FleetWire {
    /// Builds the full mesh for `n` nodes. `rng` is the fleet root RNG;
    /// each directed link forks its own stream from it.
    pub fn new(n: u8, latency: SimDuration, rng: &SimRng) -> FleetWire {
        let mut links = BTreeMap::new();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                links.insert(
                    (a, b),
                    Link {
                        cut_until: SimTime::ZERO,
                        loss_until: SimTime::ZERO,
                        loss_prob: 0.0,
                        rng: rng.fork_indexed("fleet-link", u64::from(a) * 256 + u64::from(b)),
                    },
                );
            }
        }
        FleetWire {
            latency,
            links,
            queue: BTreeMap::new(),
            next_seq: 0,
            stats: WireStats::default(),
        }
    }

    /// Offers one payload to the directed link `from -> to`. Applies the
    /// link's cut and loss windows, then enqueues for delivery one
    /// latency later.
    pub fn send(&mut self, now: SimTime, from: u8, to: u8, payload: Payload) {
        self.stats.sent += 1;
        let Some(link) = self.links.get_mut(&(from, to)) else {
            return;
        };
        if now < link.cut_until {
            self.stats.dropped_cut += 1;
            return;
        }
        if now < link.loss_until && link.loss_prob > 0.0 && link.rng.chance(link.loss_prob) {
            self.stats.dropped_loss += 1;
            return;
        }
        let at = now + self.latency;
        self.queue
            .insert((at, self.next_seq), Delivery { to, from, payload });
        self.next_seq += 1;
    }

    /// Removes and returns every payload due at or before `now`, in
    /// (time, send order).
    pub fn pop_due(&mut self, now: SimTime) -> Vec<Delivery> {
        let mut due = Vec::new();
        while self
            .queue
            .first_key_value()
            .is_some_and(|(&(at, _), _)| at <= now)
        {
            if let Some((_, d)) = self.queue.pop_first() {
                self.stats.delivered += 1;
                due.push(d);
            }
        }
        due
    }

    /// Opens a hard-cut window on the `a`/`b` link pair in the given
    /// direction(s) until `until`.
    pub fn partition(&mut self, a: u8, b: u8, direction: LinkDirection, until: SimTime) {
        for (x, y) in directed(a, b, direction) {
            if let Some(link) = self.links.get_mut(&(x, y)) {
                link.cut_until = link.cut_until.max(until);
            }
        }
    }

    /// Opens an elevated-loss window on the `a`/`b` link pair in the
    /// given direction(s) until `until`.
    pub fn set_loss(&mut self, a: u8, b: u8, direction: LinkDirection, prob: f64, until: SimTime) {
        for (x, y) in directed(a, b, direction) {
            if let Some(link) = self.links.get_mut(&(x, y)) {
                link.loss_prob = prob;
                link.loss_until = link.loss_until.max(until);
            }
        }
    }
}

/// The directed link keys a fault direction selects on the `a`/`b` pair.
fn directed(a: u8, b: u8, direction: LinkDirection) -> Vec<(u8, u8)> {
    match direction {
        LinkDirection::Both => vec![(a, b), (b, a)],
        LinkDirection::AToB => vec![(a, b)],
        LinkDirection::BToA => vec![(b, a)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Frame;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn hb(from: u8) -> Payload {
        Payload::Gossip(Frame::heartbeat(from, 1, Vec::new()))
    }

    #[test]
    fn delivers_after_latency_in_send_order() {
        let rng = SimRng::new(1);
        let mut wire = FleetWire::new(3, SimDuration::from_millis(1), &rng);
        wire.send(t(0), 0, 1, hb(0));
        wire.send(t(0), 2, 1, hb(2));
        assert!(wire.pop_due(t(0)).is_empty());
        let due = wire.pop_due(t(1));
        assert_eq!(due.len(), 2);
        assert_eq!((due[0].from, due[1].from), (0, 2));
        assert_eq!(wire.stats.delivered, 2);
    }

    #[test]
    fn one_way_cut_blocks_only_that_direction() {
        let rng = SimRng::new(2);
        let mut wire = FleetWire::new(2, SimDuration::from_millis(1), &rng);
        wire.partition(0, 1, LinkDirection::AToB, t(10));
        wire.send(t(5), 0, 1, hb(0));
        wire.send(t(5), 1, 0, hb(1));
        let due = wire.pop_due(t(6));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].from, 1, "only the reverse direction delivers");
        assert_eq!(wire.stats.dropped_cut, 1);
        // The window expires: the cut direction heals.
        wire.send(t(10), 0, 1, hb(0));
        assert_eq!(wire.pop_due(t(11)).len(), 1);
    }

    #[test]
    fn loss_window_drops_probabilistically_then_heals() {
        let rng = SimRng::new(3);
        let mut wire = FleetWire::new(2, SimDuration::from_millis(1), &rng);
        wire.set_loss(0, 1, LinkDirection::Both, 1.0, t(10));
        wire.send(t(1), 0, 1, hb(0));
        wire.send(t(1), 1, 0, hb(1));
        assert!(wire.pop_due(t(2)).is_empty());
        assert_eq!(wire.stats.dropped_loss, 2);
        wire.send(t(10), 0, 1, hb(0));
        assert_eq!(wire.pop_due(t(11)).len(), 1);
    }
}
