//! Reusable experiment drivers for the paper's evaluation (§7.1):
//! Fig. 7 (network throughput under driver kills), Fig. 8 (disk throughput
//! under driver kills), and the Fig. 3 recovery-scheme matrix.

use std::cell::RefCell;
use std::rc::Rc;

use phoenix_hw::disk::DiskModel;
use phoenix_servers::fsfmt::{self, FileContent, FileSpec};
use phoenix_servers::netproto::stream_md5;
use phoenix_servers::peer::FilePeer;
use phoenix_simcore::time::{SimDuration, SimTime};

use crate::apps::{CdBurn, CdBurnStatus, Dd, DdStatus, Lpd, LpdStatus, Wget, WgetStatus};
use crate::os::{names, NicKind, Os};

/// Result of one Fig. 7 network run.
#[derive(Debug, Clone)]
pub struct NetRunResult {
    /// Kill interval (None = uninterrupted baseline).
    pub kill_interval: Option<SimDuration>,
    /// Transfer time.
    pub elapsed: SimDuration,
    /// Payload throughput in MB/s.
    pub throughput_mbs: f64,
    /// MD5 of received data matches the original file.
    pub md5_ok: bool,
    /// Number of driver kills performed.
    pub kills: u64,
    /// Mean data-flow gap across kills (the observable recovery time).
    pub mean_gap: Option<SimDuration>,
    /// Transport retransmission batches at the peer.
    pub retransmissions: u64,
}

/// Runs the Fig. 7 experiment: download `size` bytes via the RTL8139
/// while killing its driver every `kill_interval` (or never).
pub fn fig7_network_run(size: u64, kill_interval: Option<SimDuration>, seed: u64) -> NetRunResult {
    let content_seed = seed ^ 0x5157_4745; // "WGET"
    let mut os = Os::builder()
        .seed(seed)
        .with_network(NicKind::Rtl8139)
        .boot();
    let inet = os.endpoint(names::INET).expect("inet up after boot");
    let status = Rc::new(RefCell::new(WgetStatus::default()));
    let start = os.now();
    os.spawn_app(
        "wget",
        Box::new(Wget::new(inet, size, content_seed, status.clone())),
    );

    let driver = os.eth_driver_name().expect("network configured");
    let mut kills = 0u64;
    let mut next_kill = kill_interval.map(|i| start + i);
    // Generous timeout: 20x the ideal transfer time plus a minute.
    let deadline =
        start + SimDuration::from_secs_f64(size as f64 / 500_000.0) + SimDuration::from_secs(60);
    let slice = SimDuration::from_millis(100);
    while !status.borrow().done && os.now() < deadline {
        let target = match next_kill {
            Some(nk) => nk.min(os.now() + slice),
            None => os.now() + slice,
        };
        let d = target.since(os.now()).max_one();
        os.run_for(d);
        if let Some(nk) = next_kill {
            if os.now() >= nk {
                // The paper's crash-simulation script: look up the driver
                // and SIGKILL it (§7.1).
                if os.kill_by_user(driver) {
                    kills += 1;
                }
                next_kill = Some(nk + kill_interval.expect("interval set"));
            }
        }
    }
    let st = status.borrow();
    let finished = st.finished_at.unwrap_or(os.now());
    let elapsed = finished.since(start);
    let md5_ok = st.md5.as_deref() == Some(stream_md5(content_seed, size).as_str());
    let mean_gap = if st.gaps.is_empty() {
        None
    } else {
        let total: SimDuration = st
            .gaps
            .iter()
            .map(|(_, g)| *g)
            .fold(SimDuration::ZERO, |a, b| a + b);
        Some(total / st.gaps.len() as u64)
    };
    let retransmissions = os
        .peer_mut::<FilePeer>()
        .map(|p| p.retransmissions())
        .unwrap_or(0);
    NetRunResult {
        kill_interval,
        elapsed,
        throughput_mbs: size as f64 / 1e6 / elapsed.as_secs_f64(),
        md5_ok,
        kills,
        mean_gap,
        retransmissions,
    }
}

/// Result of one Fig. 8 disk run.
#[derive(Debug, Clone)]
pub struct DiskRunResult {
    /// Kill interval (None = uninterrupted baseline).
    pub kill_interval: Option<SimDuration>,
    /// Transfer time.
    pub elapsed: SimDuration,
    /// Throughput in MB/s.
    pub throughput_mbs: f64,
    /// SHA-1 matches the expected file content.
    pub sha1_ok: bool,
    /// Number of driver kills performed.
    pub kills: u64,
    /// I/O errors the application saw (must be 0: recovery is transparent).
    pub app_errors: u64,
}

/// The standard disk layout used by the Fig. 8 experiment.
pub fn fig8_files(file_size: u64) -> Vec<FileSpec> {
    vec![FileSpec {
        name: "bigfile".to_string(),
        content: FileContent::Synthetic { size: file_size },
    }]
}

/// Expected SHA-1 of `bigfile`, computed without I/O.
pub fn fig8_expected_sha1(sectors: u64, disk_seed: u64, file_size: u64) -> String {
    let mut scratch = DiskModel::new(sectors, disk_seed);
    let inodes = fsfmt::mkfs(&mut scratch, &fig8_files(file_size));
    fsfmt::expected_sha1(disk_seed, &inodes[0])
}

/// Runs the Fig. 8 experiment: `dd` a `file_size`-byte file through
/// VFS/MFS off the SATA disk while killing the disk driver every
/// `kill_interval`.
pub fn fig8_disk_run(
    file_size: u64,
    kill_interval: Option<SimDuration>,
    seed: u64,
) -> DiskRunResult {
    let disk_seed = seed ^ 0x5341_5441; // "SATA"
    let sectors = file_size / 512 + 1024;
    let mut os = Os::builder()
        .seed(seed)
        .with_disk(sectors, disk_seed, fig8_files(file_size))
        .boot();
    let vfs = os.endpoint(names::VFS).expect("vfs up after boot");
    let status = Rc::new(RefCell::new(DdStatus::default()));
    let start = os.now();
    os.spawn_app(
        "dd",
        Box::new(Dd::new(vfs, "bigfile", 128 * 1024, status.clone())),
    );

    let mut kills = 0u64;
    let mut next_kill = kill_interval.map(|i| start + i);
    let deadline = start
        + SimDuration::from_secs_f64(file_size as f64 / 1_500_000.0)
        + SimDuration::from_secs(60);
    let slice = SimDuration::from_millis(100);
    while !status.borrow().done && os.now() < deadline {
        let target = match next_kill {
            Some(nk) => nk.min(os.now() + slice),
            None => os.now() + slice,
        };
        os.run_for(target.since(os.now()).max_one());
        if let Some(nk) = next_kill {
            if os.now() >= nk {
                if os.kill_by_user(names::BLK_SATA) {
                    kills += 1;
                }
                next_kill = Some(nk + kill_interval.expect("interval set"));
            }
        }
    }
    let st = status.borrow();
    let finished = st.finished_at.unwrap_or(os.now());
    let elapsed = finished.since(start);
    let expected = fig8_expected_sha1(sectors, disk_seed, file_size);
    DiskRunResult {
        kill_interval,
        elapsed,
        throughput_mbs: file_size as f64 / 1e6 / elapsed.as_secs_f64(),
        sha1_ok: st.sha1.as_deref() == Some(expected.as_str()),
        kills,
        app_errors: st.errors,
    }
}

/// Outcome of one recovery-scheme probe (one row of Fig. 3).
#[derive(Debug, Clone)]
pub struct SchemeOutcome {
    /// Driver class name.
    pub class: &'static str,
    /// Whether recovery was transparent to the application.
    pub transparent: bool,
    /// Whether the application recovered with its own logic (§6.3).
    pub app_recovered: bool,
    /// Whether the user had to be told (CD burn case).
    pub user_informed: bool,
    /// Where recovery happened.
    pub recovered_by: &'static str,
}

/// Probes all three recovery schemes of Fig. 3 with one driver kill each.
pub fn fig3_schemes(seed: u64) -> Vec<SchemeOutcome> {
    let mut out = Vec::new();

    // --- network: transparent, by the network server -------------------
    {
        let size = 2_000_000;
        let content_seed = seed ^ 1;
        let mut os = Os::builder()
            .seed(seed)
            .with_network(NicKind::Rtl8139)
            .boot();
        let inet = os.endpoint(names::INET).expect("inet up");
        let status = Rc::new(RefCell::new(WgetStatus::default()));
        os.spawn_app(
            "wget",
            Box::new(Wget::new(inet, size, content_seed, status.clone())),
        );
        os.run_for(SimDuration::from_millis(300));
        os.kill_by_user(names::ETH_RTL8139);
        let mut waited = 0;
        while !status.borrow().done && waited < 400 {
            os.run_for(SimDuration::from_millis(100));
            waited += 1;
        }
        let st = status.borrow();
        let md5_ok = st.md5.as_deref() == Some(stream_md5(content_seed, size).as_str());
        out.push(SchemeOutcome {
            class: "network",
            transparent: st.done && md5_ok,
            app_recovered: false,
            user_informed: false,
            recovered_by: "network server",
        });
    }

    // --- block: transparent, by the file server ------------------------
    {
        let file_size = 2_000_000;
        let disk_seed = seed ^ 2;
        let sectors = file_size / 512 + 1024;
        let mut os = Os::builder()
            .seed(seed)
            .with_disk(sectors, disk_seed, fig8_files(file_size))
            .boot();
        let vfs = os.endpoint(names::VFS).expect("vfs up");
        let status = Rc::new(RefCell::new(DdStatus::default()));
        os.spawn_app(
            "dd",
            Box::new(Dd::new(vfs, "bigfile", 64 * 1024, status.clone())),
        );
        os.run_for(SimDuration::from_millis(100));
        os.kill_by_user(names::BLK_SATA);
        let mut waited = 0;
        while !status.borrow().done && waited < 400 {
            os.run_for(SimDuration::from_millis(100));
            waited += 1;
        }
        let st = status.borrow();
        let mut scratch = DiskModel::new(sectors, disk_seed);
        let inodes = fsfmt::mkfs(&mut scratch, &fig8_files(file_size));
        let sha_ok =
            st.sha1.as_deref() == Some(fsfmt::expected_sha1(disk_seed, &inodes[0]).as_str());
        out.push(SchemeOutcome {
            class: "block",
            transparent: st.done && sha_ok && st.errors == 0,
            app_recovered: false,
            user_informed: false,
            recovered_by: "file server",
        });
    }

    // --- character (printer): app-level recovery -----------------------
    {
        let mut os = Os::builder().seed(seed).with_chardevs().boot();
        let vfs = os.endpoint(names::VFS).expect("vfs up");
        let status = Rc::new(RefCell::new(LpdStatus::default()));
        let job = vec![b'P'; 64 * 1024];
        os.spawn_app("lpd", Box::new(Lpd::new(vfs, job, status.clone())));
        os.run_for(SimDuration::from_millis(300));
        os.kill_by_user(names::CHR_PRINTER);
        let mut waited = 0;
        while !status.borrow().done && waited < 400 {
            os.run_for(SimDuration::from_millis(100));
            waited += 1;
        }
        let st = status.borrow();
        out.push(SchemeOutcome {
            class: "character (printer)",
            transparent: false,
            app_recovered: st.done && st.job_restarts > 0,
            user_informed: false,
            recovered_by: "application (lpd redoes the job)",
        });
    }

    // --- character (CD burner): user must be informed ------------------
    {
        let mut os = Os::builder().seed(seed).with_chardevs().boot();
        let vfs = os.endpoint(names::VFS).expect("vfs up");
        let status = Rc::new(RefCell::new(CdBurnStatus::default()));
        os.spawn_app(
            "cdburn",
            Box::new(CdBurn::new(vfs, 2000, 4096, status.clone())),
        );
        os.run_for(SimDuration::from_millis(200));
        os.kill_by_user(names::CHR_SCSI);
        let mut waited = 0;
        while waited < 100 {
            let st = status.borrow();
            if st.completed || st.reported_to_user {
                break;
            }
            drop(st);
            os.run_for(SimDuration::from_millis(100));
            waited += 1;
        }
        let st = status.borrow();
        out.push(SchemeOutcome {
            class: "character (cd burn)",
            transparent: false,
            app_recovered: false,
            user_informed: st.reported_to_user,
            recovered_by: "user (disc ruined, error reported)",
        });
    }

    out
}

/// Small extension trait to keep run loops from issuing zero-length runs.
trait MaxOne {
    /// At least one microsecond.
    fn max_one(self) -> Self;
}

impl MaxOne for SimDuration {
    fn max_one(self) -> Self {
        if self.is_zero() {
            SimDuration::from_micros(1)
        } else {
            self
        }
    }
}

/// The SimTime type re-exported for harness convenience.
pub type Instant = SimTime;
