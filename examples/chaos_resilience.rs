//! The §6.1 scenario under a hostile IPC fabric: `wget` downloads a file
//! while the chaos layer drops, delays, duplicates and bit-corrupts
//! driver messages — and one scripted kill lands *inside* an ongoing
//! recovery. The transport retransmits around every loss, the CRC-16
//! rejects every corrupted frame, and the hardened reincarnation server
//! absorbs the mid-recovery crash; the MD5 still checks out.
//!
//! Run with: `cargo run --release --example chaos_resilience`

use std::cell::RefCell;
use std::rc::Rc;

use phoenix::apps::{Wget, WgetStatus};
use phoenix::os::{names, NicKind, Os};
use phoenix_fault::{ChaosPlan, NameFilter};
use phoenix_servers::netproto::stream_md5;
use phoenix_simcore::time::SimDuration;

fn main() {
    let size: u64 = 4_000_000; // 4 MB download through a lossy fabric
    let content_seed = 1234;
    let kill_interval = SimDuration::from_secs(2);
    let intensity = 1.0; // 10% drop, 10% delay, 5% dup, 2% corrupt

    let plan = ChaosPlan::driver_traffic(intensity).kill_during_recovery(
        NameFilter::exact(names::ETH_RTL8139),
        0,                           // on the very first recovery ...
        1,                           // ... kill the fresh incarnation once,
        SimDuration::from_millis(2), // 2 ms after it spawns
    );
    let mut os = Os::builder()
        .seed(42)
        .with_network(NicKind::Rtl8139)
        .heartbeat(SimDuration::from_millis(500), 3)
        .chaos(plan)
        .boot();
    let inet = os.endpoint(names::INET).expect("inet up");
    let status = Rc::new(RefCell::new(WgetStatus::default()));
    let start = os.now();
    os.spawn_app(
        "wget",
        Box::new(Wget::new(inet, size, content_seed, status.clone())),
    );
    println!(
        "downloading {} MB at chaos intensity {intensity} while killing {} every {kill_interval} ...",
        size / 1_000_000,
        names::ETH_RTL8139
    );

    let mut kills = 0;
    let mut next_kill = start + kill_interval;
    while !status.borrow().done {
        os.run_for(SimDuration::from_millis(100));
        if os.now() >= next_kill && !status.borrow().done {
            if os.kill_by_user(names::ETH_RTL8139) {
                kills += 1;
                println!("  t={} kill #{kills}", os.now());
            }
            next_kill = os.now() + kill_interval;
        }
    }

    let st = status.borrow();
    let elapsed = st.finished_at.expect("done").since(start);
    let expected = stream_md5(content_seed, size);
    let m = os.metrics();
    println!(
        "\ndownload finished in {elapsed} ({:.2} MB/s)",
        size as f64 / 1e6 / elapsed.as_secs_f64()
    );
    println!(
        "chaos: {} dropped, {} delayed, {} duplicated, {} corrupted, {} mid-recovery kills",
        m.counter("chaos.dropped"),
        m.counter("chaos.delayed"),
        m.counter("chaos.duplicated"),
        m.counter("chaos.corrupted"),
        m.counter("chaos.kills"),
    );
    println!(
        "user kills: {kills}, recoveries: {}, storms: {}, give-ups: {}",
        m.counter("rs.recoveries"),
        m.counter("rs.storms"),
        m.counter("rs.gave_up"),
    );
    println!("md5 received: {}", st.md5.as_deref().unwrap_or("?"));
    println!("md5 expected: {expected}");
    assert_eq!(
        st.md5.as_deref(),
        Some(expected.as_str()),
        "no data corruption"
    );
    assert_eq!(m.counter("rs.storms"), 0, "no restart storms");
    println!("=> transparent recovery: every byte intact despite a hostile fabric");
}
