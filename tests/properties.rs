//! Randomized tests over the core data structures and invariants.
//!
//! Each test draws its cases from a fixed-seed [`SimRng`], so runs are
//! deterministic and failures reproduce without shrinking machinery.

use phoenix_fault::isa::{decode, encode, Instr};
use phoenix_fault::mutate::{apply_fault, ALL_FAULT_TYPES};
use phoenix_fault::vm::Vm;
use phoenix_hw::disk::{DiskModel, SECTOR};
use phoenix_servers::fsfmt::{Extent, Inode, Superblock};
use phoenix_servers::netproto::{stream_chunk, Segment};
use phoenix_servers::policy::{PolicyInput, PolicyScript};
use phoenix_simcore::digest::{Md5, Sha1};
use phoenix_simcore::event::EventQueue;
use phoenix_simcore::rng::SimRng;
use phoenix_simcore::time::SimTime;

const CASES: usize = 256;

fn rng_for(test: &str) -> SimRng {
    SimRng::new(0x7072_6f70).fork(test)
}

fn random_instr(rng: &mut SimRng) -> Instr {
    let r = |rng: &mut SimRng| rng.range_u64(0..8) as u8;
    let imm = |rng: &mut SimRng| rng.next_u32() as u16;
    match rng.range_u64(0..21) {
        0 => Instr::Nop,
        1 => Instr::MovImm(r(rng), imm(rng)),
        2 => Instr::Mov(r(rng), r(rng)),
        3 => Instr::Add(r(rng), r(rng)),
        4 => Instr::AddImm(r(rng), imm(rng)),
        5 => Instr::Sub(r(rng), r(rng)),
        6 => Instr::Mul(r(rng), r(rng)),
        7 => Instr::Div(r(rng), r(rng)),
        8 => Instr::Xor(r(rng), r(rng)),
        9 => Instr::Shl(r(rng), imm(rng)),
        10 => Instr::Load(r(rng), r(rng), imm(rng)),
        11 => Instr::Store(r(rng), r(rng), imm(rng)),
        12 => Instr::LoadB(r(rng), r(rng), imm(rng)),
        13 => Instr::StoreB(r(rng), r(rng), imm(rng)),
        14 => Instr::Jmp(imm(rng)),
        15 => Instr::Jz(r(rng), imm(rng)),
        16 => Instr::Jnz(r(rng), imm(rng)),
        17 => Instr::Jlt(r(rng), r(rng), imm(rng)),
        18 => Instr::Jge(r(rng), r(rng), imm(rng)),
        19 => Instr::Assert(r(rng)),
        _ => Instr::Halt,
    }
}

fn random_bytes(rng: &mut SimRng, len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

fn random_words(rng: &mut SimRng, len: usize) -> Vec<u32> {
    (0..len).map(|_| rng.next_u32()).collect()
}

/// Every valid instruction round-trips through its binary encoding.
#[test]
fn isa_encode_decode_roundtrip() {
    let mut rng = rng_for("isa-roundtrip");
    for _ in 0..CASES * 4 {
        let i = random_instr(&mut rng);
        assert_eq!(decode(encode(i)), i);
    }
}

/// Decoding is total: any 32-bit word decodes (possibly to Invalid)
/// and re-encoding an Invalid preserves the word.
#[test]
fn isa_decode_total() {
    let mut rng = rng_for("isa-total");
    for _ in 0..CASES * 16 {
        let w = rng.next_u32();
        let d = decode(w);
        if let Instr::Invalid(x) = d {
            assert_eq!(x, w);
            assert_eq!(encode(d), w);
        }
    }
}

/// The VM never panics and always terminates within the step budget,
/// whatever garbage it executes — the foundation of the fault
/// injection methodology (a mutated driver can crash *as a process*,
/// never crash the analysis).
#[test]
fn vm_is_total_on_arbitrary_code() {
    let mut rng = rng_for("vm-total");
    for _ in 0..CASES {
        let len = rng.range_usize(1..64);
        let code = random_words(&mut rng, len);
        let mut vm = Vm::new(256);
        for reg in vm.regs.iter_mut() {
            *reg = rng.next_u32();
        }
        let gas = rng.range_u64(1..20_000);
        let _ = vm.run(&code, gas);
    }
}

/// Every mutation operator changes at most one instruction word and
/// never changes the program length.
#[test]
fn mutations_touch_exactly_one_word() {
    let mut rng = rng_for("mutate-one-word");
    for _ in 0..CASES {
        let len = rng.range_usize(1..128);
        let code = random_words(&mut rng, len);
        let which = rng.range_usize(0..ALL_FAULT_TYPES.len());
        let mut fault_rng = SimRng::new(rng.next_u64());
        let mut mutated = code.clone();
        let m = apply_fault(&mut mutated, ALL_FAULT_TYPES[which], &mut fault_rng);
        assert_eq!(mutated.len(), code.len());
        let diffs = mutated.iter().zip(&code).filter(|(a, b)| a != b).count();
        match m {
            Some(rec) => {
                assert!(diffs <= 1);
                assert_eq!(mutated[rec.index], rec.after);
            }
            None => assert_eq!(diffs, 0),
        }
    }
}

/// Streaming digests equal one-shot digests for any chunking.
#[test]
fn digests_chunking_invariant() {
    let mut rng = rng_for("digest-chunking");
    for _ in 0..CASES / 2 {
        let len = rng.range_usize(0..2048);
        let data = random_bytes(&mut rng, len);
        let mut cuts: Vec<usize> = (0..rng.range_usize(0..8))
            .map(|_| rng.range_usize(0..data.len() + 1))
            .collect();
        cuts.sort_unstable();
        let mut md5 = Md5::new();
        let mut sha = Sha1::new();
        let mut prev = 0;
        for c in cuts {
            md5.update(&data[prev..c]);
            sha.update(&data[prev..c]);
            prev = c;
        }
        md5.update(&data[prev..]);
        sha.update(&data[prev..]);
        assert_eq!(md5.finish(), Md5::digest(&data));
        assert_eq!(sha.finish(), Sha1::digest(&data));
    }
}

/// The event queue delivers in non-decreasing time order regardless of
/// insertion order.
#[test]
fn event_queue_time_ordered() {
    let mut rng = rng_for("event-queue-order");
    for _ in 0..CASES {
        let times: Vec<u64> = (0..rng.range_usize(1..100))
            .map(|_| rng.range_u64(0..1_000_000))
            .collect();
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_micros(*t), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((at, _)) = q.pop() {
            assert!(at >= last);
            last = at;
            n += 1;
        }
        assert_eq!(n, times.len());
    }
}

/// Disk overlay semantics: what you write is what you read; what you
/// never wrote is the deterministic base pattern.
#[test]
fn disk_model_read_your_writes() {
    let mut rng = rng_for("disk-ryw");
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let mut disk = DiskModel::new(64, seed);
        let mut expected = std::collections::HashMap::new();
        for _ in 0..rng.range_usize(0..32) {
            let lba = rng.range_u64(0..64);
            let fill = rng.next_u32() as u8;
            let sector = vec![fill; SECTOR];
            assert!(disk.write(lba, &sector));
            expected.insert(lba, sector);
        }
        let probe = rng.range_u64(0..64);
        let got = disk.read(probe).unwrap();
        match expected.get(&probe) {
            Some(sector) => assert_eq!(&got, sector),
            None => assert_eq!(got, phoenix_hw::disk::synth_sector(seed, probe)),
        }
    }
}

/// Inodes round-trip through the on-disk format.
#[test]
fn inode_roundtrip() {
    let mut rng = rng_for("inode-roundtrip");
    let name_chars: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789_.-".chars().collect();
    for _ in 0..CASES {
        let mut name = String::new();
        name.push(*rng.pick(&name_chars[..26]));
        for _ in 0..rng.range_usize(0..31) {
            name.push(*rng.pick(&name_chars));
        }
        let extents = (0..rng.range_usize(0..6))
            .map(|_| Extent {
                start: rng.next_u64(),
                sectors: rng.next_u32(),
            })
            .collect();
        let ino = Inode {
            name,
            size: rng.next_u64(),
            extents,
        };
        assert_eq!(Inode::decode(&ino.encode()), Some(ino));
    }
}

/// Superblocks round-trip.
#[test]
fn superblock_roundtrip() {
    let mut rng = rng_for("superblock-roundtrip");
    for _ in 0..CASES {
        let sb = Superblock {
            inode_count: rng.next_u32(),
            inode_table_lba: rng.next_u64(),
            inode_table_sectors: rng.next_u32(),
        };
        assert_eq!(Superblock::decode(&sb.encode()), Some(sb));
    }
}

/// Transport segments round-trip, and decode rejects any truncation.
#[test]
fn segment_roundtrip_and_truncation() {
    let mut rng = rng_for("segment-roundtrip");
    for _ in 0..CASES {
        let s = Segment {
            flags: rng.next_u32() as u8,
            conn: rng.next_u32() as u16,
            seq: rng.next_u32(),
            ack: rng.next_u32(),
            payload: {
                let len = rng.range_usize(0..1460);
                random_bytes(&mut rng, len)
            },
        };
        let wire = s.encode();
        assert_eq!(Segment::decode(&wire), Some(s));
        let cut = rng.range_usize(1..14);
        assert_eq!(
            Segment::decode(&wire[..wire.len() - cut.min(wire.len())]),
            None
        );
    }
}

/// Download content is a pure function of (seed, offset): any split
/// reassembles identically.
#[test]
fn stream_chunk_split_invariant() {
    let mut rng = rng_for("stream-chunk-split");
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let offset = rng.range_u64(0..10_000);
        let len = rng.range_usize(1..512);
        let whole = stream_chunk(seed, offset, len);
        let split = rng.range_usize(0..len + 1);
        let mut parts = stream_chunk(seed, offset, split);
        parts.extend(stream_chunk(seed, offset + split as u64, len - split));
        assert_eq!(parts, whole);
    }
}

/// The policy parser never panics on arbitrary input: pure noise, and
/// noise assembled from policy-like tokens (to reach deeper parse paths).
#[test]
fn policy_parser_total() {
    let mut rng = rng_for("policy-parser-total");
    for _ in 0..CASES {
        let len = rng.range_usize(0..200);
        let noise: String = (0..len)
            .map(|_| char::from(rng.range_u64(0x20..0x7f) as u8))
            .collect();
        let _ = PolicyScript::parse(&noise);
    }
    let tokens = [
        "component",
        "reason",
        "repetition",
        "restart",
        "backoff(",
        ")",
        "(",
        "==",
        "<",
        ">",
        "if",
        "else",
        "{",
        "}",
        "\"x\"",
        "250ms",
        "1s",
        "zz",
        ";",
        " ",
        "\n",
        "alert",
        "log",
    ];
    for _ in 0..CASES {
        let len = rng.range_usize(0..40);
        let soup: String = (0..len).map(|_| *rng.pick(&tokens)).collect();
        let _ = PolicyScript::parse(&soup);
    }
}

/// A well-formed conditional policy always terminates and produces a
/// decision whose backoff grows monotonically with the failure count.
#[test]
fn policy_backoff_monotone() {
    let mut rng = rng_for("policy-backoff-monotone");
    for _ in 0..CASES {
        let mut reps: Vec<u32> = (0..rng.range_usize(2..10))
            .map(|_| rng.range_u64(1..40) as u32)
            .collect();
        reps.sort_unstable();
        let p = PolicyScript::generic();
        let mut last = None;
        for rep in reps {
            let d = p.run(&PolicyInput {
                component: "x".into(),
                reason: phoenix_servers::policy::reason::EXIT,
                repetition: rep,
                params: vec![],
                backoff_base: None,
                backoff_cap: None,
            });
            assert!(d.restart);
            if let Some(prev) = last {
                assert!(d.delay >= prev);
            }
            last = Some(d.delay);
        }
    }
}
