//! Dead protocol edges: message kinds declared in a protocol module that
//! nothing in the workspace ever references.
//!
//! A `pub const NAME: u32` in `crates/{drivers,servers}/src/proto.rs` is
//! a message kind — an edge in the IPC protocol graph. An edge nobody
//! sends or matches on is dead weight: it widens the nominal protocol
//! surface (and therefore what an audit must reason about) without
//! buying any behavior.
//!
//! References are counted as module-qualified uses (`drv::HB_PING`,
//! `rsp::COMPLAIN`), resolving per-file `use ... proto::x as y` aliases,
//! so same-named kinds in different modules (`bdev::READ` vs
//! `cdev::READ`) are kept apart.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::Path;

/// One protocol constant with no references anywhere in the workspace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadEdge {
    /// Protocol module, e.g. `bdev`.
    pub module: String,
    /// Constant name, e.g. `READ`.
    pub name: String,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// 1-based line of the definition.
    pub line: usize,
}

impl fmt::Display for DeadEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [dead-edge] {}::{} is never sent or handled",
            self.file, self.line, self.module, self.name
        )
    }
}

/// Extracts `(module, const, line)` triples for every `pub const NAME:
/// u32` inside a `pub mod` block of a protocol file.
fn extract_consts(source: &str) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    let mut module = String::new();
    for (i, line) in source.lines().enumerate() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("pub mod ") {
            module = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
        } else if let Some(rest) = t.strip_prefix("pub const ") {
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if rest[name.len()..].starts_with(": u32") && !module.is_empty() {
                out.push((module.clone(), name, i + 1));
            }
        }
    }
    out
}

fn ident_before(bytes: &[u8], end: usize) -> String {
    let mut start = end;
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    String::from_utf8_lossy(&bytes[start..end]).into_owned()
}

fn ident_after(bytes: &[u8], start: usize) -> String {
    let mut end = start;
    while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
        end += 1;
    }
    String::from_utf8_lossy(&bytes[start..end]).into_owned()
}

/// A `use ...proto::m::*` glob import: without resolving the module's
/// whole namespace, qualified reference counting would silently
/// undercount and report false-positive dead edges. The scanner instead
/// conservatively marks every const of the globbed module as referenced
/// and surfaces the import as a loud warning so someone narrows it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobImport {
    /// Workspace-relative path of the importing file.
    pub file: String,
    /// 1-based line of the `use`.
    pub line: usize,
    /// The globbed protocol module (empty for `use ...proto::*`, which
    /// is fully resolved instead of warned about).
    pub module: String,
}

impl fmt::Display for GlobImport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [glob-import] `use ...proto::{}::*` defeats per-const reference \
             counting; all of `{}`'s kinds are conservatively treated as live — import \
             the kinds by name",
            self.file, self.line, self.module, self.module
        )
    }
}

/// Per-file import resolution for protocol references.
#[derive(Clone, Debug, Default)]
pub struct UseMap {
    /// Local alias → protocol module (`rsp` → `rs`, `cdev` → `cdev`).
    pub modules: BTreeMap<String, String>,
    /// Consts imported by bare name: local name → `(module, const)`.
    pub consts: BTreeMap<String, (String, String)>,
    /// `use ...proto::m::*` imports seen in this file.
    pub globs: Vec<GlobImport>,
}

/// Builds the local import map for one file from its `use` lines
/// (`use crate::proto::{cdev, status};`, `use crate::proto::rs as rsp;`,
/// `use crate::proto::bdev::{READ, WRITE};`). `use ...proto::*` resolves
/// to every module (which the fallback below already grants);
/// `use ...proto::m::*` is recorded as a [`GlobImport`].
pub fn use_map(rel_path: &str, source: &str, modules: &BTreeSet<String>) -> UseMap {
    let mut out = UseMap::default();
    for (lineno, line) in source.lines().enumerate() {
        let t = line.trim();
        if !t.starts_with("use ") {
            continue;
        }
        let Some(idx) = t.rfind("proto::") else {
            continue;
        };
        let tail = t[idx + "proto::".len()..].trim_end_matches(';');
        if tail == "*" {
            // `use ...proto::*`: every module lands in scope under its
            // own name — the fully-qualified fallback below covers it.
            continue;
        }
        if let Some(inner) = tail.strip_prefix('{') {
            for item in inner.trim_end_matches('}').split(',') {
                let item = item.trim();
                if item.is_empty() {
                    continue;
                }
                match item.split_once(" as ") {
                    Some((real, alias)) => {
                        out.modules
                            .insert(alias.trim().to_string(), real.trim().to_string());
                    }
                    None => {
                        out.modules.insert(item.to_string(), item.to_string());
                    }
                }
            }
        } else if let Some((module, rest)) = tail.split_once("::") {
            // `use ...proto::m::{A, B}`, `use ...proto::m::A`, or
            // `use ...proto::m::*`.
            if modules.contains(module) {
                if rest.trim() == "*" {
                    out.globs.push(GlobImport {
                        file: rel_path.to_string(),
                        line: lineno + 1,
                        module: module.to_string(),
                    });
                    continue;
                }
                let names = rest.trim_start_matches('{').trim_end_matches('}');
                for name in names.split(',') {
                    out.consts.insert(
                        name.trim().to_string(),
                        (module.to_string(), name.trim().to_string()),
                    );
                }
            }
        } else {
            match tail.split_once(" as ") {
                Some((real, alias)) => {
                    out.modules
                        .insert(alias.trim().to_string(), real.trim().to_string());
                }
                None => {
                    out.modules.insert(tail.to_string(), tail.to_string());
                }
            }
        }
    }
    // A fully qualified `proto::m::CONST` needs no import at all.
    for m in modules {
        out.modules.entry(m.clone()).or_insert_with(|| m.clone());
    }
    out
}

/// Records every `(module, const)` pair referenced by `source` as a
/// qualified path into `seen`.
fn record_refs(
    source: &str,
    aliases: &BTreeMap<String, String>,
    consts: &BTreeSet<(String, String)>,
    seen: &mut BTreeSet<(String, String)>,
) {
    let bytes = source.as_bytes();
    let mut i = 0;
    while let Some(pos) = source[i..].find("::") {
        let at = i + pos;
        let qualifier = ident_before(bytes, at);
        let name = ident_after(bytes, at + 2);
        if let Some(module) = aliases.get(&qualifier) {
            let key = (module.clone(), name);
            if consts.contains(&key) {
                seen.insert(key);
            }
        }
        i = at + 2;
    }
}

/// Dead-edge scan outcome: the dead edges plus any glob imports that
/// forced conservative (all-live) treatment of a module.
#[derive(Clone, Debug, Default)]
pub struct DeadEdgeReport {
    pub edges: Vec<DeadEdge>,
    pub glob_warnings: Vec<GlobImport>,
}

/// Scans the workspace for protocol constants nobody references.
pub fn find_dead_edges(root: &Path) -> DeadEdgeReport {
    let proto_files = [
        "crates/drivers/src/proto.rs",
        "crates/servers/src/proto.rs",
        "crates/ckpt/src/proto.rs",
        "crates/fleet/src/proto.rs",
    ];
    let mut defs: Vec<(String, String, String, usize)> = Vec::new();
    for rel_path in proto_files {
        let Ok(source) = std::fs::read_to_string(root.join(rel_path)) else {
            continue;
        };
        for (module, name, line) in extract_consts(&source) {
            defs.push((module, name, rel_path.to_string(), line));
        }
    }
    let consts: BTreeSet<(String, String)> = defs
        .iter()
        .map(|(m, n, _, _)| (m.clone(), n.clone()))
        .collect();
    let modules: BTreeSet<String> = defs.iter().map(|(m, _, _, _)| m.clone()).collect();

    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    let mut glob_warnings: Vec<GlobImport> = Vec::new();
    // Tests and the umbrella crate reference protocol kinds too; a kind
    // exercised only by a test is not dead.
    let mut paths = crate::workspace_sources(root);
    paths.extend(crate::workspace_test_sources(root));
    for path in paths {
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = crate::rel(root, &path);
        let uses = use_map(&rel, &source, &modules);
        for (m, c) in uses.consts.values() {
            if consts.contains(&(m.clone(), c.clone())) {
                seen.insert((m.clone(), c.clone()));
            }
        }
        for glob in &uses.globs {
            // Conservative: every const of the globbed module is live.
            for (m, n) in &consts {
                if m == &glob.module {
                    seen.insert((m.clone(), n.clone()));
                }
            }
            glob_warnings.push(glob.clone());
        }
        record_refs(&source, &uses.modules, &consts, &mut seen);
    }

    let edges = defs
        .into_iter()
        .filter(|(m, n, _, _)| !seen.contains(&(m.clone(), n.clone())))
        .map(|(module, name, file, line)| DeadEdge {
            module,
            name,
            file,
            line,
        })
        .collect();
    DeadEdgeReport {
        edges,
        glob_warnings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_u32_consts_with_their_module() {
        let src = "\
pub mod status {
    pub const OK: u64 = 0;
}
pub mod blk {
    pub const READ: u32 = 0x0201;
    pub const WRITE: u32 = 0x0202;
}
";
        let consts = extract_consts(src);
        assert_eq!(
            consts,
            vec![
                ("blk".to_string(), "READ".to_string(), 5),
                ("blk".to_string(), "WRITE".to_string(), 6),
            ],
            "u64 status codes are not message kinds"
        );
    }

    #[test]
    fn aliased_and_brace_imports_resolve() {
        let modules: BTreeSet<String> = ["rs", "blk", "cdev"]
            .map(String::from)
            .into_iter()
            .collect();
        let src = "\
use crate::proto::{cdev, status};
use crate::proto::rs as rsp;
";
        let map = use_map("f.rs", src, &modules).modules;
        assert_eq!(map.get("cdev").map(String::as_str), Some("cdev"));
        assert_eq!(map.get("rsp").map(String::as_str), Some("rs"));
        // Unimported modules still resolve under their own name (full
        // `proto::m::CONST` paths need no use line).
        assert_eq!(map.get("blk").map(String::as_str), Some("blk"));
    }

    #[test]
    fn proto_level_glob_resolves_every_module() {
        let modules: BTreeSet<String> = ["rs", "blk"].map(String::from).into_iter().collect();
        let uses = use_map("f.rs", "use crate::proto::*;\n", &modules);
        assert!(uses.globs.is_empty(), "proto::* is resolved, not warned");
        assert_eq!(uses.modules.get("rs").map(String::as_str), Some("rs"));
        assert_eq!(uses.modules.get("blk").map(String::as_str), Some("blk"));
    }

    #[test]
    fn module_level_glob_is_warned_and_conservative() {
        let modules: BTreeSet<String> = ["blk"].map(String::from).into_iter().collect();
        let uses = use_map("crates/x/src/f.rs", "use crate::proto::blk::*;\n", &modules);
        assert_eq!(uses.globs.len(), 1);
        let g = &uses.globs[0];
        assert_eq!(g.module, "blk");
        assert_eq!(g.line, 1);
        assert_eq!(g.file, "crates/x/src/f.rs");
        assert!(
            g.to_string().contains("glob-import"),
            "warning names its rule loudly: {g}"
        );
    }

    #[test]
    fn qualified_references_stay_module_scoped() {
        let modules: BTreeSet<String> = ["blk", "cdev"].map(String::from).into_iter().collect();
        let consts: BTreeSet<(String, String)> = [
            ("blk".to_string(), "READ".to_string()),
            ("cdev".to_string(), "READ".to_string()),
            ("blk".to_string(), "WRITE".to_string()),
        ]
        .into_iter()
        .collect();
        let mut seen = BTreeSet::new();
        let aliases = use_map("f.rs", "use crate::proto::cdev;\n", &modules).modules;
        record_refs(
            "match m.mtype { cdev::READ => serve(), _ => {} }",
            &aliases,
            &consts,
            &mut seen,
        );
        assert!(seen.contains(&("cdev".to_string(), "READ".to_string())));
        assert!(
            !seen.contains(&("blk".to_string(), "READ".to_string())),
            "a cdev::READ use must not mark blk::READ as live"
        );
        assert!(!seen.contains(&("blk".to_string(), "WRITE".to_string())));
    }

    #[test]
    fn direct_const_imports_count_as_references() {
        let modules: BTreeSet<String> = ["blk"].map(String::from).into_iter().collect();
        let uses = use_map("f.rs", "use crate::proto::blk::{READ, WRITE};\n", &modules);
        assert_eq!(
            uses.consts.get("READ"),
            Some(&("blk".to_string(), "READ".to_string()))
        );
        assert_eq!(
            uses.consts.get("WRITE"),
            Some(&("blk".to_string(), "WRITE".to_string()))
        );
    }
}
