//! The `phoenix-analyze` gate binary.
//!
//! ```text
//! cargo run -q -p phoenix-analyze            # full gate: all passes
//! cargo run -q -p phoenix-analyze -- --lint-only
//! cargo run -q -p phoenix-analyze -- --audit-only
//! cargo run -q -p phoenix-analyze -- --authority-report     # verbose authority tables
//! cargo run -q -p phoenix-analyze -- --report results/analyze_report.json
//! ```
//!
//! Passes: determinism lints + dead protocol edges (lexical pre-gate),
//! protocol conformance + recovery-path reachability (AST layer), and
//! the least-authority audit. Exit status 0 iff no unsuppressed finding
//! of any kind; `ci.sh` treats a nonzero exit as a hard failure.
//! `--report PATH` additionally writes the deterministic JSON report
//! (sorted keys, no timestamps — safe to commit and diff).

use phoenix_analyze::{audit, conformance, deadedge, lint, reach, report, workspace_root};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let lint_only = args.iter().any(|a| a == "--lint-only");
    let audit_only = args.iter().any(|a| a == "--audit-only");
    let authority_report = args.iter().any(|a| a == "--authority-report");
    let mut report_path: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--lint-only" | "--audit-only" | "--authority-report" => {}
            "--report" => match it.next() {
                Some(p) if !p.starts_with("--") => report_path = Some(p.clone()),
                _ => {
                    eprintln!("--report requires a path argument");
                    std::process::exit(2);
                }
            },
            bad => {
                eprintln!(
                    "unknown flag {bad}; flags: --lint-only --audit-only \
                     --authority-report --report PATH"
                );
                std::process::exit(2);
            }
        }
    }

    let root = workspace_root();
    let mut failures = 0usize;

    if !audit_only {
        let findings = lint::lint_workspace(&root);
        let dead = deadedge::find_dead_edges(&root);
        println!(
            "determinism lints: {} finding(s), {} dead protocol edge(s), {} glob warning(s)",
            findings.len(),
            dead.edges.len(),
            dead.glob_warnings.len()
        );
        for f in &findings {
            println!("  {f}");
        }
        for e in &dead.edges {
            println!("  {e}");
        }
        for g in &dead.glob_warnings {
            println!("  WARNING: {g}");
        }
        failures += findings.len() + dead.edges.len();

        let conf = conformance::run(&root);
        println!(
            "protocol conformance: {} finding(s) across {} kind(s), {} slot claim(s), \
             {} suppressed",
            conf.findings.len(),
            conf.model.kinds.len(),
            conf.registry.slots.len(),
            conf.suppressed.len()
        );
        for f in &conf.findings {
            println!("  {f}");
        }
        failures += conf.findings.len();

        let reached = reach::run(&root);
        println!(
            "recovery-path reachability: {} finding(s), {}/{} function(s) reachable from \
             {} root(s), {} suppressed",
            reached.findings.len(),
            reached.reachable,
            reached.functions,
            reached.roots.len(),
            reached.suppressed.len()
        );
        for f in &reached.findings {
            println!("  {f}");
        }
        failures += reached.findings.len();

        if let Some(path) = &report_path {
            let doc = report::build(&findings, &dead, &conf, &reached);
            let out = root.join(path);
            if let Some(dir) = out.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            match std::fs::write(&out, doc.render()) {
                Ok(()) => println!("report written to {path}"),
                Err(e) => {
                    eprintln!("failed to write report {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
    }

    if !lint_only {
        let outcome = audit::run_audit(audit::AUDIT_SEED, Vec::new());
        if authority_report {
            println!("{}", audit::render_report(&outcome));
        } else {
            println!(
                "least-authority audit: {} violation(s), {} justified wildcard(s) \
                 across {} audited component(s)",
                outcome.violations.len(),
                outcome.justified.len(),
                outcome.snapshot.scope.len()
            );
            for v in &outcome.violations {
                println!("  VIOLATION: {v}");
            }
        }
        failures += outcome.violations.len();
    }

    if failures > 0 {
        eprintln!("phoenix-analyze: {failures} finding(s)");
        std::process::exit(1);
    }
    println!("phoenix-analyze: clean");
}
