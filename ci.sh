#!/bin/sh
# Local CI gate: formatting, lints, then the tier-1 verify from ROADMAP.md.
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> phoenix-analyze: lints, conformance, reachability, authority audit"
cargo run -q --release -p phoenix-analyze -- --report results/analyze_report.json

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> recovery timeline smoke (episode completeness + export round-trip)"
cargo run -q --release -p phoenix-bench --bin recovery_timeline -- --quick

echo "==> checkpoint overhead smoke (transparency + byte-exactness + determinism)"
cargo run -q --release -p phoenix-bench --bin ckpt_overhead -- --quick

echo "==> fail-silent campaign smoke (sentinel coverage + zero false restarts + determinism)"
cargo run -q --release -p phoenix-bench --bin failsilent_campaign -- --quick

echo "==> microreboot campaign smoke (server coverage + transparency + zero false restarts + determinism)"
cargo run -q --release -p phoenix-bench --bin microreboot_campaign -- --quick

echo "==> slo-under-chaos smoke (phase-attributed latency + drain + determinism + <=10% regression vs committed baseline)"
cargo run -q --release -p phoenix-bench --bin slo_under_chaos -- --quick

echo "==> fleet campaign smoke (distributed reincarnation: peer conviction + warm reboot + zero false restarts + determinism)"
cargo run -q --release -p phoenix-bench --bin fleet_campaign -- --quick

echo "==> standby MTTR smoke (hot-standby promotion beats restart+replay + zero false promotions + clamped adaptation + determinism)"
cargo run -q --release -p phoenix-bench --bin standby_mttr -- --quick

echo "==> ci.sh: all green"
