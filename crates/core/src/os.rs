//! The assembled failure-resilient operating system.
//!
//! [`Os`] wires the microkernel, the device bus, the trusted server base
//! (PM, DS, RS) and the guarded services (VFS, MFS, INET, drivers) into
//! one deterministic simulation, and exposes the experimenter's controls:
//! run for a while, kill a driver like the paper's crash-simulation shell
//! script does (§7.1), request dynamic updates, inject binary faults
//! (§7.2), and read out metrics and traces.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use phoenix_ckpt::CheckpointStore;
use phoenix_drivers::libdriver::{Driver, FaultPort};
use phoenix_drivers::{
    AudioDriver, DiskDriver, Dp8390Driver, KeyboardDriver, PrinterDriver, RamDiskDriver,
    Rtl8139Driver, ScsiCdDriver,
};
use phoenix_fault::chaos::ChaosPlan;
use phoenix_fault::mutate::{apply_random_fault, Mutation};
use phoenix_hw::chardev::{AudioDac, Printer, ScsiCdBurner};
use phoenix_hw::disk::DiskDevice;
use phoenix_hw::dp8390::{Dp8390, Dp8390Config};
use phoenix_hw::rtl8139::{Rtl8139, Rtl8139Config};
use phoenix_hw::{Bus, WireConfig};
use phoenix_kernel::authority::AuthorityUsage;
use phoenix_kernel::chaos::ChaosInterposer;
use phoenix_kernel::privileges::{IpcFilter, KernelCall, Privileges};
use phoenix_kernel::process::{Process, ProgramFactory};
use phoenix_kernel::system::{System, SystemConfig};
use phoenix_kernel::types::{DeviceId, Endpoint, Signal};
use phoenix_servers::fsfmt::{self, FileSpec};
use phoenix_servers::peer::{FilePeer, PeerConfig};
use phoenix_servers::policy::PolicyScript;
use phoenix_servers::rs::{ReincarnationServer, ServiceConfig};
use phoenix_servers::{DataStore, FaultPlane, FileServer, Inet, ProcessManager, ServerFault, Vfs};
use phoenix_simcore::metrics::MetricsRegistry;
use phoenix_simcore::time::{SimDuration, SimTime};
use phoenix_simcore::trace::TraceRing;

/// Kernel calls a block driver needs beyond the driver baseline: it moves
/// sector data through client-provided grants (`sys_safecopy`).
const BLOCK_DRIVER_CALLS: [KernelCall; 4] = [
    KernelCall::Devio,
    KernelCall::IrqCtl,
    KernelCall::IommuMap,
    KernelCall::SafeCopy,
];

/// Fixed device ids / IRQ lines of the reference machine.
pub mod hwmap {
    use phoenix_kernel::types::DeviceId;

    /// Ethernet NIC.
    pub const NIC: DeviceId = DeviceId(1);
    /// NIC interrupt line.
    pub const NIC_IRQ: u8 = 9;
    /// SATA disk.
    pub const SATA: DeviceId = DeviceId(2);
    /// SATA interrupt line.
    pub const SATA_IRQ: u8 = 14;
    /// Floppy drive.
    pub const FLOPPY: DeviceId = DeviceId(3);
    /// Floppy interrupt line.
    pub const FLOPPY_IRQ: u8 = 6;
    /// Printer.
    pub const PRINTER: DeviceId = DeviceId(4);
    /// Printer interrupt line.
    pub const PRINTER_IRQ: u8 = 7;
    /// Audio DAC.
    pub const AUDIO: DeviceId = DeviceId(5);
    /// Audio interrupt line.
    pub const AUDIO_IRQ: u8 = 5;
    /// SCSI CD burner.
    pub const SCSI: DeviceId = DeviceId(6);
    /// SCSI interrupt line.
    pub const SCSI_IRQ: u8 = 11;
    /// UART / keyboard controller.
    pub const UART: DeviceId = DeviceId(7);
    /// UART interrupt line.
    pub const UART_IRQ: u8 = 3;
    /// Second SATA disk (the FAT volume of Fig. 5).
    pub const SATA2: DeviceId = DeviceId(8);
    /// Second SATA interrupt line.
    pub const SATA2_IRQ: u8 = 15;
}

/// Which NIC model the machine has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NicKind {
    /// RealTek 8139 (Fig. 7 experiments).
    Rtl8139,
    /// DP8390 / NE2000 (the §7.2 fault-injection target).
    Dp8390,
}

/// Well-known service names.
pub mod names {
    /// The virtual file system server.
    pub const VFS: &str = "vfs";
    /// The file server.
    pub const MFS: &str = "mfs";
    /// The network server.
    pub const INET: &str = "inet";
    /// RTL8139 Ethernet driver.
    pub const ETH_RTL8139: &str = "eth.rtl8139";
    /// DP8390 Ethernet driver.
    pub const ETH_DP8390: &str = "eth.dp8390";
    /// SATA disk driver.
    pub const BLK_SATA: &str = "blk.sata";
    /// Floppy driver.
    pub const BLK_FLOPPY: &str = "blk.floppy";
    /// RAM disk driver.
    pub const BLK_RAM: &str = "blk.ram";
    /// Printer driver.
    pub const CHR_PRINTER: &str = "chr.printer";
    /// Audio driver.
    pub const CHR_AUDIO: &str = "chr.audio";
    /// SCSI CD driver.
    pub const CHR_SCSI: &str = "chr.scsi";
    /// Keyboard / serial input driver.
    pub const CHR_KBD: &str = "chr.kbd";
    /// Second SATA disk driver (the FAT volume).
    pub const BLK_SATA2: &str = "blk.sata2";
    /// The FAT file server (Fig. 5's second file server).
    pub const FAT: &str = "fat";
}

/// An intentionally excessive grant seeded into a registered program's
/// privilege table. Used by the least-authority audit's red-path tests:
/// the audit must report exactly these as POLA violations.
#[derive(Debug, Clone)]
pub enum OverGrant {
    /// Grant I/O access to an extra device.
    Device(DeviceId),
    /// Grant an extra IRQ line.
    Irq(u8),
    /// Allow IPC to an extra named destination.
    Ipc(String),
    /// Grant an extra kernel call.
    Call(KernelCall),
}

/// Builder for [`Os`].
pub struct OsBuilder {
    seed: u64,
    nic: Option<(NicKind, Rtl8139Config, Dp8390Config, WireConfig, PeerConfig)>,
    disk: Option<(u64, u64, Vec<FileSpec>)>,
    fat_disk: Option<(u64, u64, Vec<phoenix_servers::fsfat::FatFileSpec>)>,
    floppy: bool,
    chardevs: bool,
    checkpointing: bool,
    hot_standby: bool,
    adapt: Option<PolicyScript>,
    ramdisk_sectors: Option<u64>,
    driver_policy: Option<PolicyScript>,
    heartbeat: Option<(SimDuration, u32)>,
    boot_settle: SimDuration,
    policy_overrides: Vec<(String, Option<PolicyScript>, Vec<String>)>,
    chaos: Option<ChaosPlan>,
    restart_budget: Option<(u32, SimDuration)>,
    deps_overrides: Vec<(String, Vec<String>)>,
    overgrants: Vec<(String, OverGrant)>,
    sentinels: bool,
}

impl Default for OsBuilder {
    fn default() -> Self {
        OsBuilder {
            seed: 2007,
            nic: None,
            disk: None,
            fat_disk: None,
            floppy: false,
            chardevs: false,
            checkpointing: false,
            hot_standby: false,
            adapt: None,
            ramdisk_sectors: None,
            driver_policy: Some(PolicyScript::direct_restart()),
            heartbeat: Some((SimDuration::from_secs(1), 3)),
            boot_settle: SimDuration::from_secs(2),
            policy_overrides: Vec::new(),
            chaos: None,
            restart_budget: None,
            deps_overrides: Vec::new(),
            overgrants: Vec::new(),
            sentinels: true,
        }
    }
}

impl OsBuilder {
    /// Sets the root seed for all randomness in the run.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a NIC (with INET and a remote file-serving peer).
    pub fn with_network(mut self, kind: NicKind) -> Self {
        self.nic = Some((
            kind,
            Rtl8139Config::default(),
            Dp8390Config::default(),
            WireConfig::default(),
            PeerConfig::default(),
        ));
        self
    }

    /// Customizes the network stack (call after [`OsBuilder::with_network`]).
    pub fn network_tuning(
        mut self,
        rtl: Rtl8139Config,
        dp: Dp8390Config,
        wire: WireConfig,
        peer: PeerConfig,
    ) -> Self {
        if let Some((kind, ..)) = self.nic {
            self.nic = Some((kind, rtl, dp, wire, peer));
        }
        self
    }

    /// Adds a SATA disk (with VFS and MFS) formatted with `files`.
    pub fn with_disk(mut self, sectors: u64, disk_seed: u64, files: Vec<FileSpec>) -> Self {
        self.disk = Some((sectors, disk_seed, files));
        self
    }

    /// Adds a second disk formatted as FAT16, served by the FAT file
    /// server at the `/fat/` mount (Fig. 5 shows MFS and FAT side by
    /// side, each over its own recoverable block driver).
    pub fn with_fat_disk(
        mut self,
        sectors: u64,
        disk_seed: u64,
        files: Vec<phoenix_servers::fsfat::FatFileSpec>,
    ) -> Self {
        self.fat_disk = Some((sectors, disk_seed, files));
        self
    }

    /// Adds a floppy drive + driver.
    pub fn with_floppy(mut self) -> Self {
        self.floppy = true;
        self
    }

    /// Adds the character devices (printer, audio, SCSI burner) + drivers
    /// and VFS.
    pub fn with_chardevs(mut self) -> Self {
        self.chardevs = true;
        self
    }

    /// Enables the `phoenix-ckpt` subsystem (implies
    /// [`OsBuilder::with_chardevs`]): DS grows the checkpoint store, and
    /// the stream/input char drivers (printer, audio, keyboard) publish
    /// consumed-progress snapshots and replay-deduplicate logged
    /// requests after a restart. The CD burner stays uncheckpointed —
    /// its side effect is external and unrepeatable.
    pub fn with_checkpointing(mut self) -> Self {
        self.chardevs = true;
        self.checkpointing = true;
        self
    }

    /// Keeps a warm spare beside each stream character driver (printer,
    /// audio): RS spawns a dormant `standby.<name>` incarnation that
    /// continuously tails the primary's checkpoint record, and promotes
    /// it at detection time instead of cold-restarting (implies
    /// [`OsBuilder::with_checkpointing`]).
    pub fn with_hot_standby(mut self) -> Self {
        self = self.with_checkpointing();
        self.hot_standby = true;
        self
    }

    /// Installs a policy script whose `adapt` rules retune RS's policy
    /// parameters (heartbeat period, backoff, restart budget, complaint
    /// quorum) with deterministic clamped controllers driven by the
    /// observed failure record.
    pub fn adapt_policy(mut self, script: PolicyScript) -> Self {
        self.adapt = Some(script);
        self
    }

    /// Adds the trusted RAM disk driver of §6.2 footnote 1.
    pub fn with_ramdisk(mut self, sectors: u64) -> Self {
        self.ramdisk_sectors = Some(sectors);
        self
    }

    /// Sets the default driver recovery policy (default: direct restart,
    /// as in the §7.1 experiments).
    pub fn driver_policy(mut self, policy: PolicyScript) -> Self {
        self.driver_policy = Some(policy);
        self
    }

    /// Overrides the policy of a single service (`None` = direct restart
    /// without script).
    pub fn service_policy(
        mut self,
        name: &str,
        policy: Option<PolicyScript>,
        params: Vec<String>,
    ) -> Self {
        self.policy_overrides
            .push((name.to_string(), policy, params));
        self
    }

    /// Sets the heartbeat period and miss threshold for all drivers.
    pub fn heartbeat(mut self, period: SimDuration, misses: u32) -> Self {
        self.heartbeat = Some((period, misses));
        self
    }

    /// Disables heartbeats.
    pub fn no_heartbeat(mut self) -> Self {
        self.heartbeat = None;
        self
    }

    /// Virtual time to run after boot so services settle.
    pub fn boot_settle(mut self, d: SimDuration) -> Self {
        self.boot_settle = d;
        self
    }

    /// Installs a chaos plan on the kernel IPC path, effective *after* the
    /// boot settle (boot itself is chaos-free so every run starts from the
    /// same healthy state).
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Sets the restart budget (max restarts per sliding window) for every
    /// guarded service.
    pub fn restart_budget(mut self, budget: u32, window: SimDuration) -> Self {
        self.restart_budget = Some((budget, window));
        self
    }

    /// Declares the components restarted alongside `name` when its restart
    /// storm escalates.
    pub fn service_deps(mut self, name: &str, deps: &[&str]) -> Self {
        self.deps_overrides.push((
            name.to_string(),
            deps.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// Seeds a deliberately excessive grant into `service`'s registered
    /// privilege table (red-path testing of the least-authority audit).
    pub fn overgrant(mut self, service: &str, grant: OverGrant) -> Self {
        self.overgrants.push((service.to_string(), grant));
        self
    }

    /// Disables the fail-silent detection machinery: the kernel babble
    /// guard, RS's polling of it, and RS complaint arbitration. Server-
    /// side protocol sentinels still observe and complain, but nothing is
    /// restarted on their evidence — the crash-only baseline arm of the
    /// fail-silent campaign.
    pub fn without_sentinels(mut self) -> Self {
        self.sentinels = false;
        self
    }

    /// Builds and boots the OS.
    pub fn boot(self) -> Os {
        Os::boot(self)
    }
}

/// The running failure-resilient operating system.
pub struct Os {
    sys: System,
    bus: Bus,
    fault_port: FaultPort,
    fault_plane: FaultPlane,
    pm: Endpoint,
    ds: Endpoint,
    rs: Endpoint,
    nic_kind: Option<NicKind>,
    seed: u64,
    disk_seed: u64,
    ramdisk_region: Option<Rc<RefCell<Vec<u8>>>>,
    ckpt_store: Option<Rc<RefCell<CheckpointStore>>>,
    ds_records: phoenix_servers::SharedRecords,
    next_util: u64,
}

impl Os {
    /// Starts building an OS.
    pub fn builder() -> OsBuilder {
        OsBuilder::default()
    }

    fn driver_name(kind: NicKind) -> &'static str {
        match kind {
            NicKind::Rtl8139 => names::ETH_RTL8139,
            NicKind::Dp8390 => names::ETH_DP8390,
        }
    }

    /// Name of the configured Ethernet driver service.
    pub fn eth_driver_name(&self) -> Option<&'static str> {
        self.nic_kind.map(Self::driver_name)
    }

    fn boot(cfg: OsBuilder) -> Os {
        let mut sys = System::new(SystemConfig {
            seed: cfg.seed,
            babble_guard: cfg.sentinels,
            ..SystemConfig::default()
        });
        let mut bus = Bus::new();
        let fault_port = FaultPort::new();

        // ---------------- hardware ----------------
        let mut services: Vec<ServiceConfig> = Vec::new();
        let hb = cfg.heartbeat;
        let nic_kind = cfg.nic.as_ref().map(|(k, ..)| *k);
        let mk_service = |name: &str, policy: &Option<PolicyScript>| -> ServiceConfig {
            let mut s = ServiceConfig::driver(name, name);
            match policy {
                Some(p) => s = s.with_policy(p.clone()),
                None => s = s.without_policy(),
            }
            match hb {
                Some((period, misses)) => s = s.with_heartbeat(period, misses),
                None => s = s.without_heartbeat(),
            }
            s
        };

        let mut need_vfs = cfg.chardevs || cfg.fat_disk.is_some();
        let mut need_mfs = false;
        if let Some((kind, rtl_cfg, dp_cfg, wire, peer)) = &cfg.nic {
            match kind {
                NicKind::Rtl8139 => {
                    bus.add_device(
                        hwmap::NIC,
                        hwmap::NIC_IRQ,
                        Box::new(Rtl8139::new(rtl_cfg.clone())),
                    );
                }
                NicKind::Dp8390 => {
                    bus.add_device(
                        hwmap::NIC,
                        hwmap::NIC_IRQ,
                        Box::new(Dp8390::new(dp_cfg.clone())),
                    );
                }
            }
            bus.attach_peer(hwmap::NIC, *wire, Box::new(FilePeer::new(peer.clone())));
        }
        let mut disk_seed = 0;
        if let Some((sectors, dseed, files)) = &cfg.disk {
            disk_seed = *dseed;
            let mut disk = DiskDevice::sata(*sectors, *dseed);
            fsfmt::mkfs(disk.model_mut(), files);
            bus.add_device(hwmap::SATA, hwmap::SATA_IRQ, Box::new(disk));
            need_vfs = true;
            need_mfs = true;
        }
        if let Some((sectors, dseed, files)) = &cfg.fat_disk {
            let mut disk = DiskDevice::sata(*sectors, *dseed);
            phoenix_servers::fsfat::mkfs_fat(disk.model_mut(), files);
            bus.add_device(hwmap::SATA2, hwmap::SATA2_IRQ, Box::new(disk));
        }
        if cfg.floppy {
            bus.add_device(
                hwmap::FLOPPY,
                hwmap::FLOPPY_IRQ,
                Box::new(DiskDevice::floppy(cfg.seed)),
            );
        }
        if cfg.chardevs {
            bus.add_device(
                hwmap::PRINTER,
                hwmap::PRINTER_IRQ,
                Box::new(Printer::new(32 * 1024)),
            );
            bus.add_device(
                hwmap::AUDIO,
                hwmap::AUDIO_IRQ,
                Box::new(AudioDac::new(176_400)),
            );
            bus.add_device(
                hwmap::SCSI,
                hwmap::SCSI_IRQ,
                Box::new(ScsiCdBurner::new(SimDuration::from_millis(300), 600_000)),
            );
            bus.add_device(
                hwmap::UART,
                hwmap::UART_IRQ,
                Box::new(phoenix_hw::Uart::new()),
            );
        }

        // ---------------- trusted base ----------------
        // DS boots first: PM checkpoints its process records against it
        // when the subsystem is on. DS issues no kernel calls at all: it
        // only receives requests and notifies subscribers. Its IPC must
        // stay broad — subscribers are arbitrary processes (including
        // apps) registered at runtime.
        let ckpt_store = cfg
            .checkpointing
            .then(|| Rc::new(RefCell::new(CheckpointStore::new())));
        let ds_records: phoenix_servers::SharedRecords = Rc::new(RefCell::new(BTreeMap::new()));
        let mut data_store = DataStore::new().with_shared_records(Rc::clone(&ds_records));
        if let Some(store) = &ckpt_store {
            data_store = data_store.with_checkpoint_store(Rc::clone(store));
        }
        let ds = sys.spawn_boot(
            "ds",
            Privileges::server().with_calls([]),
            Box::new(data_store),
        );
        // The server fault plane: the microreboot campaign arms injected
        // defects (crash / stall / garble) against individual servers
        // here; an unarmed plane is inert.
        let fault_plane = FaultPlane::new();
        let mut pm_privs = Privileges::process_manager();
        let mut pm_server = ProcessManager::new();
        if cfg.checkpointing {
            // Checkpointing PM talks to DS (record snapshots); keep the
            // plain configuration's authority tight otherwise.
            pm_privs = pm_privs.with_ipc(IpcFilter::named(["rs", "ds"]));
            pm_server = pm_server
                .with_checkpointing(ds)
                .with_fault_plane(&fault_plane, "pm");
        }
        let pm = sys.spawn_boot("pm", pm_privs.clone(), Box::new(pm_server));

        // ---------------- service table ----------------
        // The system servers are server-class (crash-only): no heartbeat,
        // direct restart, recursive microreboot ladder, open complaints,
        // and stall auditing. Their dependent drivers are the group
        // rebooted at escalation level 2.
        if cfg.nic.is_some() {
            // analyze:allow(panic-reach): boot-time invariant — nic_kind is
            // set whenever cfg.nic is, two screens up in this function.
            let eth = Self::driver_name(nic_kind.expect("nic kind set"));
            services.push(
                ServiceConfig::server(names::INET, names::INET).with_deps(vec![eth.to_string()]),
            );
        }
        if need_vfs {
            let mut vfs_deps = Vec::new();
            if need_mfs {
                vfs_deps.push(names::MFS.to_string());
            }
            if cfg.fat_disk.is_some() {
                vfs_deps.push(names::FAT.to_string());
            }
            services.push(ServiceConfig::server(names::VFS, names::VFS).with_deps(vfs_deps));
        }
        if need_mfs {
            services.push(
                ServiceConfig::server(names::MFS, names::MFS)
                    .with_deps(vec![names::BLK_SATA.to_string()]),
            );
            services.push(mk_service(names::BLK_SATA, &None)); // §6.2: disk
                                                               // drivers restart directly from the copy in RAM, not policy-
                                                               // driven.
        }
        if cfg.fat_disk.is_some() {
            services.push(
                ServiceConfig::server(names::FAT, names::FAT)
                    .with_deps(vec![names::BLK_SATA2.to_string()]),
            );
            services.push(mk_service(names::BLK_SATA2, &None));
        }
        if let Some((kind, ..)) = &cfg.nic {
            services.push(mk_service(Self::driver_name(*kind), &cfg.driver_policy));
        }
        if cfg.floppy {
            services.push(mk_service(names::BLK_FLOPPY, &None));
        }
        if cfg.ramdisk_sectors.is_some() {
            services.push(mk_service(names::BLK_RAM, &cfg.driver_policy));
        }
        if cfg.chardevs {
            for name in [
                names::CHR_PRINTER,
                names::CHR_AUDIO,
                names::CHR_SCSI,
                names::CHR_KBD,
            ] {
                let mut svc = mk_service(name, &cfg.driver_policy);
                if cfg.hot_standby && (name == names::CHR_PRINTER || name == names::CHR_AUDIO) {
                    svc = svc.with_hot_standby();
                }
                services.push(svc);
            }
        }
        for (name, policy, params) in &cfg.policy_overrides {
            if let Some(svc) = services.iter_mut().find(|s| s.program == *name) {
                svc.policy = policy.clone();
                svc.policy_params = params.clone();
            }
        }
        if let Some((budget, window)) = cfg.restart_budget {
            for svc in &mut services {
                svc.restart_budget = budget;
                svc.budget_window = window;
            }
        }
        for (name, deps) in &cfg.deps_overrides {
            if let Some(svc) = services.iter_mut().find(|s| s.program == *name) {
                svc.deps = deps.clone();
            }
        }

        let complainants = vec![
            names::MFS.to_string(),
            names::VFS.to_string(),
            names::INET.to_string(),
        ];
        let mut rs_privs = Privileges::reincarnation_server();
        let mut rs_server = ReincarnationServer::new(pm, ds, services, complainants)
            .with_kernel_guards(cfg.sentinels)
            .with_arbitration(cfg.sentinels);
        if let Some(script) = cfg.adapt.clone() {
            rs_server = rs_server.with_adapt(script);
        }
        if cfg.checkpointing {
            // Recursive recovery: with the crash-only subsystem on, RS
            // guards PM itself, holding per-instance spawn/kill so it can
            // respawn the one component that normally spawns for it.
            rs_privs =
                rs_privs.with_calls([KernelCall::SetAlarm, KernelCall::Spawn, KernelCall::Kill]);
            rs_server = rs_server.with_pm_guard("pm");
        }
        let rs = sys.spawn_boot("rs", rs_privs, Box::new(rs_server));

        // Sticky names: a message sent to a dead incarnation of these is
        // transparently redirected to the live one (and the replacement
        // reclaims the slot), so applications holding a server endpoint
        // survive its microreboots without re-resolving.
        for name in [names::VFS, names::MFS, names::INET, names::FAT, "pm"] {
            sys.mark_sticky(name);
        }

        // ---------------- program registry ----------------
        let fp = fault_port.clone();
        let ckpt_on = cfg.checkpointing;
        if ckpt_on {
            // PM's replacement incarnations come from here: RS respawns
            // the program directly (sys_spawn) during recursive recovery.
            let plane = fault_plane.clone();
            sys.register_program(
                "pm",
                pm_privs,
                Box::new(move || {
                    Box::new(
                        ProcessManager::new()
                            .with_checkpointing(ds)
                            .with_fault_plane(&plane, "pm"),
                    )
                }),
            );
        }
        if let Some(kind) = nic_kind {
            // INET's IPC stays broad: it pushes socket data to whatever
            // application opened the connection, and app names are dynamic.
            let plane = fault_plane.clone();
            sys.register_program(
                names::INET,
                Privileges::server().with_calls([KernelCall::SetAlarm]),
                Box::new(move || {
                    let mut inet = Inet::new(ds, rs, Self::driver_name(kind));
                    if ckpt_on {
                        inet = inet
                            .with_checkpointing()
                            .with_fault_plane(&plane, names::INET);
                    }
                    Box::new(inet)
                }),
            );
        }
        if need_vfs {
            let has_fat = cfg.fat_disk.is_some();
            // VFS routes to a closed, configuration-known set of servers
            // and drivers; it needs no kernel calls (data moves by grant
            // between client, file server, and driver).
            let mut vfs_ipc = vec!["ds".to_string(), "rs".to_string()];
            if need_mfs {
                vfs_ipc.push(names::MFS.to_string());
            }
            if has_fat {
                vfs_ipc.push(names::FAT.to_string());
            }
            if cfg.chardevs {
                for chr in [
                    names::CHR_PRINTER,
                    names::CHR_AUDIO,
                    names::CHR_SCSI,
                    names::CHR_KBD,
                ] {
                    vfs_ipc.push(chr.to_string());
                }
            }
            if cfg.hot_standby {
                // A promoted spare keeps its standby kernel identity while
                // serving under the primary's published name; VFS must be
                // allowed to address it.
                for chr in [names::CHR_PRINTER, names::CHR_AUDIO] {
                    vfs_ipc.push(format!("standby.{chr}"));
                }
            }
            let plane = fault_plane.clone();
            sys.register_program(
                names::VFS,
                Privileges::server()
                    .with_ipc(IpcFilter::named(vfs_ipc))
                    .with_calls([]),
                Box::new(move || {
                    let mut vfs = Vfs::new(ds, rs, names::MFS);
                    if has_fat {
                        vfs = vfs.with_fat(names::FAT);
                    }
                    if ckpt_on {
                        vfs = vfs
                            .with_checkpointing()
                            .with_fault_plane(&plane, names::VFS);
                    }
                    Box::new(vfs)
                }),
            );
        }
        if cfg.fat_disk.is_some() {
            sys.register_program(
                names::FAT,
                Privileges::server()
                    .with_ipc(IpcFilter::named(["ds", names::BLK_SATA2]))
                    .with_calls([KernelCall::SetGrant]),
                Box::new(move || Box::new(phoenix_servers::FatServer::new(ds, names::BLK_SATA2))),
            );
            let fp2 = fp.clone();
            sys.register_program(
                names::BLK_SATA2,
                Privileges::driver(hwmap::SATA2, hwmap::SATA2_IRQ).with_calls(BLOCK_DRIVER_CALLS),
                Box::new(move || {
                    Box::new(Driver::new(DiskDriver::sata(
                        hwmap::SATA2,
                        hwmap::SATA2_IRQ,
                        fp2.clone(),
                    )))
                }),
            );
        }
        if need_mfs {
            let plane = fault_plane.clone();
            sys.register_program(
                names::MFS,
                Privileges::server()
                    .with_ipc(IpcFilter::named(["ds", "rs", names::BLK_SATA]))
                    .with_calls([KernelCall::SetGrant, KernelCall::SetAlarm]),
                Box::new(move || {
                    let mut mfs = FileServer::new(ds, rs, names::BLK_SATA);
                    if ckpt_on {
                        mfs = mfs
                            .with_checkpointing()
                            .with_fault_plane(&plane, names::MFS);
                    }
                    Box::new(mfs)
                }),
            );
            let fp2 = fp.clone();
            sys.register_program(
                names::BLK_SATA,
                Privileges::driver(hwmap::SATA, hwmap::SATA_IRQ).with_calls(BLOCK_DRIVER_CALLS),
                Box::new(move || {
                    Box::new(Driver::new(DiskDriver::sata(
                        hwmap::SATA,
                        hwmap::SATA_IRQ,
                        fp2.clone(),
                    )))
                }),
            );
        }
        if let Some((kind, ..)) = &cfg.nic {
            let fp2 = fp.clone();
            match kind {
                NicKind::Rtl8139 => sys.register_program(
                    names::ETH_RTL8139,
                    Privileges::driver(hwmap::NIC, hwmap::NIC_IRQ)
                        .with_ipc(IpcFilter::named(["rs", names::INET])),
                    Box::new(move || {
                        Box::new(Driver::new(Rtl8139Driver::new(
                            hwmap::NIC,
                            hwmap::NIC_IRQ,
                            fp2.clone(),
                        )))
                    }),
                ),
                NicKind::Dp8390 => sys.register_program(
                    names::ETH_DP8390,
                    Privileges::driver(hwmap::NIC, hwmap::NIC_IRQ)
                        .with_ipc(IpcFilter::named(["rs", names::INET])),
                    Box::new(move || {
                        Box::new(Driver::new(Dp8390Driver::new(
                            hwmap::NIC,
                            hwmap::NIC_IRQ,
                            fp2.clone(),
                        )))
                    }),
                ),
            }
        }
        if cfg.floppy {
            let fp2 = fp.clone();
            sys.register_program(
                names::BLK_FLOPPY,
                Privileges::driver(hwmap::FLOPPY, hwmap::FLOPPY_IRQ).with_calls(BLOCK_DRIVER_CALLS),
                Box::new(move || {
                    Box::new(Driver::new(DiskDriver::floppy(
                        hwmap::FLOPPY,
                        hwmap::FLOPPY_IRQ,
                        fp2.clone(),
                    )))
                }),
            );
        }
        let mut ramdisk_region = None;
        if let Some(sectors) = cfg.ramdisk_sectors {
            // The backing region models dedicated physical memory: its
            // contents survive driver restarts.
            let region = RamDiskDriver::region(sectors);
            ramdisk_region = Some(Rc::clone(&region));
            let fp2 = fp.clone();
            // The RAM disk has no device or IRQ: it serves requests out
            // of its backing region, copying through client grants.
            let mut privs = Privileges::server()
                .with_ipc(IpcFilter::named(["rs"]))
                .with_calls([KernelCall::SafeCopy]);
            privs.uid = 900;
            privs.address_space = 256 * 1024;
            sys.register_program(
                names::BLK_RAM,
                privs,
                Box::new(move || {
                    Box::new(Driver::new(RamDiskDriver::new(
                        Rc::clone(&region),
                        fp2.clone(),
                    )))
                }),
            );
        }
        if cfg.chardevs {
            // Checkpointed drivers talk to DS (snapshot save/restore); the
            // grant is added only when the subsystem is on, so the
            // least-authority audit of the plain configuration stays tight.
            let ckpt_on = cfg.checkpointing;
            let stream_ipc = move |p: Privileges| {
                if ckpt_on {
                    p.with_ipc(IpcFilter::named(["rs", "ds"]))
                } else {
                    p
                }
            };
            let fp2 = fp.clone();
            // The printer and keyboard move bytes by programmed I/O only;
            // no DMA window, so no IommuMap (the audit flags it otherwise).
            sys.register_program(
                names::CHR_PRINTER,
                stream_ipc(
                    Privileges::driver(hwmap::PRINTER, hwmap::PRINTER_IRQ)
                        .with_calls([KernelCall::Devio, KernelCall::IrqCtl]),
                ),
                Box::new(move || {
                    let mut drv =
                        PrinterDriver::new(hwmap::PRINTER, hwmap::PRINTER_IRQ, fp2.clone());
                    if ckpt_on {
                        drv = drv.with_checkpointing(ds);
                    }
                    Box::new(Driver::new(drv))
                }),
            );
            let fp2 = fp.clone();
            sys.register_program(
                names::CHR_AUDIO,
                stream_ipc(Privileges::driver(hwmap::AUDIO, hwmap::AUDIO_IRQ)),
                Box::new(move || {
                    let mut drv = AudioDriver::new(hwmap::AUDIO, hwmap::AUDIO_IRQ, fp2.clone());
                    if ckpt_on {
                        drv = drv.with_checkpointing(ds);
                    }
                    Box::new(Driver::new(drv))
                }),
            );
            let fp2 = fp.clone();
            sys.register_program(
                names::CHR_SCSI,
                Privileges::driver(hwmap::SCSI, hwmap::SCSI_IRQ),
                Box::new(move || {
                    Box::new(Driver::new(ScsiCdDriver::new(
                        hwmap::SCSI,
                        hwmap::SCSI_IRQ,
                        fp2.clone(),
                    )))
                }),
            );
            let fp2 = fp.clone();
            sys.register_program(
                names::CHR_KBD,
                stream_ipc(
                    Privileges::driver(hwmap::UART, hwmap::UART_IRQ)
                        .with_calls([KernelCall::Devio, KernelCall::IrqCtl]),
                ),
                Box::new(move || {
                    let mut drv = KeyboardDriver::new(hwmap::UART, hwmap::UART_IRQ, fp2.clone());
                    if ckpt_on {
                        drv = drv.with_checkpointing(ds);
                    }
                    Box::new(Driver::new(drv))
                }),
            );
            if cfg.hot_standby {
                // Warm spares: same device authority as the primary plus
                // the alarm call their tail-poll timer needs.
                let fp2 = fp.clone();
                sys.register_program(
                    &format!("standby.{}", names::CHR_PRINTER),
                    stream_ipc(
                        Privileges::driver(hwmap::PRINTER, hwmap::PRINTER_IRQ).with_calls([
                            KernelCall::Devio,
                            KernelCall::IrqCtl,
                            KernelCall::SetAlarm,
                        ]),
                    ),
                    Box::new(move || {
                        Box::new(Driver::new(
                            PrinterDriver::new(hwmap::PRINTER, hwmap::PRINTER_IRQ, fp2.clone())
                                .standby(ds),
                        ))
                    }),
                );
                let fp2 = fp.clone();
                sys.register_program(
                    &format!("standby.{}", names::CHR_AUDIO),
                    stream_ipc(
                        Privileges::driver(hwmap::AUDIO, hwmap::AUDIO_IRQ).with_calls([
                            KernelCall::Devio,
                            KernelCall::IrqCtl,
                            KernelCall::IommuMap,
                            KernelCall::SetAlarm,
                        ]),
                    ),
                    Box::new(move || {
                        Box::new(Driver::new(
                            AudioDriver::new(hwmap::AUDIO, hwmap::AUDIO_IRQ, fp2.clone())
                                .standby(ds),
                        ))
                    }),
                );
            }
        }

        for (service, grant) in &cfg.overgrants {
            sys.adjust_program_privileges(service, |p| match grant {
                OverGrant::Device(dev) => {
                    p.devices.insert(*dev);
                }
                OverGrant::Irq(line) => {
                    p.irq_lines.insert(*line);
                }
                OverGrant::Ipc(dest) => {
                    let mut names: BTreeSet<String> = match &p.ipc {
                        IpcFilter::AllowNamed(set) => set.clone(),
                        _ => BTreeSet::new(),
                    };
                    names.insert(dest.clone());
                    p.ipc = IpcFilter::AllowNamed(names);
                }
                OverGrant::Call(call) => {
                    p.kernel_calls.insert(*call);
                }
            });
        }

        let mut os = Os {
            sys,
            bus,
            fault_port,
            fault_plane,
            pm,
            ds,
            rs,
            nic_kind,
            seed: cfg.seed,
            disk_seed,
            ramdisk_region,
            ckpt_store,
            ds_records,
            next_util: 0,
        };
        os.run_for(cfg.boot_settle);
        if let Some(plan) = cfg.chaos {
            os.set_chaos(Box::new(plan));
        }
        os
    }

    // ---------------- running ----------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sys.now()
    }

    /// Runs the system for `d` of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.sys.now() + d;
        self.sys.run_until(&mut self.bus, t);
    }

    /// Runs until the event queue drains or `max_events` were dispatched.
    pub fn run_until_idle(&mut self, max_events: u64) -> u64 {
        self.sys.run_until_idle(&mut self.bus, max_events)
    }

    // ---------------- observation ----------------

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        self.sys.metrics()
    }

    /// Mutable metrics access (harness annotations).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        self.sys.metrics_mut()
    }

    /// The execution trace.
    pub fn trace(&self) -> &TraceRing {
        self.sys.trace()
    }

    /// Number of trace events lost to ring eviction so far. Non-zero means
    /// a folded timeline may be missing episodes or phases.
    pub fn trace_dropped(&self) -> u64 {
        self.sys.trace().dropped()
    }

    /// Ring evictions broken down by the evicted event's kind, in kind
    /// order. Campaigns fossilize these as `trace.dropped.{kind}` gauges
    /// so a digest shows *which* kinds high-volume load pushed out —
    /// request noise is tolerable, recovery anchors are not.
    pub fn trace_dropped_by_kind(&self) -> Vec<(String, u64)> {
        self.sys
            .trace()
            .dropped_by_kind()
            .map(|(k, v)| (k.to_string(), v))
            .collect()
    }

    /// Folds the current trace into per-recovery-episode phase timings
    /// (detection / repair / reintegration, §7.1).
    pub fn timeline(&self) -> phoenix_simcore::obs::Timeline {
        phoenix_simcore::obs::fold_timeline(self.sys.trace().events())
    }

    /// Endpoint of a live process by name.
    pub fn endpoint(&self, name: &str) -> Option<Endpoint> {
        self.sys.endpoint_by_name(name)
    }

    /// Whether a named process is currently alive.
    pub fn is_up(&self, name: &str) -> bool {
        self.endpoint(name).is_some()
    }

    /// Program version of a running service.
    pub fn running_version(&self, name: &str) -> Option<u32> {
        self.endpoint(name).and_then(|ep| self.sys.version_of(ep))
    }

    /// Typed access to a device model.
    pub fn device_mut<T: phoenix_hw::Device + 'static>(&mut self, dev: DeviceId) -> Option<&mut T> {
        self.bus.device_mut(dev)
    }

    /// Typed access to the remote peer.
    pub fn peer_mut<T: phoenix_hw::RemotePeer + 'static>(&mut self) -> Option<&mut T> {
        self.bus.peer_mut(hwmap::NIC)
    }

    /// The disk content seed (for expected-checksum computation).
    pub fn disk_seed(&self) -> u64 {
        self.disk_seed
    }

    /// The RAM disk backing region, if configured.
    pub fn ramdisk_region(&self) -> Option<Rc<RefCell<Vec<u8>>>> {
        self.ramdisk_region.clone()
    }

    /// The driver checkpoint store, if [`OsBuilder::with_checkpointing`]
    /// was set. Shared with DS: tests and benches inspect snapshots at
    /// rest here — or tamper with them to exercise the corrupt/stale
    /// rejection paths.
    pub fn ckpt_store(&self) -> Option<Rc<RefCell<CheckpointStore>>> {
        self.ckpt_store.clone()
    }

    /// The DS private-record table, shared with the DS process — the
    /// second half of a node's externalized state (alongside the
    /// checkpoint store). Fleet agents export both into peer-held node
    /// snapshots and re-seed a reborn node's DS from them.
    pub fn ds_records(&self) -> phoenix_servers::SharedRecords {
        Rc::clone(&self.ds_records)
    }

    /// The data store endpoint (for apps that use naming or state backup).
    pub fn ds_endpoint(&self) -> Endpoint {
        self.ds
    }

    /// The process manager endpoint.
    pub fn pm_endpoint(&self) -> Endpoint {
        self.pm
    }

    /// The reincarnation server endpoint.
    pub fn rs_endpoint(&self) -> Endpoint {
        self.rs
    }

    /// Observed authority per component, as recorded by the kernel at its
    /// privilege-check hook points.
    pub fn authority_usage(&self) -> &AuthorityUsage {
        self.sys.authority_usage()
    }

    /// Declared privilege tables by stable name (live processes overlaid
    /// with the program registry).
    pub fn declared_privileges(&self) -> BTreeMap<String, Privileges> {
        self.sys.declared_privileges()
    }

    /// The set of components subject to the least-authority audit: the
    /// trusted boot base plus every registered program. Transient
    /// processes (applications, `service` utilities) are excluded — their
    /// privileges are per-instance, not part of the system's declared
    /// authority tables.
    pub fn audit_scope(&self) -> BTreeSet<String> {
        let mut scope: BTreeSet<String> =
            ["pm", "ds", "rs"].into_iter().map(str::to_string).collect();
        scope.extend(self.sys.registered_programs());
        scope
    }

    // ---------------- failure & admin controls ----------------

    /// Kills a process with SIGKILL in the name of an interactive user —
    /// exactly what the paper's crash-simulation script does with
    /// `kill -9` (§7.1). Returns `false` if no such process is running.
    pub fn kill_by_user(&mut self, name: &str) -> bool {
        match self.sys.endpoint_by_name(name) {
            Some(ep) => self.sys.kill_by_user(ep, Signal::Kill),
            None => false,
        }
    }

    /// Sends SIGTERM in the name of an interactive user.
    pub fn term_by_user(&mut self, name: &str) -> bool {
        match self.sys.endpoint_by_name(name) {
            Some(ep) => self.sys.kill_by_user(ep, Signal::Term),
            None => false,
        }
    }

    /// Runs a `service` utility command against RS (like MINIX's
    /// `service(8)`). The utility is a short-lived trusted process.
    pub fn service_command(&mut self, mtype: u32, service: &str) {
        let rs = self.rs;
        let arg = service.to_string();
        self.next_util += 1;
        let name = format!("service-util-{}", self.next_util);
        struct Util {
            rs: Endpoint,
            mtype: u32,
            arg: String,
        }
        impl Process for Util {
            fn on_event(
                &mut self,
                ctx: &mut phoenix_kernel::system::Ctx<'_>,
                event: phoenix_kernel::process::ProcEvent,
            ) {
                match event {
                    phoenix_kernel::process::ProcEvent::Start => {
                        let _ = ctx.sendrec(
                            self.rs,
                            phoenix_kernel::types::Message::new(self.mtype)
                                .with_data(self.arg.clone().into_bytes()),
                        );
                    }
                    phoenix_kernel::process::ProcEvent::Reply { .. } => ctx.exit(0),
                    _ => {}
                }
            }
        }
        self.sys.spawn_boot(
            &name,
            Privileges::server()
                .with_ipc(IpcFilter::named(["rs"]))
                .with_calls([]),
            Box::new(Util { rs, mtype, arg }),
        );
    }

    /// Requests a user-initiated restart of a service (§5.1 input 3).
    pub fn service_restart(&mut self, service: &str) {
        self.service_command(phoenix_servers::proto::rs::RESTART, service);
    }

    /// Requests a dynamic update of a service (§5.1 input 6); register the
    /// new version first with [`Os::register_update`].
    pub fn service_update(&mut self, service: &str) {
        self.service_command(phoenix_servers::proto::rs::UPDATE, service);
    }

    /// Registers a new program version for a service (dynamic update).
    ///
    /// # Errors
    ///
    /// Fails if the program was never registered.
    pub fn register_update(
        &mut self,
        service: &str,
        factory: ProgramFactory,
    ) -> Result<u32, phoenix_kernel::types::KernelError> {
        self.sys.update_program(service, factory)
    }

    /// Spawns an application process with user privileges.
    pub fn spawn_app(&mut self, name: &str, app: Box<dyn Process>) -> Endpoint {
        self.sys.spawn_boot(name, Privileges::user(), app)
    }

    /// Spawns an application allowed to talk to extra servers (e.g. DS
    /// for the state-backup demo).
    pub fn spawn_app_with_ipc(
        &mut self,
        name: &str,
        app: Box<dyn Process>,
        allow: &[&str],
    ) -> Endpoint {
        let mut p = Privileges::user();
        p.ipc = IpcFilter::named(allow.iter().map(|s| s.to_string()));
        self.sys.spawn_boot(name, p, app)
    }

    /// Performs a BIOS-level hard reset of a device — the out-of-band
    /// recovery of a wedged card (§7.2).
    pub fn hard_reset_device(&mut self, dev: DeviceId) {
        self.bus.hard_reset(dev);
    }

    /// Installs directional chaos (partition / asymmetric loss) on the
    /// NIC's wire — the node-level network fault seam the fleet layer
    /// and targeted transport tests drive.
    pub fn set_wire_chaos(&mut self, chaos: phoenix_hw::WireChaos) {
        self.bus.set_wire_chaos(hwmap::NIC, chaos);
    }

    /// Heals the NIC wire (removes directional chaos).
    pub fn clear_wire_chaos(&mut self) {
        self.bus.clear_wire_chaos(hwmap::NIC);
    }

    /// Installs an IPC-fabric chaos interposer.
    pub fn set_chaos(&mut self, chaos: Box<dyn ChaosInterposer>) {
        self.sys.set_chaos(chaos);
    }

    /// Removes the chaos interposer; subsequent IPC is delivered faithfully.
    pub fn clear_chaos(&mut self) {
        self.sys.clear_chaos();
    }

    /// Whether a chaos interposer is installed.
    pub fn chaos_active(&self) -> bool {
        self.sys.chaos_active()
    }

    /// Injects one random binary fault (of the paper's seven types) into
    /// the *running* code of a driver (§7.2). Returns `None` if the driver
    /// has not published a code image.
    pub fn inject_fault(&mut self, driver: &str) -> Option<Mutation> {
        let code = self.fault_port.code_of(driver)?;
        // Per-injection salt keeps successive injections distinct while
        // the whole campaign stays a pure function of the OS seed.
        let salt = self.sys.metrics().counter("campaign.rng_salt");
        self.sys.metrics_mut().incr("campaign.rng_salt");
        // analyze:allow(rng-construction): salted off the root seed, so the
        // injection stream is a pure function of (seed, injection index).
        let mut rng = phoenix_simcore::rng::SimRng::new(self.seed ^ (salt << 1)).fork("inject");
        let mut code = code.borrow_mut();
        apply_random_fault(&mut code, &mut rng)
    }

    /// Arms one random injected defect (crash / wedge / garble) against a
    /// system server; the next event the server handles triggers it.
    /// Requires the server to have been built with a fault plane
    /// ([`OsBuilder::with_checkpointing`]); an un-attached name arms a
    /// cell nothing ever polls.
    pub fn inject_server_fault(&mut self, server: &str) -> ServerFault {
        let salt = self.sys.metrics().counter("campaign.rng_salt");
        self.sys.metrics_mut().incr("campaign.rng_salt");
        let salted = self.seed ^ (salt << 1);
        // analyze:allow(rng-construction): salted off the root seed, so the
        // injection stream is a pure function of (seed, injection index).
        let mut rng = phoenix_simcore::rng::SimRng::new(salted).fork("inject-server");
        let fault = match rng.range_u64(0..3) {
            0 => ServerFault::Crash,
            1 => ServerFault::Stall,
            _ => ServerFault::Garble,
        };
        self.fault_plane.arm(server, fault);
        fault
    }

    /// Arms a *specific* injected defect against a system server
    /// (targeted tests).
    pub fn inject_server_fault_of(&mut self, server: &str, fault: ServerFault) {
        self.fault_plane.arm(server, fault);
    }

    /// Injects a raw frame as if it arrived from the wire at the NIC —
    /// including garbage no peer would send (robustness testing).
    pub fn inject_rx_frame(&mut self, frame: Vec<u8>) {
        let chan = phoenix_hw::bus::wire_to_host_channel(hwmap::NIC);
        self.sys
            .schedule_external(SimDuration::from_micros(1), chan, frame);
    }

    /// Types bytes on the serial line / keyboard after `delay` (they land
    /// in the UART's hardware FIFO and interrupt the keyboard driver).
    pub fn type_input(&mut self, delay: SimDuration, bytes: Vec<u8>) {
        let chan = phoenix_hw::bus::wire_to_host_channel(hwmap::UART);
        self.sys.schedule_external(delay, chan, bytes);
    }

    /// Injects a fault of a *specific* type (targeted tests, ablations).
    pub fn inject_fault_of(
        &mut self,
        driver: &str,
        fault: phoenix_fault::FaultType,
    ) -> Option<Mutation> {
        let code = self.fault_port.code_of(driver)?;
        let salt = self.sys.metrics().counter("campaign.rng_salt");
        self.sys.metrics_mut().incr("campaign.rng_salt");
        // analyze:allow(rng-construction): salted off the root seed, so the
        // injection stream is a pure function of (seed, injection index).
        let mut rng = phoenix_simcore::rng::SimRng::new(self.seed ^ (salt << 1)).fork("inject-of");
        let mut code = code.borrow_mut();
        phoenix_fault::mutate::apply_fault(&mut code, fault, &mut rng)
    }

    /// Overwrites the running driver's hot code so its next request loops
    /// forever (deterministic stuck-driver injection for heartbeat tests).
    pub fn wedge_driver_in_loop(&mut self, driver: &str) -> bool {
        let Some(code) = self.fault_port.code_of(driver) else {
            return false;
        };
        let mut code = code.borrow_mut();
        if code.is_empty() {
            return false;
        }
        code[0] = phoenix_fault::encode(phoenix_fault::Instr::Jmp(0));
        true
    }

    /// Deterministically corrupts the running driver's checksum
    /// computation: the routine's accumulator is seeded with 1 instead of
    /// 0, so every request completes "successfully" with an off-by-one
    /// checksum echo. The classic fail-silent defect — nothing crashes,
    /// no heartbeat is missed, only the protocol sentinels can tell.
    pub fn garble_driver_checksum(&mut self, driver: &str) -> bool {
        let Some(code) = self.fault_port.code_of(driver) else {
            return false;
        };
        let mut code = code.borrow_mut();
        let zero = phoenix_fault::encode(phoenix_fault::Instr::MovImm(
            phoenix_drivers::routines::reg::RES,
            0,
        ));
        let one = phoenix_fault::encode(phoenix_fault::Instr::MovImm(
            phoenix_drivers::routines::reg::RES,
            1,
        ));
        // The first RES-zeroing instruction is the hot-path accumulator
        // init in every routine (see drivers::routines).
        let Some(slot) = code.iter().position(|&w| w == zero) else {
            return false;
        };
        code[slot] = one;
        true
    }
}
