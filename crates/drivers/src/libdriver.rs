//! The shared driver library ("libdriver").
//!
//! MINIX device drivers share a message loop provided by a small library;
//! §7.3 reports that supporting recovery required "exactly 5 lines of code
//! in the shared driver library to handle the new request types" —
//! heartbeat replies and clean shutdown. Those lines are marked with
//! `// [recovery]` so the Fig. 9 reengineering-effort counter can find
//! them.
//!
//! The library also hosts the fault-injection plumbing: a driver's hot-path
//! routines are VM programs cloned from a pristine image at start; the
//! campaign mutates the *running* copy through [`FaultPort`], and a restart
//! naturally comes up pristine again — exactly the paper's model where the
//! reincarnation server restarts a fresh copy of the binary.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use phoenix_fault::vm::{Outcome, Trap, Vm};
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{ExceptionKind, Message, Signal};
use phoenix_simcore::trace::TraceLevel;

use crate::proto::drv;

/// Step budget for one routine execution; exceeding it means the driver is
/// stuck in an infinite loop (defect class 4).
pub const GAS_LIMIT: u64 = 50_000;

/// A driver's live, mutable code image.
pub type CodeCell = Rc<RefCell<Vec<u32>>>;

/// Shared registry mapping running-driver names to their live (mutable)
/// code images. The fault-injection campaign mutates code through this.
#[derive(Clone, Default)]
pub struct FaultPort {
    map: Rc<RefCell<BTreeMap<String, CodeCell>>>,
}

impl FaultPort {
    /// Creates an empty port.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes (or republishes, after a restart) a driver's live code.
    pub fn publish(&self, name: &str, code: CodeCell) {
        self.map.borrow_mut().insert(name.to_string(), code);
    }

    /// The live code image of a running driver, if published.
    pub fn code_of(&self, name: &str) -> Option<CodeCell> {
        self.map.borrow().get(name).cloned()
    }
}

impl std::fmt::Debug for FaultPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FaultPort({} images)", self.map.borrow().len())
    }
}

/// A driver hot path compiled to fault-VM code.
///
/// Cloned from the pristine image at driver start; the running copy may be
/// mutated by the injector.
#[derive(Debug, Clone)]
pub struct GuardedRoutine {
    live: CodeCell,
}

impl GuardedRoutine {
    /// Instantiates a routine from its pristine program.
    pub fn new(pristine: &[u32]) -> Self {
        GuardedRoutine {
            live: Rc::new(RefCell::new(pristine.to_vec())),
        }
    }

    /// The live (mutable) code cell, for publication via [`FaultPort`].
    pub fn live(&self) -> CodeCell {
        Rc::clone(&self.live)
    }

    /// Executes the routine with `setup` preparing registers/memory.
    ///
    /// Returns `Some(vm)` on normal completion so the caller can read
    /// results. On a trap or loop the driver dies the way the mutated
    /// binary dictates — panic, exception, or hang — and `None` is
    /// returned; the caller must abandon the request immediately.
    pub fn run(
        &self,
        ctx: &mut Ctx<'_>,
        mem_size: usize,
        setup: impl FnOnce(&mut Vm),
    ) -> Option<Vm> {
        let mut vm = Vm::new(mem_size);
        setup(&mut vm);
        let code = self.live.borrow();
        match vm.run(&code, GAS_LIMIT) {
            Outcome::Halted { .. } => {
                drop(code);
                Some(vm)
            }
            Outcome::Trapped { trap, pc } => {
                drop(code);
                match trap {
                    // The driver's own sanity check: an internal panic
                    // (defect class 1).
                    Trap::Assert => ctx.panic(&format!("consistency check failed at pc {pc}")),
                    // Hardware-detected faults: killed by exception
                    // (defect class 2).
                    Trap::MemoryFault | Trap::BadJump => {
                        ctx.die_of_exception(ExceptionKind::MmuFault);
                    }
                    Trap::IllegalInstruction => {
                        ctx.die_of_exception(ExceptionKind::IllegalInstruction);
                    }
                    Trap::Alignment => ctx.die_of_exception(ExceptionKind::Alignment),
                    Trap::DivideByZero => ctx.die_of_exception(ExceptionKind::DivideByZero),
                }
                None
            }
            Outcome::OutOfGas => {
                drop(code);
                // Infinite loop: the driver stops responding; only missing
                // heartbeats (class 4) or SIGKILL get rid of it.
                ctx.hang();
                None
            }
        }
    }
}

/// Device-specific driver logic plugged into the shared message loop.
pub trait DriverLogic {
    /// One-time (re)initialization: reset the device, map DMA windows,
    /// register IRQs. Runs on every (re)start.
    fn init(&mut self, ctx: &mut Ctx<'_>);

    /// Handles a client request (`sendrec`); must eventually reply via
    /// `ctx.reply(call, ..)` unless the driver is dying.
    fn request(&mut self, ctx: &mut Ctx<'_>, call: phoenix_kernel::types::CallId, msg: &Message);

    /// Handles a one-way message.
    fn message(&mut self, _ctx: &mut Ctx<'_>, _msg: &Message) {}

    /// Handles a device interrupt.
    fn irq(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Handles a driver alarm.
    fn alarm(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// Handles the reply to a request the driver itself issued with
    /// `sendrec` — checkpointed drivers talk to the data store's
    /// checkpoint extension this way (snapshot save/restore). Most
    /// drivers never initiate calls, so the default drops replies.
    fn reply(
        &mut self,
        _ctx: &mut Ctx<'_>,
        _call: phoenix_kernel::types::CallId,
        _result: &Result<Message, phoenix_kernel::types::IpcError>,
    ) {
    }
}

/// The shared driver main loop: wraps device-specific [`DriverLogic`] in
/// the generic protocol handling every MINIX driver gets from libdriver.
pub struct Driver<L> {
    logic: L,
    /// When `true` (test hook / injected aging bug), the driver ignores
    /// heartbeats, simulating a stuck main loop.
    deaf: bool,
}

impl<L: DriverLogic> Driver<L> {
    /// Wraps device logic in the shared loop.
    pub fn new(logic: L) -> Self {
        Driver { logic, deaf: false }
    }

    /// Makes the driver stop answering heartbeats (test hook for defect
    /// class 4 without fault injection).
    pub fn deaf(logic: L) -> Self {
        Driver { logic, deaf: true }
    }
}

impl<L: DriverLogic> Process for Driver<L> {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {
                let ev = ctx
                    .event(TraceLevel::Info, "driver starting".to_string())
                    .with_field("ev", "start");
                ctx.trace_event(ev);
                self.logic.init(ctx);
            }
            ProcEvent::Message(msg) => match msg.mtype {
                drv::HB_PING => {
                    // [recovery] reply to the reincarnation server's
                    // [recovery] heartbeat request so it can tell a live
                    // [recovery] driver from a stuck one (§5.1, input 4).
                    if !self.deaf {
                        let pong = Message::new(drv::HB_PONG).with_param(0, msg.param(0)); // [recovery]
                        let _ = ctx.send(msg.source, pong); // [recovery]
                    }
                }
                _ => self.logic.message(ctx, &msg),
            },
            ProcEvent::Request { call, msg } => self.logic.request(ctx, call, &msg),
            ProcEvent::Reply { call, result } => self.logic.reply(ctx, call, &result),
            ProcEvent::Irq { .. } => self.logic.irq(ctx),
            ProcEvent::Alarm { token } => self.logic.alarm(ctx, token),
            ProcEvent::Signal(Signal::Term) => {
                // [recovery] clean shutdown on SIGTERM so dynamic updates
                // [recovery] can replace a live driver (§6).
                ctx.exit(0); // [recovery]
            }
            _ => {}
        }
    }
}
