//! The FAT file server — the second file server of Fig. 5.
//!
//! A read-only FAT16 server with exactly the same transparent
//! block-driver recovery contract as [`crate::mfs`]: aborted rendezvous →
//! request parked → driver reintegrated via the data store → pending I/O
//! reissued. Running it beside MFS demonstrates that the recovery
//! machinery is a property of the *architecture*, not of one file
//! system's code.

use std::collections::VecDeque;

use phoenix_drivers::proto::{bdev, status};
use phoenix_hw::disk::SECTOR;
use phoenix_kernel::memory::{GrantAccess, GrantId};
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{CallId, Endpoint, IpcError, Message};
use phoenix_simcore::trace::TraceLevel;

use crate::fsfat::{decode_dirent, Bpb, DirEntry, EOC};
use crate::proto::{ds, fs, unpack_endpoint};

const IO_BUF: usize = 0;
const MAX_CHUNK_SECTORS: u64 = 256;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MountState {
    NotMounted,
    ReadingBoot,
    ReadingFat,
    ReadingRoot,
    Mounted,
}

/// A mounted file: directory entry plus its resolved cluster chain.
#[derive(Debug, Clone)]
struct FatFile {
    entry: DirEntry,
    /// Cluster chain in order.
    chain: Vec<u16>,
}

impl FatFile {
    /// Maps a byte offset to `(lba, offset-within-sector)`.
    fn locate(&self, bpb: &Bpb, offset: u64) -> Option<(u64, usize)> {
        if offset >= u64::from(self.entry.size) {
            return None;
        }
        let cluster_bytes = u64::from(bpb.sectors_per_cluster) * SECTOR as u64;
        let chain_idx = (offset / cluster_bytes) as usize;
        let cluster = *self.chain.get(chain_idx)?;
        let within = offset % cluster_bytes;
        Some((
            bpb.cluster_lba(cluster) + within / SECTOR as u64,
            (within % SECTOR as u64) as usize,
        ))
    }

    /// Contiguous sectors available from the sector containing `offset`
    /// (cluster chains allocated sequentially merge into long runs).
    fn contiguous_sectors_at(&self, bpb: &Bpb, offset: u64) -> u64 {
        let cluster_bytes = u64::from(bpb.sectors_per_cluster) * SECTOR as u64;
        let mut idx = (offset / cluster_bytes) as usize;
        let Some(&first) = self.chain.get(idx) else {
            return 0;
        };
        let mut run_end = first;
        // Extend over physically consecutive clusters.
        while idx + 1 < self.chain.len() && self.chain[idx + 1] == run_end + 1 {
            run_end += 1;
            idx += 1;
        }
        let sector_in_cluster = (offset % cluster_bytes) / SECTOR as u64;
        let run_sectors = u64::from(run_end - first + 1) * u64::from(bpb.sectors_per_cluster);
        run_sectors - sector_in_cluster
    }
}

#[derive(Debug)]
struct Active {
    client: Option<CallId>, // None during mount
    file_pos: u64,
    remaining: u64,
    assembled: Vec<u8>,
    file: usize,
    chunk_lba: u64,
    chunk_sectors: u64,
    chunk_skip: usize,
    grant: Option<GrantId>,
    driver_call: Option<CallId>,
    waiting_driver: bool,
}

/// The FAT16 file server.
pub struct FatServer {
    ds: Endpoint,
    driver_key: String,
    driver: Option<Endpoint>,
    driver_open: bool,
    open_call: Option<CallId>,
    check_call: Option<CallId>,
    mount: MountState,
    bpb: Option<Bpb>,
    fat: Vec<u16>,
    files: Vec<FatFile>,
    queue: VecDeque<(CallId, Message)>,
    active: Option<Active>,
}

impl FatServer {
    /// Creates the server bound to the block driver published under
    /// `driver_key`.
    pub fn new(ds: Endpoint, driver_key: &str) -> Self {
        FatServer {
            ds,
            driver_key: driver_key.to_string(),
            driver: None,
            driver_open: false,
            open_call: None,
            check_call: None,
            mount: MountState::NotMounted,
            bpb: None,
            fat: Vec::new(),
            files: Vec::new(),
            queue: VecDeque::new(),
            active: None,
        }
    }

    fn driver_ready(&self) -> bool {
        self.driver.is_some() && self.driver_open
    }

    fn ds_check(&mut self, ctx: &mut Ctx<'_>) {
        if self.check_call.is_none() {
            self.check_call = ctx.sendrec(self.ds, Message::new(ds::CHECK)).ok();
        }
    }

    fn issue_chunk(&mut self, ctx: &mut Ctx<'_>) {
        let Some(driver) = self.driver else {
            if let Some(a) = self.active.as_mut() {
                a.waiting_driver = true;
            }
            return;
        };
        let Some(a) = self.active.as_mut() else {
            return;
        };
        let bytes = (a.chunk_sectors * SECTOR as u64) as usize;
        let grant = match ctx.grant_create(driver, IO_BUF, bytes, GrantAccess::Write) {
            Ok(g) => g,
            Err(e) => {
                ctx.trace(TraceLevel::Error, format!("grant failed: {e}"));
                return;
            }
        };
        let msg = Message::new(bdev::READ)
            .with_param(0, a.chunk_lba)
            .with_param(1, a.chunk_sectors)
            .with_param(2, u64::from(grant.0));
        match ctx.sendrec(driver, msg) {
            Ok(call) => {
                let Some(a) = self.active.as_mut() else {
                    return;
                };
                a.grant = Some(grant);
                a.driver_call = Some(call);
                a.waiting_driver = false;
            }
            Err(_) => {
                let _ = ctx.grant_revoke(grant);
                let Some(a) = self.active.as_mut() else {
                    return;
                };
                a.grant = None;
                a.driver_call = None;
                a.waiting_driver = true;
                ctx.metrics().incr("fat.pending_aborts");
            }
        }
    }

    fn start_next_chunk(&mut self, ctx: &mut Ctx<'_>) {
        let Some(a) = self.active.as_ref() else {
            return;
        };
        let Some(bpb) = self.bpb.as_ref() else {
            // Lost the mount mid-operation (restored state went bad):
            // fail the request rather than the whole server.
            self.finish_active(ctx, status::EIO);
            return;
        };
        let f = &self.files[a.file];
        let Some((lba, in_off)) = f.locate(bpb, a.file_pos) else {
            // Position walked off the chain — corrupted FAT or
            // restored cursor; fail the op, keep serving.
            self.finish_active(ctx, status::EIO);
            return;
        };
        let contiguous = f.contiguous_sectors_at(bpb, a.file_pos);
        let want_bytes = in_off as u64 + a.remaining;
        let sectors = want_bytes
            .div_ceil(SECTOR as u64)
            .min(contiguous)
            .min(MAX_CHUNK_SECTORS);
        let (lba, sectors, skip) = (lba, sectors, in_off);
        let Some(a) = self.active.as_mut() else {
            return;
        };
        a.chunk_lba = lba;
        a.chunk_sectors = sectors;
        a.chunk_skip = skip;
        self.issue_chunk(ctx);
    }

    fn finish_active(&mut self, ctx: &mut Ctx<'_>, st: u64) {
        let Some(a) = self.active.take() else { return };
        if let Some(client) = a.client {
            let reply = if st == status::OK {
                Message::new(fs::DATA_REPLY)
                    .with_param(0, status::OK)
                    .with_param(1, a.assembled.len() as u64)
                    .with_data(a.assembled)
            } else {
                Message::new(fs::DATA_REPLY).with_param(0, st)
            };
            let _ = ctx.reply(client, reply);
        }
        self.pump(ctx);
    }

    fn begin_mount_read(&mut self, ctx: &mut Ctx<'_>, lba: u64, sectors: u64) {
        self.active = Some(Active {
            client: None,
            file_pos: 0,
            remaining: sectors * SECTOR as u64,
            assembled: Vec::new(),
            file: usize::MAX,
            chunk_lba: lba,
            chunk_sectors: sectors,
            chunk_skip: 0,
            grant: None,
            driver_call: None,
            waiting_driver: false,
        });
        self.issue_chunk(ctx);
    }

    fn mount_continue(&mut self, ctx: &mut Ctx<'_>, data: Vec<u8>) {
        match self.mount {
            MountState::ReadingBoot => {
                let Some(bpb) = Bpb::decode(&data) else {
                    ctx.trace(TraceLevel::Error, "bad FAT boot sector".to_string());
                    self.active = None;
                    self.mount = MountState::NotMounted;
                    return;
                };
                self.mount = MountState::ReadingFat;
                let (start, len) = (bpb.fat_start(), u64::from(bpb.fat_size));
                self.bpb = Some(bpb);
                self.active = None;
                self.begin_mount_read(ctx, start, len);
            }
            MountState::ReadingFat => {
                self.fat = data
                    .chunks_exact(2)
                    .map(|c| u16::from_le_bytes([c[0], c[1]]))
                    .collect();
                self.mount = MountState::ReadingRoot;
                let Some(bpb) = self.bpb.as_ref() else {
                    // BPB vanished between mount phases: abort the
                    // mount; the retry alarm will start over.
                    ctx.trace(TraceLevel::Error, "mount lost BPB".to_string());
                    self.mount = MountState::NotMounted;
                    return;
                };
                let (start, len) = (bpb.root_start(), bpb.root_sectors());
                self.active = None;
                self.begin_mount_read(ctx, start, len);
            }
            MountState::ReadingRoot => {
                let mut files = Vec::new();
                for raw in data.chunks_exact(32) {
                    let Some(entry) = decode_dirent(raw) else {
                        continue;
                    };
                    // Resolve the cluster chain now; serving then works
                    // from memory like MFS's extents.
                    let mut chain = Vec::new();
                    let mut c = entry.first_cluster;
                    let mut hops = 0;
                    while c != EOC && c >= 2 {
                        chain.push(c);
                        c = self.fat.get(usize::from(c)).copied().unwrap_or(EOC);
                        hops += 1;
                        if hops > self.fat.len() {
                            break; // corrupt chain; serve what we have
                        }
                    }
                    files.push(FatFile { entry, chain });
                }
                self.files = files;
                self.mount = MountState::Mounted;
                self.active = None;
                ctx.trace(
                    TraceLevel::Info,
                    format!("fat mounted: {} files", self.files.len()),
                );
                self.pump(ctx);
            }
            _ => {}
        }
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        if self.active.is_some() || !self.driver_ready() {
            return;
        }
        if self.mount != MountState::Mounted {
            if self.mount == MountState::NotMounted {
                self.mount = MountState::ReadingBoot;
                self.begin_mount_read(ctx, 0, 1);
            }
            return;
        }
        while let Some((call, msg)) = self.queue.pop_front() {
            match msg.mtype {
                fs::OPEN => {
                    let name = String::from_utf8_lossy(&msg.data).to_lowercase();
                    let reply = match self.files.iter().position(|f| f.entry.name == name) {
                        Some(idx) => Message::new(fs::OPEN_REPLY)
                            .with_param(0, status::OK)
                            .with_param(1, idx as u64)
                            .with_param(2, u64::from(self.files[idx].entry.size)),
                        None => Message::new(fs::OPEN_REPLY).with_param(0, status::ENODEV),
                    };
                    let _ = ctx.reply(call, reply);
                }
                fs::READ => {
                    let (file, offset, len) = (msg.param(0) as usize, msg.param(1), msg.param(2));
                    let Some(f) = self.files.get(file) else {
                        let _ = ctx.reply(
                            call,
                            Message::new(fs::DATA_REPLY).with_param(0, status::EINVAL),
                        );
                        continue;
                    };
                    let len = len.min(u64::from(f.entry.size).saturating_sub(offset));
                    if len == 0 {
                        let _ = ctx.reply(
                            call,
                            Message::new(fs::DATA_REPLY)
                                .with_param(0, status::OK)
                                .with_param(1, 0),
                        );
                        continue;
                    }
                    ctx.metrics().incr("fat.reads");
                    self.active = Some(Active {
                        client: Some(call),
                        file_pos: offset,
                        remaining: len,
                        assembled: Vec::with_capacity(len as usize),
                        file,
                        chunk_lba: 0,
                        chunk_sectors: 0,
                        chunk_skip: 0,
                        grant: None,
                        driver_call: None,
                        waiting_driver: false,
                    });
                    self.start_next_chunk(ctx);
                    return;
                }
                _ => {
                    // Read-only server: writes are politely refused.
                    let _ = ctx.reply(
                        call,
                        Message::new(fs::DATA_REPLY).with_param(0, status::EINVAL),
                    );
                }
            }
        }
    }

    fn on_driver_published(&mut self, ctx: &mut Ctx<'_>, ep: Endpoint) {
        let recovered = self.driver.is_some_and(|old| old != ep);
        self.driver = Some(ep);
        self.driver_open = false;
        self.open_call = ctx
            .sendrec(ep, Message::new(bdev::OPEN).with_param(0, 0))
            .ok();
        if recovered {
            ctx.metrics().incr("fat.driver_reintegrations");
            ctx.trace(
                TraceLevel::Info,
                format!("fat: block driver recovered as {ep}"),
            );
        }
    }

    fn on_driver_reply(&mut self, ctx: &mut Ctx<'_>, result: Result<Message, IpcError>) {
        if let Some(g) = self.active.as_mut().and_then(|a| a.grant.take()) {
            let _ = ctx.grant_revoke(g);
        }
        match result {
            Err(_) => {
                // [recovery:begin] same contract as MFS (§6.2): park the
                // aborted request until the restarted driver is announced.
                let Some(a) = self.active.as_mut() else {
                    return;
                };
                a.driver_call = None;
                a.waiting_driver = true;
                self.driver_open = false;
                ctx.metrics().incr("fat.pending_aborts");
                // [recovery:end]
            }
            Ok(reply) => {
                let Some(a) = self.active.as_mut() else {
                    return;
                };
                a.driver_call = None;
                match reply.param(0) {
                    status::OK => {
                        let bytes = (a.chunk_sectors * SECTOR as u64) as usize;
                        let Ok(data) = ctx.mem_read(IO_BUF, bytes) else {
                            ctx.trace(TraceLevel::Error, "io buffer read failed".to_string());
                            self.finish_active(ctx, status::EIO);
                            return;
                        };
                        if a.file == usize::MAX {
                            self.mount_continue(ctx, data);
                            return;
                        }
                        let start = a.chunk_skip;
                        let take = (bytes - start).min(a.remaining as usize);
                        a.assembled.extend_from_slice(&data[start..start + take]);
                        a.file_pos += take as u64;
                        a.remaining -= take as u64;
                        if a.remaining == 0 {
                            self.finish_active(ctx, status::OK);
                        } else {
                            self.start_next_chunk(ctx);
                        }
                    }
                    status::EAGAIN => {
                        self.issue_chunk(ctx);
                    }
                    _ => {
                        self.finish_active(ctx, status::EIO);
                    }
                }
            }
        }
    }
}

impl Process for FatServer {
    // analyze:recovery-root
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {
                let key = self.driver_key.clone();
                let _ = ctx.sendrec(
                    self.ds,
                    Message::new(ds::SUBSCRIBE).with_data(key.into_bytes()),
                );
            }
            ProcEvent::Notify { from } if from == self.ds => self.ds_check(ctx),
            ProcEvent::Request { call, msg } => {
                self.queue.push_back((call, msg));
                self.pump(ctx);
            }
            ProcEvent::Reply { call, result } => {
                if Some(call) == self.check_call {
                    self.check_call = None;
                    if let Ok(reply) = result {
                        if reply.mtype == ds::CHECK_REPLY && reply.param(0) == 0 {
                            let key = String::from_utf8_lossy(&reply.data).to_string();
                            let ep = unpack_endpoint(reply.param(1), reply.param(2));
                            if key == self.driver_key {
                                self.on_driver_published(ctx, ep);
                            }
                            self.ds_check(ctx);
                        }
                    }
                    return;
                }
                if Some(call) == self.open_call {
                    self.open_call = None;
                    if let Ok(reply) = result {
                        if reply.mtype == bdev::REPLY && reply.param(0) == status::OK {
                            self.driver_open = true;
                            // [recovery:begin]
                            if self.active.as_ref().is_some_and(|a| a.waiting_driver) {
                                ctx.trace(TraceLevel::Info, "fat: reissue pending io".to_string());
                                ctx.metrics().incr("fat.reissues");
                                self.issue_chunk(ctx);
                            } else {
                                self.pump(ctx);
                            }
                            // [recovery:end]
                        }
                    }
                    return;
                }
                if self.active.as_ref().and_then(|a| a.driver_call) == Some(call) {
                    self.on_driver_reply(ctx, result);
                }
            }
            _ => {}
        }
    }
}
