//! Wire protocols spoken between drivers and the rest of the system.
//!
//! Message type tags and parameter layouts for the generic driver protocol
//! (heartbeats, shutdown, announcements), the block device protocol
//! (FS ↔ disk drivers, grant-based data transfer), the Ethernet protocol
//! (INET ↔ network drivers), and the character device protocol
//! (VFS/applications ↔ printer, audio, SCSI drivers).

/// Status codes carried in reply `params[0]`.
pub mod status {
    /// Success.
    pub const OK: u64 = 0;
    /// Generic I/O error.
    pub const EIO: u64 = 5;
    /// Temporarily out of resources; retry later.
    pub const EAGAIN: u64 = 11;
    /// Invalid argument (bad LBA, bad length).
    pub const EINVAL: u64 = 22;
    /// Device not ready / no medium.
    pub const ENODEV: u64 = 19;
}

/// Generic driver protocol (every driver speaks this; supporting it is the
/// "exactly 5 lines of code in the shared driver library" of §7.3).
pub mod drv {
    /// Heartbeat ping from the reincarnation server; `params[0]` = nonce.
    /// proto: request, reply=HB_PONG, params 0=nonce
    pub const HB_PING: u32 = 0x0100;
    /// Heartbeat pong back to RS; `params[0]` = echoed nonce.
    /// proto: reply, params 0=nonce
    pub const HB_PONG: u32 = 0x0101;
    /// RS -> warm spare: start tailing the primary's checkpoint record;
    /// `params[0]` = tail-poll period in microseconds.
    /// proto: oneway, params 0=tail-period-us
    pub const STANDBY: u32 = 0x0102;
    /// RS -> warm spare: go live as the primary. The spare runs its
    /// deferred device init, re-publishes its fault-port code under the
    /// primary name, stops tailing, and adopts the tailed watermark.
    /// `params[0/1]` carry the recovery episode so the first served
    /// request tags the timeline's replay phase.
    /// proto: oneway, params 0/1=recovery-token
    pub const PROMOTE: u32 = 0x0103;
}

/// Block device protocol (MINIX `BDEV`), §6.2.
///
/// Data moves through memory grants: the file server creates a grant over
/// its buffer cache page and passes the grant id; the driver `safecopy`s
/// into/out of it. Disk block I/O is idempotent, so a restarted driver can
/// simply be asked again.
pub mod bdev {
    /// Open a minor device. `params[0]` = minor. Reply: status, capacity
    /// in sectors in `params[1]`.
    /// proto: request, reply=REPLY, params 0=minor
    pub const OPEN: u32 = 0x0200;
    /// Read sectors. `params[0]` = LBA, `params[1]` = sector count,
    /// `params[2]` = grant id (write access), `params[3]` = minor.
    /// proto: request, reply=REPLY, params 0=lba, params 1=sector-count
    /// proto: params 2=grant, params 3=minor
    pub const READ: u32 = 0x0201;
    /// Write sectors. Same layout; grant must allow read.
    /// proto: request, reply=REPLY, params 0=lba, params 1=sector-count
    /// proto: params 2=grant, params 3=minor
    pub const WRITE: u32 = 0x0202;
    /// Reply to any request: `params[0]` = status, `params[1]` = bytes
    /// transferred (capacity for OPEN); `params[2]` = 1 + payload
    /// checksum, echoed for the caller's sentinel.
    /// proto: reply, params 0=status, params 1=result-count, params 2=csum-echo
    pub const REPLY: u32 = 0x0203;
}

/// Ethernet driver protocol (MINIX `DL`), §6.1.
pub mod eth {
    /// (Re)initialize: put the card in promiscuous mode, enable rx/tx.
    /// Sent by INET when it learns a driver's endpoint from the data
    /// store — both at first start and after every recovery.
    /// proto: request, reply=INIT_REPLY
    pub const INIT: u32 = 0x0300;
    /// Reply to INIT: `params[0]` = status.
    /// proto: reply, params 0=status
    pub const INIT_REPLY: u32 = 0x0301;
    /// Transmit a frame; the frame travels in `data`.
    /// proto: request, reply=WRITE_REPLY
    pub const WRITE: u32 = 0x0302;
    /// Reply to WRITE: `params[0]` = status.
    /// proto: reply, params 0=status
    pub const WRITE_REPLY: u32 = 0x0303;
    /// Received frame pushed to the network server (one-way); frame in
    /// `data`.
    /// proto: oneway
    pub const RECV: u32 = 0x0304;
    /// Statistics request. Reply in STAT_REPLY.
    /// proto: request, reply=STAT_REPLY
    // analyze:allow(proto-unsent): MINIX DL parity — drivers answer stat
    // queries, but no production component polls them yet.
    pub const GET_STAT: u32 = 0x0305;
    /// `params[0]` = frames received, `params[1]` = frames sent.
    /// proto: reply, params 0=rx-frames, params 1=tx-frames
    // analyze:allow(proto-unhandled): the dual of GET_STAT's
    // proto-unsent — the reply is built by drivers but has no consumer
    // until a stats poller exists.
    pub const STAT_REPLY: u32 = 0x0306;
}

/// Character device protocol, §6.3.
pub mod cdev {
    /// Open. `params[0]` = minor.
    /// proto: request, reply=REPLY, params 0=minor
    pub const OPEN: u32 = 0x0400;
    /// Write a byte stream; payload in `data`. Reply: status +
    /// `params[1]` = bytes accepted (may be short — stream devices apply
    /// backpressure). Checkpointed callers tag `params[5/6]` with their
    /// WAL sequence/offset and read the consumed watermark back from
    /// reply `params[3/4]` (see `phoenix_ckpt::proto::wal_params`);
    /// `params[7]` routes the device index through VFS.
    /// proto: request, reply=REPLY, params 5/6=wal-log, params 7=dev-route
    /// proto: reply-params 3/4=ckpt-watermark
    pub const WRITE: u32 = 0x0401;
    /// Reply to any cdev request: `params[0]` = status, `params[1]` =
    /// bytes accepted, `params[2]` = 1 + payload checksum (sentinel
    /// echo). Params 3/4 are reserved for the checkpoint watermark
    /// claimed by WRITE's `reply-params`.
    /// proto: reply, params 0=status, params 1=result-count, params 2=csum-echo
    pub const REPLY: u32 = 0x0402;
    /// Read up to `params[0]` bytes from an input stream device. Reply:
    /// status + data (possibly empty when no input is pending).
    /// proto: request, reply=REPLY, params 0=read-len, params 7=dev-route
    pub const READ: u32 = 0x0405;
    /// SCSI burner: begin a burn. `params[0]` = total chunks.
    /// proto: request, reply=REPLY, params 0=chunk-count, params 7=dev-route
    pub const BURN_START: u32 = 0x0410;
    /// SCSI burner: write chunk `params[0]`; payload in `data`.
    /// proto: request, reply=REPLY, params 0=chunk-index, params 7=dev-route
    pub const BURN_CHUNK: u32 = 0x0411;
    /// SCSI burner: finalize the disc.
    /// proto: request, reply=REPLY, params 7=dev-route
    pub const BURN_FINALIZE: u32 = 0x0412;
}
