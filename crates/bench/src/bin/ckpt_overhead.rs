//! Checkpoint overhead: recovery transparency and per-request logging cost
//! of the `phoenix-ckpt` subsystem.
//!
//! Runs the checkpoint campaign — repeated kills of the printer and audio
//! drivers while a print job and a paced audio stream are in flight —
//! once with checkpointing on (twice, for the determinism gate) and once
//! with the paper's §6.3 error-push baseline, then reports the
//! recovery-transparency rate and the per-request overhead of write-ahead
//! logging plus snapshotting.
//!
//! The binary is also a regression gate (CI runs it with `--quick`):
//!
//! * the checkpointed run must be fully transparent: zero app-visible
//!   errors, byte-exact printer stream, every audio byte played once;
//! * the baseline run must still surface errors to the applications
//!   (§6.3 semantics must not silently disappear);
//! * two same-seed checkpointed runs must produce identical digests.
//!
//! Any violation exits non-zero.

use std::fmt::Write as _;
use std::process::ExitCode;

use phoenix::campaign::{run_ckpt_campaign, CkptCampaignConfig};
use phoenix::Os;
use phoenix_bench::{print_table, quick_mode, workspace_root};
use phoenix_simcore::time::SimDuration;

fn cfg(quick: bool, checkpointing: bool) -> CkptCampaignConfig {
    CkptCampaignConfig {
        seed: 2007,
        faults: if quick { 12 } else { 100 },
        kill_interval: SimDuration::from_millis(400),
        checkpointing,
    }
}

fn phase_rows(os: &mut Os) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for phase in ["detect", "repair", "reintegrate", "replay", "total"] {
        let name = format!("recovery.phase.{phase}");
        let h = os.metrics_mut().histogram_mut(&name);
        if h.count() == 0 {
            continue;
        }
        let fmt = |d: Option<SimDuration>| match d {
            Some(d) => format!("{d}"),
            None => "-".to_string(),
        };
        rows.push(vec![
            phase.to_string(),
            format!("{}", h.count()),
            fmt(h.mean_duration()),
            fmt(h.quantile_duration(0.5)),
            fmt(h.quantile_duration(0.95)),
            fmt(h.max_duration()),
        ]);
    }
    rows
}

fn main() -> ExitCode {
    let quick = quick_mode();
    println!(
        "checkpoint overhead — char-driver kills with and without \
         phoenix-ckpt ({} faults{})\n",
        cfg(quick, true).faults,
        if quick { ", --quick" } else { "" },
    );

    let ckpt_cfg = cfg(quick, true);
    let (ckpt, os) = run_ckpt_campaign(&ckpt_cfg);
    let (ckpt2, _) = run_ckpt_campaign(&ckpt_cfg);
    let (legacy, _) = run_ckpt_campaign(&cfg(quick, false));
    let mut os = os;

    println!("{}", ckpt.render());
    println!("{}", legacy.render());
    println!();

    let headers = [
        "mode",
        "kills",
        "transparency",
        "app errors",
        "printer exact",
        "audio exact",
        "msgs/req",
    ];
    let mode_row = |r: &phoenix::campaign::CkptCampaignResult| {
        vec![
            if r.checkpointing { "ckpt" } else { "legacy" }.to_string(),
            format!("{}", r.kills),
            format!("{:.0}%", r.transparency_rate() * 100.0),
            format!("{}", r.app_visible_errors),
            format!("{}", r.printer_byte_exact),
            format!("{}", r.samples_played == r.expected_samples),
            format!("{:.3}", r.overhead_msgs_per_request()),
        ]
    };
    let rows = vec![mode_row(&ckpt), mode_row(&legacy)];
    print_table(&headers, &rows);
    println!();

    let phase_headers = ["phase", "episodes", "mean", "p50", "p95", "max"];
    let phases = phase_rows(&mut os);
    print_table(&phase_headers, &phases);

    let mut failures = Vec::new();
    if ckpt.digest != ckpt2.digest {
        failures.push("same-seed checkpointed runs diverged (digest mismatch)".to_string());
    }
    if !ckpt.workloads_done {
        failures.push("checkpointed workloads did not finish".to_string());
    }
    if ckpt.app_visible_errors != 0 {
        failures.push(format!(
            "checkpointed recovery leaked {} errors to the applications",
            ckpt.app_visible_errors
        ));
    }
    if !ckpt.printer_byte_exact {
        failures.push(format!(
            "checkpointed printer stream not byte-exact ({}/{} bytes)",
            ckpt.printed_bytes, ckpt.expected_printed
        ));
    }
    if ckpt.samples_played != ckpt.expected_samples {
        failures.push(format!(
            "checkpointed audio stream incomplete ({}/{} bytes)",
            ckpt.samples_played, ckpt.expected_samples
        ));
    }
    if ckpt.recovered_kills != ckpt.kills {
        failures.push(format!(
            "only {}/{} kills recovered",
            ckpt.recovered_kills, ckpt.kills
        ));
    }
    if legacy.app_visible_errors == 0 {
        failures
            .push("baseline run surfaced no errors — §6.3 error-push semantics lost".to_string());
    }

    // ---- report into results/ ----
    let mut report = String::new();
    let _ = writeln!(report, "{}", ckpt.render());
    let _ = writeln!(report, "{}", legacy.render());
    let _ = writeln!(report);
    for row in &rows {
        let _ = writeln!(report, "{}", row.join("  "));
    }
    for row in &phases {
        let _ = writeln!(report, "{}", row.join("  "));
    }
    let suffix = if quick { "_quick" } else { "" };
    let dir = workspace_root().join("results");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("ckpt_overhead{suffix}.txt"));
    if let Err(e) = std::fs::write(&path, &report) {
        eprintln!("failed to write {}: {e}", path.display());
    } else {
        println!("\nwrote {}", path.display());
    }

    if failures.is_empty() {
        println!("\nall gates passed: checkpointed recovery transparent and");
        println!("byte-exact, baseline still pushes errors, runs deterministic");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("GATE FAILED: {f}");
        }
        ExitCode::FAILURE
    }
}
