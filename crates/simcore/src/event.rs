//! A cancellable discrete-event queue with a built-in virtual clock.
//!
//! The queue is the engine of the whole simulation: the microkernel
//! scheduler, device models, heartbeat timers and policy-script `sleep`s all
//! schedule payloads here. Events at equal timestamps are delivered in
//! insertion order (FIFO), which keeps runs deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Identifies a scheduled event so it can be cancelled.
///
/// Ids are unique for the lifetime of one [`EventQueue`] and are never
/// reused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // breaking ties by insertion order.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timed events driving a virtual clock.
///
/// Popping an event advances [`EventQueue::now`] to that event's timestamp.
/// Scheduling in the past is not allowed and panics, because it would break
/// causality within the simulation.
///
/// # Example
///
/// ```
/// use phoenix_simcore::event::EventQueue;
/// use phoenix_simcore::time::SimDuration;
///
/// let mut q = EventQueue::new();
/// let doomed = q.schedule_after(SimDuration::from_secs(1), "never");
/// q.schedule_after(SimDuration::from_secs(2), "survivor");
/// q.cancel(doomed);
/// assert_eq!(q.pop().map(|(_, e)| e), Some("survivor"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
    pending: std::collections::BTreeSet<EventId>,
    cancelled: std::collections::BTreeSet<EventId>,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            pending: std::collections::BTreeSet::new(),
            cancelled: std::collections::BTreeSet::new(),
            popped: 0,
        }
    }

    /// The current virtual time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `payload` for delivery at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`EventQueue::now`].
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: {at:?} < now {:?}",
            self.now
        );
        let id = EventId(self.next_seq);
        self.heap.push(Scheduled {
            at,
            seq: self.next_seq,
            id,
            payload,
        });
        self.pending.insert(id);
        self.next_seq += 1;
        id
    }

    /// Schedules `payload` for delivery `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Schedules `payload` for immediate delivery (at the current time, after
    /// already-pending events with the same timestamp).
    pub fn schedule_now(&mut self, payload: E) -> EventId {
        self.schedule_at(self.now, payload)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending. Cancelling an already
    /// delivered or already cancelled event returns `false` and is harmless.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // We cannot remove from the middle of a BinaryHeap; remember the id
        // and skip it at pop time (lazy deletion).
        if self.pending.remove(&id) {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// Pops the earliest live event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is exhausted; the clock then stays at
    /// the time of the last delivered event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.heap.pop() {
            if self.cancelled.remove(&s.id) {
                continue;
            }
            self.pending.remove(&s.id);
            debug_assert!(s.at >= self.now, "event queue produced out-of-order event");
            self.now = s.at;
            self.popped += 1;
            return Some((s.at, s.payload));
        }
        None
    }

    /// Advances the clock to `t` without delivering anything.
    ///
    /// Used to account for idle periods at the end of a run.
    ///
    /// # Panics
    ///
    /// Panics if a live event is scheduled before `t` (that event must be
    /// popped first) or if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot advance clock backwards");
        if let Some(next) = self.peek_time() {
            assert!(
                next >= t,
                "cannot skip over pending event at {next:?} while advancing to {t:?}"
            );
        }
        self.now = t;
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled events off the top first so the answer is live.
        while let Some(top) = self.heap.peek() {
            if self.cancelled.contains(&top.id) {
                // analyze:allow(panic-reach): the heap was non-empty one
                // line up (peek returned Some); pop cannot miss.
                let s = self.heap.pop().expect("peeked event vanished");
                self.cancelled.remove(&s.id);
            } else {
                return Some(top.at);
            }
        }
        None
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .field("delivered", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(30), 3);
        q.schedule_at(SimTime::from_micros(10), 1);
        q.schedule_at(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(q.delivered(), 3);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime::from_micros(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut q = EventQueue::new();
        q.schedule_after(SimDuration::from_secs(2), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(2_000_000));
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule_after(SimDuration::from_micros(1), 'a');
        let b = q.schedule_after(SimDuration::from_micros(2), 'b');
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some('b'));
        assert!(!q.cancel(b), "cancelling delivered event reports false");
    }

    #[test]
    fn cancel_unknown_id_is_harmless() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(999)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_after(SimDuration::from_micros(1), 'a');
        q.schedule_after(SimDuration::from_micros(5), 'b');
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(5)));
        assert_eq!(q.pop().map(|(_, e)| e), Some('b'));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_after(SimDuration::from_secs(1), ());
        q.pop();
        q.schedule_at(SimTime::from_micros(1), ());
    }

    #[test]
    fn schedule_now_runs_at_current_time() {
        let mut q = EventQueue::new();
        q.schedule_after(SimDuration::from_secs(1), 1);
        q.pop();
        q.schedule_now(2);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t, SimTime::from_micros(1_000_000));
    }
}
