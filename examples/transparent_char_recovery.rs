//! Transparent character-driver recovery with `phoenix-ckpt`.
//!
//! The paper leaves character devices as the "maybe" column of Fig. 3:
//! their streams have no natural replay handle, so §6.3 pushes the
//! failure to the application (reissued jobs, audible hiccups, ruined
//! discs). This example shows the checkpoint subsystem closing that gap:
//!
//! 1. a print job rides out two driver kills with *zero* duplicated and
//!    zero lost bytes — the paper stream equals the job exactly;
//! 2. an audio stream resumes past the acked watermark: every logged
//!    byte reaches the DAC exactly once;
//! 3. the same kills against the §6.3 baseline still duplicate output
//!    and drop blocks — opting out keeps the paper's semantics.
//!
//! Run with: `cargo run --release --example transparent_char_recovery`

use std::cell::RefCell;
use std::rc::Rc;

use phoenix::apps::{CkptLpd, CkptLpdStatus, CkptMp3Player, CkptMp3Status, Lpd, LpdStatus};
use phoenix::os::{hwmap, names, Os};
use phoenix_hw::{AudioDac, Printer};
use phoenix_simcore::time::SimDuration;

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

fn main() {
    println!("--- checkpointed printer: byte-exact across two kills ---");
    let mut os = Os::builder().seed(11).with_checkpointing().boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let lpd = Rc::new(RefCell::new(CkptLpdStatus::default()));
    let job: Vec<u8> = b"PAGE-1 of quarterly report\n".repeat(2000);
    os.spawn_app(
        "ckpt-lpd",
        Box::new(CkptLpd::new(vfs, job.clone(), lpd.clone())),
    );
    os.run_for(ms(80));
    println!("killing {} mid-job ...", names::CHR_PRINTER);
    os.kill_by_user(names::CHR_PRINTER);
    os.run_for(ms(700));
    println!("killing {} again ...", names::CHR_PRINTER);
    os.kill_by_user(names::CHR_PRINTER);
    while !lpd.borrow().done {
        os.run_for(ms(100));
    }
    // `done` means acked by the driver; let the FIFO drain to paper.
    while os
        .device_mut::<Printer>(hwmap::PRINTER)
        .unwrap()
        .printed()
        .len()
        < job.len()
    {
        os.run_for(ms(100));
    }
    {
        let st = lpd.borrow();
        let printer: &mut Printer = os.device_mut(hwmap::PRINTER).unwrap();
        println!(
            "job done; {} transparent log replays, {} app-visible errors",
            st.replays, st.app_errors
        );
        println!(
            "paper output: {} bytes for a {}-byte job, byte-exact: {}\n",
            printer.printed().len(),
            job.len(),
            printer.printed() == &job[..],
        );
    }

    println!("--- checkpointed audio: resumes past the acked watermark ---");
    let mut os = Os::builder().seed(12).with_checkpointing().boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let mp3 = Rc::new(RefCell::new(CkptMp3Status::default()));
    let (blocks, block_bytes) = (120u64, 4410usize);
    os.spawn_app(
        "ckpt-mp3",
        Box::new(CkptMp3Player::new(
            vfs,
            blocks,
            block_bytes,
            ms(25),
            mp3.clone(),
        )),
    );
    os.run_for(ms(500));
    println!("killing {} mid-song ...", names::CHR_AUDIO);
    os.kill_by_user(names::CHR_AUDIO);
    let expected = blocks * block_bytes as u64;
    loop {
        let played = os
            .device_mut::<AudioDac>(hwmap::AUDIO)
            .map_or(0, |d| d.samples_played());
        if mp3.borrow().done && played >= expected {
            break;
        }
        os.run_for(ms(100));
    }
    {
        let st = mp3.borrow();
        let dac: &mut AudioDac = os.device_mut(hwmap::AUDIO).unwrap();
        println!(
            "song finished: {}/{} bytes played exactly once, {} replays, {} errors\n",
            dac.samples_played(),
            expected,
            st.replays,
            st.app_errors
        );
    }

    println!("--- same kill, §6.3 baseline: duplicates are back ---");
    let mut os = Os::builder().seed(11).with_chardevs().boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let legacy = Rc::new(RefCell::new(LpdStatus::default()));
    os.spawn_app("lpd", Box::new(Lpd::new(vfs, job.clone(), legacy.clone())));
    os.run_for(ms(80));
    os.kill_by_user(names::CHR_PRINTER);
    while !legacy.borrow().done {
        os.run_for(ms(100));
    }
    os.run_for(SimDuration::from_secs(2));
    let printer: &mut Printer = os.device_mut(hwmap::PRINTER).unwrap();
    println!(
        "job reissued {} time(s); paper output {} bytes ({} duplicated)",
        legacy.borrow().job_restarts,
        printer.printed().len(),
        printer.printed().len().saturating_sub(job.len()),
    );
    println!("=> Fig. 3's character-device 'maybe' becomes 'yes' under phoenix-ckpt");
}
