//! Node-level chaos plans for the fleet layer: machine crashes, network
//! partitions, and asymmetric inter-node loss.
//!
//! The per-frame chaos in [`crate::chaos`] attacks one machine's IPC
//! fabric; this module scripts faults against *whole nodes* and the
//! links between them. A [`NodeChaosPlan`] is pure data — a time-sorted
//! fault schedule the fleet event loop consumes at quantum boundaries —
//! so the fault crate stays free of any dependency on the fleet itself,
//! and plans are trivially deterministic: the same plan against the same
//! seeds replays byte-identically.

use phoenix_simcore::rng::SimRng;
use phoenix_simcore::time::{SimDuration, SimTime};

/// Which direction(s) of an inter-node link a fault affects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkDirection {
    /// Both directions (a symmetric partition or loss window).
    Both,
    /// Only frames from `a` towards `b` are affected — the asymmetric
    /// failure that makes a healthy node look dead to one observer.
    AToB,
    /// Only frames from `b` towards `a`.
    BToA,
}

/// One node-level fault.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeFaultKind {
    /// Power-fail the whole node (machine crash). The node stays down
    /// until the fleet's distributed reincarnation revives it.
    NodeCrash {
        /// The victim node.
        node: u8,
    },
    /// Kill the node's Reincarnation Server only — the ReHype scenario:
    /// the node keeps serving, but its local recoverer is gone and the
    /// fleet must recover the recoverer from a peer.
    KillRs {
        /// The victim node.
        node: u8,
    },
    /// Partition the link between two nodes for `duration` (hard cut in
    /// the given direction(s)).
    Partition {
        /// One endpoint of the link.
        a: u8,
        /// The other endpoint.
        b: u8,
        /// Cut direction(s).
        direction: LinkDirection,
        /// How long the cut lasts.
        duration: SimDuration,
    },
    /// Raise per-frame loss on the link between two nodes for
    /// `duration`.
    Loss {
        /// One endpoint of the link.
        a: u8,
        /// The other endpoint.
        b: u8,
        /// Lossy direction(s).
        direction: LinkDirection,
        /// Per-frame drop probability while the window is open.
        prob: f64,
        /// How long the lossy window lasts.
        duration: SimDuration,
    },
}

/// A scheduled node-level fault.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeFault {
    /// Fleet time at which the fault strikes.
    pub at: SimTime,
    /// What happens.
    pub kind: NodeFaultKind,
}

/// A time-sorted schedule of node-level faults.
#[derive(Clone, Debug, Default)]
pub struct NodeChaosPlan {
    faults: Vec<NodeFault>,
}

impl NodeChaosPlan {
    /// An empty plan (the no-fault control).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault, keeping the schedule sorted by time (stable for
    /// equal times: insertion order breaks ties deterministically).
    pub fn schedule(mut self, at: SimTime, kind: NodeFaultKind) -> Self {
        let idx = self.faults.partition_point(|f| f.at <= at);
        self.faults.insert(idx, NodeFault { at, kind });
        self
    }

    /// Builds the fleet campaign's standard mixed schedule: `count`
    /// faults spaced `interval` apart starting at `start`, cycling
    /// RS-kill → node-crash → one-way partition → asymmetric loss over
    /// the `nodes` ring. Victims and link peers are drawn from `rng`, so
    /// the whole schedule is a pure function of `(seed, nodes, count)`.
    pub fn campaign_mix(
        nodes: u8,
        count: u32,
        start: SimTime,
        interval: SimDuration,
        rng: &mut SimRng,
    ) -> Self {
        assert!(nodes >= 2, "a fleet fault schedule needs at least 2 nodes");
        let mut plan = Self::new();
        let mut at = start;
        for i in 0..count {
            let node = rng.range_u64(0..u64::from(nodes)) as u8;
            let peer = (node + 1 + rng.range_u64(0..u64::from(nodes - 1)) as u8) % nodes;
            let kind = match i % 4 {
                0 => NodeFaultKind::KillRs { node },
                1 => NodeFaultKind::NodeCrash { node },
                2 => NodeFaultKind::Partition {
                    a: node,
                    b: peer,
                    direction: LinkDirection::AToB,
                    duration: interval / 2,
                },
                _ => NodeFaultKind::Loss {
                    a: node,
                    b: peer,
                    direction: LinkDirection::Both,
                    prob: 0.4,
                    duration: interval / 2,
                },
            };
            plan = plan.schedule(at, kind);
            at += interval;
        }
        plan
    }

    /// Removes and returns every fault due at or before `now`, in order.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<NodeFault> {
        let split = self.faults.partition_point(|f| f.at <= now);
        self.faults.drain(..split).collect()
    }

    /// Time of the next scheduled fault, if any.
    pub fn next_at(&self) -> Option<SimTime> {
        self.faults.first().map(|f| f.at)
    }

    /// Number of faults still scheduled.
    pub fn remaining(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan has no faults left.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn schedule_keeps_time_order() {
        let plan = NodeChaosPlan::new()
            .schedule(t(30), NodeFaultKind::KillRs { node: 1 })
            .schedule(t(10), NodeFaultKind::NodeCrash { node: 0 })
            .schedule(t(20), NodeFaultKind::KillRs { node: 2 });
        let ats: Vec<SimTime> = plan.faults.iter().map(|f| f.at).collect();
        assert_eq!(ats, vec![t(10), t(20), t(30)]);
    }

    #[test]
    fn pop_due_drains_in_order() {
        let mut plan = NodeChaosPlan::new()
            .schedule(t(10), NodeFaultKind::NodeCrash { node: 0 })
            .schedule(t(20), NodeFaultKind::KillRs { node: 1 })
            .schedule(t(30), NodeFaultKind::NodeCrash { node: 2 });
        assert_eq!(plan.next_at(), Some(t(10)));
        let due = plan.pop_due(t(20));
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].kind, NodeFaultKind::NodeCrash { node: 0 });
        assert_eq!(plan.remaining(), 1);
        assert!(plan.pop_due(t(25)).is_empty());
        assert!(!plan.is_empty());
    }

    #[test]
    fn campaign_mix_is_deterministic_and_cycles_kinds() {
        let mk = || {
            let mut rng = SimRng::new(99).fork("node-chaos");
            NodeChaosPlan::campaign_mix(3, 8, t(100), SimDuration::from_millis(500), &mut rng)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.faults, b.faults, "same seed, same schedule");
        assert_eq!(a.remaining(), 8);
        assert!(matches!(a.faults[0].kind, NodeFaultKind::KillRs { .. }));
        assert!(matches!(a.faults[1].kind, NodeFaultKind::NodeCrash { .. }));
        assert!(matches!(a.faults[2].kind, NodeFaultKind::Partition { .. }));
        assert!(matches!(a.faults[3].kind, NodeFaultKind::Loss { .. }));
        // Link faults never name a node as its own peer.
        for f in &a.faults {
            if let NodeFaultKind::Partition { a, b, .. } | NodeFaultKind::Loss { a, b, .. } =
                &f.kind
            {
                assert_ne!(a, b);
            }
        }
    }
}
