//! Standby MTTR bench: hot-standby failover vs cold restart+replay.
//!
//! Runs the standby campaign twice on the same deterministic defect
//! schedule — wedge loops (heartbeat class) alternating with checksum
//! garbles (complaint class) against the printer and audio drivers —
//! once with warm spares armed and once with the cold restart+replay
//! baseline, both under the canonical self-tuning policy
//! (`STANDBY_ADAPT_POLICY`). A third arm runs fault-free for 30 virtual
//! seconds to prove the promotion machinery never fires on a healthy
//! machine.
//!
//! The comparison is written to `results/BENCH_standby.json`
//! (`results/BENCH_standby_quick.json` with `--quick`) in a
//! deterministic, integer-only schema (`phoenix-bench-standby/v1`).
//!
//! Gates (any violation exits non-zero):
//!
//! * two same-seed standby runs must produce byte-identical digests —
//!   and that digest covers the `rs.adapt.*` gauges and trajectory
//!   histograms, so the adaptation trajectory itself is gated;
//! * every fault must recover in both arms, with zero app-visible
//!   errors, a byte-exact printer stream and a complete audio stream;
//! * the standby arm must promote spares (not cold-restart through
//!   them) and its repair-phase MTTR must be strictly lower than the
//!   cold arm's for BOTH driver classes;
//! * the no-fault control must report zero promotions, zero recoveries
//!   and zero accepted complaints while both spares tail the WAL;
//! * the adapt controllers must run, and every `rs.adapt.trace.*`
//!   trajectory must stay inside its declared clamp band.

use std::fmt::Write as _;
use std::process::ExitCode;

use phoenix::campaign::{
    render_adapt_gauges, run_standby_campaign, run_standby_control, StandbyCampaignConfig,
    StandbyCampaignResult,
};
use phoenix_bench::{print_table, quick_mode, workspace_root, write_report, CampaignGate};
use phoenix_simcore::time::SimDuration;

fn cfg(quick: bool, hot_standby: bool) -> StandbyCampaignConfig {
    StandbyCampaignConfig {
        seed: 2007,
        faults: if quick { 8 } else { 100 },
        fault_interval: SimDuration::from_millis(400),
        hot_standby,
        adapt: true,
    }
}

// ---------------------------------------------------------------------
// JSON: hand-rolled, integers only, fixed key order — byte-stable for a
// given outcome, so the committed file doubles as a determinism witness.

fn push_arm(out: &mut String, label: &str, r: &StandbyCampaignResult) {
    let _ = write!(
        out,
        "{{\"arm\":\"{label}\",\"hot_standby\":{},\"faults\":{},\
         \"recoveries\":{},\"promotions\":{},\"spares_started\":{},\
         \"tail_polls\":{},\"tail_adopted\":{},\"replays\":{},\
         \"app_errors\":{},\"printer_byte_exact\":{},\
         \"audio_dup_bytes\":{},\"watermark_jumps\":{},\
         \"adapt_updates\":{},\"classes\":[",
        r.hot_standby,
        r.faults,
        r.recoveries,
        r.promotions,
        r.spares_started,
        r.tail_polls,
        r.tail_adopted,
        r.replays,
        r.app_visible_errors,
        r.printer_byte_exact,
        r.audio_dup_bytes,
        r.watermark_jumps,
        r.adapt_updates,
    );
    for (i, c) in r.classes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"driver\":\"{}\",\"faults\":{},\"recovered\":{},\
             \"repair_episodes\":{},\"repair_mean_us\":{},\
             \"repair_max_us\":{}}}",
            c.driver, c.faults, c.recovered, c.repair_episodes, c.repair_mean_us, c.repair_max_us,
        );
    }
    out.push_str("],\"adapt\":[");
    for (i, (k, v)) in r.adapt_gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"gauge\":\"{k}\",\"value\":{v}}}");
    }
    out.push_str("],\"adapt_trace\":[");
    for (i, (p, lo, hi)) in r.adapt_trace.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"param\":\"{p}\",\"min\":{lo},\"max\":{hi}}}");
    }
    let _ = write!(out, "],\"digest\":\"{}\"}}", r.digest);
}

fn main() -> ExitCode {
    let quick = quick_mode();
    println!(
        "standby MTTR — hot-standby failover vs cold restart+replay \
         ({} faults{})\n",
        cfg(quick, true).faults,
        if quick { ", --quick" } else { "" },
    );

    let standby_cfg = cfg(quick, true);
    let (standby, os) = run_standby_campaign(&standby_cfg);
    let (standby2, _) = run_standby_campaign(&standby_cfg);
    let (cold, _) = run_standby_campaign(&cfg(quick, false));
    let control = run_standby_control(&standby_cfg, SimDuration::from_secs(30));

    println!("{}", standby.render());
    println!();
    println!("{}", cold.render());
    println!();
    println!(
        "control (30 s, no faults): promotions {}, recoveries {}, \
         complaints {}, spares {}, tail polls {}, acked {} + {} B; digest {}",
        control.promotions,
        control.recoveries,
        control.complaints_accepted,
        control.spares_started,
        control.tail_polls,
        control.printed_acked,
        control.audio_acked,
        control.digest,
    );
    println!("{}", render_adapt_gauges(&os));
    println!();

    let headers = ["driver", "arm", "repair mean", "repair max", "episodes"];
    let mut rows = Vec::new();
    for (r, arm) in [(&standby, "standby"), (&cold, "cold")] {
        for c in &r.classes {
            rows.push(vec![
                c.driver.clone(),
                arm.to_string(),
                format!("{}", SimDuration::from_micros(c.repair_mean_us)),
                format!("{}", SimDuration::from_micros(c.repair_max_us)),
                format!("{}", c.repair_episodes),
            ]);
        }
    }
    print_table(&headers, &rows);

    let mut gate = CampaignGate::new();
    gate.require(
        standby.digest == standby2.digest,
        "same-seed standby runs diverged (digest mismatch)",
    );
    for (r, arm) in [(&standby, "standby"), (&cold, "cold")] {
        gate.require(r.faults > 0, format!("{arm} arm injected no faults"));
        gate.require(
            r.recoveries >= r.faults,
            format!(
                "{arm} arm: only {} recoveries for {} faults",
                r.recoveries, r.faults
            ),
        );
        gate.require(
            r.workloads_done,
            format!("{arm} arm: workloads did not finish"),
        );
        gate.require(
            r.app_visible_errors == 0,
            format!(
                "{arm} arm leaked {} errors to the applications",
                r.app_visible_errors
            ),
        );
        gate.require(
            r.printer_byte_exact,
            format!(
                "{arm} arm: printer stream not byte-exact ({}/{} bytes)",
                r.printed_bytes, r.expected_printed
            ),
        );
        gate.require(
            r.samples_played >= r.expected_samples,
            format!(
                "{arm} arm: audio stream incomplete ({}/{} bytes)",
                r.samples_played, r.expected_samples
            ),
        );
        // §6.3: audio failover is not transparent — a promoted spare's
        // tailed watermark may lag by one tail period, duplicating at
        // most one period of samples (17,640 B at 176.4 KB/s) per
        // promotion. Nothing may be duplicated on the cold path.
        gate.require(
            r.audio_dup_bytes <= r.promotions * 17_640,
            format!(
                "{arm} arm: {} duplicated audio bytes exceeds the tail \
                 window for {} promotions",
                r.audio_dup_bytes, r.promotions
            ),
        );
        gate.require(r.adapt_updates > 0, format!("{arm} arm: adapt never ran"));
        for v in &r.adapt_out_of_band {
            gate.fail(format!("{arm} arm: {v}"));
        }
    }
    gate.require(
        standby.promotions >= standby.faults,
        format!(
            "standby arm cold-restarted: {} promotions for {} faults",
            standby.promotions, standby.faults
        ),
    );
    gate.require(
        cold.promotions == 0,
        format!("cold arm reported {} promotions", cold.promotions),
    );
    for driver in ["chr.printer", "chr.audio"] {
        let (Some(s), Some(c)) = (standby.class(driver), cold.class(driver)) else {
            gate.fail(format!("missing class row for {driver}"));
            continue;
        };
        gate.require(
            s.repair_episodes > 0 && c.repair_episodes > 0,
            format!("{driver}: no repair episodes folded"),
        );
        gate.require(
            s.repair_mean_us < c.repair_mean_us,
            format!(
                "{driver}: standby repair MTTR {} not strictly below cold {}",
                SimDuration::from_micros(s.repair_mean_us),
                SimDuration::from_micros(c.repair_mean_us),
            ),
        );
    }
    gate.require(
        control.promotions == 0 && control.recoveries == 0 && control.complaints_accepted == 0,
        format!(
            "false failover in the no-fault control: {} promotions, {} \
             recoveries, {} complaints",
            control.promotions, control.recoveries, control.complaints_accepted
        ),
    );
    gate.require(
        control.spares_started >= 2 && control.tail_polls > 0,
        "control: spares never tailed the WAL",
    );
    gate.require(
        control.printed_acked > 0 && control.audio_acked > 0,
        "control: workloads made no progress",
    );

    // ---- report into results/ ----
    let mut json = String::from("{\"schema\":\"phoenix-bench-standby/v1\",\"arms\":[");
    push_arm(&mut json, "standby", &standby);
    json.push(',');
    push_arm(&mut json, "cold", &cold);
    let _ = write!(
        json,
        "],\"control\":{{\"promotions\":{},\"recoveries\":{},\
         \"complaints_accepted\":{},\"spares_started\":{},\
         \"tail_polls\":{},\"digest\":\"{}\"}}}}",
        control.promotions,
        control.recoveries,
        control.complaints_accepted,
        control.spares_started,
        control.tail_polls,
        control.digest,
    );
    json.push('\n');
    let suffix = if quick { "_quick" } else { "" };
    let dir = workspace_root().join("results");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("BENCH_standby{suffix}.json"));
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("failed to write {}: {e}", path.display());
    } else {
        println!("\nwrote {}", path.display());
    }
    let mut report = String::new();
    let _ = writeln!(report, "{}\n", standby.render());
    let _ = writeln!(report, "{}\n", cold.render());
    let _ = writeln!(
        report,
        "control (30 s, no faults): promotions {}, recoveries {}, \
         complaints {}, spares {}, tail polls {}",
        control.promotions,
        control.recoveries,
        control.complaints_accepted,
        control.spares_started,
        control.tail_polls,
    );
    write_report("standby_mttr", quick, &report);

    gate.finish(
        "all gates passed: promotion beats restart+replay on both driver \
         classes, byte-exact under failover, zero false promotions, \
         adaptation deterministic and clamped",
    )
}
