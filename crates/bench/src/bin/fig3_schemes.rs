//! Fig. 3: the driver recovery scheme matrix — network and block drivers
//! recover transparently (in the network/file server); character drivers
//! push errors to the application, which may or may not recover.

use phoenix::experiments::fig3_schemes;
use phoenix_bench::print_table;

fn main() {
    println!("Fig. 3 — driver recovery schemes (one kill per driver class)\n");
    let rows: Vec<Vec<String>> = fig3_schemes(2007)
        .into_iter()
        .map(|o| {
            let recovery = if o.transparent {
                "yes (transparent)"
            } else if o.app_recovered {
                "maybe (app recovered)"
            } else if o.user_informed {
                "no (user informed)"
            } else {
                "FAILED"
            };
            vec![
                o.class.to_string(),
                recovery.to_string(),
                o.recovered_by.to_string(),
            ]
        })
        .collect();
    print_table(&["driver class", "recovery", "where"], &rows);
    println!("\npaper: network=yes (network server), block=yes (file server), character=maybe (application)");
}
