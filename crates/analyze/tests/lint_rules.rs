//! Fixture tests: each determinism lint rule must fire on a minimal bad
//! snippet, stay quiet on the idiomatic alternative, and honor
//! `analyze:allow` pragmas and the test-module exemption.

use phoenix_analyze::lint::{default_rules, lint_source, LintFinding};

fn run(path: &str, src: &str) -> Vec<LintFinding> {
    lint_source(path, src, &default_rules())
}

fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
    run(path, src).into_iter().map(|f| f.rule).collect()
}

#[test]
fn wall_clock_reads_are_flagged() {
    let src = "fn f() { let t = std::time::Instant::now(); }\n";
    assert_eq!(rules_hit("crates/kernel/src/x.rs", src), ["wall-clock"]);
    let src = "use std::time::SystemTime;\n";
    assert_eq!(rules_hit("crates/servers/src/x.rs", src), ["wall-clock"]);
    // SimTime is the sanctioned clock.
    let src = "fn f(now: SimTime) -> SimTime { now + SimDuration::from_millis(1) }\n";
    assert!(run("crates/kernel/src/x.rs", src).is_empty());
}

#[test]
fn wall_clock_is_allowed_in_the_bench_harness() {
    let src = "let t = std::time::Instant::now();\n";
    assert!(run("crates/bench/src/lib.rs", src).is_empty());
}

#[test]
fn the_type_alias_instant_is_not_a_wall_clock_read() {
    // experiments.rs aliases `Instant` to SimTime; only std's Instant
    // and `Instant::now()` count.
    let src = "pub type Instant = SimTime;\nfn f(t: Instant) -> Instant { t }\n";
    assert!(run("crates/core/src/experiments.rs", src).is_empty());
}

#[test]
fn hash_collections_are_flagged() {
    let src = "use std::collections::HashMap;\n";
    assert_eq!(
        rules_hit("crates/servers/src/rs.rs", src),
        ["hash-collection"]
    );
    let src = "let s: HashSet<u32> = HashSet::new();\n";
    assert_eq!(run("crates/hw/src/x.rs", src).len(), 1);
    let src = "use std::collections::{BTreeMap, BTreeSet};\n";
    assert!(run("crates/servers/src/rs.rs", src).is_empty());
}

#[test]
fn rng_construction_is_flagged_outside_the_rng_module() {
    let src = "let rng = SimRng::new(42);\n";
    assert_eq!(
        rules_hit("crates/drivers/src/x.rs", src),
        ["rng-construction"]
    );
    // Forking an existing stream is the sanctioned way.
    let src = "let rng = parent.fork(\"driver\");\n";
    assert!(run("crates/drivers/src/x.rs", src).is_empty());
    // The rng module itself defines the constructor.
    let src = "let rng = SimRng::new(seed);\n";
    assert!(run("crates/simcore/src/rng.rs", src).is_empty());
}

#[test]
fn host_threads_are_flagged() {
    let src = "std::thread::spawn(move || work());\n";
    assert_eq!(rules_hit("crates/core/src/x.rs", src), ["thread"]);
}

#[test]
fn unwrap_is_flagged_only_in_recovery_modules() {
    let src = "let v = table.get(&k).unwrap();\n";
    assert_eq!(
        rules_hit("crates/servers/src/rs.rs", src),
        ["unwrap-recovery"]
    );
    assert_eq!(
        rules_hit("crates/servers/src/ds.rs", src),
        ["unwrap-recovery"]
    );
    let src = "let v = cfg.period.expect(\"set at boot\");\n";
    assert_eq!(
        rules_hit("crates/servers/src/policy.rs", src),
        ["unwrap-recovery"]
    );
    // The crash-only servers' restore paths are in scope too.
    assert_eq!(
        rules_hit("crates/servers/src/mfs.rs", src),
        ["unwrap-recovery"]
    );
    assert_eq!(
        rules_hit("crates/servers/src/pm.rs", src),
        ["unwrap-recovery"]
    );
    // Ordinary modules may unwrap.
    assert!(run("crates/servers/src/fsfmt.rs", src).is_empty());
}

#[test]
fn same_line_pragma_suppresses() {
    let src = "use std::collections::HashMap; // analyze:allow(hash-collection): ffi table\n";
    assert!(run("crates/kernel/src/x.rs", src).is_empty());
}

#[test]
fn preceding_comment_block_pragma_suppresses() {
    // The pragma may sit several comment lines above the code line
    // (rustfmt wraps long reasons).
    let src = "\
// analyze:allow(rng-construction): the root RNG of the run; every
// other stream forks from this one.
let rng = SimRng::new(cfg.seed);
";
    assert!(run("crates/kernel/src/x.rs", src).is_empty());
}

#[test]
fn pragma_does_not_leak_past_the_next_code_line() {
    let src = "\
// analyze:allow(rng-construction): covers only the next line
let a = SimRng::new(1);
let b = SimRng::new(2);
";
    let hits = run("crates/kernel/src/x.rs", src);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].line, 3);
}

#[test]
fn pragma_for_a_different_rule_does_not_suppress() {
    let src = "use std::collections::HashMap; // analyze:allow(wall-clock): wrong rule\n";
    assert_eq!(run("crates/kernel/src/x.rs", src).len(), 1);
}

#[test]
fn commented_out_code_is_not_flagged() {
    let src = "// let rng = SimRng::new(42);\n/* std::thread::spawn(f); */\n";
    assert!(run("crates/kernel/src/x.rs", src).is_empty());
}

#[test]
fn test_modules_are_exempt() {
    let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let x = SimRng::new(1); x.gen(); map.get(&k).unwrap(); }
}
";
    assert!(run("crates/servers/src/rs.rs", src).is_empty());
}

#[test]
fn findings_carry_position_and_excerpt() {
    let src = "fn a() {}\nuse std::collections::HashMap;\n";
    let hits = run("crates/hw/src/bus.rs", src);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].line, 2);
    assert_eq!(hits[0].file, "crates/hw/src/bus.rs");
    assert_eq!(hits[0].excerpt, "use std::collections::HashMap;");
    assert_eq!(
        hits[0].to_string(),
        "crates/hw/src/bus.rs:2: [hash-collection] use std::collections::HashMap;"
    );
}

#[test]
fn the_real_workspace_is_clean() {
    // The gate ci.sh enforces, as a test: no unsuppressed determinism
    // findings and no dead protocol edges in the actual sources.
    let root = phoenix_analyze::workspace_root();
    let findings = phoenix_analyze::lint::lint_workspace(&root);
    assert!(findings.is_empty(), "determinism lints: {findings:?}");
    let edges = phoenix_analyze::deadedge::find_dead_edges(&root).edges;
    assert!(edges.is_empty(), "dead protocol edges: {edges:?}");
}
