//! Micro-benchmarks for the substrate primitives whose costs the paper
//! discusses: IPC round-trips, capability-checked copies (§4's "overhead of
//! this protection is a few microseconds"), policy-script evaluation,
//! fault-VM execution and mutation, and the full driver restart path.
//!
//! Self-contained harness (no external bench framework): each benchmark runs
//! a calibration pass, then a measured pass, and reports mean wall time per
//! iteration. Invoke with `cargo bench -p phoenix-bench`.

use std::time::Instant;

use phoenix::os::{names, NicKind, Os};
use phoenix_fault::isa::{Asm, Instr};
use phoenix_fault::mutate::apply_random_fault;
use phoenix_fault::vm::Vm;
use phoenix_kernel::memory::GrantAccess;
use phoenix_kernel::platform::NullPlatform;
use phoenix_kernel::privileges::Privileges;
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::{Ctx, System, SystemConfig};
use phoenix_kernel::types::Message;
use phoenix_servers::policy::{reason, PolicyInput, PolicyScript};
use phoenix_simcore::rng::SimRng;
use phoenix_simcore::time::SimDuration;

/// Runs `iter` (with a fresh `setup` value each iteration) `n` times and
/// prints the mean time per iteration.
fn bench<S, T, F: FnMut() -> S, G: FnMut(S) -> T>(name: &str, n: u32, mut setup: F, mut iter: G) {
    // Warm-up: one untimed iteration so lazy init and allocator warm-up do
    // not pollute the measurement.
    std::hint::black_box(iter(setup()));
    let mut total = std::time::Duration::ZERO;
    for _ in 0..n {
        let input = setup();
        let start = Instant::now();
        let out = iter(input);
        total += start.elapsed();
        std::hint::black_box(out);
    }
    let per_iter = total / n;
    println!("{name:<40} {per_iter:>12?}/iter  ({n} iters)");
}

/// Echo server + client pair; each iteration performs 1000 sendrec+reply
/// round-trips.
fn bench_ipc_roundtrip() {
    struct Echo;
    impl Process for Echo {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            if let ProcEvent::Request { call, msg } = ev {
                let _ = ctx.reply(call, Message::new(msg.mtype + 1));
            }
        }
    }
    struct Client {
        peer: phoenix_kernel::types::Endpoint,
        rounds: u32,
    }
    impl Process for Client {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start => {
                    let _ = ctx.sendrec(self.peer, Message::new(0));
                }
                ProcEvent::Reply { .. } if self.rounds > 0 => {
                    self.rounds -= 1;
                    let _ = ctx.sendrec(self.peer, Message::new(0));
                }
                _ => {}
            }
        }
    }
    bench(
        "kernel/ipc_sendrec_roundtrip_x1000",
        50,
        || {
            let mut sys = System::new(SystemConfig::default());
            let echo = sys.spawn_boot("echo", Privileges::server(), Box::new(Echo));
            sys.spawn_boot(
                "client",
                Privileges::server(),
                Box::new(Client {
                    peer: echo,
                    rounds: 1000,
                }),
            );
            sys
        },
        |mut sys| {
            sys.run_until_idle(&mut NullPlatform, 100_000);
            sys
        },
    );
}

/// 200 4 KB capability-checked copies between two address spaces.
fn bench_grant_copy() {
    struct Producer;
    impl Process for Producer {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            if let ProcEvent::Request { call, msg } = ev {
                let g = ctx
                    .grant_create(msg.source, 0, 4096, GrantAccess::Read)
                    .expect("grant");
                let _ = ctx.reply(call, Message::new(1).with_param(0, u64::from(g.0)));
            }
        }
    }
    struct Consumer {
        peer: phoenix_kernel::types::Endpoint,
        rounds: u32,
    }
    impl Process for Consumer {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start => {
                    let _ = ctx.sendrec(self.peer, Message::new(0));
                }
                ProcEvent::Reply {
                    result: Ok(reply), ..
                } => {
                    let g = phoenix_kernel::memory::GrantId(reply.param(0) as u32);
                    ctx.safecopy_from(self.peer, g, 0, 0, 4096).expect("copy");
                    if self.rounds > 0 {
                        self.rounds -= 1;
                        let _ = ctx.sendrec(self.peer, Message::new(0));
                    }
                }
                _ => {}
            }
        }
    }
    bench(
        "kernel/grant_safecopy_4k_x200",
        50,
        || {
            let mut sys = System::new(SystemConfig::default());
            let p = sys.spawn_boot("producer", Privileges::server(), Box::new(Producer));
            sys.spawn_boot(
                "consumer",
                Privileges::server(),
                Box::new(Consumer {
                    peer: p,
                    rounds: 200,
                }),
            );
            sys
        },
        |mut sys| {
            sys.run_until_idle(&mut NullPlatform, 100_000);
            sys
        },
    );
}

/// Policy-script evaluation (the per-failure recovery decision).
fn bench_policy_eval() {
    let script = PolicyScript::generic();
    let input = PolicyInput {
        component: "eth.rtl8139".to_string(),
        reason: reason::EXCEPTION,
        repetition: 3,
        params: vec!["ops@example.org".to_string()],
        backoff_base: None,
        backoff_cap: None,
    };
    bench(
        "rs/policy_script_eval",
        10_000,
        || (),
        |()| script.run(&input),
    );
}

/// Parsing the generic policy script.
fn bench_policy_parse() {
    bench(
        "rs/policy_script_parse",
        10_000,
        || (),
        |()| PolicyScript::generic(),
    );
}

/// Fault-VM execution of a driver rx routine over a full-size frame.
fn bench_vm_execution() {
    let program = phoenix_drivers::routines::net_rx();
    bench(
        "fault/vm_net_rx_1514B",
        5_000,
        || {
            let mut vm = Vm::new(2048);
            vm.mem[0] = 1;
            vm.regs[0] = 1514;
            vm.regs[1] = 64;
            vm
        },
        |mut vm| {
            std::hint::black_box(vm.run(&program, 50_000));
            vm
        },
    );
}

/// One random binary mutation on a padded driver image.
fn bench_mutation() {
    let image =
        phoenix_drivers::routines::with_cold_section(phoenix_drivers::routines::net_rx(), 30);
    let mut rng = SimRng::new(1);
    bench(
        "fault/apply_random_fault",
        10_000,
        || image.clone(),
        move |mut img| {
            std::hint::black_box(apply_random_fault(&mut img, &mut rng));
            img
        },
    );
}

/// Assembling a routine (cold path, but covers the assembler).
fn bench_assembler() {
    bench(
        "fault/assemble_disk_routine",
        10_000,
        || (),
        |()| {
            let mut a = Asm::new();
            let top = a.label();
            let done = a.label();
            a.emit(Instr::MovImm(2, 0));
            a.bind(top);
            a.jge_to(3, 0, done);
            a.emit(Instr::AddImm(3, 1));
            a.jmp_to(top);
            a.bind(done);
            a.emit(Instr::Halt);
            a.finish()
        },
    );
}

/// Full driver kill-to-recovered cycle on a booted OS (the paper's core
/// recovery operation, §7.1).
fn bench_driver_restart() {
    bench(
        "os/driver_kill_and_recover",
        20,
        || Os::builder().seed(1).with_network(NicKind::Rtl8139).boot(),
        |mut os| {
            os.kill_by_user(names::ETH_RTL8139);
            os.run_for(SimDuration::from_millis(100));
            assert!(os.is_up(names::ETH_RTL8139));
            os
        },
    );
}

fn main() {
    // `cargo bench` passes --bench (and possibly filter args); this harness
    // always runs everything.
    println!("phoenix microbenchmarks (mean wall time per iteration)");
    bench_ipc_roundtrip();
    bench_grant_copy();
    bench_policy_eval();
    bench_policy_parse();
    bench_vm_execution();
    bench_mutation();
    bench_assembler();
    bench_driver_restart();
}
