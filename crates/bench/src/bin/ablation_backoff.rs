//! Ablation: restart policy under a crash loop (§5.2, Fig. 2).
//!
//! A wedged card makes every restarted driver panic during
//! initialization. The direct-restart policy hammers the system with
//! restart attempts; the Fig. 2 generic policy's binary exponential
//! backoff "prevents bogging down the system in the event of repeated
//! failures"; a give-up policy stops after a threshold and raises an
//! alert.

use phoenix::hw::rtl8139::Rtl8139;
use phoenix::os::{hwmap, names, NicKind, Os};
use phoenix_bench::print_table;
use phoenix_servers::policy::PolicyScript;
use phoenix_simcore::time::SimDuration;

fn run_with(policy_name: &str, policy: PolicyScript) -> Vec<String> {
    let mut os = Os::builder()
        .seed(2007)
        .with_network(NicKind::Rtl8139)
        .service_policy(names::ETH_RTL8139, Some(policy), vec![])
        .boot();
    {
        let nic: &mut Rtl8139 = os.device_mut(hwmap::NIC).unwrap();
        nic.force_wedge();
    }
    let events_before = 0;
    let _ = events_before;
    os.kill_by_user(names::ETH_RTL8139);
    os.run_for(SimDuration::from_secs(60));
    let attempts = os.metrics().counter("rs.defect.exit") + 1; // +1: the kill
    vec![
        policy_name.to_string(),
        attempts.to_string(),
        os.metrics().counter("rs.gave_up").to_string(),
        os.metrics().counter("rs.alerts").to_string(),
        if os.is_up(names::ETH_RTL8139) {
            "up (wrong!)"
        } else {
            "down"
        }
        .to_string(),
    ]
}

fn main() {
    println!("ablation — restart policy under a crash loop (wedged card, 60 s)\n");
    let giveup = PolicyScript::parse(
        "if repetition > 5 then\n alert \"giving up on $component\"\n give-up\nelse\n sleep backoff(1s)\n restart\nend\n",
    )
    .expect("policy parses");
    let rows = vec![
        run_with("direct restart", PolicyScript::direct_restart()),
        run_with("generic (Fig. 2, exp backoff)", PolicyScript::generic()),
        run_with("backoff + give-up after 5", giveup),
    ];
    print_table(
        &[
            "policy",
            "restart attempts",
            "gave up",
            "alerts",
            "final state",
        ],
        &rows,
    );
    println!("\nexpected: direct restart makes ~1 attempt per exec latency (thousands/min);");
    println!("backoff caps attempts logarithmically; give-up bounds them outright.");
}
