//! The process manager.
//!
//! PM is the parent of all system processes: it executes programs on
//! behalf of the reincarnation server (which lacks the spawn privilege
//! itself), delivers signals, and — being the parent — receives every
//! child's exit status from the kernel, which it forwards to RS as a
//! `SIGCHLD` report "according to the POSIX specification" (§5.1).

use std::collections::BTreeMap;

use phoenix_ckpt::driver::{DriverCkpt, RestoreEvent};
use phoenix_drivers::proto::drv;
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{CallId, Endpoint, ExitReason, KillOrigin, Message, Signal};
use phoenix_simcore::trace::TraceLevel;

use crate::faultplane::{garble_message, FaultAction, FaultPlane, FaultState};
use crate::proto::{pack_endpoint, pm, unpack_endpoint};

/// Status codes in PM replies.
pub mod pm_status {
    /// Success.
    pub const OK: u64 = 0;
    /// Unknown program.
    pub const NO_PROGRAM: u64 = 2;
    /// Target endpoint is stale.
    pub const NO_PROCESS: u64 = 3;
    /// Caller is not authorized.
    pub const DENIED: u64 = 13;
}

/// The process manager server.
#[derive(Debug, Default)]
pub struct ProcessManager {
    /// Who receives SIGCHLD forwards (the reincarnation server).
    reaper: Option<Endpoint>,
    /// Process records: program name -> endpoint of the most recent
    /// incarnation PM started for it. This is PM's session state; it is
    /// externalized so a restarted PM still knows what it runs.
    records: BTreeMap<String, Endpoint>,
    /// Process-record checkpoint client (crash-only contract).
    ckpt: Option<DriverCkpt>,
    /// Records changed since the last checkpoint save.
    dirty: bool,
    /// Injected-defect latches (microreboot campaign).
    fault: FaultState,
}

impl ProcessManager {
    /// Creates the process manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables process-record checkpointing against the data store at
    /// `ds`: the reaper binding and started-service records are saved on
    /// every change and rehydrated lazily after a microreboot.
    pub fn with_checkpointing(mut self, ds: Endpoint) -> Self {
        self.ckpt = Some(DriverCkpt::new(ds, "pm.records"));
        self
    }

    /// Attaches the server fault plane (campaign defect injection).
    pub fn with_fault_plane(mut self, plane: &FaultPlane, name: &str) -> Self {
        self.fault = FaultState::attached(plane, name);
        self
    }

    fn encode_reason(reason: &ExitReason) -> (u64, u64) {
        match reason {
            ExitReason::Exited(code) => (0, *code as u64),
            ExitReason::Panicked(_) => (1, 0),
            ExitReason::Exception(k) => (2, *k as u64),
            ExitReason::Signaled(_, KillOrigin::User) => (3, 1),
            ExitReason::Signaled(_, KillOrigin::System) => (3, 0),
        }
    }

    // ---------------- process-record externalization ----------------

    fn push_ep(out: &mut Vec<u8>, ep: Endpoint) {
        out.extend_from_slice(&ep.slot().to_le_bytes());
        out.extend_from_slice(&ep.generation().to_le_bytes());
    }

    fn read_ep(buf: &[u8], at: &mut usize) -> Option<Endpoint> {
        let slot = u16::from_le_bytes(buf.get(*at..*at + 2)?.try_into().ok()?);
        let generation = u32::from_le_bytes(buf.get(*at + 2..*at + 6)?.try_into().ok()?);
        *at += 6;
        Some(Endpoint::new(slot, generation))
    }

    /// Serializes the reaper binding and the started-service records.
    fn encode_records(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self.reaper {
            Some(ep) => {
                out.push(1);
                Self::push_ep(&mut out, ep);
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(self.records.len() as u16).to_le_bytes());
        for (name, &ep) in &self.records {
            out.push(name.len() as u8);
            out.extend_from_slice(name.as_bytes());
            Self::push_ep(&mut out, ep);
        }
        out
    }

    /// Rehydrates the process records. A live reaper binding delivered
    /// after the restart (RS re-registers on respawn) wins over the
    /// snapshot. Returns `false` if the payload does not parse.
    fn apply_records(&mut self, ctx: &mut Ctx<'_>, payload: &[u8]) -> bool {
        let mut at = 0usize;
        let Some(&has_reaper) = payload.get(at) else {
            return false;
        };
        at += 1;
        let reaper = if has_reaper == 1 {
            match Self::read_ep(payload, &mut at) {
                Some(ep) => Some(ep),
                None => return false,
            }
        } else {
            None
        };
        let Some(count_bytes) = payload.get(at..at + 2) else {
            return false;
        };
        let count = u16::from_le_bytes(count_bytes.try_into().unwrap_or([0; 2]));
        at += 2;
        let mut records = Vec::new();
        for _ in 0..count {
            let Some(&nlen) = payload.get(at) else {
                return false;
            };
            at += 1;
            let Some(raw) = payload.get(at..at + nlen as usize) else {
                return false;
            };
            let name = String::from_utf8_lossy(raw).to_string();
            at += nlen as usize;
            let Some(ep) = Self::read_ep(payload, &mut at) else {
                return false;
            };
            records.push((name, ep));
        }
        if self.reaper.is_none() {
            self.reaper = reaper;
        }
        for (name, ep) in records {
            self.records.entry(name).or_insert(ep);
        }
        ctx.metrics().incr("pm.records_restored");
        true
    }

    /// Quiescent-point save of the process records.
    fn maybe_save(&mut self, ctx: &mut Ctx<'_>) {
        if !self.dirty {
            return;
        }
        match self.ckpt.as_ref() {
            Some(ckpt) if ckpt.ready() => {}
            Some(_) => return,
            None => {
                self.dirty = false;
                return;
            }
        }
        let payload = self.encode_records();
        if let Some(ckpt) = self.ckpt.as_mut() {
            ckpt.save(ctx, payload);
        }
        self.dirty = false;
    }

    /// Sends a caller-facing reply through the injected-garble filter.
    fn caller_reply(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: Message) {
        let msg = if self.fault.garbling() {
            ctx.metrics().incr("pm.garbled_replies");
            garble_message(msg)
        } else {
            msg
        };
        let _ = ctx.reply(call, msg);
    }
}

impl Process for ProcessManager {
    // analyze:recovery-root
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match self.fault.poll() {
            FaultAction::Crash => {
                ctx.metrics().incr("pm.injected_crash");
                ctx.panic("injected server defect: wild store");
                return;
            }
            FaultAction::Stall => {
                ctx.metrics().incr("pm.stalled_events");
                return;
            }
            FaultAction::Garble | FaultAction::None => {}
        }
        self.dispatch(ctx, event);
        self.maybe_save(ctx);
    }
}

impl ProcessManager {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Message(msg) if msg.mtype == drv::HB_PING => {
                // RS liveness ping: with no START/KILL in flight a wedged
                // PM would leave no stalled request to audit, so RS pings
                // it like a driver. The pong goes through the garble
                // filter — a corrupting PM mangles it, which RS reads the
                // same as silence.
                let mut pong = Message::new(drv::HB_PONG);
                if self.fault.garbling() {
                    ctx.metrics().incr("pm.garbled_replies");
                    pong = garble_message(pong);
                }
                let _ = ctx.send(msg.source, pong);
            }
            ProcEvent::Message(msg) if msg.mtype == pm::REGISTER => {
                if self.reaper != Some(msg.source) {
                    self.reaper = Some(msg.source);
                    self.dirty = true;
                }
                ctx.trace(
                    TraceLevel::Info,
                    format!("exit reports will go to {}", msg.source),
                );
            }
            ProcEvent::Request { call, msg } => {
                if let Some(ckpt) = self.ckpt.as_mut() {
                    if ckpt.park_until_restored(ctx, call, msg.clone()) {
                        return;
                    }
                }
                self.handle_request(ctx, call, msg);
            }
            ProcEvent::Reply { call, result } => {
                let ckpt_outcome = match self.ckpt.as_mut() {
                    Some(ckpt) => ckpt.on_reply(ctx, call, &result),
                    None => None,
                };
                if let Some((restore, parked)) = ckpt_outcome {
                    if let RestoreEvent::Restored(snap) = restore {
                        if !self.apply_records(ctx, &snap.payload) {
                            ctx.metrics().incr("pm.records_restore_garbage");
                        }
                    }
                    for (parked_call, parked_msg) in parked {
                        self.handle_request(ctx, parked_call, parked_msg);
                    }
                }
            }
            ProcEvent::ChildExited(status) => {
                // Forward the exit to the reincarnation server — this is
                // the SIGCHLD + wait() path that makes defect classes 1-3
                // immediately visible (§5.1).
                if let Some(reaper) = self.reaper {
                    let (kind, detail) = Self::encode_reason(&status.reason);
                    let (s, g) = pack_endpoint(status.endpoint);
                    let _ = ctx.send(
                        reaper,
                        Message::new(pm::SIGCHLD)
                            .with_param(0, s)
                            .with_param(1, g)
                            .with_param(2, kind)
                            .with_param(3, detail)
                            .with_data(status.name.into_bytes()),
                    );
                }
            }
            _ => {}
        }
    }

    /// Serves one START/KILL request (also the replay path for requests
    /// parked behind a record restore).
    fn handle_request(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: Message) {
        match msg.mtype {
            pm::START => {
                // Only the registered reaper (RS) may start services.
                if self.reaper != Some(msg.source) {
                    self.caller_reply(
                        ctx,
                        call,
                        Message::new(pm::START_REPLY).with_param(0, pm_status::DENIED),
                    );
                    return;
                }
                let program = String::from_utf8_lossy(&msg.data).to_string();
                let version = match msg.param(0) {
                    0 => None,
                    v => Some(v as u32),
                };
                match ctx.sys_spawn(&program, version) {
                    Ok(ep) => {
                        self.records.insert(program, ep);
                        self.dirty = true;
                        let (s, g) = pack_endpoint(ep);
                        self.caller_reply(
                            ctx,
                            call,
                            Message::new(pm::START_REPLY)
                                .with_param(0, pm_status::OK)
                                .with_param(1, s)
                                .with_param(2, g),
                        );
                    }
                    Err(_) => {
                        self.caller_reply(
                            ctx,
                            call,
                            Message::new(pm::START_REPLY).with_param(0, pm_status::NO_PROGRAM),
                        );
                    }
                }
            }
            pm::KILL => {
                if self.reaper != Some(msg.source) {
                    self.caller_reply(
                        ctx,
                        call,
                        Message::new(pm::KILL_REPLY).with_param(0, pm_status::DENIED),
                    );
                    return;
                }
                let target = unpack_endpoint(msg.param(0), msg.param(1));
                let signal = if msg.param(2) == 1 {
                    Signal::Kill
                } else {
                    Signal::Term
                };
                let st = match ctx.sys_kill(target, signal) {
                    Ok(()) => pm_status::OK,
                    Err(_) => pm_status::NO_PROCESS,
                };
                self.caller_reply(ctx, call, Message::new(pm::KILL_REPLY).with_param(0, st));
            }
            _ => {
                self.caller_reply(
                    ctx,
                    call,
                    Message::new(pm::KILL_REPLY).with_param(0, pm_status::DENIED),
                );
            }
        }
    }
}
