//! Checkpoint-store protocol: message kinds spoken between checkpointed
//! drivers and the data store, plus the parameter conventions that carry
//! write-ahead-log metadata on ordinary `cdev` messages.
//!
//! The message kinds live here (rather than in `servers/proto.rs`)
//! because the protocol's *clients* are drivers and the drivers crate
//! cannot depend on the servers crate; the dead-edge pass in
//! `phoenix-analyze` scans this file alongside the other proto modules.

use phoenix_kernel::types::Message;

/// Checkpoint save/restore message kinds (0x0A00 range).
///
/// Wire layout:
/// - `SAVE`: param 0 = key length K; data = K key bytes followed by the
///   [`crate::snapshot::Snapshot`] wire encoding. Authenticated by the
///   caller's stable published name (like `ds::STORE`).
/// - `SAVE_REPLY`: param 0 = [`ckpt_status`]; param 1 = stored sequence.
/// - `RESTORE`: data = key bytes. The reply always carries the episode
///   correlation of the owner's most recent re-publish so the fresh
///   incarnation can tag its restore/replay trace events.
/// - `RESTORE_REPLY`: param 0 = [`ckpt_status`]; param 1 = `RecoveryId`
///   wire value (0 = none); param 2 = `SpanId` wire value; data =
///   snapshot wire encoding when param 0 is `OK`.
/// - `TAIL`: data = the *primary's* key bytes. Only a warm spare
///   published under `standby.<key>` may tail `<key>`; the owner-name
///   binding authenticates the caller's live endpoint generation.
/// - `TAIL_REPLY`: param 0 = [`ckpt_status`]; data = snapshot wire
///   encoding when param 0 is `OK`. The spare keeps its own monotone
///   (incarnation, seq) cursor and drops non-advancing frames, so
///   duplicated or reordered replies cannot rewind it.
/// - `PROMOTE`: data = the primary's *owner name* bytes; RS-only
///   (authenticated as the store host's publisher). Re-frames every
///   record of that owner with a clamped incarnation so the promoted
///   spare's own saves pass the ghost check.
pub mod ckpt {
    /// Driver -> store: persist a snapshot.
    /// proto: request, reply=SAVE_REPLY, params 0=key-len
    pub const SAVE: u32 = 0x0A00;
    /// Store -> driver: save outcome.
    /// proto: reply, params 0=status, params 1=sequence
    pub const SAVE_REPLY: u32 = 0x0A01;
    /// Driver -> store: fetch the last snapshot for a key.
    /// proto: request, reply=RESTORE_REPLY
    pub const RESTORE: u32 = 0x0A02;
    /// Store -> driver: restore outcome (+ recovery correlation).
    /// proto: reply, params 0=status, params 1/2=recovery-token
    pub const RESTORE_REPLY: u32 = 0x0A03;
    /// Warm spare -> store: poll the primary's latest snapshot frame.
    /// proto: request, reply=TAIL_REPLY
    pub const TAIL: u32 = 0x0A04;
    /// Store -> spare: tail outcome (snapshot wire in data when OK).
    /// proto: reply, params 0=status
    pub const TAIL_REPLY: u32 = 0x0A05;
    /// RS -> store: re-frame an owner's records for a promoted
    /// incarnation.
    /// proto: request, reply=PROMOTE_REPLY
    pub const PROMOTE: u32 = 0x0A06;
    /// Store -> RS: promote outcome.
    /// proto: reply, params 0=status, params 1=records-adopted
    pub const PROMOTE_REPLY: u32 = 0x0A07;
}

/// Status codes for `SAVE_REPLY` / `RESTORE_REPLY` param 0.
pub mod ckpt_status {
    /// Stored / snapshot returned.
    pub const OK: u64 = 0;
    /// No snapshot recorded under this key.
    pub const NOT_FOUND: u64 = 1;
    /// Save rejected: the offered snapshot is from an older incarnation
    /// (or replays an already-stored sequence) — a ghost of a previous
    /// incarnation must not clobber the live state.
    pub const STALE: u64 = 2;
    /// The record failed CRC validation; nothing restored.
    pub const CORRUPT: u64 = 3;
    /// Caller is not the published owner of the name.
    pub const DENIED: u64 = 4;
}

/// Parameter conventions that piggyback write-ahead-log metadata on the
/// existing `cdev` request/reply messages. Parameters 5/6 are unused by
/// `cdev` requests (param 7 routes the device index through VFS), and
/// success replies use only params 0/1, so both directions pass through
/// VFS untouched.
pub mod wal_params {
    /// Request param: caller's monotone WAL sequence number (0 = the
    /// caller opted out of checkpointing; the request is served with the
    /// paper's original error-push semantics).
    pub const REQ_SEQ: usize = 5;
    /// Request param: absolute stream offset of the first payload byte.
    pub const REQ_OFFSET: usize = 6;
    /// Reply param: the driver's cumulative consumed watermark — bytes
    /// committed to hardware, acknowledged separately from IPC
    /// completion.
    pub const ACK_CONSUMED: usize = 3;
    /// Reply param: echo of the request's sequence number.
    pub const ACK_SEQ: usize = 4;
}

/// Tags a `cdev` request with its WAL sequence number and stream offset.
pub fn tag_request(msg: Message, seq: u64, offset: u64) -> Message {
    msg.with_param(wal_params::REQ_SEQ, seq)
        .with_param(wal_params::REQ_OFFSET, offset)
}

/// Extracts `(seq, offset)` from a checkpointed request; `None` when the
/// caller opted out (seq 0).
pub fn request_wal(msg: &Message) -> Option<(u64, u64)> {
    let seq = msg.param(wal_params::REQ_SEQ);
    (seq != 0).then(|| (seq, msg.param(wal_params::REQ_OFFSET)))
}

/// Attaches a consumed-progress acknowledgment to a `cdev` reply.
pub fn ack_reply(reply: Message, consumed: u64, seq: u64) -> Message {
    reply
        .with_param(wal_params::ACK_CONSUMED, consumed)
        .with_param(wal_params::ACK_SEQ, seq)
}

/// Extracts `(consumed, seq)` from an acknowledged reply; `None` when
/// the reply carries no acknowledgment (seq echo 0).
pub fn reply_ack(reply: &Message) -> Option<(u64, u64)> {
    let seq = reply.param(wal_params::ACK_SEQ);
    (seq != 0).then(|| (reply.param(wal_params::ACK_CONSUMED), seq))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_tagging_round_trips() {
        let m = tag_request(Message::new(0x0401), 7, 4096);
        assert_eq!(request_wal(&m), Some((7, 4096)));
        assert_eq!(request_wal(&Message::new(0x0401)), None, "seq 0 = opt-out");
    }

    #[test]
    fn reply_ack_round_trips() {
        let r = ack_reply(Message::new(0x0402), 8192, 9);
        assert_eq!(reply_ack(&r), Some((8192, 9)));
        assert_eq!(reply_ack(&Message::new(0x0402)), None);
    }
}
