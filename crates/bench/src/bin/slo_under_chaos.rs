//! SLO-under-chaos bench: the repo's first committed perf trajectory.
//!
//! Sweeps the SLO campaign over load level × chaos intensity: an
//! open-loop INET client fleet (10⁴+ concurrent sessions at full load)
//! plus a multi-client VFS/disk job mix, while the network and block
//! drivers are repeatedly killed under fabric chaos. Every completed
//! request is attributed to steady state or the recovery phase its
//! completion fell into, giving p50/p99/p999 latency, goodput and
//! head-of-line depth per phase.
//!
//! The sweep is written to `results/BENCH_slo.json`
//! (`results/BENCH_slo_quick.json` with `--quick`) in a deterministic,
//! integer-only schema (`phoenix-bench-slo/v1`): committed to the repo,
//! it is the baseline the regression gate below compares against.
//!
//! Gates (any violation exits non-zero):
//!
//! * two same-seed runs of the primary sweep point must produce
//!   byte-identical metric digests;
//! * every kill must recover, both generators must drain, and the
//!   timeline fold must account for every recovery episode;
//! * the primary chaos point must attribute completions to recovery
//!   phases (an empty recovery row means the join is broken);
//! * at full load the fleet must actually reach 10⁴ concurrently-open
//!   sessions (`peak_live`);
//! * against the committed baseline: completed requests and goodput may
//!   not drop more than 10%, and steady-state / recovery p99 latency may
//!   not rise more than 10% (rows with too few samples are skipped).

use std::fmt::Write as _;
use std::process::ExitCode;

use phoenix::campaign::{run_slo_campaign, SloCampaignConfig, SloCampaignResult};
use phoenix::loadgen::{InetLoadConfig, VfsLoadConfig};
use phoenix_bench::{print_table, quick_mode, workspace_root};
use phoenix_simcore::obs::phase;
use phoenix_simcore::time::SimDuration;

/// Minimum successful-latency samples a phase row needs before its p99
/// participates in the regression gate (tiny rows are pure noise).
const GATE_MIN_SAMPLES: u64 = 50;

/// Tolerance band of the regression gate, percent.
const GATE_TOLERANCE_PCT: u64 = 10;

/// One sweep point: a load level crossed with a chaos intensity.
struct SweepPoint {
    load: &'static str,
    intensity_permille: u32,
    cfg: SloCampaignConfig,
    /// The primary point carries the digest gate and the regression
    /// baseline (and the README's headline numbers).
    primary: bool,
}

fn sweep(quick: bool) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    let loads: &[(&str, u32, u32)] = if quick {
        // CI-sized: the integration-test fleet, two intensities.
        &[("light", 300, 8)]
    } else {
        // Full: a light fleet for contrast plus the 10⁴-session fleet.
        &[("light", 3_500, 8), ("full", 14_000, 32)]
    };
    let intensities: &[u32] = if quick { &[0, 200] } else { &[0, 300, 600] };
    for &(load, sessions, clients) in loads {
        for &ip in intensities {
            let cfg = if quick {
                SloCampaignConfig {
                    seed: 1907,
                    inet: InetLoadConfig {
                        sessions,
                        interarrival: SimDuration::from_millis(400),
                        ramp: SimDuration::from_millis(400),
                        linger: SimDuration::from_millis(300),
                        horizon: SimDuration::from_secs(5),
                        ..InetLoadConfig::default()
                    },
                    vfs: VfsLoadConfig {
                        clients,
                        interarrival: SimDuration::from_millis(50),
                        horizon: SimDuration::from_secs(5),
                        ..VfsLoadConfig::default()
                    },
                    intensity: f64::from(ip) / 1000.0,
                    kills_per_target: 1,
                    kill_interval: SimDuration::from_millis(500),
                    file_size: 64 * 1024,
                }
            } else {
                // Offered load ~82% of the peer's 11 MB/s pacing
                // (14k sessions / 4.5 s x ~2.9 KB mean response): close
                // enough to capacity that recovery visibly queues, but
                // the no-chaos control is not in permanent overload.
                // Linger near the interarrival keeps the slots
                // concurrently open, so peak_live stays above 10^4.
                SloCampaignConfig {
                    inet: InetLoadConfig {
                        sessions,
                        interarrival: SimDuration::from_millis(4_500),
                        linger: SimDuration::from_millis(4_200),
                        ..InetLoadConfig::default()
                    },
                    vfs: VfsLoadConfig {
                        clients,
                        ..VfsLoadConfig::default()
                    },
                    intensity: f64::from(ip) / 1000.0,
                    ..SloCampaignConfig::default()
                }
            };
            // Primary: the heaviest load at the middle (default) chaos
            // intensity — the configuration the paper's claims live on.
            let primary = load == loads[loads.len() - 1].0 && ip == if quick { 200 } else { 300 };
            points.push(SweepPoint {
                load,
                intensity_permille: ip,
                cfg,
                primary,
            });
        }
    }
    points
}

// ---------------------------------------------------------------------
// JSON: hand-rolled, integers only, fixed key order — byte-stable for a
// given sweep outcome, so the committed file doubles as a determinism
// witness.

fn push_phase(out: &mut String, r: &SloCampaignResult) {
    out.push_str("\"phases\":[");
    for (i, p) in r.phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"phase\":\"{}\",\"requests\":{},\"failed\":{},\
             \"goodput_bytes\":{},\"phase_us\":{},\"hol_depth\":{},\
             \"samples\":{},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{}}}",
            p.phase,
            p.requests,
            p.failed,
            p.goodput_bytes,
            p.phase_us,
            p.hol_depth,
            p.samples,
            p.p50_us,
            p.p99_us,
            p.p999_us,
        );
    }
    out.push(']');
}

fn render_json(quick: bool, runs: &[(SweepPoint, SloCampaignResult)]) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"phoenix-bench-slo/v1\",");
    let _ = write!(out, "\"quick\":{},", u8::from(quick));
    // The gate block repeats the primary run's headline numbers as flat
    // scalars so the regression gate can read a committed baseline
    // without a JSON parser.
    if let Some((pt, r)) = runs.iter().find(|(pt, _)| pt.primary) {
        let steady_p99 = r.phase(phase::STEADY).map_or(0, |p| p.p99_us);
        let (rec_p99, rec_samples) = recovery_p99(r);
        let _ = write!(
            out,
            "\"gate\":{{\"sessions\":{},\"intensity_permille\":{},\
             \"completed\":{},\"goodput_bytes\":{},\"steady_p99_us\":{},\
             \"recovery_p99_us\":{},\"recovery_samples\":{}}},",
            pt.cfg.inet.sessions,
            pt.intensity_permille,
            r.completed,
            total_goodput(r),
            steady_p99,
            rec_p99,
            rec_samples,
        );
    }
    out.push_str("\"runs\":[");
    for (i, (pt, r)) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let recovered = r.kills.iter().filter(|k| k.recovered).count();
        let _ = write!(
            out,
            "{{\"load\":\"{}\",\"sessions\":{},\"vfs_clients\":{},\
             \"intensity_permille\":{},\"seed\":{},\"kills\":{},\
             \"recovered\":{},\"started\":{},\"completed\":{},\
             \"failed\":{},\"shed\":{},\"peak_live\":{},\
             \"inet_drained\":{},\"vfs_drained\":{},\"unaccounted\":{},\
             \"trace_dropped\":{},\"digest\":\"{}\",",
            pt.load,
            pt.cfg.inet.sessions,
            pt.cfg.vfs.clients,
            pt.intensity_permille,
            pt.cfg.seed,
            r.kills.len(),
            recovered,
            r.started,
            r.completed,
            r.failed,
            r.shed,
            r.peak_live,
            u8::from(r.inet_drained),
            u8::from(r.vfs_drained),
            r.unaccounted_episodes,
            r.trace_dropped,
            r.digest,
        );
        push_phase(&mut out, r);
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Response bytes delivered across all phases of a run.
fn total_goodput(r: &SloCampaignResult) -> u64 {
    r.phases.iter().map(|p| p.goodput_bytes).sum()
}

/// p99 over the best-sampled recovery phase (detection/repair/
/// reintegration/replay), with its sample count.
fn recovery_p99(r: &SloCampaignResult) -> (u64, u64) {
    [
        phase::DETECT,
        phase::REPAIR,
        phase::REINTEGRATE,
        phase::REPLAY,
    ]
    .iter()
    .filter_map(|ph| r.phase(ph))
    .map(|p| (p.p99_us, p.samples))
    .max_by_key(|&(_, samples)| samples)
    .unwrap_or((0, 0))
}

/// Pulls `"key":<integer>` out of a committed baseline file. The schema
/// is our own fixed-order integer JSON, so a scan is exact — no parser.
fn baseline_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let digits: String = json[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn main() -> ExitCode {
    let quick = quick_mode();
    let points = sweep(quick);
    println!(
        "slo under chaos — {} sweep points (load x intensity){}\n",
        points.len(),
        if quick { ", --quick" } else { "" },
    );

    let mut failures = Vec::new();
    let mut runs: Vec<(SweepPoint, SloCampaignResult)> = Vec::new();
    for pt in points {
        let (result, _os) = run_slo_campaign(&pt.cfg);
        println!(
            "[{} x {:.2}] {}\n",
            pt.load,
            f64::from(pt.intensity_permille) / 1000.0,
            result.render()
        );
        if pt.primary {
            // Digest gate: the campaign must be a pure function of its
            // seed — rerun the primary point and compare.
            let (rerun, _os) = run_slo_campaign(&pt.cfg);
            if rerun.digest != result.digest {
                failures.push(format!(
                    "same-seed digests differ: {} vs {}",
                    result.digest, rerun.digest
                ));
            }
        }
        runs.push((pt, result));
    }

    // ---- per-run invariant gates ----
    for (pt, r) in &runs {
        let tag = format!("[{} x {}]", pt.load, pt.intensity_permille);
        let unrecovered = r.kills.iter().filter(|k| !k.recovered).count();
        if unrecovered > 0 {
            failures.push(format!("{tag} {unrecovered} kills did not recover"));
        }
        if !r.inet_drained || !r.vfs_drained {
            failures.push(format!(
                "{tag} load did not drain (inet {}, vfs {})",
                r.inet_drained, r.vfs_drained
            ));
        }
        if r.unaccounted_episodes > 0 {
            failures.push(format!(
                "{tag} {} recovery episodes unaccounted in the fold",
                r.unaccounted_episodes
            ));
        }
        if pt.primary {
            let (_, rec_samples) = recovery_p99(r);
            let rec_requests: u64 = [
                phase::DETECT,
                phase::REPAIR,
                phase::REINTEGRATE,
                phase::REPLAY,
            ]
            .iter()
            .filter_map(|ph| r.phase(ph))
            .map(|p| p.requests)
            .sum();
            if rec_requests == 0 {
                failures.push(format!(
                    "{tag} no requests attributed to any recovery phase"
                ));
            }
            let _ = rec_samples;
        }
        if !quick && pt.load == "full" && r.peak_live < 10_000 {
            failures.push(format!(
                "{tag} peak_live {} below the 10^4-session floor",
                r.peak_live
            ));
        }
    }

    // ---- regression gate against the committed baseline ----
    let suffix = if quick { "_quick" } else { "" };
    let dir = workspace_root().join("results");
    let path = dir.join(format!("BENCH_slo{suffix}.json"));
    if let Ok(baseline) = std::fs::read_to_string(&path) {
        check_regression(&baseline, &runs, &mut failures);
    } else {
        println!("no committed baseline at {} — skipping", path.display());
    }

    // ---- summary table + report ----
    let rows: Vec<Vec<String>> = runs
        .iter()
        .flat_map(|(pt, r)| {
            r.phases.iter().map(move |p| {
                vec![
                    pt.load.to_string(),
                    format!("{:.2}", f64::from(pt.intensity_permille) / 1000.0),
                    p.phase.clone(),
                    p.requests.to_string(),
                    p.p50_us.to_string(),
                    p.p99_us.to_string(),
                    p.p999_us.to_string(),
                    p.goodput_bytes.to_string(),
                    p.hol_depth.to_string(),
                ]
            })
        })
        .collect();
    print_table(
        &[
            "load", "chaos", "phase", "req", "p50us", "p99us", "p999us", "goodput", "hol",
        ],
        &rows,
    );

    let json = render_json(quick, &runs);
    let _ = std::fs::create_dir_all(&dir);
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("failed to write {}: {e}", path.display());
    } else {
        println!("\nwrote {}", path.display());
    }

    if failures.is_empty() {
        println!("\nall gates passed: same-seed digest identical, all kills");
        println!("recovered, load drained, recovery phases populated, within");
        println!("{GATE_TOLERANCE_PCT}% of the committed baseline");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("GATE FAILED: {f}");
        }
        ExitCode::FAILURE
    }
}

/// Tolerance-band comparison of the primary run against the committed
/// baseline's `gate` block: throughput may not drop, latency may not
/// rise, by more than [`GATE_TOLERANCE_PCT`].
fn check_regression(
    baseline: &str,
    runs: &[(SweepPoint, SloCampaignResult)],
    failures: &mut Vec<String>,
) {
    let Some((pt, r)) = runs.iter().find(|(pt, _)| pt.primary) else {
        return;
    };
    // A baseline recorded for a different sweep shape is not comparable;
    // regenerating it lands in the same commit as the config change.
    if baseline_u64(baseline, "sessions") != Some(u64::from(pt.cfg.inet.sessions))
        || baseline_u64(baseline, "intensity_permille") != Some(u64::from(pt.intensity_permille))
    {
        println!("baseline was recorded for a different primary config — skipping");
        return;
    }
    let pct = GATE_TOLERANCE_PCT;
    // Lower-is-regression counters.
    for key in ["completed", "goodput_bytes"] {
        let Some(base) = baseline_u64(baseline, key) else {
            continue;
        };
        let now = match key {
            "completed" => r.completed,
            _ => total_goodput(r),
        };
        if now * 100 < base * (100 - pct) {
            failures.push(format!(
                "{key} regressed more than {pct}%: {now} vs baseline {base}"
            ));
        }
    }
    // Higher-is-regression latencies; skip under-sampled rows.
    let steady_p99 = r.phase(phase::STEADY).map_or(0, |p| p.p99_us);
    let steady_samples = r.phase(phase::STEADY).map_or(0, |p| p.samples);
    let (rec_p99, rec_samples) = recovery_p99(r);
    let base_rec_samples = baseline_u64(baseline, "recovery_samples").unwrap_or(0);
    let checks = [
        (
            "steady_p99_us",
            steady_p99,
            steady_samples,
            GATE_MIN_SAMPLES,
        ),
        (
            "recovery_p99_us",
            rec_p99,
            rec_samples.min(base_rec_samples),
            GATE_MIN_SAMPLES,
        ),
    ];
    for (key, now, samples, floor) in checks {
        let Some(base) = baseline_u64(baseline, key) else {
            continue;
        };
        if samples < floor || base == 0 {
            continue;
        }
        if now * 100 > base * (100 + pct) {
            failures.push(format!(
                "{key} regressed more than {pct}%: {now}us vs baseline {base}us"
            ));
        }
    }
}
