//! System servers of the Phoenix failure-resilient OS.
//!
//! This crate contains the trusted server layer from Fig. 1 of the paper:
//!
//! * [`pm`] — the process manager: executes service binaries, delivers
//!   signals, and reports every child exit to RS (the `SIGCHLD` path of
//!   §5.1).
//! * [`ds`] — the data store (§5.3): stable names → current endpoints,
//!   prefix-pattern publish-subscribe, and authenticated private state
//!   backup for stateful components.
//! * [`rs`] — the reincarnation server (§5): defect detection over all six
//!   inputs and policy-driven recovery.
//! * [`policy`] — the parametrized policy-script language (§5.2, Fig. 2).
//! * [`vfs`] / [`mfs`] / [`fsfmt`] — the virtual file system, the file
//!   server with transparent block-driver recovery (§6.2), and the
//!   on-disk format + `mkfs`.
//! * [`fatfs`] / [`fsfat`] — the second file server of Fig. 5: a FAT16
//!   server with the same recovery contract, over its own disk + driver.
//! * [`inet`] / [`netproto`] / [`peer`] — the network server with
//!   transparent Ethernet-driver recovery (§6.1), the TCP-like transport,
//!   and the remote "Internet server" peer of Fig. 7.

pub mod ds;
pub mod fatfs;
pub mod faultplane;
pub mod fsfat;
pub mod fsfmt;
pub mod inet;
pub mod mfs;
pub mod netproto;
pub mod peer;
pub mod pm;
pub mod policy;
pub mod proto;
pub mod rs;
pub mod vfs;

pub use ds::{DataStore, SharedRecords};
pub use fatfs::FatServer;
pub use faultplane::{FaultPlane, ServerFault};
pub use inet::Inet;
pub use mfs::FileServer;
pub use peer::{FilePeer, PeerConfig};
pub use pm::ProcessManager;
pub use policy::{PolicyDecision, PolicyInput, PolicyScript};
pub use rs::{ReincarnationServer, ServiceConfig};
pub use vfs::Vfs;
