//! FAT16 on-disk format and `mkfs.fat`.
//!
//! Fig. 5 of the paper shows *two* file servers — the native MFS and a FAT
//! server — both recovering transparently from block-driver failures. This
//! module provides a compact but real FAT16 layout (boot sector with BPB,
//! one FAT, a fixed root directory, cluster chains) so the FAT server in
//! [`crate::fatfs`] has something faithful to mount.
//!
//! ```text
//! LBA 0                boot sector (BPB + 0xAA55)
//! LBA 1..1+F           the FAT (16-bit entries)
//! LBA 1+F..1+F+R       root directory (32-byte entries)
//! LBA 1+F+R..          data area (cluster 2 onward)
//! ```

use phoenix_hw::disk::{synth_sector, DiskModel, SECTOR};
use phoenix_simcore::digest::Sha1;

/// Sectors per cluster used by `mkfs_fat`.
pub const SECTORS_PER_CLUSTER: u8 = 4;
/// Root directory entries.
pub const ROOT_ENTRIES: usize = 64;
/// End-of-chain marker.
pub const EOC: u16 = 0xFFFF;

/// Parsed BIOS parameter block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bpb {
    /// Bytes per sector (must be 512 here).
    pub bytes_per_sector: u16,
    /// Sectors per cluster.
    pub sectors_per_cluster: u8,
    /// Reserved sectors before the FAT.
    pub reserved_sectors: u16,
    /// Number of FATs.
    pub num_fats: u8,
    /// Root directory entries.
    pub root_entries: u16,
    /// Total sectors on the volume.
    pub total_sectors: u16,
    /// Sectors per FAT.
    pub fat_size: u16,
}

impl Bpb {
    /// First sector of the FAT.
    pub fn fat_start(&self) -> u64 {
        u64::from(self.reserved_sectors)
    }

    /// First sector of the root directory.
    pub fn root_start(&self) -> u64 {
        self.fat_start() + u64::from(self.num_fats) * u64::from(self.fat_size)
    }

    /// Sectors occupied by the root directory.
    pub fn root_sectors(&self) -> u64 {
        (u64::from(self.root_entries) * 32).div_ceil(SECTOR as u64)
    }

    /// First sector of the data area (cluster 2).
    pub fn data_start(&self) -> u64 {
        self.root_start() + self.root_sectors()
    }

    /// First sector of a data cluster (clusters start at 2).
    pub fn cluster_lba(&self, cluster: u16) -> u64 {
        self.data_start() + u64::from(cluster - 2) * u64::from(self.sectors_per_cluster)
    }

    /// Serializes into a 512-byte boot sector.
    pub fn encode(&self) -> Vec<u8> {
        let mut s = vec![0u8; SECTOR];
        s[0] = 0xEB; // jmp short
        s[1] = 0x3C;
        s[2] = 0x90;
        s[3..11].copy_from_slice(b"PHXFAT  ");
        s[11..13].copy_from_slice(&self.bytes_per_sector.to_le_bytes());
        s[13] = self.sectors_per_cluster;
        s[14..16].copy_from_slice(&self.reserved_sectors.to_le_bytes());
        s[16] = self.num_fats;
        s[17..19].copy_from_slice(&self.root_entries.to_le_bytes());
        s[19..21].copy_from_slice(&self.total_sectors.to_le_bytes());
        s[21] = 0xF8; // media descriptor: fixed disk
        s[22..24].copy_from_slice(&self.fat_size.to_le_bytes());
        s[510] = 0x55;
        s[511] = 0xAA;
        s
    }

    /// Parses a boot sector; `None` when the signature or geometry is
    /// invalid.
    pub fn decode(raw: &[u8]) -> Option<Bpb> {
        if raw.len() < SECTOR || raw[510] != 0x55 || raw[511] != 0xAA {
            return None;
        }
        let bpb = Bpb {
            bytes_per_sector: u16::from_le_bytes([raw[11], raw[12]]),
            sectors_per_cluster: raw[13],
            reserved_sectors: u16::from_le_bytes([raw[14], raw[15]]),
            num_fats: raw[16],
            root_entries: u16::from_le_bytes([raw[17], raw[18]]),
            total_sectors: u16::from_le_bytes([raw[19], raw[20]]),
            fat_size: u16::from_le_bytes([raw[22], raw[23]]),
        };
        if bpb.bytes_per_sector != SECTOR as u16
            || bpb.sectors_per_cluster == 0
            || bpb.num_fats == 0
        {
            return None;
        }
        Some(bpb)
    }
}

/// A root-directory entry (8.3 name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// File name, already joined as `NAME.EXT` (lowercased).
    pub name: String,
    /// First cluster of the chain.
    pub first_cluster: u16,
    /// Size in bytes.
    pub size: u32,
}

/// Encodes an 8.3 directory entry.
///
/// # Panics
///
/// Panics if the name does not fit 8.3.
pub fn encode_dirent(e: &DirEntry) -> [u8; 32] {
    let mut out = [0u8; 32];
    let (base, ext) = match e.name.split_once('.') {
        Some((b, x)) => (b, x),
        None => (e.name.as_str(), ""),
    };
    assert!(
        base.len() <= 8 && ext.len() <= 3,
        "name must fit 8.3: {}",
        e.name
    );
    let mut name83 = [b' '; 11];
    for (i, b) in base.bytes().enumerate() {
        name83[i] = b.to_ascii_uppercase();
    }
    for (i, b) in ext.bytes().enumerate() {
        name83[8 + i] = b.to_ascii_uppercase();
    }
    out[..11].copy_from_slice(&name83);
    out[11] = 0x20; // ATTR_ARCHIVE: a regular file
    out[26..28].copy_from_slice(&e.first_cluster.to_le_bytes());
    out[28..32].copy_from_slice(&e.size.to_le_bytes());
    out
}

/// Decodes a directory entry; `None` for free/deleted slots.
pub fn decode_dirent(raw: &[u8]) -> Option<DirEntry> {
    if raw.len() < 32 || raw[0] == 0 || raw[0] == 0xE5 {
        return None;
    }
    let base = String::from_utf8_lossy(&raw[0..8])
        .trim_end()
        .to_lowercase();
    let ext = String::from_utf8_lossy(&raw[8..11])
        .trim_end()
        .to_lowercase();
    let name = if ext.is_empty() {
        base
    } else {
        format!("{base}.{ext}")
    };
    Some(DirEntry {
        name,
        first_cluster: u16::from_le_bytes([raw[26], raw[27]]),
        size: u32::from_le_bytes([raw[28], raw[29], raw[30], raw[31]]),
    })
}

/// What `mkfs_fat` should put in a file.
#[derive(Debug, Clone)]
pub enum FatContent {
    /// The disk's deterministic base pattern (free to create).
    Synthetic {
        /// Size in bytes.
        size: u32,
    },
    /// Explicit bytes.
    Bytes(Vec<u8>),
}

/// A file for `mkfs_fat`.
#[derive(Debug, Clone)]
pub struct FatFileSpec {
    /// 8.3 file name (e.g. `"big.bin"`).
    pub name: String,
    /// Content.
    pub content: FatContent,
}

/// Formats `disk` as FAT16 with the given files (sequential cluster
/// chains). Returns the BPB and directory entries created.
///
/// # Panics
///
/// Panics if the files do not fit.
pub fn mkfs_fat(disk: &mut DiskModel, files: &[FatFileSpec]) -> (Bpb, Vec<DirEntry>) {
    let total = disk.sectors().min(u64::from(u16::MAX)) as u16;
    // FAT sizing: one u16 per cluster, clusters ≈ total / spc.
    let clusters = total / u16::from(SECTORS_PER_CLUSTER);
    let fat_size = (u32::from(clusters) * 2).div_ceil(SECTOR as u32) as u16;
    let bpb = Bpb {
        bytes_per_sector: SECTOR as u16,
        sectors_per_cluster: SECTORS_PER_CLUSTER,
        reserved_sectors: 1,
        num_fats: 1,
        root_entries: ROOT_ENTRIES as u16,
        total_sectors: total,
        fat_size,
    };
    let cluster_bytes = u32::from(SECTORS_PER_CLUSTER) * SECTOR as u32;
    let mut fat = vec![0u16; usize::from(clusters) + 2];
    fat[0] = 0xFFF8; // media descriptor chain head
    fat[1] = EOC;
    let mut next_cluster: u16 = 2;
    let mut dirents = Vec::new();
    for spec in files {
        let size = match &spec.content {
            FatContent::Synthetic { size } => *size,
            FatContent::Bytes(b) => b.len() as u32,
        };
        let n_clusters = size.div_ceil(cluster_bytes).max(1) as u16;
        let first = next_cluster;
        assert!(
            usize::from(next_cluster + n_clusters) <= fat.len(),
            "disk too small for {}",
            spec.name
        );
        // Sequential chain: c -> c+1 -> ... -> EOC.
        for c in first..first + n_clusters {
            fat[usize::from(c)] = if c + 1 < first + n_clusters {
                c + 1
            } else {
                EOC
            };
        }
        if let FatContent::Bytes(bytes) = &spec.content {
            let base = bpb.cluster_lba(first);
            for (i, chunk) in bytes.chunks(SECTOR).enumerate() {
                let mut sector = chunk.to_vec();
                sector.resize(SECTOR, 0);
                assert!(disk.write(base + i as u64, &sector));
            }
        }
        dirents.push(DirEntry {
            name: spec.name.clone(),
            first_cluster: first,
            size,
        });
        next_cluster += n_clusters;
    }
    // Write metadata: boot sector, FAT, root directory.
    assert!(disk.write(0, &bpb.encode()));
    let mut fat_bytes = Vec::with_capacity(fat.len() * 2);
    for e in &fat {
        fat_bytes.extend_from_slice(&e.to_le_bytes());
    }
    for (i, chunk) in fat_bytes.chunks(SECTOR).enumerate() {
        let mut sector = chunk.to_vec();
        sector.resize(SECTOR, 0);
        assert!(disk.write(bpb.fat_start() + i as u64, &sector));
    }
    let mut root = vec![0u8; usize::from(bpb.root_entries) * 32];
    for (i, e) in dirents.iter().enumerate() {
        root[i * 32..(i + 1) * 32].copy_from_slice(&encode_dirent(e));
    }
    for (i, chunk) in root.chunks(SECTOR).enumerate() {
        assert!(disk.write(bpb.root_start() + i as u64, chunk));
    }
    (bpb, dirents)
}

/// SHA-1 a reader should observe for a *synthetic* FAT file created by
/// [`mkfs_fat`] on a disk seeded with `disk_seed`.
pub fn expected_sha1_fat(disk_seed: u64, bpb: &Bpb, entry: &DirEntry) -> String {
    let mut h = Sha1::new();
    let base = bpb.cluster_lba(entry.first_cluster);
    let mut remaining = u64::from(entry.size);
    let mut sector_index = 0u64;
    while remaining > 0 {
        let sector = synth_sector(disk_seed, base + sector_index);
        let take = remaining.min(SECTOR as u64) as usize;
        h.update(&sector[..take]);
        remaining -= take as u64;
        sector_index += 1;
    }
    h.finish_hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bpb_roundtrip() {
        let bpb = Bpb {
            bytes_per_sector: 512,
            sectors_per_cluster: 4,
            reserved_sectors: 1,
            num_fats: 1,
            root_entries: 64,
            total_sectors: 8192,
            fat_size: 8,
        };
        assert_eq!(Bpb::decode(&bpb.encode()), Some(bpb));
        assert_eq!(Bpb::decode(&vec![0u8; 512]), None, "no signature");
    }

    #[test]
    fn dirent_roundtrip_and_names() {
        let e = DirEntry {
            name: "big.bin".to_string(),
            first_cluster: 5,
            size: 123_456,
        };
        assert_eq!(decode_dirent(&encode_dirent(&e)), Some(e));
        let noext = DirEntry {
            name: "readme".to_string(),
            first_cluster: 2,
            size: 9,
        };
        assert_eq!(decode_dirent(&encode_dirent(&noext)), Some(noext));
        assert_eq!(decode_dirent(&[0u8; 32]), None, "free slot");
    }

    #[test]
    #[should_panic(expected = "8.3")]
    fn long_names_rejected() {
        let _ = encode_dirent(&DirEntry {
            name: "waytoolongname.bin".to_string(),
            first_cluster: 2,
            size: 0,
        });
    }

    #[test]
    fn mkfs_layout_is_consistent() {
        let mut disk = DiskModel::new(8192, 3);
        let (bpb, dirents) = mkfs_fat(
            &mut disk,
            &[
                FatFileSpec {
                    name: "hello.txt".to_string(),
                    content: FatContent::Bytes(b"hello fat".to_vec()),
                },
                FatFileSpec {
                    name: "big.bin".to_string(),
                    content: FatContent::Synthetic { size: 1_000_000 },
                },
            ],
        );
        // Boot sector parses back.
        let parsed = Bpb::decode(&disk.read(0).unwrap()).unwrap();
        assert_eq!(parsed, bpb);
        // Root dir holds both entries.
        let root = disk.read(bpb.root_start()).unwrap();
        let e0 = decode_dirent(&root[0..32]).unwrap();
        let e1 = decode_dirent(&root[32..64]).unwrap();
        assert_eq!(e0.name, "hello.txt");
        assert_eq!(e1.name, "big.bin");
        assert_eq!(e1.size, 1_000_000);
        // FAT chain of big.bin is sequential and ends in EOC.
        let mut fat_bytes = Vec::new();
        for i in 0..u64::from(bpb.fat_size) {
            fat_bytes.extend(disk.read(bpb.fat_start() + i).unwrap());
        }
        let entry_of = |c: u16| {
            let off = usize::from(c) * 2;
            u16::from_le_bytes([fat_bytes[off], fat_bytes[off + 1]])
        };
        assert_eq!(entry_of(e0.first_cluster), EOC, "1-cluster file");
        let mut c = e1.first_cluster;
        let mut hops = 0;
        while entry_of(c) != EOC {
            assert_eq!(entry_of(c), c + 1, "sequential chain");
            c += 1;
            hops += 1;
            assert!(hops < 1000);
        }
        let cluster_bytes = 4 * 512;
        assert_eq!(
            hops + 1,
            1_000_000_u32.div_ceil(cluster_bytes),
            "chain length"
        );
        // Explicit content landed in the data area.
        let data = disk.read(bpb.cluster_lba(e0.first_cluster)).unwrap();
        assert_eq!(&data[..9], b"hello fat");
        assert_eq!(dirents.len(), 2);
    }

    #[test]
    fn expected_sha1_matches_manual_walk() {
        let seed = 77;
        let mut disk = DiskModel::new(4096, seed);
        let (bpb, dirents) = mkfs_fat(
            &mut disk,
            &[FatFileSpec {
                name: "f.bin".to_string(),
                content: FatContent::Synthetic { size: 5000 },
            }],
        );
        let want = expected_sha1_fat(seed, &bpb, &dirents[0]);
        let mut h = Sha1::new();
        let base = bpb.cluster_lba(dirents[0].first_cluster);
        let mut left = 5000usize;
        let mut i = 0;
        while left > 0 {
            let s = disk.read(base + i).unwrap();
            let take = left.min(512);
            h.update(&s[..take]);
            left -= take;
            i += 1;
        }
        assert_eq!(h.finish_hex(), want);
    }
}
